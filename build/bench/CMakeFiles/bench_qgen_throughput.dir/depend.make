# Empty dependencies file for bench_qgen_throughput.
# This may be replaced when dependencies are built.
