file(REMOVE_RECURSE
  "CMakeFiles/bench_qgen_throughput.dir/bench_qgen_throughput.cc.o"
  "CMakeFiles/bench_qgen_throughput.dir/bench_qgen_throughput.cc.o.d"
  "bench_qgen_throughput"
  "bench_qgen_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qgen_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
