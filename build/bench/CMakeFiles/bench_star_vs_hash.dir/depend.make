# Empty dependencies file for bench_star_vs_hash.
# This may be replaced when dependencies are built.
