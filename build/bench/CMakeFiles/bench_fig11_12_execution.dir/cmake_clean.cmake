file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_execution.dir/bench_fig11_12_execution.cc.o"
  "CMakeFiles/bench_fig11_12_execution.dir/bench_fig11_12_execution.cc.o.d"
  "bench_fig11_12_execution"
  "bench_fig11_12_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
