file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_comparability.dir/bench_fig4_comparability.cc.o"
  "CMakeFiles/bench_fig4_comparability.dir/bench_fig4_comparability.cc.o.d"
  "bench_fig4_comparability"
  "bench_fig4_comparability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_comparability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
