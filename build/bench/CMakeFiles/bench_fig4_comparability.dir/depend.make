# Empty dependencies file for bench_fig4_comparability.
# This may be replaced when dependencies are built.
