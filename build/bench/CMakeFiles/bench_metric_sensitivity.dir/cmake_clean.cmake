file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_sensitivity.dir/bench_metric_sensitivity.cc.o"
  "CMakeFiles/bench_metric_sensitivity.dir/bench_metric_sensitivity.cc.o.d"
  "bench_metric_sensitivity"
  "bench_metric_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
