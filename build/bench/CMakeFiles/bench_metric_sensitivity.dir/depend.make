# Empty dependencies file for bench_metric_sensitivity.
# This may be replaced when dependencies are built.
