file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_10_maintenance.dir/bench_fig8_10_maintenance.cc.o"
  "CMakeFiles/bench_fig8_10_maintenance.dir/bench_fig8_10_maintenance.cc.o.d"
  "bench_fig8_10_maintenance"
  "bench_fig8_10_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_10_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
