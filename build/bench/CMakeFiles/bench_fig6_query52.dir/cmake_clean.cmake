file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_query52.dir/bench_fig6_query52.cc.o"
  "CMakeFiles/bench_fig6_query52.dir/bench_fig6_query52.cc.o.d"
  "bench_fig6_query52"
  "bench_fig6_query52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_query52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
