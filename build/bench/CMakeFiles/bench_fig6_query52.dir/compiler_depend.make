# Empty compiler generated dependencies file for bench_fig6_query52.
# This may be replaced when dependencies are built.
