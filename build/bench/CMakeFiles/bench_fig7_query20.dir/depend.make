# Empty dependencies file for bench_fig7_query20.
# This may be replaced when dependencies are built.
