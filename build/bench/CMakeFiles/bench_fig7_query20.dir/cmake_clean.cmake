file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_query20.dir/bench_fig7_query20.cc.o"
  "CMakeFiles/bench_fig7_query20.dir/bench_fig7_query20.cc.o.d"
  "bench_fig7_query20"
  "bench_fig7_query20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_query20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
