file(REMOVE_RECURSE
  "CMakeFiles/bench_dsgen_throughput.dir/bench_dsgen_throughput.cc.o"
  "CMakeFiles/bench_dsgen_throughput.dir/bench_dsgen_throughput.cc.o.d"
  "bench_dsgen_throughput"
  "bench_dsgen_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsgen_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
