file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_item_hierarchy.dir/bench_fig5_item_hierarchy.cc.o"
  "CMakeFiles/bench_fig5_item_hierarchy.dir/bench_fig5_item_hierarchy.cc.o.d"
  "bench_fig5_item_hierarchy"
  "bench_fig5_item_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_item_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
