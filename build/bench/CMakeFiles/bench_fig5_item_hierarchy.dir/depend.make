# Empty dependencies file for bench_fig5_item_hierarchy.
# This may be replaced when dependencies are built.
