file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cardinalities.dir/bench_table2_cardinalities.cc.o"
  "CMakeFiles/bench_table2_cardinalities.dir/bench_table2_cardinalities.cc.o.d"
  "bench_table2_cardinalities"
  "bench_table2_cardinalities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cardinalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
