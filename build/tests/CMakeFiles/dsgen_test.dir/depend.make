# Empty dependencies file for dsgen_test.
# This may be replaced when dependencies are built.
