file(REMOVE_RECURSE
  "CMakeFiles/dsgen_test.dir/dsgen_test.cc.o"
  "CMakeFiles/dsgen_test.dir/dsgen_test.cc.o.d"
  "dsgen_test"
  "dsgen_test.pdb"
  "dsgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
