file(REMOVE_RECURSE
  "CMakeFiles/engine_value_test.dir/engine_value_test.cc.o"
  "CMakeFiles/engine_value_test.dir/engine_value_test.cc.o.d"
  "engine_value_test"
  "engine_value_test.pdb"
  "engine_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
