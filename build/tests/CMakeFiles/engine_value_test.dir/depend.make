# Empty dependencies file for engine_value_test.
# This may be replaced when dependencies are built.
