file(REMOVE_RECURSE
  "CMakeFiles/comparability_test.dir/comparability_test.cc.o"
  "CMakeFiles/comparability_test.dir/comparability_test.cc.o.d"
  "comparability_test"
  "comparability_test.pdb"
  "comparability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
