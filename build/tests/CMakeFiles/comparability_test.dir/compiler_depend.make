# Empty compiler generated dependencies file for comparability_test.
# This may be replaced when dependencies are built.
