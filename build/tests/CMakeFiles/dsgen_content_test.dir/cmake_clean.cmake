file(REMOVE_RECURSE
  "CMakeFiles/dsgen_content_test.dir/dsgen_content_test.cc.o"
  "CMakeFiles/dsgen_content_test.dir/dsgen_content_test.cc.o.d"
  "dsgen_content_test"
  "dsgen_content_test.pdb"
  "dsgen_content_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsgen_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
