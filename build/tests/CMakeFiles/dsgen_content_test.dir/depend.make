# Empty dependencies file for dsgen_content_test.
# This may be replaced when dependencies are built.
