
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/driver_test.cc" "tests/CMakeFiles/driver_test.dir/driver_test.cc.o" "gcc" "tests/CMakeFiles/driver_test.dir/driver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/tpcds_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dsgen/CMakeFiles/tpcds_dsgen.dir/DependInfo.cmake"
  "/root/repo/build/src/qgen/CMakeFiles/tpcds_qgen.dir/DependInfo.cmake"
  "/root/repo/build/src/templates/CMakeFiles/tpcds_templates.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/tpcds_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/tpcds_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/tpcds_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/tpcds_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/tpcds_scaling.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tpcds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpcds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
