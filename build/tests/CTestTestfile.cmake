# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/templates_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/dsgen_test[1]_include.cmake")
include("/root/repo/build/tests/engine_parser_test[1]_include.cmake")
include("/root/repo/build/tests/engine_exec_test[1]_include.cmake")
include("/root/repo/build/tests/qgen_test[1]_include.cmake")
include("/root/repo/build/tests/golden_regression_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/engine_differential_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/comparability_test[1]_include.cmake")
include("/root/repo/build/tests/engine_value_test[1]_include.cmake")
include("/root/repo/build/tests/dsgen_content_test[1]_include.cmake")
