file(REMOVE_RECURSE
  "CMakeFiles/qgen_tool.dir/qgen_tool.cpp.o"
  "CMakeFiles/qgen_tool.dir/qgen_tool.cpp.o.d"
  "qgen_tool"
  "qgen_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
