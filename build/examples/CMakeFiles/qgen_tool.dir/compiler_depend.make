# Empty compiler generated dependencies file for qgen_tool.
# This may be replaced when dependencies are built.
