# Empty compiler generated dependencies file for extraction_tool.
# This may be replaced when dependencies are built.
