file(REMOVE_RECURSE
  "CMakeFiles/extraction_tool.dir/extraction_tool.cpp.o"
  "CMakeFiles/extraction_tool.dir/extraction_tool.cpp.o.d"
  "extraction_tool"
  "extraction_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extraction_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
