file(REMOVE_RECURSE
  "CMakeFiles/dsgen_tool.dir/dsgen_tool.cpp.o"
  "CMakeFiles/dsgen_tool.dir/dsgen_tool.cpp.o.d"
  "dsgen_tool"
  "dsgen_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsgen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
