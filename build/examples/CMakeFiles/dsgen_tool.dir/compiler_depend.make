# Empty compiler generated dependencies file for dsgen_tool.
# This may be replaced when dependencies are built.
