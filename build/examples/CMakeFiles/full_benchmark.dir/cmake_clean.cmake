file(REMOVE_RECURSE
  "CMakeFiles/full_benchmark.dir/full_benchmark.cpp.o"
  "CMakeFiles/full_benchmark.dir/full_benchmark.cpp.o.d"
  "full_benchmark"
  "full_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
