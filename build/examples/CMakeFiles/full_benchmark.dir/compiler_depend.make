# Empty compiler generated dependencies file for full_benchmark.
# This may be replaced when dependencies are built.
