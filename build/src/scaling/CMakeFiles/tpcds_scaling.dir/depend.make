# Empty dependencies file for tpcds_scaling.
# This may be replaced when dependencies are built.
