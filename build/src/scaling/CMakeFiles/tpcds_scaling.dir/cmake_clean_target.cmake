file(REMOVE_RECURSE
  "libtpcds_scaling.a"
)
