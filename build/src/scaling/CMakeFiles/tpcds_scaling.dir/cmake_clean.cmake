file(REMOVE_RECURSE
  "CMakeFiles/tpcds_scaling.dir/scaling.cc.o"
  "CMakeFiles/tpcds_scaling.dir/scaling.cc.o.d"
  "libtpcds_scaling.a"
  "libtpcds_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
