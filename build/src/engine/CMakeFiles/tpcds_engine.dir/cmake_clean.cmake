file(REMOVE_RECURSE
  "CMakeFiles/tpcds_engine.dir/audit.cc.o"
  "CMakeFiles/tpcds_engine.dir/audit.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/database.cc.o"
  "CMakeFiles/tpcds_engine.dir/database.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/expr_eval.cc.o"
  "CMakeFiles/tpcds_engine.dir/expr_eval.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/lexer.cc.o"
  "CMakeFiles/tpcds_engine.dir/lexer.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/parser.cc.o"
  "CMakeFiles/tpcds_engine.dir/parser.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/planner.cc.o"
  "CMakeFiles/tpcds_engine.dir/planner.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/rowset.cc.o"
  "CMakeFiles/tpcds_engine.dir/rowset.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/table.cc.o"
  "CMakeFiles/tpcds_engine.dir/table.cc.o.d"
  "CMakeFiles/tpcds_engine.dir/value.cc.o"
  "CMakeFiles/tpcds_engine.dir/value.cc.o.d"
  "libtpcds_engine.a"
  "libtpcds_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
