file(REMOVE_RECURSE
  "libtpcds_engine.a"
)
