
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/audit.cc" "src/engine/CMakeFiles/tpcds_engine.dir/audit.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/audit.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/tpcds_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/expr_eval.cc" "src/engine/CMakeFiles/tpcds_engine.dir/expr_eval.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/expr_eval.cc.o.d"
  "/root/repo/src/engine/lexer.cc" "src/engine/CMakeFiles/tpcds_engine.dir/lexer.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/lexer.cc.o.d"
  "/root/repo/src/engine/parser.cc" "src/engine/CMakeFiles/tpcds_engine.dir/parser.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/parser.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/tpcds_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/rowset.cc" "src/engine/CMakeFiles/tpcds_engine.dir/rowset.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/rowset.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/tpcds_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/tpcds_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/tpcds_engine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpcds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/tpcds_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/dsgen/CMakeFiles/tpcds_dsgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tpcds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/tpcds_scaling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
