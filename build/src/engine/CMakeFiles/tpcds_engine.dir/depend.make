# Empty dependencies file for tpcds_engine.
# This may be replaced when dependencies are built.
