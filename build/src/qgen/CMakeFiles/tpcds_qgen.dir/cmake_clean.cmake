file(REMOVE_RECURSE
  "CMakeFiles/tpcds_qgen.dir/qgen.cc.o"
  "CMakeFiles/tpcds_qgen.dir/qgen.cc.o.d"
  "libtpcds_qgen.a"
  "libtpcds_qgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_qgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
