# Empty compiler generated dependencies file for tpcds_qgen.
# This may be replaced when dependencies are built.
