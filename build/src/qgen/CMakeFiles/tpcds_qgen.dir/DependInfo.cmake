
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qgen/qgen.cc" "src/qgen/CMakeFiles/tpcds_qgen.dir/qgen.cc.o" "gcc" "src/qgen/CMakeFiles/tpcds_qgen.dir/qgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpcds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tpcds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/tpcds_scaling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
