file(REMOVE_RECURSE
  "libtpcds_qgen.a"
)
