# Empty compiler generated dependencies file for tpcds_metric.
# This may be replaced when dependencies are built.
