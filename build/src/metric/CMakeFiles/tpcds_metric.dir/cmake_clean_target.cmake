file(REMOVE_RECURSE
  "libtpcds_metric.a"
)
