file(REMOVE_RECURSE
  "CMakeFiles/tpcds_metric.dir/metric.cc.o"
  "CMakeFiles/tpcds_metric.dir/metric.cc.o.d"
  "libtpcds_metric.a"
  "libtpcds_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
