file(REMOVE_RECURSE
  "libtpcds_driver.a"
)
