file(REMOVE_RECURSE
  "CMakeFiles/tpcds_driver.dir/driver.cc.o"
  "CMakeFiles/tpcds_driver.dir/driver.cc.o.d"
  "libtpcds_driver.a"
  "libtpcds_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
