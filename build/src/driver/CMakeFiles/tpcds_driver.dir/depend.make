# Empty dependencies file for tpcds_driver.
# This may be replaced when dependencies are built.
