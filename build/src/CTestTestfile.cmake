# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("schema")
subdirs("scaling")
subdirs("dist")
subdirs("dsgen")
subdirs("engine")
subdirs("qgen")
subdirs("templates")
subdirs("maintenance")
subdirs("driver")
subdirs("metric")
