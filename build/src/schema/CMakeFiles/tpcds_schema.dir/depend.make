# Empty dependencies file for tpcds_schema.
# This may be replaced when dependencies are built.
