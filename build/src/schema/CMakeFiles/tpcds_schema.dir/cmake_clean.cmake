file(REMOVE_RECURSE
  "CMakeFiles/tpcds_schema.dir/schema.cc.o"
  "CMakeFiles/tpcds_schema.dir/schema.cc.o.d"
  "CMakeFiles/tpcds_schema.dir/schema_stats.cc.o"
  "CMakeFiles/tpcds_schema.dir/schema_stats.cc.o.d"
  "libtpcds_schema.a"
  "libtpcds_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
