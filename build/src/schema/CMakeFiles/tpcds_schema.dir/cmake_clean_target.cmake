file(REMOVE_RECURSE
  "libtpcds_schema.a"
)
