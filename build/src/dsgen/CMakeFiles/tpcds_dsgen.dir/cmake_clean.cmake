file(REMOVE_RECURSE
  "CMakeFiles/tpcds_dsgen.dir/address.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/address.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/business_dims.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/business_dims.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/customer_dims.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/customer_dims.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/generator.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/generator.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/inventory.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/inventory.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/item.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/item.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/keys.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/keys.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/parallel.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/parallel.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/pricing.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/pricing.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/sales.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/sales.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/scd.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/scd.cc.o.d"
  "CMakeFiles/tpcds_dsgen.dir/static_dims.cc.o"
  "CMakeFiles/tpcds_dsgen.dir/static_dims.cc.o.d"
  "libtpcds_dsgen.a"
  "libtpcds_dsgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_dsgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
