file(REMOVE_RECURSE
  "libtpcds_dsgen.a"
)
