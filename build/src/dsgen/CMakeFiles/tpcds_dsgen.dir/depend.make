# Empty dependencies file for tpcds_dsgen.
# This may be replaced when dependencies are built.
