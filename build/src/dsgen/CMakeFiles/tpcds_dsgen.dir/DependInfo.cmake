
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsgen/address.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/address.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/address.cc.o.d"
  "/root/repo/src/dsgen/business_dims.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/business_dims.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/business_dims.cc.o.d"
  "/root/repo/src/dsgen/customer_dims.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/customer_dims.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/customer_dims.cc.o.d"
  "/root/repo/src/dsgen/generator.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/generator.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/generator.cc.o.d"
  "/root/repo/src/dsgen/inventory.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/inventory.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/inventory.cc.o.d"
  "/root/repo/src/dsgen/item.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/item.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/item.cc.o.d"
  "/root/repo/src/dsgen/keys.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/keys.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/keys.cc.o.d"
  "/root/repo/src/dsgen/parallel.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/parallel.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/parallel.cc.o.d"
  "/root/repo/src/dsgen/pricing.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/pricing.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/pricing.cc.o.d"
  "/root/repo/src/dsgen/sales.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/sales.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/sales.cc.o.d"
  "/root/repo/src/dsgen/scd.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/scd.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/scd.cc.o.d"
  "/root/repo/src/dsgen/static_dims.cc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/static_dims.cc.o" "gcc" "src/dsgen/CMakeFiles/tpcds_dsgen.dir/static_dims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpcds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/tpcds_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/tpcds_scaling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
