# Empty compiler generated dependencies file for tpcds_templates.
# This may be replaced when dependencies are built.
