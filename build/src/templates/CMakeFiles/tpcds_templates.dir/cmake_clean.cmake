file(REMOVE_RECURSE
  "CMakeFiles/tpcds_templates.dir/catalog_templates.cc.o"
  "CMakeFiles/tpcds_templates.dir/catalog_templates.cc.o.d"
  "CMakeFiles/tpcds_templates.dir/cross_templates.cc.o"
  "CMakeFiles/tpcds_templates.dir/cross_templates.cc.o.d"
  "CMakeFiles/tpcds_templates.dir/store_templates.cc.o"
  "CMakeFiles/tpcds_templates.dir/store_templates.cc.o.d"
  "CMakeFiles/tpcds_templates.dir/templates.cc.o"
  "CMakeFiles/tpcds_templates.dir/templates.cc.o.d"
  "CMakeFiles/tpcds_templates.dir/web_templates.cc.o"
  "CMakeFiles/tpcds_templates.dir/web_templates.cc.o.d"
  "libtpcds_templates.a"
  "libtpcds_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
