file(REMOVE_RECURSE
  "libtpcds_templates.a"
)
