file(REMOVE_RECURSE
  "libtpcds_dist.a"
)
