file(REMOVE_RECURSE
  "CMakeFiles/tpcds_dist.dir/distribution.cc.o"
  "CMakeFiles/tpcds_dist.dir/distribution.cc.o.d"
  "CMakeFiles/tpcds_dist.dir/domains.cc.o"
  "CMakeFiles/tpcds_dist.dir/domains.cc.o.d"
  "CMakeFiles/tpcds_dist.dir/zones.cc.o"
  "CMakeFiles/tpcds_dist.dir/zones.cc.o.d"
  "libtpcds_dist.a"
  "libtpcds_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
