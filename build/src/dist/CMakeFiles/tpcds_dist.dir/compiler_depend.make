# Empty compiler generated dependencies file for tpcds_dist.
# This may be replaced when dependencies are built.
