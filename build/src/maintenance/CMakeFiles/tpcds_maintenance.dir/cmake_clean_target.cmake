file(REMOVE_RECURSE
  "libtpcds_maintenance.a"
)
