# Empty dependencies file for tpcds_maintenance.
# This may be replaced when dependencies are built.
