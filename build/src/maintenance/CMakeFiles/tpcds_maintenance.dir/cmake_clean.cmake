file(REMOVE_RECURSE
  "CMakeFiles/tpcds_maintenance.dir/maintenance.cc.o"
  "CMakeFiles/tpcds_maintenance.dir/maintenance.cc.o.d"
  "libtpcds_maintenance.a"
  "libtpcds_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
