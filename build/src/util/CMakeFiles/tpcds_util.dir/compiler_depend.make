# Empty compiler generated dependencies file for tpcds_util.
# This may be replaced when dependencies are built.
