file(REMOVE_RECURSE
  "libtpcds_util.a"
)
