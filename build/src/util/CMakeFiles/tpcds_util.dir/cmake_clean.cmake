file(REMOVE_RECURSE
  "CMakeFiles/tpcds_util.dir/date.cc.o"
  "CMakeFiles/tpcds_util.dir/date.cc.o.d"
  "CMakeFiles/tpcds_util.dir/decimal.cc.o"
  "CMakeFiles/tpcds_util.dir/decimal.cc.o.d"
  "CMakeFiles/tpcds_util.dir/flatfile.cc.o"
  "CMakeFiles/tpcds_util.dir/flatfile.cc.o.d"
  "CMakeFiles/tpcds_util.dir/random.cc.o"
  "CMakeFiles/tpcds_util.dir/random.cc.o.d"
  "CMakeFiles/tpcds_util.dir/status.cc.o"
  "CMakeFiles/tpcds_util.dir/status.cc.o.d"
  "CMakeFiles/tpcds_util.dir/string_util.cc.o"
  "CMakeFiles/tpcds_util.dir/string_util.cc.o.d"
  "CMakeFiles/tpcds_util.dir/threadpool.cc.o"
  "CMakeFiles/tpcds_util.dir/threadpool.cc.o.d"
  "libtpcds_util.a"
  "libtpcds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
