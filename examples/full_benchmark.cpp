// full_benchmark: the complete TPC-DS execution per the paper's Fig. 11 —
// timed load, Query Run 1 (concurrent streams over all 99 templates), the
// 12-operation data-maintenance run, Query Run 2 — ending in QphDS@SF and
// $/QphDS@SF.
//
//   ./examples/full_benchmark [-scale SF] [-streams S] [-queries N]
//                             [-tco DOLLARS] [-no-star] [-index-joins]
//                             [-parallelism W] [-power] [-timeout MS]
//                             [-mem-budget MB] [-retries N] [-faults SPEC]
//                             [-checkpoint-dir DIR] [-wal PATH] [-recover]
//
// Governance flags: -timeout and -mem-budget bound every stream query;
// -retries sets attempts per work item before it lands in the failure
// report; -faults arms the deterministic fault injector (same grammar as
// the TPCDS_FAULTS environment variable, e.g. "morsel=nth:40").
//
// Durability flags: -checkpoint-dir checkpoints the database right after
// the timed load; -wal routes the data-maintenance run through a
// write-ahead log (each refresh op commits individually, and the run is
// not retried on failure); -recover adds a recovery phase after data
// maintenance that rebuilds a database from checkpoint + WAL and verifies
// it is byte-identical to the live one (exit code 1 on mismatch).
//
// Generation flags: -overlap runs Query Run 2 concurrently with data
// maintenance (copy-on-write generation + atomic facade swap); -attach
// (requires -checkpoint-dir) measures the O(1) mmap cold start against a
// deep heap load of the same checkpoint, cross-checks content hashes and
// a sample of query answers, and exits 1 on any divergence.
//
// Admission-control flags (docs/SERVICE.md): the query runs always route
// their S client streams through a QueryService; -service-slots caps the
// concurrent worker slots below S (making streams queue), -service-queue
// bounds the admission queue (backpressure / shedding beyond it),
// -service-mem caps the global memory pool all admitted governors charge,
// -service-deadline sets a per-statement end-to-end deadline in ms,
// -service-spread splits streams over N priority classes so overload
// shedding has lower-priority victims to pick. The metric report then
// shows tail latency and where every submission went.
//
// Chaos flags (docs/ROBUSTNESS.md): -profile selects a workload profile
// ("uniform", "hot-skew", "reporting", "adhoc", "chains", "refresh-duty",
// with key=value overrides or @file); -chaos SPEC switches to drill mode:
// the time-phased fault schedule (grammar
// "site@START_MS+DURATION_MS=trigger", e.g.
// "wal-append@20+500=nth:3,shed@0+400=every:5") is armed while the
// profile's query streams run concurrently with its refresh duty cycle,
// then the standing invariants are verified (balanced counters, drained
// pool, no lost queries, bounded retries, byte-identical recovery,
// clean constraint audit). Drill mode requires -checkpoint-dir and -wal
// and exits 1 if any invariant fails.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "driver/drill.h"
#include "driver/driver.h"
#include "engine/audit.h"
#include "metric/metric.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/fault.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  tpcds::BenchmarkConfig config;
  config.scale_factor = 0.01;
  double tco = 350000.0;
  bool run_power = false;
  bool attach_demo = false;
  bool drill_mode = false;
  tpcds::ChaosSchedule chaos;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "-scale") {
      config.scale_factor = std::strtod(next(), nullptr);
    } else if (arg == "-streams") {
      config.streams = std::atoi(next());
    } else if (arg == "-queries") {
      config.queries_per_stream = std::atoi(next());
    } else if (arg == "-tco") {
      tco = std::strtod(next(), nullptr);
    } else if (arg == "-no-star") {
      config.planner.star_transformation = false;
    } else if (arg == "-index-joins") {
      config.planner.index_joins = true;
    } else if (arg == "-parallelism") {
      config.planner.parallelism = std::atoi(next());
    } else if (arg == "-power") {
      run_power = true;
    } else if (arg == "-timeout") {
      config.planner.timeout_ms = std::strtod(next(), nullptr);
    } else if (arg == "-mem-budget") {
      config.planner.memory_budget_bytes = static_cast<int64_t>(
          std::strtod(next(), nullptr) * 1024.0 * 1024.0);
    } else if (arg == "-retries") {
      config.max_query_attempts = std::atoi(next());
    } else if (arg == "-faults") {
      tpcds::Status st = tpcds::FaultInjector::Global().Configure(next());
      if (!st.ok()) {
        std::fprintf(stderr, "bad -faults spec: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    } else if (arg == "-checkpoint-dir") {
      config.checkpoint_dir = next();
    } else if (arg == "-wal") {
      config.wal_path = next();
    } else if (arg == "-recover") {
      config.recover_verify = true;
    } else if (arg == "-overlap") {
      config.overlap_dm_qr2 = true;
    } else if (arg == "-attach") {
      attach_demo = true;
    } else if (arg == "-service-slots") {
      config.service_worker_slots = std::atoi(next());
    } else if (arg == "-service-queue") {
      config.service_queue_depth =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "-service-mem") {
      config.service_memory_budget_bytes = static_cast<int64_t>(
          std::strtod(next(), nullptr) * 1024.0 * 1024.0);
    } else if (arg == "-service-deadline") {
      config.service_deadline_ms = std::strtod(next(), nullptr);
    } else if (arg == "-service-spread") {
      config.service_priority_spread = std::atoi(next());
    } else if (arg == "-profile") {
      tpcds::Result<tpcds::WorkloadProfile> profile =
          tpcds::WorkloadProfile::Parse(next());
      if (!profile.ok()) {
        std::fprintf(stderr, "bad -profile spec: %s\n",
                     profile.status().ToString().c_str());
        return 1;
      }
      config.profile = *profile;
    } else if (arg == "-chaos") {
      tpcds::Result<tpcds::ChaosSchedule> parsed =
          tpcds::ChaosSchedule::Parse(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad -chaos spec: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      chaos = *parsed;
      drill_mode = true;
    } else {
      std::fprintf(stderr,
                   "usage: full_benchmark [-scale SF] [-streams S] "
                   "[-queries N] [-tco $] [-no-star] [-index-joins] "
                   "[-parallelism W] [-power] [-timeout MS] "
                   "[-mem-budget MB] [-retries N] [-faults SPEC] "
                   "[-checkpoint-dir DIR] [-wal PATH] [-recover] "
                   "[-overlap] [-attach] [-service-slots N] "
                   "[-service-queue N] [-service-mem MB] "
                   "[-service-deadline MS] [-service-spread N] "
                   "[-profile SPEC] [-chaos SCHEDULE]\n");
      return 1;
    }
  }
  if (attach_demo && config.checkpoint_dir.empty()) {
    std::fprintf(stderr, "-attach requires -checkpoint-dir\n");
    return 1;
  }

  // Drill mode: run the profile × schedule combination through the chaos
  // harness and gate on the standing invariants instead of the metric.
  if (drill_mode) {
    if (config.checkpoint_dir.empty() || config.wal_path.empty()) {
      std::fprintf(stderr, "-chaos requires -checkpoint-dir and -wal\n");
      return 1;
    }
    tpcds::DrillConfig drill;
    drill.base = config;
    drill.schedule = chaos;
    std::printf("chaos drill: SF %.3f, profile %s, schedule [%s]\n",
                config.scale_factor, config.profile.ToString().c_str(),
                chaos.ToString().c_str());
    tpcds::Result<tpcds::DrillResult> outcome = tpcds::RunChaosDrill(drill);
    if (!outcome.ok()) {
      std::fprintf(stderr, "drill harness failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", outcome->ToString().c_str());
    if (!outcome->failures.empty()) {
      std::printf("\n--- failure report ---\n%s",
                  outcome->failures.ToString().c_str());
    }
    return outcome->Passed() ? 0 : 1;
  }

  std::printf("TPC-DS benchmark: SF %.3f, %s streams, %d queries/stream\n",
              config.scale_factor,
              config.streams > 0 ? std::to_string(config.streams).c_str()
                                 : "minimum",
              config.queries_per_stream);
  tpcds::Database db;
  tpcds::Result<tpcds::BenchmarkResult> result =
      tpcds::RunBenchmark(config, &db);
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n--- data maintenance detail ---\n");
  for (const tpcds::MaintenanceOpResult& op :
       result->dm_report.operations) {
    std::printf("  %-30s %10lld rows %8.3f s\n", op.operation.c_str(),
                static_cast<long long>(op.rows_affected), op.seconds);
  }

  // Slowest queries of Query Run 1 — where tuning effort pays (paper
  // §5.3: "engineers will concentrate on long running queries").
  std::vector<tpcds::QueryExecution> sorted = result->qr1_queries;
  std::sort(sorted.begin(), sorted.end(),
            [](const tpcds::QueryExecution& a,
               const tpcds::QueryExecution& b) {
              return a.seconds > b.seconds;
            });
  std::printf("\n--- slowest queries (run 1) ---\n");
  for (size_t i = 0; i < std::min<size_t>(5, sorted.size()); ++i) {
    std::printf("  q%02d (stream %d)  %8.3f s  %lld rows\n",
                sorted[i].template_id, sorted[i].stream,
                sorted[i].seconds,
                static_cast<long long>(sorted[i].result_rows));
  }

  if (!result->failures.empty()) {
    std::printf("\n--- failure report ---\n%s",
                result->failures.ToString().c_str());
  }

  if (result->checkpoint_taken || result->recovery_ran) {
    std::printf("\n--- durability ---\n");
    if (result->checkpoint_taken) {
      std::printf("  checkpoint (post-load)  %8.3f s\n",
                  result->t_checkpoint_sec);
    }
    if (result->recovery_ran) {
      std::printf("  %s", result->recovery.ToString().c_str());
      std::printf("  recovered state: %s\n",
                  result->recovery_verified ? "byte-identical to live"
                                            : "MISMATCH");
    }
  }

  tpcds::MetricInputs inputs = result->ToMetricInputs();

  // Cold-start comparison: deep-load the post-load checkpoint onto the
  // heap (full CRC sweep + materialization) vs an O(1) mmap attach, then
  // cross-check content hashes and a sample of query answers. Any
  // divergence fails the run.
  bool attach_verified = true;
  if (attach_demo && result->checkpoint_taken) {
    tpcds::Database heap_db;
    tpcds::Stopwatch load_timer;
    tpcds::Status loaded = heap_db.LoadCheckpoint(config.checkpoint_dir);
    double t_deep_load = load_timer.ElapsedSeconds();
    tpcds::Database mmap_db;
    tpcds::Stopwatch attach_timer;
    tpcds::Status att = mmap_db.AttachCheckpoint(config.checkpoint_dir);
    double t_attach = attach_timer.ElapsedSeconds();
    if (!loaded.ok() || !att.ok()) {
      std::fprintf(stderr, "cold start failed: %s\n",
                   (!loaded.ok() ? loaded : att).ToString().c_str());
      return 1;
    }
    attach_verified = tpcds::HashDatabaseContent(mmap_db) ==
                      tpcds::HashDatabaseContent(heap_db);
    tpcds::QueryGenerator qgen(config.seed);
    for (int id : {3, 27, 55, 82, 96}) {
      const tpcds::QueryTemplate* tmpl = tpcds::FindTemplate(id);
      if (tmpl == nullptr) continue;
      tpcds::Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
      if (!sql.ok()) continue;
      tpcds::Result<tpcds::QueryResult> on_heap =
          heap_db.Query(*sql, config.planner);
      tpcds::Result<tpcds::QueryResult> on_mmap =
          mmap_db.Query(*sql, config.planner);
      if (!on_heap.ok() || !on_mmap.ok() ||
          on_heap->ToCsv() != on_mmap->ToCsv()) {
        std::fprintf(stderr, "attach verify: q%02d diverges across "
                     "backings\n", id);
        attach_verified = false;
      }
    }
    std::printf("\n--- cold start: heap load vs mmap attach ---\n");
    std::printf("  T_Load (initial, generated)  %10.3f s\n",
                result->t_load_sec);
    std::printf("  T_Load (checkpoint, deep)    %10.3f s\n", t_deep_load);
    std::printf("  T_Attach (checkpoint, mmap)  %10.3f s  (%.0fx faster "
                "than deep load)\n",
                t_attach,
                t_attach > 0.0 ? t_deep_load / t_attach : 0.0);
    std::printf("  attach state: %s\n",
                attach_verified ? "byte-identical to deep load"
                                : "MISMATCH");
    inputs.attached = true;
    inputs.t_attach_sec = t_attach;
  }

  std::printf("\n--- primary metrics (paper §5.3) ---\n%s",
              tpcds::FormatMetricReport(inputs, tco).c_str());

  if (run_power) {
    // The legacy single-user power test TPC-DS dropped (§5.3), run for
    // contrast: the geometric mean underweights the long-running queries.
    tpcds::Result<tpcds::PowerTestResult> power =
        tpcds::RunPowerTest(config, &db);
    if (!power.ok()) {
      std::fprintf(stderr, "power test failed: %s\n",
                   power.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\n--- legacy power test (dropped by TPC-DS, §5.3) ---\n"
        "  queries            %8zu (sequential, single user)\n"
        "  total              %8.2f s\n"
        "  arithmetic mean    %8.4f s\n"
        "  geometric mean     %8.4f s  <- underweights long queries\n",
        power->queries.size(), power->total_sec,
        power->arithmetic_mean_sec, power->geometric_mean_sec);
  }
  // Admission accounting: every submitted statement must have resolved
  // to exactly one disposition and the global memory pool must have
  // drained — an imbalance means the service lost a query.
  if (!result->service.Balanced() ||
      result->service.pool_bytes_in_use != 0) {
    std::fprintf(stderr, "service counters unbalanced (query lost?):\n%s",
                 result->service.ToString().c_str());
    return 1;
  }

  if (result->recovery_ran && !result->recovery_verified) return 1;
  return attach_verified ? 0 : 1;
}
