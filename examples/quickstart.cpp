// Quickstart: generate a small TPC-DS database in process, run the
// paper's two example queries (Fig. 6 / Fig. 7), and print the results.
//
//   ./examples/quickstart [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::strtod(argv[1], nullptr) : 0.01;

  // 1. Create the 24-table TPC-DS schema and load generated data.
  tpcds::Database db;
  tpcds::Status st = db.CreateTpcdsTables();
  if (st.ok()) {
    tpcds::GeneratorOptions options;
    options.scale_factor = sf;
    tpcds::Stopwatch timer;
    st = db.LoadTpcdsData(options);
    if (st.ok()) {
      std::printf("loaded %lld rows across %zu tables at SF %.3f in %.2f s\n\n",
                  static_cast<long long>(db.TotalRows()),
                  db.TableNames().size(), sf, timer.ElapsedSeconds());
    }
  }
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Instantiate the paper's example templates with bind variables.
  tpcds::QueryGenerator qgen(19620718);
  for (int id : {52, 20}) {
    const tpcds::QueryTemplate* tmpl = tpcds::FindTemplate(id);
    tpcds::Result<std::string> sql = qgen.Instantiate(*tmpl, /*stream=*/1);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s\n", sql.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s (%s, paper Fig. %d) ---\n%s\n", tmpl->name.c_str(),
                tpcds::QueryClassToString(tmpl->query_class),
                id == 52 ? 6 : 7, sql->c_str());

    // 3. Execute and display.
    tpcds::Stopwatch timer;
    tpcds::Result<tpcds::QueryResult> result = db.Query(*sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu rows in %.3f s:\n%s\n", result->rows.size(),
                timer.ElapsedSeconds(), result->ToString(10).c_str());
  }
  return 0;
}
