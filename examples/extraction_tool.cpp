// extraction_tool: runs the workload's data-mining extraction queries
// (paper §4.1: large results destined for external data-mining tools) and
// writes each result as a CSV file.
//
//   ./examples/extraction_tool [-scale SF] [-dir DIR] [-stream S]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "engine/database.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  double sf = 0.01;
  std::string dir = "extracts";
  int stream = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "-scale") {
      sf = std::strtod(next(), nullptr);
    } else if (arg == "-dir") {
      dir = next();
    } else if (arg == "-stream") {
      stream = std::atoi(next());
    } else {
      std::fprintf(stderr,
                   "usage: extraction_tool [-scale SF] [-dir DIR] "
                   "[-stream S]\n");
      return 1;
    }
  }

  tpcds::Database db;
  tpcds::Status st = db.CreateTpcdsTables();
  if (st.ok()) {
    tpcds::GeneratorOptions options;
    options.scale_factor = sf;
    std::printf("loading TPC-DS at SF %.3f ...\n", sf);
    st = db.LoadTpcdsData(options);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::filesystem::create_directories(dir);

  tpcds::QueryGenerator qgen(19620718);
  for (const tpcds::QueryTemplate& t : tpcds::AllTemplates()) {
    if (t.flavor != tpcds::QueryFlavor::kDataMining) continue;
    tpcds::Result<std::string> sql = qgen.Instantiate(t, stream);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   sql.status().ToString().c_str());
      return 1;
    }
    tpcds::Stopwatch timer;
    tpcds::Result<tpcds::QueryResult> result = db.Query(*sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::string path = dir + "/" + t.name + ".csv";
    std::ofstream out(path);
    out << result->ToCsv();
    std::printf("%s: %zu rows -> %s (%.2f s)\n", t.name.c_str(),
                result->rows.size(), path.c_str(),
                timer.ElapsedSeconds());
  }
  return 0;
}
