// dsgen_tool: a command-line clone of the official dsdgen — writes
// '|'-delimited flat files for all (or selected) TPC-DS tables.
//
//   ./examples/dsgen_tool -scale 0.01 -dir /tmp/tpcds_data \
//                         [-table store_sales] [-parallel 4 -child 2] \
//                         [-rngseed 19620718]
//
// With -parallel N and -child C the tool emits chunk C of N; the
// concatenation of all chunks is bit-identical to a serial run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "dsgen/generator.h"
#include "dsgen/parallel.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: dsgen_tool -scale SF [-dir DIR] [-table NAME] "
      "[-parallel N -child C] [-rngseed SEED]\n");
}

}  // namespace

int main(int argc, char** argv) {
  tpcds::GeneratorOptions options;
  options.scale_factor = 0.01;
  std::string dir = ".";
  std::string only_table;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "-scale") {
      options.scale_factor = std::strtod(next(), nullptr);
    } else if (arg == "-dir") {
      dir = next();
    } else if (arg == "-table") {
      only_table = next();
    } else if (arg == "-parallel") {
      options.num_chunks = std::atoi(next());
    } else if (arg == "-child") {
      options.chunk = std::atoi(next());
    } else if (arg == "-threads") {
      threads = std::atoi(next());  // in-process parallel generation
    } else if (arg == "-rngseed") {
      options.master_seed = std::strtoull(next(), nullptr, 10);
    } else {
      Usage();
      return 1;
    }
  }
  if (options.scale_factor <= 0) {
    Usage();
    return 1;
  }
  std::filesystem::create_directories(dir);

  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  tpcds::Stopwatch timer;
  for (const std::string& table : tpcds::GeneratorTableNames()) {
    if (!only_table.empty() && table != only_table) continue;
    std::string suffix =
        options.num_chunks > 1
            ? tpcds::StringPrintf("_%d_%d", options.chunk,
                                  options.num_chunks)
            : "";
    std::string path = dir + "/" + table + suffix + ".dat";
    tpcds::FlatFileWriter writer;
    tpcds::Status st = writer.Open(path);
    if (st.ok()) {
      if (threads > 1) {
        tpcds::ThreadPool pool(static_cast<size_t>(threads));
        st = tpcds::GenerateTableParallel(table, options, threads, &pool,
                                          &writer);
      } else {
        auto gen = tpcds::MakeGenerator(table, options);
        st = gen.ok() ? (*gen)->Generate(&writer) : gen.status();
      }
    }
    if (st.ok()) st = writer.Close();
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", table.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("%-24s %12llu rows %14llu bytes -> %s\n", table.c_str(),
                static_cast<unsigned long long>(writer.rows_written()),
                static_cast<unsigned long long>(writer.bytes_written()),
                path.c_str());
    total_rows += writer.rows_written();
    total_bytes += writer.bytes_written();
  }
  std::printf("\n%llu rows, %.1f MB in %.2f s (%.1f MB/s)\n",
              static_cast<unsigned long long>(total_rows),
              static_cast<double>(total_bytes) / 1e6,
              timer.ElapsedSeconds(),
              static_cast<double>(total_bytes) / 1e6 /
                  timer.ElapsedSeconds());
  return 0;
}
