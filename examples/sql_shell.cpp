// sql_shell: an interactive SQL shell over a generated TPC-DS database —
// type SELECT statements against the 24-table snowstorm schema.
//
//   ./examples/sql_shell [scale_factor]
//
// Meta commands: \tables, \d <table>, \parallel <workers>,
// \timeout <ms>, \membudget <mb>, \service <slots>, \q
// EXPLAIN <select> prints the physical operator tree with per-operator
// row counts and self times instead of the result rows.
//
// \service N routes every following statement through an in-process
// QueryService with N worker slots (admission control, docs/SERVICE.md)
// and prints the admission outcome — admitted / queued X ms / shed /
// rejected — next to each result. \service 0 goes back to direct
// execution.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "engine/database.h"
#include "service/service.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

void DescribeTable(const tpcds::Database& db, const std::string& name) {
  const tpcds::EngineTable* table = db.FindTable(name);
  if (table == nullptr) {
    std::printf("no such table: %s\n", name.c_str());
    return;
  }
  std::printf("%s (%lld rows)\n", name.c_str(),
              static_cast<long long>(table->num_rows()));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const tpcds::EngineTable::ColumnMeta& meta = table->column_meta(c);
    std::printf("  %-28s %s\n", meta.name.c_str(),
                tpcds::ColumnTypeToString(meta.type));
  }
}

}  // namespace

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::strtod(argv[1], nullptr) : 0.01;
  tpcds::Database db;
  tpcds::Status st = db.CreateTpcdsTables();
  if (st.ok()) {
    tpcds::GeneratorOptions options;
    options.scale_factor = sf;
    std::printf("loading TPC-DS at SF %.3f ...\n", sf);
    st = db.LoadTpcdsData(options);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%lld rows loaded. \\tables lists tables, \\d TABLE "
              "describes one, \\parallel N sets worker threads, "
              "\\timeout MS sets a query deadline, \\membudget MB sets a "
              "query memory budget (0 = unlimited), \\service N routes "
              "statements through a query service with N worker slots "
              "(0 = direct), \\q quits.\n",
              static_cast<long long>(db.TotalRows()));

  // Non-null while \service is on: statements go through its admission
  // control instead of straight to db.Query. The service pins a snapshot
  // and the session options current at \service time.
  std::unique_ptr<tpcds::QueryService> service;
  std::string buffer;
  std::string line;
  std::printf("tpcds> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(tpcds::Trim(line));
    if (trimmed == "\\q" || trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "\\tables") {
      for (const std::string& name : db.TableNames()) {
        std::printf("  %-24s %12lld rows\n", name.c_str(),
                    static_cast<long long>(db.FindTable(name)->num_rows()));
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    if (tpcds::StartsWith(trimmed, "\\d ")) {
      DescribeTable(db, std::string(tpcds::Trim(trimmed.substr(3))));
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    if (tpcds::StartsWith(trimmed, "\\parallel")) {
      std::string arg(tpcds::Trim(trimmed.substr(9)));
      if (arg.empty() ||
          arg.find_first_not_of("0123456789") != std::string::npos) {
        std::printf("usage: \\parallel N   (N workers; 0 = all cores)\n");
        std::printf("tpcds> ");
        std::fflush(stdout);
        continue;
      }
      int workers = std::atoi(arg.c_str());
      db.default_options().parallelism = workers;
      std::printf("parallelism = %d%s\n", workers,
                  workers == 0 ? " (all hardware cores)" : "");
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    if (tpcds::StartsWith(trimmed, "\\timeout")) {
      std::string arg(tpcds::Trim(trimmed.substr(8)));
      char* end = nullptr;
      double ms = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == arg.c_str() || ms < 0.0) {
        std::printf("usage: \\timeout MS   (wall-clock deadline per query; "
                    "0 = unlimited)\n");
      } else {
        db.default_options().timeout_ms = ms;
        std::printf(ms == 0.0 ? "timeout unlimited\n" : "timeout = %.3f ms\n",
                    ms);
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    if (tpcds::StartsWith(trimmed, "\\service")) {
      std::string arg(tpcds::Trim(trimmed.substr(8)));
      if (arg.empty() ||
          arg.find_first_not_of("0123456789") != std::string::npos) {
        std::printf("usage: \\service N   (worker slots; 0 = direct "
                    "execution, no service)\n");
      } else if (int slots = std::atoi(arg.c_str()); slots == 0) {
        service.reset();
        std::printf("service off: statements run directly\n");
      } else {
        tpcds::ServiceConfig svc;
        svc.worker_slots = slots;
        svc.planner = db.default_options();
        svc.default_limits.timeout_ms = db.default_options().timeout_ms;
        svc.default_limits.memory_budget_bytes =
            db.default_options().memory_budget_bytes;
        service = std::make_unique<tpcds::QueryService>(svc, db);
        std::printf("service on: %d worker slot%s, queue depth %zu "
                    "(snapshot + current options pinned; \\service 0 to "
                    "go direct)\n",
                    slots, slots == 1 ? "" : "s", svc.max_queue_depth);
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    if (tpcds::StartsWith(trimmed, "\\membudget")) {
      std::string arg(tpcds::Trim(trimmed.substr(10)));
      char* end = nullptr;
      double mb = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == arg.c_str() || mb < 0.0) {
        std::printf("usage: \\membudget MB   (materialised-bytes budget per "
                    "query; 0 = unlimited)\n");
      } else {
        db.default_options().memory_budget_bytes =
            static_cast<int64_t>(mb * 1024.0 * 1024.0);
        std::printf(mb == 0.0 ? "memory budget unlimited\n"
                              : "memory budget = %.1f MB\n",
                    mb);
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
    // Execute once the statement is terminated by ';'.
    if (trimmed.empty() || trimmed.back() != ';') {
      std::printf("   ...> ");
      std::fflush(stdout);
      continue;
    }
    // EXPLAIN prefix: print the plan trace instead of results.
    std::string statement(tpcds::Trim(buffer));
    if (tpcds::EqualsIgnoreCase(statement.substr(0, 8), "explain ")) {
      tpcds::Result<std::string> plan = db.Explain(statement.substr(8));
      buffer.clear();
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    tpcds::Stopwatch timer;
    if (service != nullptr) {
      tpcds::QueryOutcome out = service->OpenSession().Execute(buffer);
      buffer.clear();
      if (out.waited_in_queue) {
        std::printf("[service: queued %.1f ms, then %s]\n", out.queue_ms,
                    tpcds::QueryDispositionToString(out.disposition));
      } else {
        std::printf("[service: %s]\n",
                    tpcds::QueryDispositionToString(out.disposition));
      }
      if (out.disposition != tpcds::QueryDisposition::kCompleted) {
        std::printf("error: %s\n", out.status.ToString().c_str());
      } else {
        std::printf("%s(%zu rows, %.3f s total, %.3f s exec)\n",
                    out.result.ToString(40).c_str(), out.result.rows.size(),
                    timer.ElapsedSeconds(), out.exec_ms / 1000.0);
      }
      std::printf("tpcds> ");
      std::fflush(stdout);
      continue;
    }
    tpcds::Result<tpcds::QueryResult> result = db.Query(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
    } else {
      std::printf("%s(%zu rows, %.3f s)\n",
                  result->ToString(40).c_str(), result->rows.size(),
                  timer.ElapsedSeconds());
    }
    std::printf("tpcds> ");
    std::fflush(stdout);
  }
  return 0;
}
