// qgen_tool: a command-line clone of the official dsqgen — instantiates
// the 99 query templates into executable SQL streams.
//
//   ./examples/qgen_tool -streams 3            # all 99 per stream
//   ./examples/qgen_tool -template 52 -stream 1
//   ./examples/qgen_tool -streams 2 -output /tmp/queries

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "qgen/qgen.h"
#include "templates/templates.h"

int main(int argc, char** argv) {
  int streams = 1;
  int only_template = 0;
  int only_stream = -1;
  uint64_t seed = 19620718;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "-streams") {
      streams = std::atoi(next());
    } else if (arg == "-template") {
      only_template = std::atoi(next());
    } else if (arg == "-stream") {
      only_stream = std::atoi(next());
    } else if (arg == "-rngseed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "-output") {
      output = next();
    } else {
      std::fprintf(stderr,
                   "usage: qgen_tool [-streams N] [-template ID] "
                   "[-stream S] [-rngseed SEED] [-output DIR]\n");
      return 1;
    }
  }

  tpcds::QueryGenerator qgen(seed);

  if (only_template > 0) {
    const tpcds::QueryTemplate* t = tpcds::FindTemplate(only_template);
    if (t == nullptr) {
      std::fprintf(stderr, "no template %d\n", only_template);
      return 1;
    }
    int stream = only_stream < 0 ? 1 : only_stream;
    tpcds::Result<std::string> sql = qgen.Instantiate(*t, stream);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s\n", sql.status().ToString().c_str());
      return 1;
    }
    std::printf("-- %s  class=%s flavor=%s stream=%d\n%s\n",
                t->name.c_str(),
                tpcds::QueryClassToString(t->query_class),
                tpcds::QueryFlavorToString(t->flavor), stream,
                sql->c_str());
    return 0;
  }

  const std::vector<tpcds::QueryTemplate>& templates =
      tpcds::AllTemplates();
  for (int s = 1; s <= streams; ++s) {
    std::ofstream file;
    if (!output.empty()) {
      std::filesystem::create_directories(output);
      file.open(output + "/stream_" + std::to_string(s) + ".sql");
    }
    std::ostream& out = output.empty()
                            ? static_cast<std::ostream&>(std::cout)
                            : file;
    std::vector<int> order =
        qgen.StreamPermutation(s, templates);  // family-aware order
    for (int idx : order) {
      const tpcds::QueryTemplate& t = templates[static_cast<size_t>(idx)];
      tpcds::Result<std::string> sql = qgen.Instantiate(t, s);
      if (!sql.ok()) {
        std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                     sql.status().ToString().c_str());
        return 1;
      }
      out << "-- " << t.name << " stream " << s << " ("
          << tpcds::QueryClassToString(t.query_class) << ")\n"
          << *sql << ";\n\n";
    }
    if (!output.empty()) {
      std::printf("wrote %s/stream_%d.sql (%zu queries)\n", output.c_str(),
                  s, order.size());
    }
  }
  return 0;
}
