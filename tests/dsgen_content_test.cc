// Content audits of the dimension generators: field-level sanity of the
// business dimensions (addresses, hierarchies, date windows, domain
// scaling) that the row-count and integrity tests don't inspect.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "dist/domains.h"
#include "dsgen/generator.h"
#include "dsgen/keys.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

Result<std::vector<std::vector<std::string>>> GenerateAll(
    const std::string& table, double sf) {
  GeneratorOptions options;
  options.scale_factor = sf;
  TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<TableGenerator> gen,
                         MakeGenerator(table, options));
  MemoryRowSink sink;
  TPCDS_RETURN_NOT_OK(gen->Generate(&sink));
  return sink.rows();
}

int64_t ToInt(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

TEST(DsgenContentTest, CustomerAddressFields) {
  auto rows = GenerateAll("customer_address", 0.01);
  ASSERT_TRUE(rows.ok());
  std::set<std::string> states;
  std::set<std::string> cities;
  for (const auto& row : *rows) {
    ASSERT_EQ(row.size(), 13u);
    EXPECT_EQ(row[1].size(), 16u);          // ca_address_id business key
    EXPECT_GE(ToInt(row[2]), 1);            // street number
    EXPECT_LE(ToInt(row[2]), 1000);
    EXPECT_FALSE(row[3].empty());           // street name
    states.insert(row[8]);
    EXPECT_EQ(row[8].size(), 2u);           // state code
    EXPECT_EQ(row[9].size(), 5u);           // zip
    cities.insert(row[6]);
    EXPECT_EQ(row[10], "United States");
  }
  EXPECT_GT(states.size(), 20u);  // population-weighted but broad
  EXPECT_GT(cities.size(), 50u);
}

TEST(DsgenContentTest, StoreDomainScaledCounties) {
  // Paper §3.1: the county domain is scaled down for small tables. At a
  // dev scale with a handful of stores, distinct counties stay below the
  // embedded domain size and within the scaled bound.
  auto rows = GenerateAll("store", 1.0);  // 12 stores (official SF-1)
  ASSERT_TRUE(rows.ok());
  std::set<std::string> counties;
  for (const auto& row : *rows) {
    ASSERT_EQ(row.size(), 29u);
    counties.insert(row[23]);
    // Tax percentage within 0..11%.
    EXPECT_GE(std::strtod(row[28].c_str(), nullptr), 0.0);
    EXPECT_LE(std::strtod(row[28].c_str(), nullptr), 0.11 * 100);
  }
  EXPECT_LE(counties.size(), 10u);  // domain clamp (min 10 counties)
}

TEST(DsgenContentTest, PromotionWindowsInsideSalesEra) {
  auto rows = GenerateAll("promotion", 0.05);
  ASSERT_TRUE(rows.ok());
  int64_t begin = DateToSk(ScalingModel::SalesBeginDate());
  for (const auto& row : *rows) {
    ASSERT_EQ(row.size(), 19u);
    int64_t start = ToInt(row[2]);
    int64_t end = ToInt(row[3]);
    EXPECT_GE(start, begin);
    EXPECT_GT(end, start);
    EXPECT_LE(end - start, 90);
    // Channel flags are Y/N.
    for (int c = 8; c <= 15; ++c) {
      EXPECT_TRUE(row[static_cast<size_t>(c)] == "Y" ||
                  row[static_cast<size_t>(c)] == "N");
    }
  }
}

TEST(DsgenContentTest, ItemPricingInvariant) {
  auto rows = GenerateAll("item", 0.05);
  ASSERT_TRUE(rows.ok());
  for (const auto& row : *rows) {
    double price = std::strtod(row[5].c_str(), nullptr);
    double wholesale = std::strtod(row[6].c_str(), nullptr);
    EXPECT_GT(price, 0.0);
    EXPECT_LE(wholesale, price);  // wholesale = price x [0.25, 0.90]
    EXPECT_GE(wholesale, price * 0.2);
    // Brand id encodes the hierarchy position: category x class x brand.
    int64_t brand_id = ToInt(row[7]);
    int64_t category_id = ToInt(row[11]);
    EXPECT_EQ(brand_id / 100000, category_id);
    // Manager id 1..100 (q52's substitution domain).
    EXPECT_GE(ToInt(row[20]), 1);
    EXPECT_LE(ToInt(row[20]), 100);
  }
}

TEST(DsgenContentTest, IncomeBandsTileTheRange) {
  auto rows = GenerateAll("income_band", 1.0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 20u);
  int64_t prev_upper = -1;
  for (const auto& row : *rows) {
    int64_t lower = ToInt(row[1]);
    int64_t upper = ToInt(row[2]);
    EXPECT_LT(lower, upper);
    EXPECT_EQ(lower, prev_upper + 1);
    prev_upper = upper;
  }
  EXPECT_EQ(prev_upper, 200000);
}

TEST(DsgenContentTest, HouseholdDemographicsCrossProduct) {
  auto rows = GenerateAll("household_demographics", 1.0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 7200u);
  std::set<std::vector<std::string>> combos;
  for (const auto& row : *rows) {
    // income band within 1..20, deps 0..9, vehicles 0..5.
    EXPECT_GE(ToInt(row[1]), 1);
    EXPECT_LE(ToInt(row[1]), 20);
    EXPECT_LE(ToInt(row[3]), 9);
    EXPECT_LE(ToInt(row[4]), 5);
    combos.insert({row[1], row[2], row[3], row[4]});
  }
  EXPECT_EQ(combos.size(), 7200u);  // a true cross product, no repeats
}

TEST(DsgenContentTest, WebSiteAndCallCenterRevisions) {
  for (const char* table : {"web_site", "call_center", "web_page"}) {
    auto rows = GenerateAll(table, 1.0);
    ASSERT_TRUE(rows.ok()) << table;
    // Columns 1..3 are business key, rec_start, rec_end on all three.
    std::set<std::string> open_keys;
    for (const auto& row : *rows) {
      EXPECT_FALSE(row[2].empty()) << table;  // rec_start always set
      if (row[3].empty()) {
        EXPECT_TRUE(open_keys.insert(row[1]).second)
            << table << ": two open revisions for " << row[1];
      } else {
        EXPECT_LT(row[2], row[3]) << table;  // ISO dates compare as text
      }
    }
    EXPECT_GT(open_keys.size(), 0u) << table;
  }
}

TEST(DsgenContentTest, CatalogPagesPaginateCatalogs) {
  auto rows = GenerateAll("catalog_page", 0.05);
  ASSERT_TRUE(rows.ok());
  int64_t max_page = 0;
  for (const auto& row : *rows) {
    ASSERT_EQ(row.size(), 9u);
    EXPECT_GE(ToInt(row[5]), 1);  // catalog number
    EXPECT_GE(ToInt(row[6]), 1);  // page number within catalog
    max_page = std::max(max_page, ToInt(row[6]));
  }
  EXPECT_LE(max_page, 108);  // fixed page budget per catalog
}

}  // namespace
}  // namespace tpcds
