// The comparability property as a test (paper §3.2, Fig. 4): query
// substitutions drawn inside one comparability zone qualify a
// near-constant number of rows, while unconstrained substitutions swing
// with the seasonal step. Also covers CSV extraction output.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/zones.h"
#include "engine/database.h"
#include "qgen/qgen.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

class ComparabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.005;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  /// Coefficient of variation of qualifying-row counts across
  /// substitutions of a 30-day date-range query.
  static double MeasureCv(const std::string& define_line, int runs) {
    QueryGenerator qgen(19620718);
    QueryTemplate t;
    t.id = 901;
    t.name = "cmp";
    t.text = define_line +
             "\nSELECT COUNT(*) FROM store_sales, date_dim "
             "WHERE ss_sold_date_sk = d_date_sk "
             "  AND d_date BETWEEN CAST('[D]' AS DATE) "
             "                 AND (CAST('[D]' AS DATE) + 30)";
    std::vector<double> counts;
    for (int s = 0; s < runs; ++s) {
      Result<std::string> sql = qgen.Instantiate(t, s);
      EXPECT_TRUE(sql.ok());
      Result<QueryResult> r = db_->Query(*sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      counts.push_back(static_cast<double>(r->rows[0][0].AsInt()));
    }
    double mean = 0;
    for (double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0;
    for (double c : counts) var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size());
    return mean > 0 ? std::sqrt(var) / mean : 0.0;
  }

  static Database* db_;
};

Database* ComparabilityTest::db_ = nullptr;

TEST_F(ComparabilityTest, InZoneWindowsHaveIdenticalExpectedSelectivity) {
  // The design property, deterministically: the *expected* qualifying-row
  // mass of a 30-day window is the sum of its days' likelihood weights.
  // Every window that stays inside one zone has exactly the same weight
  // sum (uniform-within-zone); windows straddling a zone boundary do not.
  SalesDateDistribution dist(Date::FromYmd(1998, 1, 2),
                             Date::FromYmd(2003, 1, 2));
  auto window_weight = [&](Date start) {
    double total = 0;
    for (int d = 0; d <= 30; ++d) {
      total += dist.WeightOfDate(start.AddDays(d));
    }
    return total;
  };
  // All 30-day windows inside zone 1 of 1999 (Jan 1 .. Jul 31-30d).
  double reference = window_weight(Date::FromYmd(1999, 1, 1));
  for (int offset = 0; offset <= 181; ++offset) {
    Date start = Date::FromYmd(1999, 1, 1).AddDays(offset);
    ASSERT_NEAR(window_weight(start), reference, 1e-9)
        << start.ToString();
  }
  // The qgen substitution function always lands in such windows.
  QueryGenerator qgen(19620718);
  for (int s = 0; s < 50; ++s) {
    QueryTemplate t;
    t.id = 903;
    t.name = "zone-pick";
    t.text = "define D = date(30, 2);\n[D]";
    Result<std::string> sql = qgen.Instantiate(t, s);
    ASSERT_TRUE(sql.ok());
    Result<Date> start = Date::Parse(std::string(Trim(*sql)));
    ASSERT_TRUE(start.ok());
    double zone2_reference =
        window_weight(Date::FromYmd(start->year(), 8, 1));
    EXPECT_NEAR(window_weight(*start), zone2_reference, 1e-9);
  }
  // A boundary-straddling window has a different weight sum.
  double straddle = window_weight(Date::FromYmd(1999, 10, 20));  // 2 -> 3
  EXPECT_GT(std::abs(straddle - window_weight(Date::FromYmd(1999, 9, 1))),
            0.5);
}

TEST_F(ComparabilityTest, EndToEndInZoneVarianceIsBounded) {
  // End to end (generator + engine): in-zone substitution variance stays
  // within the basket-clustering noise band. Tight statistical contrasts
  // live in bench_fig4_comparability where sample sizes are larger.
  double zone1_cv = MeasureCv("define D = date(30, 1);", 20);
  EXPECT_GT(zone1_cv, 0.0);
  EXPECT_LT(zone1_cv, 0.6);
}

TEST_F(ComparabilityTest, CsvExtractionFormat) {
  Result<QueryResult> r = db_->Query(
      "SELECT i_item_id, i_category, i_current_price FROM item "
      "ORDER BY i_item_sk LIMIT 3");
  ASSERT_TRUE(r.ok());
  std::string csv = r->ToCsv();
  std::vector<std::string> lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "i_item_id,i_category,i_current_price");
  EXPECT_EQ(Split(lines[1], ',').size(), 3u);
  // Quoting: a value with a comma round-trips quoted.
  QueryResult fake;
  fake.columns = {"c"};
  fake.rows.push_back({Value::Str("a,b\"x\"")});
  EXPECT_EQ(fake.ToCsv(), "c\n\"a,b\"\"x\"\"\"\n");
  // NULL renders empty.
  QueryResult with_null;
  with_null.columns = {"a", "b"};
  with_null.rows.push_back({Value::Null(), Value::Int(1)});
  EXPECT_EQ(with_null.ToCsv(), "a,b\n,1\n");
}

}  // namespace
}  // namespace tpcds
