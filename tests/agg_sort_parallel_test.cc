// Parallel aggregation / sort / Top-K tests: the partitioned-hash and
// run-merge paths must be byte-identical to serial execution at any
// parallelism, Top-K fusion must replace sort+limit (and say so in
// EXPLAIN / ExecStats) while using less memory than a full sort, and the
// governor must still trip deadlines and budgets inside all three.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "engine/governor.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Builds a table of `rows` rows — enough to span many 1024-row morsels
/// and several 16K-row sort runs.
void BuildWideTable(Database* db, const std::string& name, int64_t rows) {
  ASSERT_TRUE(db->CreateTable(name, {{"k", ColumnType::kInteger},
                                     {"grp", ColumnType::kInteger},
                                     {"txt", ColumnType::kVarchar}})
                  .ok());
  EngineTable* t = db->FindTable(name);
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(t->AppendRowStrings({std::to_string(i),
                                     std::to_string(i % 97),
                                     "filler-" + std::to_string(i % 13)})
                    .ok());
  }
}

std::string Csv(const QueryResult& r) { return r.ToCsv(); }

TEST(TopKPushdownTest, MatchesSortPlusLimitAndReportsCounters) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  const std::string sql =
      "SELECT k, grp, txt FROM t ORDER BY grp, k DESC LIMIT 10";

  PlannerOptions options;
  options.topk_pushdown = false;
  Result<QueryResult> full_sort = db.Query(sql, options);
  ASSERT_TRUE(full_sort.ok()) << full_sort.status().ToString();
  ASSERT_EQ(full_sort->rows.size(), 10u);

  for (int workers : {1, 4}) {
    PlannerOptions topk;
    topk.topk_pushdown = true;
    topk.parallelism = workers;
    ExecStats stats;
    Result<QueryResult> fused = db.Query(sql, topk, &stats);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    EXPECT_EQ(Csv(*fused), Csv(*full_sort)) << "parallelism " << workers;
    EXPECT_EQ(stats.topk_seen, 50000) << "parallelism " << workers;
    EXPECT_EQ(stats.topk_kept, 10) << "parallelism " << workers;
    // The fused operator replaces the sort+limit pair in the plan.
    bool saw_topk_op = false;
    bool saw_sort_op = false;
    for (const auto& op : stats.operators) {
      if (op.label.find("top-k") != std::string::npos) {
        saw_topk_op = true;
        EXPECT_EQ(op.topk_seen, 50000);
        EXPECT_EQ(op.topk_kept, 10);
      }
      if (op.label.find("sort") != std::string::npos) saw_sort_op = true;
    }
    EXPECT_TRUE(saw_topk_op) << "parallelism " << workers;
    EXPECT_FALSE(saw_sort_op) << "parallelism " << workers;
  }
}

TEST(TopKPushdownTest, ExplainShowsFusedOperatorWithCounters) {
  Database db;
  BuildWideTable(&db, "t", 5000);
  Result<std::string> plan =
      db.Explain("SELECT k, grp FROM t ORDER BY grp DESC LIMIT 7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("top-k"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("topk: kept 7 of 5000 rows"), std::string::npos)
      << *plan;
}

TEST(TopKPushdownTest, UsesLessMemoryThanFullSortUnderSameBudget) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  const std::string proj_sql = "SELECT k, grp, txt FROM t";
  const std::string sort_sql = proj_sql + " ORDER BY grp, k LIMIT 5";
  GovernorLimits loose;
  loose.memory_budget_bytes = 1LL << 40;

  // Peak bytes of the projection alone, then of the governed sort/Top-K
  // variants on top of it. The full sort materialises a key per input
  // row; Top-K charges only the keys its bounded heaps retain.
  int64_t peak_proj = 0;
  {
    QueryGovernor gov(loose);
    PlannerOptions options;
    ASSERT_TRUE(db.Query(proj_sql, options, nullptr, &gov).ok());
    peak_proj = gov.peak_bytes();
    ASSERT_GT(peak_proj, 0);
  }
  int64_t peak_full = 0;
  {
    QueryGovernor gov(loose);
    PlannerOptions options;
    options.topk_pushdown = false;
    ASSERT_TRUE(db.Query(sort_sql, options, nullptr, &gov).ok());
    peak_full = gov.peak_bytes();
  }
  int64_t peak_topk = 0;
  {
    QueryGovernor gov(loose);
    PlannerOptions options;
    options.topk_pushdown = true;
    ASSERT_TRUE(db.Query(sort_sql, options, nullptr, &gov).ok());
    peak_topk = gov.peak_bytes();
  }
  EXPECT_LT(peak_topk, peak_full);

  // A budget that admits the Top-K keys but not the full sort's keys:
  // the same query then fails as a sort and succeeds as a Top-K.
  int64_t budget = peak_topk + (peak_full - peak_topk) / 2;
  {
    PlannerOptions options;
    options.topk_pushdown = false;
    options.memory_budget_bytes = budget;
    Result<QueryResult> r = db.Query(sort_sql, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
  }
  {
    PlannerOptions options;
    options.topk_pushdown = true;
    options.memory_budget_bytes = budget;
    Result<QueryResult> r = db.Query(sort_sql, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(ParallelAggregateTest, RollupIsByteIdenticalAcrossParallelismAndRight) {
  Database db;
  BuildWideTable(&db, "t", 20000);
  const std::string sql =
      "SELECT grp, txt, COUNT(*), SUM(k) FROM t "
      "GROUP BY ROLLUP (grp, txt) ORDER BY 1, 2";

  PlannerOptions serial;
  serial.parallelism = 1;
  Result<QueryResult> reference = db.Query(sql, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Brute-force the three ROLLUP levels: (grp, txt), (grp), ().
  std::map<std::pair<int64_t, std::string>, std::pair<int64_t, int64_t>>
      leaf;
  std::map<int64_t, std::pair<int64_t, int64_t>> by_grp;
  std::pair<int64_t, int64_t> grand{0, 0};
  for (int64_t i = 0; i < 20000; ++i) {
    std::string txt = "filler-" + std::to_string(i % 13);
    auto bump = [&](std::pair<int64_t, int64_t>* cell) {
      cell->first += 1;
      cell->second += i;
    };
    bump(&leaf[{i % 97, txt}]);
    bump(&by_grp[i % 97]);
    bump(&grand);
  }
  ASSERT_EQ(reference->rows.size(), leaf.size() + by_grp.size() + 1);
  for (const auto& row : reference->rows) {
    std::pair<int64_t, int64_t> expect;
    if (row[0].is_null()) {
      expect = grand;
    } else if (row[1].is_null()) {
      expect = by_grp.at(row[0].AsInt());
    } else {
      expect = leaf.at({row[0].AsInt(), row[1].AsString()});
    }
    EXPECT_EQ(row[2].AsInt(), expect.first);
    EXPECT_EQ(row[3].AsInt(), expect.second);
  }

  for (int workers : {2, 4, 8}) {
    PlannerOptions options;
    options.parallelism = workers;
    Result<QueryResult> parallel = db.Query(sql, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(Csv(*parallel), Csv(*reference)) << "parallelism " << workers;
  }
}

TEST(ParallelAggregateTest, DistinctAndSetOpsByteIdenticalAcrossParallelism) {
  Database db;
  BuildWideTable(&db, "t", 30000);
  BuildWideTable(&db, "u", 7000);
  const std::string sqls[] = {
      "SELECT DISTINCT grp, txt FROM t",
      "SELECT grp FROM t INTERSECT SELECT grp FROM u",
      "SELECT grp FROM t EXCEPT SELECT grp FROM u WHERE grp < 40",
      "SELECT grp, txt FROM t UNION SELECT grp, txt FROM u",
  };
  for (const std::string& sql : sqls) {
    PlannerOptions serial;
    serial.parallelism = 1;
    Result<QueryResult> reference = db.Query(sql, serial);
    ASSERT_TRUE(reference.ok()) << sql << ": " << reference.status().ToString();
    for (int workers : {4, 8}) {
      PlannerOptions options;
      options.parallelism = workers;
      Result<QueryResult> parallel = db.Query(sql, options);
      ASSERT_TRUE(parallel.ok()) << sql << ": "
                                 << parallel.status().ToString();
      EXPECT_EQ(Csv(*parallel), Csv(*reference))
          << sql << " at parallelism " << workers;
    }
  }
}

TEST(ParallelGovernanceTest, RowBudgetTripsInsideParallelAggregateBuild) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  // 50000 scan rows fit the budget; the aggregate's new-group charges
  // (97 groups re-seen in each of ~49 morsel partials) push it over.
  for (int workers : {1, 4}) {
    PlannerOptions options;
    options.parallelism = workers;
    options.row_budget = 51000;
    Result<QueryResult> r =
        db.Query("SELECT grp, COUNT(*) FROM t GROUP BY grp", options);
    ASSERT_FALSE(r.ok()) << "parallelism " << workers;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << workers;
    EXPECT_NE(r.status().message().find("row budget"), std::string::npos);
  }
}

TEST(ParallelGovernanceTest, MemoryBudgetTripsInsideParallelAggregateBuild) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  // Measure the scan-plus-one-group footprint, then grant barely more:
  // the 50000-group GROUP BY k must exhaust the margin building its
  // partitioned hash tables.
  GovernorLimits loose;
  loose.memory_budget_bytes = 1LL << 40;
  QueryGovernor gov(loose);
  PlannerOptions plain;
  ASSERT_TRUE(db.Query("SELECT MAX(k) FROM t", plain, nullptr, &gov).ok());
  for (int workers : {1, 4}) {
    PlannerOptions options;
    options.parallelism = workers;
    options.memory_budget_bytes = gov.peak_bytes() + 1024;
    Result<QueryResult> r =
        db.Query("SELECT k, COUNT(*) FROM t GROUP BY k", options);
    ASSERT_FALSE(r.ok()) << "parallelism " << workers;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << workers;
    EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
  }
}

TEST(ParallelGovernanceTest, DeadlineTripsInsideSortAndTopK) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  for (bool topk : {false, true}) {
    for (int workers : {1, 4}) {
      PlannerOptions options;
      options.parallelism = workers;
      options.topk_pushdown = topk;
      options.timeout_ms = 1e-6;  // expires before the first morsel
      Result<QueryResult> r =
          db.Query("SELECT k, grp, txt FROM t ORDER BY grp, k LIMIT 20",
                   options);
      ASSERT_FALSE(r.ok()) << "parallelism " << workers << " topk " << topk;
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
          << "parallelism " << workers << " topk " << topk;
    }
  }
}

TEST(ParallelGovernanceTest, MemoryBudgetTripsInsideParallelSort) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  // Grant the projection's footprint plus a sliver: the sort's key
  // materialisation (one key vector per row) must trip the budget.
  GovernorLimits loose;
  loose.memory_budget_bytes = 1LL << 40;
  QueryGovernor gov(loose);
  PlannerOptions plain;
  ASSERT_TRUE(
      db.Query("SELECT k, grp, txt FROM t", plain, nullptr, &gov).ok());
  for (int workers : {1, 4}) {
    PlannerOptions options;
    options.parallelism = workers;
    options.memory_budget_bytes = gov.peak_bytes() + 1024;
    Result<QueryResult> r =
        db.Query("SELECT k, grp, txt FROM t ORDER BY grp, k DESC", options);
    ASSERT_FALSE(r.ok()) << "parallelism " << workers;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << workers;
    EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
  }
}

TEST(ParallelGovernanceTest, GovernedUnderLimitRunsStayByteIdentical) {
  Database db;
  BuildWideTable(&db, "t", 30000);
  const std::string sqls[] = {
      "SELECT grp, COUNT(*), SUM(k), MIN(txt) FROM t GROUP BY grp "
      "ORDER BY 2 DESC, 1",
      "SELECT grp, txt, COUNT(*) FROM t GROUP BY ROLLUP (grp, txt) "
      "ORDER BY 1, 2 LIMIT 50",
  };
  for (const std::string& sql : sqls) {
    PlannerOptions serial;
    serial.parallelism = 1;
    Result<QueryResult> reference = db.Query(sql, serial);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (int workers : {1, 4}) {
      PlannerOptions options;
      options.parallelism = workers;
      options.timeout_ms = 60000.0;
      options.memory_budget_bytes = 1LL << 30;
      options.row_budget = 1LL << 30;
      Result<QueryResult> governed = db.Query(sql, options);
      ASSERT_TRUE(governed.ok()) << governed.status().ToString();
      EXPECT_EQ(Csv(*governed), Csv(*reference))
          << sql << " at parallelism " << workers;
    }
  }
}

}  // namespace
}  // namespace tpcds
