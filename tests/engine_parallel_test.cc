// Intra-query parallelism tests. The executor promises byte-identical
// results at every parallelism level (fixed-size morsels, partial results
// merged in morsel order), so every test here is a determinism check:
// run the same statement at parallelism 1 / 2 / 8 and require identical
// CSV output. Covers each physical operator on a synthetic database large
// enough to span many morsels, then a sample of the 99 TPC-DS templates
// against generated data.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Runs `sql` at each parallelism level and requires identical CSV output;
/// returns the serial result for content assertions.
QueryResult RunAtAllLevels(Database* db, const std::string& sql) {
  PlannerOptions options = db->default_options();
  options.parallelism = 1;
  Result<QueryResult> serial = db->Query(sql, options, nullptr);
  EXPECT_TRUE(serial.ok()) << sql << "\n" << serial.status().ToString();
  if (!serial.ok()) return QueryResult();
  std::string reference = serial->ToCsv();
  for (int workers : {2, 8}) {
    options.parallelism = workers;
    Result<QueryResult> parallel = db->Query(sql, options, nullptr);
    EXPECT_TRUE(parallel.ok()) << sql << "\n" << parallel.status().ToString();
    if (!parallel.ok()) continue;
    EXPECT_EQ(parallel->ToCsv(), reference)
        << sql << "\nat parallelism " << workers;
  }
  return *std::move(serial);
}

/// Synthetic star: one fact table spanning several 1024-row morsels and
/// two small dimensions. All values are deterministic functions of the
/// row number, with NULLs sprinkled into keys and measures.
class ParallelExecTest : public ::testing::Test {
 protected:
  static constexpr int kFactRows = 5000;

  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTable("fact", {{"f_id", ColumnType::kIdentifier},
                                          {"f_dim", ColumnType::kInteger},
                                          {"f_grp", ColumnType::kInteger},
                                          {"f_val", ColumnType::kInteger},
                                          {"f_price", ColumnType::kDecimal}})
                    .ok());
    ASSERT_TRUE(db_->CreateTable("dim", {{"d_id", ColumnType::kInteger},
                                         {"d_band", ColumnType::kInteger},
                                         {"d_name", ColumnType::kVarchar}})
                    .ok());
    for (int i = 0; i < kFactRows; ++i) {
      std::vector<std::string> fields(5);
      fields[0] = std::to_string(i);
      if (i % 13 != 0) fields[1] = std::to_string(i % 37);
      if (i % 11 != 0) fields[2] = std::to_string(i % 5);
      fields[3] = std::to_string((i * 7) % 101);
      fields[4] = StringPrintf("%d.%02d", (i * 3) % 500, i % 100);
      ASSERT_TRUE(db_->FindTable("fact")->AppendRowStrings(fields).ok());
    }
    for (int d = 0; d < 37; ++d) {
      std::vector<std::string> fields(3);
      fields[0] = std::to_string(d);
      fields[1] = std::to_string(d % 4);
      fields[2] = "name_" + std::to_string(d);
      ASSERT_TRUE(db_->FindTable("dim")->AppendRowStrings(fields).ok());
    }
  }

  static Database* db_;
};

Database* ParallelExecTest::db_ = nullptr;

TEST_F(ParallelExecTest, ScanWithPushedFilters) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT f_id, f_val FROM fact WHERE f_val > 50 AND f_grp = 2 "
           "ORDER BY f_id");
  ASSERT_FALSE(r.rows.empty());
  // Output order equals table order even though morsels filter in parallel.
  EXPECT_EQ(r.rows[0][0].AsInt(), 12);  // first i with 7i%101>50, i%5==2
}

TEST_F(ParallelExecTest, FilterKeepsTableOrderWithoutSort) {
  QueryResult r =
      RunAtAllLevels(db_, "SELECT f_id FROM fact WHERE f_val = 3");
  ASSERT_GT(r.rows.size(), 1u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LT(r.rows[i - 1][0].AsInt(), r.rows[i][0].AsInt());
  }
}

TEST_F(ParallelExecTest, HashJoinInner) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT COUNT(*), SUM(f_val + d_band) FROM fact, dim "
           "WHERE f_dim = d_id");
  // NULL f_dim rows (every 13th) never join.
  EXPECT_EQ(r.rows[0][0].AsInt(), kFactRows - (kFactRows + 12) / 13);
}

TEST_F(ParallelExecTest, HashJoinLeftOuterPadsUnmatched) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT COUNT(*), COUNT(d_name) FROM fact LEFT JOIN dim "
           "ON f_dim = d_id");
  EXPECT_EQ(r.rows[0][0].AsInt(), kFactRows);  // unmatched rows padded
  EXPECT_EQ(r.rows[0][1].AsInt(), kFactRows - (kFactRows + 12) / 13);
}

TEST_F(ParallelExecTest, NestedLoopJoinWithResidualOnly) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT COUNT(*) FROM fact, dim WHERE f_dim < d_id AND d_id < 3");
  ASSERT_FALSE(r.rows.empty());
  EXPECT_GT(r.rows[0][0].AsInt(), 0);
}

TEST_F(ParallelExecTest, AggregateGroupByWithNullGroupAndDecimalSum) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT f_grp, COUNT(*), SUM(f_price), MIN(f_val), MAX(f_val) "
           "FROM fact GROUP BY f_grp ORDER BY f_grp");
  EXPECT_EQ(r.rows.size(), 6u);  // groups 0..4 plus the NULL group
}

TEST_F(ParallelExecTest, AggregateDistinctMergesAcrossMorsels) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT COUNT(DISTINCT f_dim), COUNT(DISTINCT f_val) FROM fact");
  EXPECT_EQ(r.rows[0][0].AsInt(), 37);
  EXPECT_EQ(r.rows[0][1].AsInt(), 101);
}

TEST_F(ParallelExecTest, AggregateRollup) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT f_grp, f_dim, SUM(f_val) FROM fact "
           "WHERE f_dim < 3 GROUP BY ROLLUP (f_grp, f_dim) "
           "ORDER BY f_grp, f_dim");
  ASSERT_FALSE(r.rows.empty());
}

TEST_F(ParallelExecTest, AggregateOverEmptyInputYieldsOneRow) {
  QueryResult r = RunAtAllLevels(
      db_, "SELECT COUNT(*), SUM(f_val) FROM fact WHERE f_val > 1000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ParallelExecTest, SortWithDuplicateKeysIsStable) {
  RunAtAllLevels(db_,
                 "SELECT f_grp, f_id FROM fact ORDER BY f_grp DESC LIMIT 64");
}

TEST_F(ParallelExecTest, DistinctAndSetOps) {
  RunAtAllLevels(db_, "SELECT DISTINCT f_grp, f_dim FROM fact "
                      "ORDER BY f_grp, f_dim");
  RunAtAllLevels(db_,
                 "SELECT f_dim FROM fact WHERE f_grp = 1 UNION "
                 "SELECT f_dim FROM fact WHERE f_grp = 2 ORDER BY f_dim");
  RunAtAllLevels(db_,
                 "SELECT f_dim FROM fact WHERE f_grp = 1 INTERSECT "
                 "SELECT f_dim FROM fact WHERE f_val > 90 ORDER BY f_dim");
}

TEST_F(ParallelExecTest, WindowFunctions) {
  RunAtAllLevels(
      db_, "SELECT d_id, d_band, RANK() OVER (PARTITION BY d_band "
           "ORDER BY d_id DESC) AS rk FROM dim ORDER BY d_band, rk, d_id");
}

TEST_F(ParallelExecTest, StarTransformedJoinMatchesPlainJoin) {
  // Three-way join triggers the semi-join reduction; the reduced plan,
  // the plain hash plan, and every parallelism level must all agree.
  std::string sql =
      "SELECT d_band, COUNT(*), SUM(f_val) FROM fact, dim "
      "WHERE f_dim = d_id AND d_band = 2 AND f_grp = 1 "
      "GROUP BY d_band ORDER BY d_band";
  QueryResult with_star = RunAtAllLevels(db_, sql);
  PlannerOptions no_star = db_->default_options();
  no_star.star_transformation = false;
  Result<QueryResult> plain = db_->Query(sql, no_star, nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->ToCsv(), with_star.ToCsv());
}

TEST_F(ParallelExecTest, IndexJoinPath) {
  PlannerOptions options = db_->default_options();
  options.index_joins = true;
  options.parallelism = 1;
  std::string sql =
      "SELECT COUNT(*), SUM(d_band) FROM fact, dim WHERE f_dim = d_id";
  Result<QueryResult> serial = db_->Query(sql, options, nullptr);
  ASSERT_TRUE(serial.ok());
  for (int workers : {2, 8}) {
    options.parallelism = workers;
    Result<QueryResult> parallel = db_->Query(sql, options, nullptr);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->ToCsv(), serial->ToCsv());
  }
}

TEST_F(ParallelExecTest, ParallelismZeroMeansAllCores) {
  PlannerOptions options = db_->default_options();
  options.parallelism = 0;
  Result<QueryResult> r = db_->Query(
      "SELECT f_grp, COUNT(*) FROM fact GROUP BY f_grp ORDER BY f_grp",
      options, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 6u);
}

TEST_F(ParallelExecTest, SubqueryInsidePredicate) {
  RunAtAllLevels(
      db_, "SELECT COUNT(*) FROM fact WHERE f_dim IN "
           "(SELECT d_id FROM dim WHERE d_band = 0)");
}

TEST_F(ParallelExecTest, CteConsumedTwice) {
  RunAtAllLevels(
      db_, "WITH bands AS (SELECT d_band, COUNT(*) AS cnt FROM dim "
           "GROUP BY d_band) "
           "SELECT a.d_band, a.cnt + b.cnt FROM bands a, bands b "
           "WHERE a.d_band = b.d_band ORDER BY a.d_band");
}

/// Thread-count differential over the real workload: a sample of the 99
/// TPC-DS templates on generated data must produce byte-identical CSV at
/// parallelism 1 / 2 / 8.
class TemplateDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  static Database* db_;
};

Database* TemplateDifferentialTest::db_ = nullptr;

TEST_F(TemplateDifferentialTest, SampledTemplatesAgreeAcrossThreadCounts) {
  // Spread across the four template families (store / catalog / web /
  // cross-channel); every id must exist.
  const int kSample[] = {1, 7, 14, 21, 27, 31, 38, 46, 55,
                         56, 63, 70, 76, 82, 88, 95, 99};
  QueryGenerator qgen(19620718);
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr) << "template " << id;
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok()) << "template " << id;

    PlannerOptions options = db_->default_options();
    options.parallelism = 1;
    Result<QueryResult> serial = db_->Query(*sql, options, nullptr);
    ASSERT_TRUE(serial.ok())
        << "template " << id << ": " << serial.status().ToString();
    std::string reference = serial->ToCsv();
    for (int workers : {2, 8}) {
      options.parallelism = workers;
      Result<QueryResult> parallel = db_->Query(*sql, options, nullptr);
      ASSERT_TRUE(parallel.ok())
          << "template " << id << ": " << parallel.status().ToString();
      EXPECT_EQ(parallel->ToCsv(), reference)
          << "template " << id << " at parallelism " << workers;
    }
  }
}

}  // namespace
}  // namespace tpcds
