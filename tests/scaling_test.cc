// Tests of the hybrid scaling model against the paper's Table 2 and §3.1.

#include <gtest/gtest.h>

#include "scaling/scaling.h"

namespace tpcds {
namespace {

TEST(ScalingTest, ValidScaleFactors) {
  EXPECT_EQ(ScalingModel::ValidScaleFactors(),
            (std::vector<int>{100, 300, 1000, 3000, 10000, 30000, 100000}));
  EXPECT_TRUE(ScalingModel::IsValidScaleFactor(100));
  EXPECT_TRUE(ScalingModel::IsValidScaleFactor(100000));
  EXPECT_FALSE(ScalingModel::IsValidScaleFactor(1));
  EXPECT_FALSE(ScalingModel::IsValidScaleFactor(500));
}

TEST(ScalingTest, Table2FactTablesScaleLinearly) {
  // Paper Table 2, store_sales row: 288M / ~2.9B / ~29B / ~288B.
  EXPECT_EQ(ScalingModel::RowCount("store_sales", 100), 288000000);
  EXPECT_EQ(ScalingModel::RowCount("store_sales", 1000), 2880000000LL);
  EXPECT_EQ(ScalingModel::RowCount("store_sales", 10000), 28800000000LL);
  EXPECT_EQ(ScalingModel::RowCount("store_sales", 100000), 288000000000LL);
  // store_returns: 14M at SF 100 (papers' ~4.9% return rate).
  EXPECT_EQ(ScalingModel::RowCount("store_returns", 100), 14000000);
  EXPECT_EQ(ScalingModel::RowCount("store_returns", 1000), 140000000);
}

TEST(ScalingTest, Table2DimensionsScaleSubLinearly) {
  // Paper Table 2 anchors, exact.
  EXPECT_EQ(ScalingModel::RowCount("store", 100), 200);
  EXPECT_EQ(ScalingModel::RowCount("store", 1000), 500);
  EXPECT_EQ(ScalingModel::RowCount("store", 10000), 750);
  EXPECT_EQ(ScalingModel::RowCount("store", 100000), 1500);
  EXPECT_EQ(ScalingModel::RowCount("customer", 100), 2000000);
  EXPECT_EQ(ScalingModel::RowCount("customer", 1000), 8000000);
  EXPECT_EQ(ScalingModel::RowCount("customer", 10000), 20000000);
  EXPECT_EQ(ScalingModel::RowCount("customer", 100000), 100000000);
  EXPECT_EQ(ScalingModel::RowCount("item", 100), 200000);
  EXPECT_EQ(ScalingModel::RowCount("item", 1000), 300000);
  EXPECT_EQ(ScalingModel::RowCount("item", 10000), 400000);
  EXPECT_EQ(ScalingModel::RowCount("item", 100000), 500000);
}

TEST(ScalingTest, SubLinearMeansSlowerThanLinear) {
  // Paper §3.1: growing SF by 1000x grows dimensions far less than 1000x
  // — this is what keeps cardinalities "realistic" at 100 TB.
  for (const char* dim : {"store", "customer", "item", "warehouse",
                          "promotion", "call_center", "web_site"}) {
    double ratio = static_cast<double>(ScalingModel::RowCount(dim, 100000)) /
                   static_cast<double>(ScalingModel::RowCount(dim, 100));
    EXPECT_LT(ratio, 60.0) << dim;  // vs 1000x for facts
    EXPECT_GE(ratio, 1.0) << dim;
  }
  double fact_ratio =
      static_cast<double>(ScalingModel::RowCount("store_sales", 100000)) /
      static_cast<double>(ScalingModel::RowCount("store_sales", 100));
  EXPECT_NEAR(fact_ratio, 1000.0, 1.0);
}

class ScalingMonotonicityTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ScalingMonotonicityTest, RowCountsNeverShrink) {
  const char* table = GetParam();
  int64_t prev = 0;
  for (double sf : {0.01, 0.1, 1.0, 10.0, 100.0, 300.0, 1000.0, 3000.0,
                    10000.0, 30000.0, 100000.0}) {
    int64_t rows = ScalingModel::RowCount(table, sf);
    EXPECT_GE(rows, prev) << table << " at SF " << sf;
    EXPECT_GE(rows, 1) << table << " at SF " << sf;
    prev = rows;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, ScalingMonotonicityTest,
    ::testing::Values("store_sales", "store_returns", "catalog_sales",
                      "catalog_returns", "web_sales", "web_returns",
                      "inventory", "store", "customer", "customer_address",
                      "item", "warehouse", "promotion", "call_center",
                      "catalog_page", "web_page", "web_site", "reason"));

TEST(ScalingTest, FixedDomainTables) {
  for (double sf : {0.01, 1.0, 100.0, 100000.0}) {
    EXPECT_EQ(ScalingModel::RowCount("date_dim", sf), 73049);
    EXPECT_EQ(ScalingModel::RowCount("time_dim", sf), 86400);
    EXPECT_EQ(ScalingModel::RowCount("income_band", sf), 20);
    EXPECT_EQ(ScalingModel::RowCount("ship_mode", sf), 20);
    EXPECT_EQ(ScalingModel::RowCount("household_demographics", sf), 7200);
  }
  // customer_demographics: full cross product at SF >= 1.
  EXPECT_EQ(ScalingModel::RowCount("customer_demographics", 1), 1920800);
  EXPECT_EQ(ScalingModel::RowCount("customer_demographics", 100000),
            1920800);
  EXPECT_EQ(ScalingModel::RowCount("customer_demographics", 0.01), 15120);
}

TEST(ScalingTest, InventoryTiesToItemsAndWarehouses) {
  // inventory = 261 weeks x distinct items x warehouses.
  int64_t expected = 261 * (ScalingModel::RowCount("item", 100) / 2) *
                     ScalingModel::RowCount("warehouse", 100);
  EXPECT_EQ(ScalingModel::RowCount("inventory", 100), expected);
}

TEST(ScalingTest, UnknownTableAndEdgeCases) {
  EXPECT_EQ(ScalingModel::RowCount("no_such_table", 100), 0);
  EXPECT_EQ(ScalingModel::RowCount("store_sales", 0), 0);
  EXPECT_EQ(ScalingModel::RowCount("store_sales", -5), 0);
}

TEST(ScalingTest, SalesWindowIsFiveYears) {
  EXPECT_EQ(ScalingModel::SalesBeginDate().ToString(), "1998-01-02");
  EXPECT_EQ(ScalingModel::SalesEndDate().ToString(), "2003-01-02");
  EXPECT_EQ(ScalingModel::DateDimBeginDate().ToString(), "1900-01-01");
  EXPECT_EQ(ScalingModel::DateDimRows(), 73049);
}

}  // namespace
}  // namespace tpcds
