// SQL frontend tests: lexer and parser over the supported SQL-99 subset.

#include <gtest/gtest.h>

#include "engine/lexer.h"
#include "engine/parser.h"

namespace tpcds {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a1, 'it''s', 3.14 FROM t -- comment\n;");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_EQ(t[0].upper, "SELECT");
  EXPECT_EQ(t[1].text, "a1");
  EXPECT_EQ(t[2].text, ",");
  EXPECT_EQ(t[3].type, Token::Type::kString);
  EXPECT_EQ(t[3].text, "it's");
  EXPECT_EQ(t[5].type, Token::Type::kNumber);
  EXPECT_EQ(t[5].text, "3.14");
  EXPECT_EQ(t.back().type, Token::Type::kEnd);
}

TEST(LexerTest, OperatorsAndErrors) {
  auto ops = Tokenize("a <= b <> c != d >= e");
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ((*ops)[1].text, "<=");
  EXPECT_EQ((*ops)[3].text, "<>");
  EXPECT_EQ((*ops)[5].text, "<>");  // != normalises to <>
  EXPECT_EQ((*ops)[7].text, ">=");
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(ParserTest, BasicSelect) {
  auto stmt = ParseSql(
      "SELECT a, b AS bee, SUM(c) total FROM t WHERE a = 1 AND b < 2 "
      "GROUP BY a, b HAVING SUM(c) > 0 ORDER BY total DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = **stmt;
  EXPECT_EQ(s.select_items.size(), 3u);
  EXPECT_EQ(s.select_items[1].alias, "bee");
  EXPECT_EQ(s.select_items[2].alias, "total");
  EXPECT_EQ(s.from_items.size(), 1u);
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 2u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].desc);
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, JoinForms) {
  auto stmt = ParseSql(
      "SELECT * FROM a, b JOIN c ON a.x = c.x LEFT OUTER JOIN d ON c.y = "
      "d.y WHERE a.x = b.x");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = **stmt;
  ASSERT_EQ(s.from_items.size(), 4u);
  EXPECT_EQ(s.from_items[1].join_kind, FromItem::JoinKind::kComma);
  EXPECT_EQ(s.from_items[2].join_kind, FromItem::JoinKind::kInner);
  EXPECT_EQ(s.from_items[3].join_kind, FromItem::JoinKind::kLeft);
  EXPECT_NE(s.from_items[2].join_condition, nullptr);
}

TEST(ParserTest, PredicatesAndExpressions) {
  auto stmt = ParseSql(
      "SELECT CASE WHEN a BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END, "
      "       CAST('2000-01-01' AS DATE) + 30, -a * (b + 2) "
      "FROM t WHERE a IN (1, 2, 3) AND name LIKE 'A%' AND x IS NOT NULL "
      "AND NOT (b = 2 OR c <> 3) AND d NOT IN (9)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, WindowsAndSubqueries) {
  auto stmt = ParseSql(
      "SELECT SUM(x) OVER (PARTITION BY g ORDER BY y DESC), "
      "       RANK() OVER (PARTITION BY g ORDER BY x) "
      "FROM t WHERE k IN (SELECT k FROM u) "
      "  AND v > (SELECT AVG(v) FROM t)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->select_items[0].expr->tag, Expr::Tag::kWindow);
}

TEST(ParserTest, WithAndUnion) {
  auto stmt = ParseSql(
      "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM u) "
      "SELECT a FROM x UNION ALL SELECT a FROM y ORDER BY 1 LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->ctes.size(), 2u);
  EXPECT_EQ((*stmt)->set_ops.size(), 1u);
  EXPECT_EQ((*stmt)->limit, 5);
}

TEST(ParserTest, DateLiteralsAndIntervals) {
  auto stmt = ParseSql(
      "SELECT d + INTERVAL 30 DAY FROM t WHERE d >= DATE '1999-02-21'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, DistinctAggregates) {
  auto stmt = ParseSql(
      "SELECT COUNT(DISTINCT a), COUNT(*), AVG(b) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE((*stmt)->select_items[0].expr->distinct);
  EXPECT_EQ((*stmt)->select_items[1].expr->children[0]->tag,
            Expr::Tag::kStar);
}

TEST(ParserTest, RollupAndSetOps) {
  auto rollup = ParseSql(
      "SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP(a, b)");
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  EXPECT_TRUE((*rollup)->group_rollup);
  EXPECT_EQ((*rollup)->group_by.size(), 2u);
  auto plain = ParseSql("SELECT a, SUM(c) FROM t GROUP BY a");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)->group_rollup);

  auto sets = ParseSql(
      "SELECT a FROM t UNION SELECT a FROM u "
      "INTERSECT SELECT a FROM v EXCEPT SELECT a FROM w");
  ASSERT_TRUE(sets.ok()) << sets.status().ToString();
  ASSERT_EQ((*sets)->set_ops.size(), 3u);
  using Kind = SelectStmt::SetOpBranch::Kind;
  EXPECT_EQ((*sets)->set_ops[0].kind, Kind::kUnion);
  EXPECT_EQ((*sets)->set_ops[1].kind, Kind::kIntersect);
  EXPECT_EQ((*sets)->set_ops[2].kind, Kind::kExcept);
  EXPECT_FALSE(ParseSql("SELECT a FROM t GROUP BY ROLLUP(a").ok());
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t trailing garbage ,").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM (SELECT b FROM t)").ok());  // alias
  EXPECT_FALSE(ParseSql("SELECT RANK() FROM t").ok());  // needs OVER
  EXPECT_FALSE(ParseSql("SELECT CASE END FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT x").ok());
}

TEST(ParserTest, ExprToStringRoundStability) {
  // Structural equality via canonical text: whitespace and case
  // variations of the same expression print identically.
  auto a = ParseSql("SELECT sum( T.x ) FROM t");
  auto b = ParseSql("select SUM(t.X) from t");
  ASSERT_TRUE(a.ok() && b.ok());
}

}  // namespace
}  // namespace tpcds
