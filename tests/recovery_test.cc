// Durability tests: checkpoint round-trip fidelity, WAL framing and torn
// tails, and crash-point recovery for the data-maintenance run — after a
// fault at any WAL or checkpoint site, recovery must rebuild exactly the
// committed prefix, byte-identical (content hash) to the live database.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/audit.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "maintenance/maintenance.h"
#include "schema/schema.h"
#include "util/fault.h"
#include "util/flatfile.h"
#include "util/wal.h"

namespace tpcds {
namespace {

namespace fs = std::filesystem;

constexpr double kSf = 0.01;

/// Loads the TPC-DS database once and checkpoints it once; every test
/// recovers from that shared checkpoint instead of re-serializing it.
class RecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = kSf;
    Status st = db_->LoadTpcdsData(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Unique per process: ctest runs each test case as its own process,
    // and two concurrent cases recreating one shared directory race
    // remove_all against SaveCheckpoint/LoadCheckpoint.
    ckpt_dir_ = ::testing::TempDir() + "recovery_test_ckpt_" +
                std::to_string(::getpid());
    fs::remove_all(ckpt_dir_);
    st = db_->SaveCheckpoint(ckpt_dir_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static void TearDownTestSuite() {
    fs::remove_all(ckpt_dir_);
    delete db_;
    db_ = nullptr;
  }

  void TearDown() override { FaultInjector::Global().Clear(); }

  /// A per-test scratch path under the test tempdir, removed up front.
  static std::string Scratch(const std::string& leaf) {
    std::string path = ::testing::TempDir() + "recovery_test_" + leaf;
    fs::remove_all(path);
    return path;
  }

  static void FlipByteNearEnd(const std::string& path) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(0, std::ios::end);
    std::streamoff size = f.tellg();
    ASSERT_GT(size, 16);
    f.seekp(size - 9);
    char byte = 0;
    f.seekg(size - 9);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size - 9);
    f.write(&byte, 1);
  }

  MaintenanceOptions DmOptions() {
    MaintenanceOptions o;
    o.scale_factor = kSf;
    o.refresh_cycle = 1;
    o.dimension_updates = 20;
    return o;
  }

  static Database* db_;
  static std::string ckpt_dir_;
};

Database* RecoveryTest::db_ = nullptr;
std::string RecoveryTest::ckpt_dir_;

TEST_F(RecoveryTest, CheckpointRoundTripIsByteIdentical) {
  Database restored;
  Status st = restored.LoadCheckpoint(ckpt_dir_);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(restored.TableNames().size(), db_->TableNames().size());
  for (const std::string& name : db_->TableNames()) {
    const EngineTable* got = restored.FindTable(name);
    ASSERT_NE(got, nullptr) << name;
    EXPECT_EQ(HashTableContent(*got), HashTableContent(*db_->FindTable(name)))
        << name;
  }
  EXPECT_EQ(HashDatabaseContent(restored), HashDatabaseContent(*db_));
}

TEST_F(RecoveryTest, CheckpointTableCorruptionIsDataLoss) {
  std::string dir = Scratch("corrupt_table");
  fs::copy(ckpt_dir_, dir, fs::copy_options::recursive);
  FlipByteNearEnd(dir + "/item.col");
  Database restored;
  Status st = restored.LoadCheckpoint(dir);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  fs::remove_all(dir);
}

TEST_F(RecoveryTest, CheckpointManifestCorruptionIsDataLoss) {
  std::string dir = Scratch("corrupt_manifest");
  fs::copy(ckpt_dir_, dir, fs::copy_options::recursive);
  FlipByteNearEnd(dir + "/MANIFEST");
  Database restored;
  Status st = restored.LoadCheckpoint(dir);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  fs::remove_all(dir);
}

TEST_F(RecoveryTest, MissingManifestIsNotFound) {
  std::string dir = Scratch("no_manifest");
  fs::create_directories(dir);
  Database restored;
  Status st = restored.LoadCheckpoint(dir);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  fs::remove_all(dir);
}

TEST_F(RecoveryTest, CheckpointWriteFaultsLeaveNoManifest) {
  for (const char* spec : {"ckpt-write=nth:3", "ckpt-manifest=nth:1"}) {
    std::string dir = Scratch("ckpt_fault");
    ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
    Status st = db_->SaveCheckpoint(dir);
    FaultInjector::Global().Clear();
    EXPECT_FALSE(st.ok()) << spec;
    // The manifest is written last: a crashed save must never leave a
    // directory that looks loadable.
    EXPECT_FALSE(fs::exists(dir + "/MANIFEST")) << spec;
    fs::remove_all(dir);
  }
}

TEST(WalTest, RoundTripPreservesRecordsAndLsns) {
  std::string path = ::testing::TempDir() + "wal_roundtrip.wal";
  std::remove(path.c_str());
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kOpBegin, "op").ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kUpdateCell, "payload-1").ok());
    ASSERT_TRUE(wal.AppendCommit("op-commit").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].type, WalRecordType::kOpBegin);
  EXPECT_EQ(read->records[1].payload, "payload-1");
  EXPECT_EQ(read->records[2].type, WalRecordType::kOpCommit);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[2].lsn, 3u);
  EXPECT_EQ(read->torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  std::string path = ::testing::TempDir() + "wal_torn.wal";
  std::remove(path.c_str());
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path).ok());
    wal.set_torn_writes(true);
    ASSERT_TRUE(wal.Append(WalRecordType::kOpBegin, "op").ok());
    ASSERT_TRUE(FaultInjector::Global().Configure("wal-append=nth:1").ok());
    EXPECT_FALSE(wal.Append(WalRecordType::kUpdateCell, "payload").ok());
    FaultInjector::Global().Clear();
    (void)wal.Close();
  }
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), 1u);  // the half-written record is gone
  EXPECT_EQ(read->records[0].type, WalRecordType::kOpBegin);
  EXPECT_TRUE(read->truncated_tail);
  EXPECT_GT(read->torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, MidFileCorruptionIsDataLoss) {
  std::string path = ::testing::TempDir() + "wal_corrupt.wal";
  std::remove(path.c_str());
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kOpBegin, "payload-one").ok());
    ASSERT_TRUE(wal.AppendCommit("payload-two").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Corrupt the FIRST record: damage before the physical tail is committed
  // history gone bad, not a torn write, and must refuse to recover.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(12 + 9);  // header, then past the first record's framing
  f.write("X", 1);
  f.close();
  Result<WalReadResult> read = ReadWal(path);
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
      << read.status().ToString();
  std::remove(path.c_str());
}

// The core durability property: inject a fault at every WAL-involved
// crash point, then prove recovery rebuilds exactly the committed prefix.
//
//   live      = checkpointed state + DM run that crashed mid-way
//   recovered = Recover(checkpoint, WAL)
//   expected  = checkpointed state + re-run of only the committed ops
//
// All three must be byte-identical (content hash), and the recovered
// database must still satisfy the schema's PK/FK constraints and the SCD
// single-open-revision invariant.
TEST_F(RecoveryTest, CrashSweepRecoversExactlyTheCommittedPrefix) {
  struct Trial {
    const char* spec;
    bool torn;
  };
  const Trial trials[] = {
      {"wal-append=nth:1", false},  {"wal-append=nth:5", false},
      {"wal-append=nth:20", true},  {"wal-commit=nth:1", false},
      {"wal-commit=nth:2", false},  {"maintenance=nth:2", false},
  };
  for (const Trial& trial : trials) {
    SCOPED_TRACE(trial.spec);
    std::string wal_path = Scratch("sweep.wal");

    Database live;
    ASSERT_TRUE(live.LoadCheckpoint(ckpt_dir_).ok());
    WalWriter wal;
    ASSERT_TRUE(wal.Open(wal_path).ok());
    wal.set_torn_writes(trial.torn);
    ASSERT_TRUE(FaultInjector::Global().Configure(trial.spec).ok());
    MaintenanceReport report;
    Status dm = RunDataMaintenance(&live, DmOptions(), &report, &wal);
    FaultInjector::Global().Clear();
    (void)wal.Close();
    EXPECT_FALSE(dm.ok());  // every trial crashes mid-run

    Database recovered;
    Result<RecoveryReport> rec = Recover(&recovered, ckpt_dir_, wal_path);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->ops_replayed,
              static_cast<int64_t>(report.operations.size()));
    EXPECT_EQ(HashDatabaseContent(recovered), HashDatabaseContent(live));

    // Independent replay: the committed prefix alone, no WAL involved.
    Database expected;
    ASSERT_TRUE(expected.LoadCheckpoint(ckpt_dir_).ok());
    if (!rec->replayed_ops.empty()) {
      MaintenanceOptions prefix = DmOptions();
      prefix.operations = rec->replayed_ops;
      MaintenanceReport prefix_report;
      Status st = RunDataMaintenance(&expected, prefix, &prefix_report);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_EQ(HashDatabaseContent(recovered), HashDatabaseContent(expected));

    Result<AuditReport> audit =
        ValidateConstraints(&recovered, TpcdsSchema());
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    EXPECT_EQ(audit->TotalViolations(), 0) << audit->ToString();

    // SCD invariant (Fig. 9): at most one open revision per business key,
    // whether or not the crashed run got to the item update.
    const EngineTable* item = recovered.FindTable("item");
    int end_col = item->ColumnIndex("i_rec_end_date");
    int bk_col = item->ColumnIndex("i_item_id");
    const EngineTable::StringIndex& index =
        const_cast<EngineTable*>(item)->GetOrBuildStringIndex(bk_col);
    for (const auto& [key, rows] : index) {
      int open = 0;
      for (int64_t row : rows) {
        if (item->GetValue(row, end_col).is_null()) ++open;
      }
      EXPECT_EQ(open, 1) << "business key " << key;
    }
    std::remove(wal_path.c_str());
  }
}

TEST_F(RecoveryTest, UncommittedTailIsDiscarded) {
  std::string wal_path = Scratch("uncommitted.wal");
  Database live;
  ASSERT_TRUE(live.LoadCheckpoint(ckpt_dir_).ok());
  // Crash right before the first commit marker: the op's mutations are in
  // the log but never committed, so recovery must ignore all of them.
  WalWriter wal;
  ASSERT_TRUE(wal.Open(wal_path).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("wal-commit=nth:1").ok());
  MaintenanceReport report;
  Status dm = RunDataMaintenance(&live, DmOptions(), &report, &wal);
  FaultInjector::Global().Clear();
  (void)wal.Close();
  EXPECT_FALSE(dm.ok());
  EXPECT_TRUE(report.operations.empty());

  Database recovered;
  Result<RecoveryReport> rec = Recover(&recovered, ckpt_dir_, wal_path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->ops_replayed, 0);
  EXPECT_EQ(rec->ops_discarded, 1);
  EXPECT_GT(rec->records_scanned, 0);
  EXPECT_EQ(rec->records_replayed, 0);
  EXPECT_EQ(HashDatabaseContent(recovered), HashDatabaseContent(*db_));
  std::remove(wal_path.c_str());
}

TEST_F(RecoveryTest, WalOnAndOffConvergeToTheSameState) {
  Database with_wal;
  ASSERT_TRUE(with_wal.LoadCheckpoint(ckpt_dir_).ok());
  std::string wal_path = Scratch("converge.wal");
  WalWriter wal;
  ASSERT_TRUE(wal.Open(wal_path).ok());
  MaintenanceReport report_on;
  Status st = RunDataMaintenance(&with_wal, DmOptions(), &report_on, &wal);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(wal.Close().ok());

  Database without_wal;
  ASSERT_TRUE(without_wal.LoadCheckpoint(ckpt_dir_).ok());
  MaintenanceReport report_off;
  st = RunDataMaintenance(&without_wal, DmOptions(), &report_off);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(report_on.operations.size(), report_off.operations.size());
  EXPECT_EQ(HashDatabaseContent(with_wal),
            HashDatabaseContent(without_wal));

  // And a full replay of that WAL lands on the same state again.
  Database recovered;
  Result<RecoveryReport> rec = Recover(&recovered, ckpt_dir_, wal_path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->ops_replayed, 12);
  EXPECT_EQ(HashDatabaseContent(recovered), HashDatabaseContent(with_wal));
  std::remove(wal_path.c_str());
}

TEST_F(RecoveryTest, OperationsFilterRunsOnlyNamedOps) {
  Database db;
  ASSERT_TRUE(db.LoadCheckpoint(ckpt_dir_).ok());
  MaintenanceOptions options = DmOptions();
  options.operations = {"scd_update:item", "inplace_update:customer"};
  MaintenanceReport report;
  Status st = RunDataMaintenance(&db, options, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(report.operations.size(), 2u);
  EXPECT_EQ(report.operations[0].operation, "scd_update:item");
  EXPECT_EQ(report.operations[1].operation, "inplace_update:customer");
}

TEST(RestoreFromTest, SchemaMismatchIsRejected) {
  EngineTable a("t", {{"k", ColumnType::kIdentifier},
                      {"v", ColumnType::kVarchar}});
  EngineTable renamed("t", {{"k", ColumnType::kIdentifier},
                            {"w", ColumnType::kVarchar}});
  EngineTable retyped("t", {{"k", ColumnType::kIdentifier},
                            {"v", ColumnType::kInteger}});
  EXPECT_FALSE(a.RestoreFrom(renamed).ok());
  EXPECT_FALSE(a.RestoreFrom(retyped).ok());

  ASSERT_TRUE(a.AppendRowStrings({"1", "x"}).ok());
  std::unique_ptr<EngineTable> snapshot = a.Clone();
  ASSERT_TRUE(a.AppendRowStrings({"2", "y"}).ok());
  ASSERT_TRUE(a.RestoreFrom(*snapshot).ok());
  EXPECT_EQ(a.num_rows(), 1);
}

TEST(FlatFileFaultTest, WriteFaultSurfacesAndLatches) {
  std::string path = ::testing::TempDir() + "flatfile_fault.dat";
  std::remove(path.c_str());
  FlatFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append({"1", "a"}).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("io-write=nth:1").ok());
  Status st = writer.Append({"2", "b"});
  FaultInjector::Global().Clear();
  EXPECT_FALSE(st.ok());
  // The failure latches: an ENOSPC-style mid-table error must not be
  // masked by later writes or a clean-looking close.
  EXPECT_FALSE(writer.Append({"3", "c"}).ok());
  EXPECT_FALSE(writer.Close().ok());
  std::remove(path.c_str());
}

TEST(FlatFileFaultTest, CloseFaultSurfaces) {
  std::string path = ::testing::TempDir() + "flatfile_close_fault.dat";
  std::remove(path.c_str());
  FlatFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append({"1", "a"}).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("io-close=nth:1").ok());
  EXPECT_FALSE(writer.Close().ok());
  FaultInjector::Global().Clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpcds
