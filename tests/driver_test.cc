// End-to-end benchmark-driver test: the full execution order of paper
// Fig. 11 (load -> QR1 -> DM -> QR2) with concurrent streams, plus the
// metric arithmetic of §5.3.

#include <gtest/gtest.h>

#include <set>

#include "driver/driver.h"
#include "engine/audit.h"
#include "metric/metric.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

TEST(MetricTest, QphDsFormula) {
  // Hand-checked example: SF=1000, S=7, T_QR1=T_QR2=3600s, T_DM=1800s,
  // T_Load=7200s. Denominator = 3600+1800+3600+0.01*7*7200 = 9504.
  MetricInputs in;
  in.scale_factor = 1000;
  in.streams = 7;
  in.t_qr1_sec = 3600;
  in.t_dm_sec = 1800;
  in.t_qr2_sec = 3600;
  in.t_load_sec = 7200;
  double expected = 1000.0 * 3600.0 * (198.0 * 7) / 9504.0;
  EXPECT_NEAR(QphDs(in), expected, 1e-6);
  EXPECT_NEAR(PricePerformance(1.0e6, QphDs(in)), 1.0e6 / expected, 1e-9);
}

TEST(MetricTest, LoadTimeChargeScalesWithStreams) {
  // The 0.01*S factor: more streams -> a larger share of the load time is
  // charged, so the metric cannot be gamed by adding streams (§5.3).
  MetricInputs in;
  in.scale_factor = 100;
  in.t_qr1_sec = in.t_qr2_sec = 100;
  in.t_dm_sec = 50;
  in.t_load_sec = 1000;
  in.streams = 3;
  double q3 = QphDs(in) / in.streams;  // per-stream throughput
  in.streams = 30;
  double q30 = QphDs(in) / in.streams;
  EXPECT_LT(q30, q3);  // per-stream value decays as load charge grows
}

TEST(MetricTest, DegenerateInputsYieldZero) {
  MetricInputs in;
  EXPECT_EQ(QphDs(in), 0.0);
  EXPECT_EQ(PricePerformance(100.0, 0.0), 0.0);
}

TEST(DriverTest, MinimumStreamsFollowFigure12) {
  EXPECT_EQ(ScalingModel::MinimumStreams(100), 3);
  EXPECT_EQ(ScalingModel::MinimumStreams(300), 5);
  EXPECT_EQ(ScalingModel::MinimumStreams(1000), 7);
  EXPECT_EQ(ScalingModel::MinimumStreams(3000), 9);
  EXPECT_EQ(ScalingModel::MinimumStreams(10000), 11);
  EXPECT_EQ(ScalingModel::MinimumStreams(30000), 13);
  EXPECT_EQ(ScalingModel::MinimumStreams(100000), 15);
  EXPECT_EQ(ScalingModel::MinimumStreams(0.01), 3);  // dev scales
}

TEST(DriverTest, FullBenchmarkSmallScale) {
  BenchmarkConfig config;
  config.scale_factor = 0.002;
  config.streams = 2;
  config.queries_per_stream = 12;  // quick run; full 99 exercised elsewhere
  config.refresh_fraction = 0.02;
  config.dimension_updates = 10;

  Database db;
  Result<BenchmarkResult> result = RunBenchmark(config, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->t_load_sec, 0.0);
  EXPECT_GT(result->t_qr1_sec, 0.0);
  EXPECT_GT(result->t_dm_sec, 0.0);
  EXPECT_GT(result->t_qr2_sec, 0.0);
  EXPECT_EQ(result->qr1_queries.size(), 24u);  // 2 streams x 12 queries
  EXPECT_EQ(result->qr2_queries.size(), 24u);
  EXPECT_EQ(result->dm_report.operations.size(), 12u);

  // Streams executed distinct template orders (permutation property).
  std::set<std::pair<int, int>> stream_templates;
  for (const QueryExecution& q : result->qr1_queries) {
    EXPECT_TRUE(
        stream_templates.insert({q.stream, q.template_id}).second);
  }

  MetricInputs in = result->ToMetricInputs();
  EXPECT_GT(QphDs(in), 0.0);

  // Data maintenance committed one copy-on-write generation swap.
  EXPECT_EQ(result->generation_before, 1u);
  EXPECT_EQ(result->generation_after, 2u);
  EXPECT_EQ(result->generation_swaps, 1);
}

TEST(DriverTest, OverlappedBenchmarkMatchesSequentialResults) {
  // Overlap mode runs QR2 concurrently with data maintenance through the
  // facade provider. The refreshed end state must be identical to the
  // sequential run's (DM is deterministic and queries are read-only), and
  // every query still completes with its pinned generation.
  BenchmarkConfig sequential;
  sequential.scale_factor = 0.002;
  sequential.streams = 2;
  sequential.queries_per_stream = 8;
  sequential.refresh_fraction = 0.02;
  sequential.dimension_updates = 10;
  BenchmarkConfig overlapped = sequential;
  overlapped.overlap_dm_qr2 = true;

  Database seq_db;
  Result<BenchmarkResult> seq = RunBenchmark(sequential, &seq_db);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  Database ovl_db;
  Result<BenchmarkResult> ovl = RunBenchmark(overlapped, &ovl_db);
  ASSERT_TRUE(ovl.ok()) << ovl.status().ToString();

  EXPECT_TRUE(ovl->failures.failures.empty());
  EXPECT_EQ(ovl->qr2_queries.size(), seq->qr2_queries.size());
  EXPECT_EQ(ovl->dm_report.operations.size(), 12u);
  EXPECT_EQ(ovl->generation_swaps, 1);
  EXPECT_EQ(ovl_db.generation(), 2u);
  // Same committed refresh: the refreshed datasets are byte-identical.
  EXPECT_EQ(HashDatabaseContent(ovl_db), HashDatabaseContent(seq_db));
}

TEST(MetricTest, PriceSheetTco) {
  PriceSheet sheet;
  sheet.hardware_dollars = 200000;
  sheet.software_dollars = 90000;
  sheet.maintenance_dollars_per_year = 25000;
  sheet.discounts_dollars = 15000;
  EXPECT_NEAR(sheet.ThreeYearTco(), 350000.0, 1e-9);
}

TEST(DriverTest, PowerTestComputesBothMeans) {
  BenchmarkConfig config;
  config.scale_factor = 0.002;
  config.queries_per_stream = 10;
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = config.scale_factor;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());

  Result<PowerTestResult> power = RunPowerTest(config, &db);
  ASSERT_TRUE(power.ok()) << power.status().ToString();
  EXPECT_EQ(power->queries.size(), 10u);
  EXPECT_GT(power->total_sec, 0.0);
  EXPECT_GT(power->geometric_mean_sec, 0.0);
  // AM-GM inequality: the geometric mean never exceeds the arithmetic.
  EXPECT_LE(power->geometric_mean_sec, power->arithmetic_mean_sec + 1e-9);
}

TEST(DriverTest, ConcurrentStreamsWithIndexJoins) {
  // Index joins build table indexes lazily from concurrent query streams;
  // this exercises the index-build mutex under the 2-stream driver.
  BenchmarkConfig config;
  config.scale_factor = 0.002;
  config.streams = 2;
  config.queries_per_stream = 15;
  config.planner.index_joins = true;
  Database db;
  Result<BenchmarkResult> result = RunBenchmark(config, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->qr1_queries.size(), 30u);
  EXPECT_EQ(result->qr2_queries.size(), 30u);
}

TEST(DriverTest, QueryRun2UsesFreshSubstitutions) {
  BenchmarkConfig config;
  config.scale_factor = 0.002;
  config.streams = 1;
  config.queries_per_stream = 5;
  Database db;
  Result<BenchmarkResult> result = RunBenchmark(config, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Stream ids differ between runs (1..S vs S+1..2S).
  for (const QueryExecution& q : result->qr1_queries) {
    EXPECT_EQ(q.stream, 1);
  }
  for (const QueryExecution& q : result->qr2_queries) {
    EXPECT_EQ(q.stream, 2);
  }
}

}  // namespace
}  // namespace tpcds
