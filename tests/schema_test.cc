// Tests of the logical schema catalog against the paper's §2 and Table 1.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "schema/schema.h"
#include "schema/schema_stats.h"

namespace tpcds {
namespace {

TEST(SchemaTest, TwentyFourTablesSevenFacts) {
  const Schema& schema = TpcdsSchema();
  EXPECT_EQ(schema.tables().size(), 24u);
  EXPECT_EQ(schema.NumFactTables(), 7u);       // Table 1
  EXPECT_EQ(schema.NumDimensionTables(), 17u);  // Table 1
}

TEST(SchemaTest, ValidatesInternally) {
  Status st = TpcdsSchema().Validate();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(SchemaTest, Table1ColumnStatistics) {
  SchemaStats stats = ComputeSchemaStats(TpcdsSchema());
  EXPECT_EQ(stats.min_columns, 3);    // income_band, reason
  EXPECT_EQ(stats.max_columns, 34);   // catalog_sales, web_sales
  EXPECT_NEAR(stats.avg_columns, 18.0, 0.8);  // paper: avg 18
  // Paper (draft spec) reports 104 foreign keys; the final spec's ERD has
  // a few more date FKs. We stay within a tight band of the paper value.
  EXPECT_GE(stats.num_foreign_keys, 100);
  EXPECT_LE(stats.num_foreign_keys, 110);
}

TEST(SchemaTest, ExpectedColumnCountsPerTable) {
  const std::map<std::string, size_t> expected = {
      {"store_sales", 23},   {"store_returns", 20},
      {"catalog_sales", 34}, {"catalog_returns", 27},
      {"web_sales", 34},     {"web_returns", 24},
      {"inventory", 4},      {"date_dim", 28},
      {"time_dim", 10},      {"item", 22},
      {"customer", 18},      {"customer_address", 13},
      {"customer_demographics", 9},
      {"household_demographics", 5},
      {"income_band", 3},    {"store", 29},
      {"promotion", 19},     {"reason", 3},
      {"ship_mode", 6},      {"warehouse", 14},
      {"call_center", 31},   {"catalog_page", 9},
      {"web_page", 14},      {"web_site", 26}};
  const Schema& schema = TpcdsSchema();
  for (const auto& [name, cols] : expected) {
    const TableDef* t = schema.FindTable(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_EQ(t->columns.size(), cols) << name;
  }
}

TEST(SchemaTest, AdHocReportingPartition) {
  // Paper §2.2: store + web constitute the ad-hoc part, catalog (and the
  // inventory it shares with web) the reporting part.
  const Schema& schema = TpcdsSchema();
  for (const char* t : {"store_sales", "store_returns", "web_sales",
                        "web_returns", "store", "web_site", "web_page"}) {
    EXPECT_EQ(schema.FindTable(t)->part, SchemaPart::kAdHoc) << t;
  }
  for (const char* t : {"catalog_sales", "catalog_returns", "inventory",
                        "call_center", "catalog_page"}) {
    EXPECT_EQ(schema.FindTable(t)->part, SchemaPart::kReporting) << t;
  }
  for (const char* t : {"date_dim", "item", "customer", "income_band"}) {
    EXPECT_EQ(schema.FindTable(t)->part, SchemaPart::kCommon) << t;
  }
}

TEST(SchemaTest, MaintenanceClasses) {
  const Schema& schema = TpcdsSchema();
  // Static dimensions (paper §4.2): loaded once, never refreshed.
  for (const char* t : {"date_dim", "time_dim", "reason", "income_band",
                        "ship_mode", "customer_demographics",
                        "household_demographics"}) {
    EXPECT_EQ(schema.FindTable(t)->maintenance, MaintenanceClass::kStatic)
        << t;
  }
  // History-keeping dimensions carry rec_start/rec_end columns.
  for (const char* t : {"item", "store", "call_center", "web_page",
                        "web_site"}) {
    const TableDef* def = schema.FindTable(t);
    EXPECT_EQ(def->maintenance, MaintenanceClass::kHistory) << t;
    int rec_cols = 0;
    for (const ColumnDef& c : def->columns) {
      if (c.name.find("rec_start_date") != std::string::npos ||
          c.name.find("rec_end_date") != std::string::npos) {
        ++rec_cols;
      }
    }
    EXPECT_EQ(rec_cols, 2) << t;
  }
  for (const char* t : {"customer", "customer_address", "promotion",
                        "warehouse", "catalog_page"}) {
    EXPECT_EQ(schema.FindTable(t)->maintenance,
              MaintenanceClass::kNonHistory)
        << t;
  }
}

TEST(SchemaTest, SnowflakeStructure) {
  const Schema& schema = TpcdsSchema();
  // The store-sales snowflake of Fig. 1: fact -> customer -> demographics
  // -> income band chain exists.
  const TableDef* ss = schema.FindTable("store_sales");
  std::set<std::string> ss_targets;
  for (const ForeignKeyDef& fk : ss->foreign_keys) {
    ss_targets.insert(fk.referenced_table);
  }
  EXPECT_TRUE(ss_targets.count("customer"));
  EXPECT_TRUE(ss_targets.count("customer_address"));
  EXPECT_TRUE(ss_targets.count("household_demographics"));
  EXPECT_TRUE(ss_targets.count("store"));
  // Second snowflake layer: dimension-to-dimension edges.
  const TableDef* hd = schema.FindTable("household_demographics");
  ASSERT_EQ(hd->foreign_keys.size(), 1u);
  EXPECT_EQ(hd->foreign_keys[0].referenced_table, "income_band");
  const TableDef* customer = schema.FindTable("customer");
  std::set<std::string> c_targets;
  for (const ForeignKeyDef& fk : customer->foreign_keys) {
    c_targets.insert(fk.referenced_table);
  }
  EXPECT_TRUE(c_targets.count("customer_address"));  // circular with fact
}

TEST(SchemaTest, FactToFactRelationships) {
  // Paper §2.2: returns join sales on (item_sk, ticket/order number).
  const Schema& schema = TpcdsSchema();
  const TableDef* sr = schema.FindTable("store_returns");
  bool found = false;
  for (const ForeignKeyDef& fk : sr->foreign_keys) {
    if (fk.referenced_table == "store_sales") {
      found = true;
      EXPECT_EQ(fk.columns,
                (std::vector<std::string>{"sr_item_sk", "sr_ticket_number"}));
    }
  }
  EXPECT_TRUE(found);
  // Inventory is shared between catalog and web via warehouse/item.
  const TableDef* inv = schema.FindTable("inventory");
  EXPECT_EQ(inv->primary_key.size(), 3u);
}

TEST(SchemaTest, FormattingHelpers) {
  SchemaStats stats = ComputeSchemaStats(TpcdsSchema());
  std::string table1 = FormatSchemaStats(stats);
  EXPECT_NE(table1.find("fact tables"), std::string::npos);
  std::string fig1 = FormatSnowflake(TpcdsSchema(), "store_sales");
  EXPECT_NE(fig1.find("store_sales (fact)"), std::string::npos);
  EXPECT_NE(fig1.find("-> customer"), std::string::npos);
  EXPECT_NE(fig1.find("household_demographics -> income_band"),
            std::string::npos);
  EXPECT_NE(FormatSnowflake(TpcdsSchema(), "nope").find("unknown"),
            std::string::npos);
}

TEST(SchemaTest, ColumnLookup) {
  const TableDef* item = TpcdsSchema().FindTable("item");
  EXPECT_GE(item->ColumnIndex("i_item_sk"), 0);
  EXPECT_EQ(item->ColumnIndex("i_item_sk"), 0);
  EXPECT_EQ(item->ColumnIndex("missing"), -1);
  EXPECT_TRUE(item->HasColumn("i_brand"));
  EXPECT_GT(item->DeclaredMaxRowBytes(), 100);
}

}  // namespace
}  // namespace tpcds
