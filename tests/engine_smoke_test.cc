// End-to-end smoke test: generate a tiny TPC-DS database, load it into the
// engine, and run representative SQL through parse/plan/execute.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

class EngineSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    Status st = db_->LoadTpcdsData(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static Database* db_;
};

Database* EngineSmokeTest::db_ = nullptr;

TEST_F(EngineSmokeTest, TablesLoaded) {
  for (const char* t : {"date_dim", "store_sales", "store_returns", "item",
                        "customer", "store"}) {
    const EngineTable* table = db_->FindTable(t);
    ASSERT_NE(table, nullptr) << t;
    EXPECT_GT(table->num_rows(), 0) << t;
  }
  EXPECT_EQ(db_->FindTable("date_dim")->num_rows(),
            ScalingModel::DateDimRows());
}

TEST_F(EngineSmokeTest, SimpleScanFilter) {
  Result<QueryResult> r = db_->Query(
      "SELECT d_date_sk, d_year, d_moy FROM date_dim "
      "WHERE d_year = 2000 AND d_moy = 2 ORDER BY d_date_sk LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 2000);
  EXPECT_EQ(r->rows[0][2].AsInt(), 2);
}

TEST_F(EngineSmokeTest, Query52AdHocShape) {
  // The paper's Fig. 6 ad-hoc example (manager predicate widened so the
  // tiny scale factor still qualifies rows).
  Result<QueryResult> r = db_->Query(
      "SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand, "
      "       SUM(ss_ext_sales_price) ext_price "
      "FROM date_dim dt, store_sales, item "
      "WHERE dt.d_date_sk = store_sales.ss_sold_date_sk "
      "  AND store_sales.ss_item_sk = item.i_item_sk "
      "  AND item.i_manager_id BETWEEN 1 AND 50 "
      "  AND dt.d_moy = 11 AND dt.d_year = 2000 "
      "GROUP BY dt.d_year, item.i_brand, item.i_brand_id "
      "ORDER BY dt.d_year, ext_price DESC, brand_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns.size(), 4u);
  ASSERT_GT(r->rows.size(), 0u);
  // Descending by ext_price within the year.
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_GE(r->rows[i - 1][3].AsDouble(), r->rows[i][3].AsDouble());
  }
}

TEST_F(EngineSmokeTest, Query20ReportingWindowShape) {
  // The paper's Fig. 7 reporting example with SUM() OVER (PARTITION BY).
  Result<QueryResult> r = db_->Query(
      "SELECT i_item_desc, i_category, i_class, i_current_price, "
      "       SUM(cs_ext_sales_price) AS itemrevenue, "
      "       SUM(cs_ext_sales_price)*100/SUM(SUM(cs_ext_sales_price)) OVER "
      "           (PARTITION BY i_class) AS revenueratio "
      "FROM catalog_sales, item, date_dim "
      "WHERE cs_item_sk = i_item_sk "
      "  AND i_category IN ('Sports', 'Books', 'Home') "
      "  AND cs_sold_date_sk = d_date_sk "
      "  AND d_date BETWEEN '1999-02-21' AND '1999-04-21' "
      "GROUP BY i_item_id, i_item_desc, i_category, i_class, "
      "         i_current_price "
      "ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->rows.size(), 0u);
  // Revenue ratios within one class must sum to ~100.
  double total = 0.0;
  std::string first_class = r->rows[0][2].AsString();
  for (const auto& row : r->rows) {
    if (row[2].AsString() != first_class) continue;
    total += row[5].AsDouble();
  }
  EXPECT_NEAR(total, 100.0, 0.5);
}

TEST_F(EngineSmokeTest, StarAndHashPathsAgree) {
  const char* sql =
      "SELECT s_store_name, SUM(ss_net_profit) profit "
      "FROM store_sales, date_dim, store "
      "WHERE ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk "
      "  AND d_year = 1999 "
      "GROUP BY s_store_name ORDER BY profit DESC";
  PlannerOptions star;
  star.star_transformation = true;
  PlannerOptions hash;
  hash.star_transformation = false;
  Result<QueryResult> a = db_->Query(sql, star);
  Result<QueryResult> b = db_->Query(sql, hash);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_EQ(a->rows[i][0].AsString(), b->rows[i][0].AsString());
    EXPECT_EQ(a->rows[i][1].AsDecimal().cents(),
              b->rows[i][1].AsDecimal().cents());
  }
}

TEST_F(EngineSmokeTest, AllThreeJoinPathsAgree) {
  // The paper's §2.1 DSS access paths: star transformation, hash joins,
  // index-driven joins. Same query, three plans, identical results.
  const char* sql =
      "SELECT i_category, COUNT(*) cnt, SUM(ss_ext_sales_price) rev "
      "FROM store_sales, item, date_dim "
      "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
      "  AND d_year = 2000 "
      "GROUP BY i_category ORDER BY i_category";
  PlannerOptions star;
  star.star_transformation = true;
  star.index_joins = false;
  PlannerOptions hash;
  hash.star_transformation = false;
  hash.index_joins = false;
  PlannerOptions index;
  index.star_transformation = false;
  index.index_joins = true;

  ExecStats index_stats;
  Result<QueryResult> a = db_->Query(sql, star);
  Result<QueryResult> b = db_->Query(sql, hash);
  Result<QueryResult> c = db_->Query(sql, index, &index_stats);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok())
      << a.status().ToString() << b.status().ToString()
      << c.status().ToString();
  ASSERT_EQ(a->rows.size(), b->rows.size());
  ASSERT_EQ(a->rows.size(), c->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    for (size_t j = 0; j < a->rows[i].size(); ++j) {
      EXPECT_EQ(Value::Compare(a->rows[i][j], b->rows[i][j]), 0);
      EXPECT_EQ(Value::Compare(a->rows[i][j], c->rows[i][j]), 0);
    }
  }
  // The index path really engaged: item has no local filter, so its scan
  // was replaced by index probes. (date_dim carries d_year = 2000 and
  // must still be scanned.)
  bool saw_index_join = false;
  bool saw_item_scan = false;
  for (const std::string& line : index_stats.plan) {
    if (line.find("index join item") != std::string::npos) {
      saw_index_join = true;
    }
    if (line.find("scan item") != std::string::npos) saw_item_scan = true;
  }
  EXPECT_TRUE(saw_index_join) << "plan did not use the index path";
  EXPECT_FALSE(saw_item_scan);
}

TEST_F(EngineSmokeTest, FactToFactJoin) {
  // Store sales joined to their returns via (item_sk, ticket_number) —
  // the paper's §2.2 fact-to-fact join.
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(*) AS returned_items, "
      "       SUM(sr_return_quantity) AS units_back "
      "FROM store_sales, store_returns "
      "WHERE ss_item_sk = sr_item_sk AND ss_ticket_number = sr_ticket_number");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  const EngineTable* sr = db_->FindTable("store_returns");
  // Every return matches exactly one sale.
  EXPECT_EQ(r->rows[0][0].AsInt(), sr->num_rows());
}

TEST_F(EngineSmokeTest, CteAndSubquery) {
  Result<QueryResult> r = db_->Query(
      "WITH big_items AS ( "
      "  SELECT i_item_sk FROM item WHERE i_current_price > 50 "
      ") "
      "SELECT COUNT(*) FROM store_sales "
      "WHERE ss_item_sk IN (SELECT i_item_sk FROM big_items)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_GT(r->rows[0][0].AsInt(), 0);
}

TEST_F(EngineSmokeTest, UnionAllAcrossChannels) {
  Result<QueryResult> r = db_->Query(
      "SELECT 'store' channel, COUNT(*) cnt FROM store_sales "
      "UNION ALL "
      "SELECT 'web' channel, COUNT(*) cnt FROM web_sales "
      "UNION ALL "
      "SELECT 'catalog' channel, COUNT(*) cnt FROM catalog_sales "
      "ORDER BY cnt DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsString(), "store");
}

}  // namespace
}  // namespace tpcds
