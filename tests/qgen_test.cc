// Query-generator tests: the substitution language, comparability-zone
// dates, determinism, and error handling (paper §3.2, §4.1, ref [10]).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dist/zones.h"
#include "qgen/qgen.h"
#include "util/date.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

QueryTemplate Tmpl(const char* text) {
  QueryTemplate t;
  t.id = 1;
  t.name = "t1";
  t.text = text;
  return t;
}

TEST(QgenTest, RandomSubstitution) {
  QueryGenerator qgen(1);
  QueryTemplate t = Tmpl(
      "define N = random(5, 9, uniform);\nSELECT [N] FROM t WHERE x = [N]");
  for (int stream = 0; stream < 20; ++stream) {
    auto sql = qgen.Instantiate(t, stream);
    ASSERT_TRUE(sql.ok());
    // Both occurrences of [N] get the same value.
    size_t pos = sql->find("SELECT ") + 7;
    std::string value = sql->substr(pos, sql->find(' ', pos) - pos);
    int v = std::stoi(value);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    EXPECT_NE(sql->find("x = " + value), std::string::npos);
  }
}

class ZoneDateTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZoneDateTest, DateSpanStaysInsideZone) {
  // The comparability property (paper §3.2): a date(span, zone)
  // substitution plus its span never leaves the zone, so every
  // substitution qualifies a comparable number of rows.
  auto [zone, stream] = GetParam();
  QueryGenerator qgen(7);
  QueryTemplate t = Tmpl(
      ("define D = date(30, " + std::to_string(zone) + ");\n[D]").c_str());
  auto sql = qgen.Instantiate(t, stream);
  ASSERT_TRUE(sql.ok());
  Result<Date> start = Date::Parse(std::string(Trim(*sql)));
  ASSERT_TRUE(start.ok()) << *sql;
  EXPECT_EQ(ZoneOfMonth(start->month()), zone);
  EXPECT_EQ(ZoneOfMonth(start->AddDays(30).month()), zone);
  EXPECT_GE(start->year(), 1998);
  EXPECT_LE(start->year(), 2002);
}

INSTANTIATE_TEST_SUITE_P(
    ZonesAndStreams, ZoneDateTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)));

TEST(QgenTest, DistAndListSubstitution) {
  QueryGenerator qgen(3);
  QueryTemplate t = Tmpl(
      "define CAT = dist(categories);\n"
      "define CATS = list(categories, 3);\n"
      "'[CAT]' IN ([CATS])");
  auto sql = qgen.Instantiate(t, 1);
  ASSERT_TRUE(sql.ok());
  // list() renders three distinct quoted values.
  size_t quotes = 0;
  for (char c : *sql) quotes += c == '\'' ? 1 : 0;
  EXPECT_EQ(quotes, 8u);  // 1 value (2) + 3 list values (6)
}

TEST(QgenTest, ChoiceSubstitution) {
  QueryGenerator qgen(5);
  QueryTemplate t = Tmpl("define AGG = choice(SUM|MIN|MAX);\n[AGG](x)");
  std::set<std::string> seen;
  for (int stream = 0; stream < 30; ++stream) {
    auto sql = qgen.Instantiate(t, stream);
    ASSERT_TRUE(sql.ok());
    std::string token(Trim(sql->substr(0, sql->find('('))));
    EXPECT_TRUE(token == "SUM" || token == "MIN" || token == "MAX") << token;
    seen.insert(token);
  }
  EXPECT_GE(seen.size(), 2u);  // variation across streams
}

TEST(QgenTest, IterationVariesSubstitution) {
  QueryGenerator qgen(5);
  QueryTemplate t = Tmpl(
      "define N = random(1, 1000000, uniform);\n[N]");
  auto a = qgen.Instantiate(t, 1, 0);
  auto b = qgen.Instantiate(t, 1, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(QgenTest, Errors) {
  QueryGenerator qgen(1);
  EXPECT_FALSE(qgen.Instantiate(Tmpl("SELECT [UNDEFINED]"), 0).ok());
  EXPECT_FALSE(
      qgen.Instantiate(Tmpl("define X = bogus(1);\n[X]"), 0).ok());
  EXPECT_FALSE(
      qgen.Instantiate(Tmpl("define X = date(30, 9);\n[X]"), 0).ok());
  EXPECT_FALSE(
      qgen.Instantiate(Tmpl("define X = dist(nonexistent);\n[X]"), 0).ok());
  EXPECT_FALSE(qgen.Instantiate(Tmpl("define X y z\nSELECT 1"), 0).ok());
}

TEST(QgenTest, PermutationEdgeCases) {
  QueryGenerator qgen(1);
  EXPECT_EQ(qgen.StreamPermutation(0, 1), std::vector<int>{0});
  std::vector<int> p = qgen.StreamPermutation(5, 4);
  std::set<int> s(p.begin(), p.end());
  EXPECT_EQ(s, (std::set<int>{0, 1, 2, 3}));
}

TEST(QgenTest, FamilyAwarePermutationKeepsDrillSequencesTogether) {
  // Templates 0..5; 1,3,5 form OLAP family 9 (ids make 3 < 1 < 5 by id to
  // prove ordering follows template id, not index).
  std::vector<QueryTemplate> templates(6);
  for (int i = 0; i < 6; ++i) {
    templates[static_cast<size_t>(i)].id = 10 + i;
  }
  templates[1].olap_family = 9;
  templates[1].id = 50;
  templates[3].olap_family = 9;
  templates[3].id = 40;
  templates[5].olap_family = 9;
  templates[5].id = 60;
  QueryGenerator qgen(1);
  for (int stream = 0; stream < 8; ++stream) {
    std::vector<int> order = qgen.StreamPermutation(stream, templates);
    ASSERT_EQ(order.size(), 6u);
    // The family appears as the contiguous run 3,1,5 (ascending by id).
    auto it = std::find(order.begin(), order.end(), 3);
    ASSERT_NE(it, order.end());
    size_t pos = static_cast<size_t>(it - order.begin());
    ASSERT_LE(pos + 2, order.size() - 1 + 1);
    EXPECT_EQ(order[pos], 3);
    EXPECT_EQ(order[pos + 1], 1);
    EXPECT_EQ(order[pos + 2], 5);
    // Still a permutation.
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 6u);
  }
}

}  // namespace
}  // namespace tpcds
