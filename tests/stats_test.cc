// Statistics subsystem tests (engine/stats.h): HyperLogLog NDV error
// bounds, equi-depth histogram selectivity against exact counts, the
// checkpoint STATS sidecar round-trip (deep load and mmap attach), and
// invalidation + refresh through data maintenance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/stats.h"
#include "engine/table.h"
#include "maintenance/maintenance.h"
#include "util/bytes.h"
#include "util/random.h"

namespace tpcds {
namespace {

TEST(HyperLogLogTest, EstimateWithinErrorBoundsAtKnownNdvs) {
  // p = 12 gives sigma ~ 1.04/sqrt(4096) ~ 1.6%; 5% is > 3 sigma, and the
  // inputs are fixed, so this never flakes.
  for (int64_t ndv : {100, 1000, 10000, 100000, 1000000}) {
    HyperLogLog hll;
    for (int64_t v = 0; v < ndv; ++v) {
      hll.AddHash(HashStatsInt(v));
      // Duplicates must not move the estimate.
      if (v % 3 == 0) hll.AddHash(HashStatsInt(v));
    }
    const double est = static_cast<double>(hll.Estimate());
    EXPECT_NEAR(est, static_cast<double>(ndv), 0.05 * static_cast<double>(ndv))
        << "ndv " << ndv;
  }
}

TEST(HyperLogLogTest, SmallRangeIsNearExactViaLinearCounting) {
  for (int64_t ndv : {0, 1, 5, 50, 500}) {
    HyperLogLog hll;
    for (int64_t v = 0; v < ndv; ++v) hll.AddHash(HashStatsInt(v * 7919));
    EXPECT_NEAR(static_cast<double>(hll.Estimate()),
                static_cast<double>(ndv),
                std::max(1.0, 0.02 * static_cast<double>(ndv)))
        << "ndv " << ndv;
  }
}

TEST(HistogramTest, SelectivityTracksExactCountsOnSkewedData) {
  // Zipf-ish skew: value v appears with frequency decaying in v, so
  // equal-width buckets would be badly off while equi-depth stays close.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"v", ColumnType::kInteger}}).ok());
  EngineTable* table = db.FindTable("t");
  RngStream rng(4242);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(
        1000.0 * std::pow(rng.NextDouble(), 3.0));  // dense near 0
    values.push_back(v);
    ASSERT_TRUE(table->AppendRowStrings({std::to_string(v)}).ok());
  }
  TableStats stats = AnalyzeTable(*table);
  ASSERT_EQ(stats.columns.size(), 1u);
  const Histogram& h = stats.columns[0].histogram;
  ASSERT_FALSE(h.empty());

  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 10}, {0, 50}, {25, 100}, {100, 500}, {500, 1000},
           {0, 1000}, {900, 2000}}) {
    int64_t exact = 0;
    for (int64_t v : values) exact += (v >= lo && v <= hi) ? 1 : 0;
    double exact_frac =
        static_cast<double>(exact) / static_cast<double>(values.size());
    double est = h.SelectivityRange(lo, hi);
    // Equi-depth with 64 buckets: each partially covered bucket can be
    // off by at most its depth (~1/64); two boundary buckets + slack.
    EXPECT_NEAR(est, exact_frac, 0.05) << "range [" << lo << ", " << hi
                                       << "]";
  }
  EXPECT_EQ(h.SelectivityRange(5000, 6000), 0.0);
  EXPECT_EQ(h.SelectivityRange(10, 5), 0.0);
}

TEST(HistogramTest, SingleDistinctValueDegeneratesCleanly) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"v", ColumnType::kInteger}}).ok());
  EngineTable* table = db.FindTable("t");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table->AppendRowStrings({"7"}).ok());
  }
  TableStats stats = AnalyzeTable(*table);
  const ColumnStats& cs = stats.columns[0];
  EXPECT_EQ(cs.min, 7);
  EXPECT_EQ(cs.max, 7);
  EXPECT_EQ(cs.ndv, 1);
  EXPECT_EQ(cs.histogram.SelectivityRange(7, 7), 1.0);
  EXPECT_EQ(cs.histogram.SelectivityRange(8, 9), 0.0);
}

TEST(StatsTest, AnalyzeCountsNullsMinMaxAndExactDictNdv) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"n", ColumnType::kInteger},
                                   {"s", ColumnType::kVarchar}})
                  .ok());
  EngineTable* table = db.FindTable("t");
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::string> fields(2);
    if (i % 10 != 0) fields[0] = std::to_string(i % 250 - 25);
    fields[1] = "cat" + std::to_string(i % 16);  // low NDV -> dictionary
    ASSERT_TRUE(table->AppendRowStrings(fields).ok());
  }
  TableStats stats = AnalyzeTable(*table);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_EQ(stats.row_count, 1000);
  EXPECT_EQ(stats.columns[0].null_count, 100);
  // Residues divisible by 10 only occur at i % 10 == 0 rows, which are all
  // NULL: the observed domain is the other 225 residues, starting at -24.
  EXPECT_EQ(stats.columns[0].min, -24);
  EXPECT_EQ(stats.columns[0].max, 224);
  EXPECT_NEAR(static_cast<double>(stats.columns[0].ndv), 225.0, 12.0);
  EXPECT_FALSE(stats.columns[0].ndv_exact);

  // After dictionary encoding the string column's NDV is exact.
  EXPECT_GT(db.EncodeStorage(), 0u);
  TableStats encoded = AnalyzeTable(*table);
  EXPECT_TRUE(encoded.columns[1].ndv_exact);
  EXPECT_EQ(encoded.columns[1].ndv, 16);
}

TEST(StatsTest, SerializationRoundTripsExactly) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"n", ColumnType::kInteger},
                                   {"s", ColumnType::kVarchar}})
                  .ok());
  EngineTable* table = db.FindTable("t");
  RngStream rng(99);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::string> fields(2);
    if (rng.NextDouble() > 0.05) {
      fields[0] = std::to_string(rng.UniformInt(-1000, 1000));
    }
    fields[1] = "v" + std::to_string(rng.UniformInt(0, 400));
    ASSERT_TRUE(table->AppendRowStrings(fields).ok());
  }
  TableStats stats = AnalyzeTable(*table);
  std::string body;
  SerializeTableStats(stats, &body);
  ByteReader reader(body, "test");
  Result<TableStats> round = DeserializeTableStats(&reader);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(round->row_count, stats.row_count);
  ASSERT_EQ(round->columns.size(), stats.columns.size());
  for (size_t c = 0; c < stats.columns.size(); ++c) {
    const ColumnStats& a = stats.columns[c];
    const ColumnStats& b = round->columns[c];
    EXPECT_EQ(b.row_count, a.row_count);
    EXPECT_EQ(b.null_count, a.null_count);
    EXPECT_EQ(b.ndv, a.ndv);
    EXPECT_EQ(b.ndv_exact, a.ndv_exact);
    EXPECT_EQ(b.has_minmax, a.has_minmax);
    EXPECT_EQ(b.min, a.min);
    EXPECT_EQ(b.max, a.max);
    EXPECT_EQ(b.histogram.bounds, a.histogram.bounds);
    EXPECT_EQ(b.histogram.counts, a.histogram.counts);
    EXPECT_EQ(b.histogram.sample_rows, a.histogram.sample_rows);
  }
}

TEST(StatsTest, CheckpointRoundTripWarmsLoadAndAttach) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.001;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());
  EXPECT_GT(db.AnalyzeStorage(), 0u);
  std::shared_ptr<const TableStats> item_stats =
      db.FindTable("item")->ComputedStats();
  ASSERT_NE(item_stats, nullptr);

  const std::string dir = ::testing::TempDir() + "stats_ckpt";
  std::filesystem::remove_all(dir);
  Status saved = db.SaveCheckpoint(dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  ASSERT_TRUE(std::filesystem::exists(dir + "/STATS"));

  for (bool attach : {false, true}) {
    Database restored;
    Status st = attach ? restored.AttachCheckpoint(dir)
                       : restored.LoadCheckpoint(dir);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (const std::string& name : restored.TableNames()) {
      const EngineTable* orig = db.FindTable(name);
      std::shared_ptr<const TableStats> got =
          restored.FindTable(name)->ComputedStats();
      // Restored stats arrive warm (no analyze pass) and match the
      // originals exactly.
      ASSERT_NE(got, nullptr) << name;
      std::shared_ptr<const TableStats> want = orig->ComputedStats();
      ASSERT_NE(want, nullptr) << name;
      EXPECT_EQ(got->row_count, want->row_count) << name;
      ASSERT_EQ(got->columns.size(), want->columns.size()) << name;
      for (size_t c = 0; c < want->columns.size(); ++c) {
        EXPECT_EQ(got->columns[c].ndv, want->columns[c].ndv)
            << name << " col " << c;
        EXPECT_EQ(got->columns[c].null_count, want->columns[c].null_count)
            << name << " col " << c;
      }
    }
  }

  // A missing sidecar is not an error: stats simply recompute lazily.
  std::filesystem::remove(dir + "/STATS");
  Database cold;
  Status st = cold.LoadCheckpoint(dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(cold.FindTable("item")->ComputedStats(), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(StatsTest, MutationInvalidatesAndMaintenanceRefreshes) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.001;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());
  EXPECT_GT(db.AnalyzeStorage(), 0u);

  // Direct mutation retires the stats with the rest of the derived state.
  EngineTable* item = db.FindTable("item");
  std::shared_ptr<const TableStats> before = item->ComputedStats();
  ASSERT_NE(before, nullptr);
  const int64_t rows_before = item->num_rows();
  ASSERT_EQ(item->DeleteRows({0}), 1);
  EXPECT_EQ(item->ComputedStats(), nullptr);
  std::shared_ptr<const TableStats> after = item->GetOrComputeStats();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->row_count, rows_before - 1);
  // The retired generation's snapshot is untouched (readers may hold it).
  EXPECT_EQ(before->row_count, rows_before);

  // A maintenance generation swap leaves every maintained table with
  // freshly collected stats for the new generation.
  MaintenanceOptions dm;
  dm.scale_factor = 0.001;
  MaintenanceReport report;
  Status st = RunMaintenanceGeneration(&db, dm, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (const std::string& name : MaintainedTables()) {
    const EngineTable* table = db.FindTable(name);
    std::shared_ptr<const TableStats> stats = table->ComputedStats();
    ASSERT_NE(stats, nullptr) << name;
    EXPECT_EQ(stats->row_count, table->num_rows()) << name;
  }
}

}  // namespace
}  // namespace tpcds
