// Query-service admission-control tests: every submitted statement must
// resolve to exactly one disposition (completed / failed / shed /
// rejected-queue-full / rejected-deadline) — the no-lost-queries
// invariant — while the bounded queue applies backpressure, deadlines
// reject work that would rot in the queue, shedding displaces the newest
// lowest-priority waiter, and the global memory pool drains back to
// exactly zero. The hammer test at the bottom races 32 sessions against
// mid-run generation swaps and is part of the TSan/ASan suites.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/data_facade.h"
#include "engine/database.h"
#include "service/service.h"
#include "util/fault.h"

namespace tpcds {
namespace {

/// Leaves the global fault injector disarmed after every test.
class ServiceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

void BuildSmallTable(Database* db, const std::string& name, int64_t rows) {
  ASSERT_TRUE(db->CreateTable(name, {{"k", ColumnType::kInteger},
                                     {"grp", ColumnType::kInteger},
                                     {"txt", ColumnType::kVarchar}})
                  .ok());
  EngineTable* t = db->FindTable(name);
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(t->AppendRowStrings({std::to_string(i),
                                     std::to_string(i % 7),
                                     "txt-" + std::to_string(i % 5)})
                    .ok());
  }
}

/// A gate the on_execute hook blocks on: holds worker slots occupied so
/// admission states (queued, queue-full, shed) become deterministic.
class Gate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void WaitForBlocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ >= n; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int blocked_ = 0;
  bool open_ = false;
};

void ExpectBalanced(const ServiceCounters& c) {
  EXPECT_TRUE(c.Balanced()) << c.ToString();
}

TEST_F(ServiceTest, CompletesConcurrentStatementsFromManySessions) {
  Database db;
  BuildSmallTable(&db, "t", 2000);
  ServiceConfig config;
  config.worker_slots = 3;
  QueryService service(config, db);
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int s = 0; s < 6; ++s) {
    clients.emplace_back([&service, &completed, s] {
      Session session =
          service.OpenSession({"tenant-" + std::to_string(s)});
      for (int q = 0; q < 4; ++q) {
        QueryOutcome out =
            session.Execute("SELECT grp, COUNT(*) FROM t GROUP BY grp");
        if (out.disposition == QueryDisposition::kCompleted) {
          EXPECT_EQ(out.result.rows.size(), 7u);
          EXPECT_GT(out.generation, 0u);
          ++completed;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(completed.load(), 24);
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.submitted, 24);
  EXPECT_EQ(counters.completed, 24);
  EXPECT_LE(counters.peak_running, 3);
  EXPECT_EQ(service.CompletedLatenciesMs().size(), 24u);
}

TEST_F(ServiceTest, QueueFullAppliesBackpressureToEqualPriority) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  ServiceConfig config;
  config.worker_slots = 1;
  config.max_queue_depth = 1;
  config.on_execute = [&](const std::string&, int) { gate.Block(); };
  QueryService service(config, db);
  Session session = service.OpenSession();
  QueryTicket running = session.Submit("SELECT COUNT(*) FROM t");
  gate.WaitForBlocked(1);
  QueryTicket queued = session.Submit("SELECT COUNT(*) FROM t");
  // Same priority cannot displace the waiter: backpressure instead.
  QueryTicket rejected = session.Submit("SELECT COUNT(*) FROM t");
  const QueryOutcome& out = rejected.Wait();
  EXPECT_EQ(out.disposition, QueryDisposition::kRejectedQueueFull);
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(out.status.message().find("backpressure"), std::string::npos);
  gate.Open();
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(queued.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_TRUE(queued.Wait().waited_in_queue);
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.rejected_queue_full, 1);
  EXPECT_EQ(counters.peak_running, 1);
}

TEST_F(ServiceTest, OverloadShedsNewestLowestPriorityWaiterFirst) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  std::mutex order_mu;
  std::vector<int> execution_priorities;
  ServiceConfig config;
  config.worker_slots = 1;
  config.max_queue_depth = 2;
  config.on_execute = [&](const std::string&, int priority) {
    {
      std::lock_guard<std::mutex> lock(order_mu);
      execution_priorities.push_back(priority);
    }
    gate.Block();
  };
  QueryService service(config, db);
  Session low = service.OpenSession({"low", /*priority=*/0});
  Session high = service.OpenSession({"high", /*priority=*/5});
  QueryTicket a = low.Submit("SELECT COUNT(*) FROM t");  // occupies the slot
  gate.WaitForBlocked(1);
  QueryTicket b = low.Submit("SELECT COUNT(*) FROM t");  // queued, oldest
  QueryTicket c = low.Submit("SELECT COUNT(*) FROM t");  // queued, newest
  // Queue is now full. High-priority work displaces the NEWEST
  // lowest-priority waiter: c is shed, b survives.
  QueryTicket d = high.Submit("SELECT COUNT(*) FROM t");
  const QueryOutcome& shed = c.Wait();
  EXPECT_EQ(shed.disposition, QueryDisposition::kShed);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status.message().find("shed under overload"),
            std::string::npos);
  EXPECT_TRUE(shed.waited_in_queue);
  gate.Open();
  EXPECT_EQ(a.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(b.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(d.Wait().disposition, QueryDisposition::kCompleted);
  // The surviving queue drains priority-first: a (already running), then
  // d (priority 5), then b (priority 0).
  EXPECT_EQ(execution_priorities, (std::vector<int>{0, 5, 0}));
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.shed, 1);
  EXPECT_EQ(counters.completed, 3);
}

TEST_F(ServiceTest, DeadlineExpiresInQueueWithoutBurningASlot) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  ServiceConfig config;
  config.worker_slots = 1;
  config.on_execute = [&](const std::string& sql, int) {
    if (sql.find("grp") != std::string::npos) gate.Block();
  };
  QueryService service(config, db);
  Session session = service.OpenSession();
  QueryTicket running = session.Submit("SELECT grp FROM t");
  gate.WaitForBlocked(1);
  Session hurried = service.OpenSession({"hurried", 0, /*deadline_ms=*/20.0});
  QueryTicket doomed = hurried.Submit("SELECT COUNT(*) FROM t");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.Open();
  const QueryOutcome& out = doomed.Wait();
  EXPECT_EQ(out.disposition, QueryDisposition::kRejectedDeadline);
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(out.status.message().find("deadline expired"),
            std::string::npos);
  EXPECT_TRUE(out.waited_in_queue);
  EXPECT_GE(out.queue_ms, 20.0);
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.rejected_deadline, 1);
}

TEST_F(ServiceTest, PredictedDeadlineMissIsRejectedAtSubmit) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  ServiceConfig config;
  config.worker_slots = 1;
  config.on_execute = [&](const std::string& sql, int) {
    if (sql.find("grp") != std::string::npos) {
      gate.Block();
    } else {
      // Make the execution-time EMA large relative to the deadline below.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  QueryService service(config, db);
  Session session = service.OpenSession();
  // Seed the EMA with one slow completion.
  EXPECT_EQ(session.Execute("SELECT COUNT(*) FROM t").disposition,
            QueryDisposition::kCompleted);
  QueryTicket running = session.Submit("SELECT grp FROM t");
  gate.WaitForBlocked(1);
  // Every slot is busy and the estimated wait (~30 ms EMA) already blows
  // the 1 ms deadline: reject at submit instead of queueing a dead query.
  Session hurried = service.OpenSession({"hurried", 0, /*deadline_ms=*/1.0});
  QueryTicket doomed = hurried.Submit("SELECT COUNT(*) FROM t");
  const QueryOutcome& out = doomed.Wait();
  EXPECT_EQ(out.disposition, QueryDisposition::kRejectedDeadline);
  EXPECT_NE(out.status.message().find("would miss"), std::string::npos);
  EXPECT_FALSE(out.waited_in_queue);
  gate.Open();
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  ExpectBalanced(service.Counters());
}

TEST_F(ServiceTest, CancelResolvesQueuedStatementWithoutRunningIt) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  std::atomic<int> executed{0};
  ServiceConfig config;
  config.worker_slots = 1;
  config.on_execute = [&](const std::string&, int) {
    ++executed;
    gate.Block();
  };
  QueryService service(config, db);
  Session session = service.OpenSession();
  QueryTicket running = session.Submit("SELECT COUNT(*) FROM t");
  gate.WaitForBlocked(1);
  QueryTicket queued = session.Submit("SELECT COUNT(*) FROM t");
  queued.Cancel("caller gave up");
  const QueryOutcome& out = queued.Wait();
  EXPECT_EQ(out.disposition, QueryDisposition::kFailed);
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  gate.Open();
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(executed.load(), 1);  // the cancelled statement never ran
  ExpectBalanced(service.Counters());
}

TEST_F(ServiceTest, ShutdownShedsQueuedStatementsAndFinishesRunningOnes) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  ServiceConfig config;
  config.worker_slots = 1;
  config.on_execute = [&](const std::string&, int) { gate.Block(); };
  auto service = std::make_unique<QueryService>(config, db);
  Session session = service->OpenSession();
  QueryTicket running = session.Submit("SELECT COUNT(*) FROM t");
  gate.WaitForBlocked(1);
  QueryTicket q1 = session.Submit("SELECT COUNT(*) FROM t");
  QueryTicket q2 = session.Submit("SELECT COUNT(*) FROM t");
  std::thread destroyer([&] { service.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  destroyer.join();
  // Admitted work finished; queued work was shed — nothing lost.
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  for (const QueryTicket& t : {q1, q2}) {
    const QueryOutcome& out = t.Wait();
    EXPECT_EQ(out.disposition, QueryDisposition::kShed);
    EXPECT_NE(out.status.message().find("shutting down"),
              std::string::npos);
  }
}

TEST_F(ServiceTest, AdmitFaultSiteResolvesTheSubmitWithTheInjectedError) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  ServiceConfig config;
  config.worker_slots = 2;
  QueryService service(config, db);
  Session session = service.OpenSession();
  ASSERT_TRUE(FaultInjector::Global().Configure("admit=nth:2").ok());
  EXPECT_EQ(session.Execute("SELECT COUNT(*) FROM t").disposition,
            QueryDisposition::kCompleted);
  QueryOutcome faulted = session.Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(faulted.disposition, QueryDisposition::kFailed);
  EXPECT_NE(faulted.status.message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(session.Execute("SELECT COUNT(*) FROM t").disposition,
            QueryDisposition::kCompleted);
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.failed, 1);
  EXPECT_EQ(counters.completed, 2);
}

TEST_F(ServiceTest, ShedFaultMakesSheddingUnavailableNotLossy) {
  Database db;
  BuildSmallTable(&db, "t", 100);
  Gate gate;
  ServiceConfig config;
  config.worker_slots = 1;
  config.max_queue_depth = 1;
  config.on_execute = [&](const std::string&, int) { gate.Block(); };
  QueryService service(config, db);
  Session low = service.OpenSession({"low", 0});
  Session high = service.OpenSession({"high", 5});
  QueryTicket running = low.Submit("SELECT COUNT(*) FROM t");
  gate.WaitForBlocked(1);
  QueryTicket waiter = low.Submit("SELECT COUNT(*) FROM t");
  // The shed fault fires at the displacement point: the victim survives
  // and the incoming statement gets backpressure instead — both still
  // resolve exactly once.
  ASSERT_TRUE(FaultInjector::Global().Configure("shed=nth:1").ok());
  QueryTicket incoming = high.Submit("SELECT COUNT(*) FROM t");
  const QueryOutcome& out = incoming.Wait();
  EXPECT_EQ(out.disposition, QueryDisposition::kRejectedQueueFull);
  EXPECT_NE(out.status.message().find("shedding unavailable"),
            std::string::npos);
  gate.Open();
  EXPECT_EQ(running.Wait().disposition, QueryDisposition::kCompleted);
  EXPECT_EQ(waiter.Wait().disposition, QueryDisposition::kCompleted);
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.shed, 0);
  EXPECT_EQ(counters.rejected_queue_full, 1);
}

TEST_F(ServiceTest, GlobalMemoryPoolExhaustionFailsCleanlyAndDrains) {
  Database db;
  BuildSmallTable(&db, "fact", 20000);
  BuildSmallTable(&db, "dim", 20000);
  BuildSmallTable(&db, "tiny", 100);
  ServiceConfig config;
  config.worker_slots = 2;
  // Holds the join's early key reservations but far below the build
  // side's total, so the shared pool must trip mid-build.
  config.global_memory_budget_bytes = 128 * 1024;
  // A huge per-query budget keeps the executor's tracking path on while
  // only the shared pool can trip.
  config.default_limits.memory_budget_bytes = 1LL << 40;
  QueryService service(config, db);
  Session session = service.OpenSession();
  QueryOutcome big = session.Execute(
      "SELECT COUNT(*) FROM fact, dim WHERE fact.k = dim.k");
  EXPECT_EQ(big.disposition, QueryDisposition::kFailed);
  EXPECT_EQ(big.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(big.status.message().find("global memory pool exhausted"),
            std::string::npos);
  // A query under the pool cap still completes...
  EXPECT_EQ(session.Execute("SELECT COUNT(*) FROM tiny").disposition,
            QueryDisposition::kCompleted);
  // ...and after the mix of outcomes the pool reads exactly zero.
  ServiceCounters counters = service.Counters();
  ExpectBalanced(counters);
  EXPECT_EQ(counters.pool_bytes_in_use, 0);
  EXPECT_GT(counters.pool_peak_bytes, 0);
  EXPECT_EQ(service.memory_pool().used(), 0);
}

// The overload hammer: 32 sessions with mixed priorities and deadlines
// storm a 2-slot service with a bounded queue while another thread
// hot-swaps dataset generations underneath them. Asserts the full
// robustness contract — every submit resolves exactly once, the counters
// balance, admitted queries pin exactly one published generation, and the
// global memory pool drains to zero. Runs under TSan/ASan via
// scripts/check_tsan.sh.
TEST_F(ServiceTest, HammerNoQueryLostAcrossGenerationSwaps) {
  Database db;
  BuildSmallTable(&db, "t", 4000);
  DataFacadeProvider provider;
  provider.Publish(db.Snapshot());
  ServiceConfig config;
  config.worker_slots = 2;
  config.max_queue_depth = 8;
  config.global_memory_budget_bytes = 1LL << 30;
  config.default_limits.memory_budget_bytes = 1LL << 40;
  constexpr int kSessions = 32;
  constexpr int kStatementsPerSession = 6;
  std::atomic<int64_t> resolutions{0};
  {
    QueryService service(config, &provider);
    std::atomic<bool> stop_swapping{false};
    std::thread swapper([&] {
      while (!stop_swapping.load(std::memory_order_relaxed)) {
        provider.Publish(db.Snapshot());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    std::vector<std::thread> clients;
    for (int s = 0; s < kSessions; ++s) {
      clients.emplace_back([&, s] {
        SessionOptions options;
        options.tenant = "hammer-" + std::to_string(s);
        options.priority = s % 3;
        if (s % 4 == 0) options.deadline_ms = 50.0;
        Session session = service.OpenSession(options);
        for (int q = 0; q < kStatementsPerSession; ++q) {
          QueryOutcome out = session.Execute(
              q % 2 == 0 ? "SELECT grp, COUNT(*) FROM t GROUP BY grp"
                         : "SELECT COUNT(*) FROM t WHERE k < 2000");
          switch (out.disposition) {
            case QueryDisposition::kCompleted:
              EXPECT_TRUE(out.status.ok());
              EXPECT_GT(out.generation, 0u);
              break;
            case QueryDisposition::kFailed:
            case QueryDisposition::kShed:
            case QueryDisposition::kRejectedQueueFull:
            case QueryDisposition::kRejectedDeadline:
              EXPECT_FALSE(out.status.ok());
              break;
          }
          ++resolutions;
        }
      });
    }
    for (std::thread& c : clients) c.join();
    stop_swapping.store(true, std::memory_order_relaxed);
    swapper.join();
    ServiceCounters counters = service.Counters();
    ExpectBalanced(counters);
    EXPECT_EQ(counters.submitted, kSessions * kStatementsPerSession);
    EXPECT_EQ(resolutions.load(), kSessions * kStatementsPerSession);
    EXPECT_LE(counters.peak_running, 2);
    EXPECT_EQ(counters.pool_bytes_in_use, 0);
    EXPECT_EQ(service.memory_pool().used(), 0);
  }
}

}  // namespace
}  // namespace tpcds
