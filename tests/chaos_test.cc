// Chaos-harness tests: workload-profile determinism (identical seeds give
// identical bind sequences; Zipf skew matches the analytic CDF; session
// chains tighten IN-list predicates as strict prefixes), bit-reproducible
// fault triggers and time-phased chaos windows, and the full duty-cycle
// crash drill — kill the DM mid-generation under concurrent skewed
// streams, recover from checkpoint + WAL, and verify every standing
// invariant (balanced counters, drained pool, no lost queries, bounded
// retries, byte-identical recovery, clean constraint audit).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "driver/drill.h"
#include "driver/profile.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/fault.h"
#include "util/random.h"

namespace tpcds {
namespace {

namespace fs = std::filesystem;

// --- workload-profile determinism ----------------------------------------

std::vector<std::string> InstantiateSweep(const WorkloadProfile& profile,
                                          int streams, int length) {
  QueryGenerator qgen(19620718);
  const std::vector<QueryTemplate>& templates = AllTemplates();
  std::vector<std::string> sql;
  for (int s = 1; s <= streams; ++s) {
    std::vector<ProfileSlot> slots =
        qgen.ProfileSequence(s, templates, profile.bind, length);
    EXPECT_EQ(slots.size(), static_cast<size_t>(length));
    for (const ProfileSlot& slot : slots) {
      Result<std::string> one =
          qgen.Instantiate(templates[slot.template_index], s, 0,
                           &profile.bind, slot.chain_step);
      EXPECT_TRUE(one.ok()) << one.status().ToString();
      if (one.ok()) sql.push_back(*one);
    }
  }
  return sql;
}

TEST(ChaosProfileTest, IdenticalSeedsGiveIdenticalBindSequences) {
  Result<WorkloadProfile> profile =
      WorkloadProfile::Parse("hot-skew,chain=2");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  std::vector<std::string> first = InstantiateSweep(*profile, 4, 20);
  std::vector<std::string> second = InstantiateSweep(*profile, 4, 20);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "sweep diverged at statement " << i;
  }
}

TEST(ChaosProfileTest, SeedSaltChangesBindSequences) {
  Result<WorkloadProfile> base = WorkloadProfile::Preset("hot-skew");
  ASSERT_TRUE(base.ok());
  Result<WorkloadProfile> salted =
      WorkloadProfile::Parse("hot-skew,salt=7");
  ASSERT_TRUE(salted.ok());
  std::vector<std::string> a = InstantiateSweep(*base, 2, 10);
  std::vector<std::string> b = InstantiateSweep(*salted, 2, 10);
  ASSERT_EQ(a.size(), b.size());
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) any_differs |= a[i] != b[i];
  EXPECT_TRUE(any_differs) << "salt=7 produced the identical sweep";
}

TEST(ChaosProfileTest, ZipfSkewMatchesAnalyticCdf) {
  // P(rank < 10 of 100) = (10/100)^(1-theta): ~0.631 at theta 0.8,
  // exactly 0.1 at theta 0 (uniform). 20k draws put the standard error
  // near 0.003, so +/-0.02 is a generous six-sigma band.
  constexpr int kDraws = 20000;
  RngStream skewed(42);
  int hot = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (skewed.ZipfInt(100, 0.8) < 10) ++hot;
  }
  double hot_frac = static_cast<double>(hot) / kDraws;
  EXPECT_NEAR(hot_frac, 0.631, 0.02);

  RngStream uniform(42);
  int low = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (uniform.ZipfInt(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kDraws, 0.10, 0.02);
}

TEST(ChaosProfileTest, UniformProfileIsByteIdenticalToClassicalPath) {
  QueryGenerator qgen(19620718);
  BindProfile uniform;  // all defaults
  for (const QueryTemplate& t : AllTemplates()) {
    Result<std::string> classical = qgen.Instantiate(t, 3);
    Result<std::string> profiled = qgen.Instantiate(t, 3, 0, &uniform, 0);
    ASSERT_TRUE(classical.ok()) << t.name;
    ASSERT_TRUE(profiled.ok()) << t.name;
    EXPECT_EQ(*classical, *profiled) << t.name;
  }
}

TEST(ChaosProfileTest, MixWeightsSkewClassCounts) {
  QueryGenerator qgen(19620718);
  const std::vector<QueryTemplate>& templates = AllTemplates();
  int class_total[3] = {0, 0, 0};
  for (const QueryTemplate& t : templates) {
    ++class_total[static_cast<int>(t.query_class)];
  }
  Result<WorkloadProfile> reporting = WorkloadProfile::Preset("reporting");
  ASSERT_TRUE(reporting.ok());
  int picked[3] = {0, 0, 0};
  constexpr int kLength = 300;
  for (int s = 1; s <= 4; ++s) {
    for (const ProfileSlot& slot :
         qgen.ProfileSequence(s, templates, reporting->bind, kLength)) {
      ++picked[static_cast<int>(
          templates[slot.template_index].query_class)];
    }
  }
  // Reporting templates are drawn 4x as often per unit weight; their
  // share of picks must exceed their share of the template catalog.
  double catalog_share =
      static_cast<double>(class_total[1]) / templates.size();
  double picked_share =
      static_cast<double>(picked[1]) / (4.0 * kLength);
  EXPECT_GT(picked_share, catalog_share + 0.10)
      << "reporting share " << picked_share << " vs catalog share "
      << catalog_share;
}

// Extracts the contents of the first "IN (...)" in the SQL.
std::string InListContents(const std::string& sql) {
  size_t at = sql.find(" IN (");
  if (at == std::string::npos) return "";
  size_t open = at + 5;
  size_t close = sql.find(')', open);
  if (close == std::string::npos) return "";
  return sql.substr(open, close - open);
}

TEST(ChaosProfileTest, SessionChainTightensInListAsStrictPrefix) {
  // q20 binds CATS = list(categories, 3): step 0 keeps all three picks,
  // each later step drops the last one (floor 1), so every step's
  // IN-list is a strict textual prefix of the step before it while all
  // scalar binds stay fixed.
  const QueryTemplate* q20 = FindTemplate(20);
  ASSERT_NE(q20, nullptr);
  QueryGenerator qgen(19620718);
  BindProfile bind;  // chain refinement is orthogonal to skew
  std::vector<std::string> lists;
  for (int step = 0; step < 3; ++step) {
    Result<std::string> sql = qgen.Instantiate(*q20, 2, 0, &bind, step);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    std::string in = InListContents(*sql);
    ASSERT_FALSE(in.empty()) << *sql;
    lists.push_back(in);
  }
  EXPECT_LT(lists[1].size(), lists[0].size());
  EXPECT_LT(lists[2].size(), lists[1].size());
  EXPECT_EQ(lists[0].compare(0, lists[1].size(), lists[1]), 0)
      << "step 1 is not a prefix of step 0";
  EXPECT_EQ(lists[1].compare(0, lists[2].size(), lists[2]), 0)
      << "step 2 is not a prefix of step 1";
}

// --- chaos schedule & trigger determinism --------------------------------

class ChaosScheduleTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

TEST_F(ChaosScheduleTest, ParseRoundTripsAndRejectsBadSpecs) {
  Result<ChaosSchedule> sched =
      ChaosSchedule::Parse("wal-append@50+200=nth:3,shed@0+500=every:2");
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();
  ASSERT_EQ(sched->windows.size(), 2u);
  EXPECT_EQ(sched->windows[0].site, "wal-append");
  EXPECT_DOUBLE_EQ(sched->windows[0].start_ms, 50.0);
  EXPECT_DOUBLE_EQ(sched->windows[0].duration_ms, 200.0);
  EXPECT_EQ(sched->windows[0].trigger.kind, FaultTrigger::Kind::kNth);
  EXPECT_EQ(sched->windows[0].trigger.n, 3u);
  Result<ChaosSchedule> reparsed = ChaosSchedule::Parse(sched->ToString());
  ASSERT_TRUE(reparsed.ok()) << sched->ToString();
  EXPECT_EQ(reparsed->ToString(), sched->ToString());

  EXPECT_FALSE(ChaosSchedule::Parse("no-such-site@0+10=nth:1").ok());
  EXPECT_FALSE(ChaosSchedule::Parse("morsel+10=nth:1").ok());
  EXPECT_FALSE(ChaosSchedule::Parse("morsel@0+10=sometimes").ok());
}

std::vector<int> FiringPattern(const std::string& spec, const char* site,
                               int calls) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Clear();
  EXPECT_TRUE(injector.Configure(spec).ok());
  std::vector<int> fired;
  for (int i = 0; i < calls; ++i) {
    if (!injector.Maybe(site).ok()) fired.push_back(i);
  }
  injector.Clear();
  return fired;
}

TEST_F(ChaosScheduleTest, ProbFiringSetIsBitReproducible) {
  std::vector<int> first = FiringPattern("morsel=prob:0.3", "morsel", 500);
  std::vector<int> again = FiringPattern("morsel=prob:0.3", "morsel", 500);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, again);

  // Bare prob derives its seed from the site, so two sites armed with
  // the same probability never fire in lockstep...
  std::vector<int> other = FiringPattern("alloc=prob:0.3", "alloc", 500);
  EXPECT_NE(first, other);

  // ...while an explicit seed pins the firing set regardless of site.
  std::vector<int> seeded_a =
      FiringPattern("morsel=prob:0.3:42", "morsel", 500);
  std::vector<int> seeded_b =
      FiringPattern("alloc=prob:0.3:42", "alloc", 500);
  EXPECT_EQ(seeded_a, seeded_b);
}

TEST_F(ChaosScheduleTest, WindowFiresDeterministicallyOnceStarted) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Clear();
  Result<ChaosSchedule> sched =
      ChaosSchedule::Parse("morsel@0+60000=nth:3");
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(injector.ArmSchedule(*sched).ok());

  // Dormant until the clock starts: no window may fire.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(injector.Maybe("morsel").ok());
  EXPECT_EQ(injector.FiredAt("morsel"), 0);

  // Window call indices count from the first call observed inside the
  // window, so exactly the third post-start call fails.
  injector.StartScheduleClock();
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    if (!injector.Maybe("morsel").ok()) fired.push_back(i);
  }
  EXPECT_EQ(fired, std::vector<int>{2});
  EXPECT_EQ(injector.FiredAt("morsel"), 1);
  EXPECT_NE(injector.ScheduleReport().find("1 fired"), std::string::npos)
      << injector.ScheduleReport();
  injector.StopSchedule();
  EXPECT_TRUE(injector.Maybe("morsel").ok());
}

// --- the duty-cycle crash drill ------------------------------------------

std::string DrillScratch(const std::string& leaf) {
  std::string path = ::testing::TempDir() + "chaos_test_" + leaf;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

BenchmarkConfig DrillBase(const std::string& scratch) {
  BenchmarkConfig base;
  base.scale_factor = 0.002;
  base.streams = 8;
  base.queries_per_stream = 3;
  base.service_worker_slots = 2;
  base.service_queue_depth = 6;
  base.service_priority_spread = 2;
  base.checkpoint_dir = scratch + "/ckpt";
  base.wal_path = scratch + "/drill.wal";
  return base;
}

TEST(ChaosDrillTest, DutyCycleCrashDrillRecoversWithInvariantsIntact) {
  std::string scratch = DrillScratch("crash_drill");
  DrillConfig config;
  config.base = DrillBase(scratch);
  Result<WorkloadProfile> profile =
      WorkloadProfile::Parse("hot-skew,chain=2,refresh_ms=15,refresh_cycles=2");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  config.base.profile = *profile;
  Result<ChaosSchedule> sched =
      ChaosSchedule::Parse("maintenance@0+60000=nth:2");
  ASSERT_TRUE(sched.ok());
  config.schedule = *sched;

  Result<DrillResult> drill = RunChaosDrill(config);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(drill.ok()) << drill.status().ToString();

  // The fault window killed a DM generation mid-build...
  EXPECT_EQ(drill->refresh_cycles_attempted, 2);
  EXPECT_GE(drill->faults_fired, 1);
  // ...and every standing invariant still holds.
  EXPECT_TRUE(drill->counters_balanced) << drill->counters.ToString();
  EXPECT_TRUE(drill->pool_drained) << drill->counters.ToString();
  EXPECT_TRUE(drill->no_lost_queries)
      << drill->executions.size() << " of " << drill->queries_expected;
  EXPECT_TRUE(drill->retries_bounded);
  EXPECT_TRUE(drill->recovery_ran);
  EXPECT_TRUE(drill->recovery_verified)
      << "recovered state diverges from live state";
  EXPECT_TRUE(drill->audit_clean) << drill->failures.ToString();
  EXPECT_TRUE(drill->Passed()) << drill->ToString();
  fs::remove_all(scratch);
}

TEST(ChaosDrillTest, QuietDrillPassesWithNoFaults) {
  std::string scratch = DrillScratch("quiet_drill");
  DrillConfig config;
  config.base = DrillBase(scratch);
  config.base.streams = 4;

  Result<DrillResult> drill = RunChaosDrill(config);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(drill.ok()) << drill.status().ToString();
  EXPECT_EQ(drill->faults_fired, 0);
  EXPECT_EQ(drill->refresh_cycles_failed, 0);
  EXPECT_EQ(drill->executions.size(),
            static_cast<size_t>(drill->queries_expected));
  EXPECT_TRUE(drill->Passed()) << drill->ToString();
  fs::remove_all(scratch);
}

TEST(ChaosDrillTest, DrillRequiresDurablePaths) {
  DrillConfig config;
  config.base.scale_factor = 0.002;
  config.base.checkpoint_dir.clear();
  config.base.wal_path.clear();
  EXPECT_FALSE(RunChaosDrill(config).ok());
}

}  // namespace
}  // namespace tpcds
