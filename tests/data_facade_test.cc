// DataFacade / generation hot-swap tests: copy-on-write forks, atomic
// publication, reader pinning (a query sees exactly one generation even
// while maintenance swaps underneath it), and retirement of
// generation-scoped derived state. The concurrency tests are the TSan
// targets for the provider — scripts/check_tsan.sh runs this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/audit.h"
#include "engine/data_facade.h"
#include "engine/database.h"
#include "maintenance/maintenance.h"

namespace tpcds {
namespace {

/// A one-column table whose every row holds the same marker value; the
/// swap tests republish generations where marker == generation id, so a
/// torn read (rows from two generations in one scan) is detectable as
/// MIN(g) != MAX(g).
void BuildProbe(Database* db, int64_t rows, int64_t marker) {
  ASSERT_TRUE(db->CreateTable("probe", {{"g", ColumnType::kInteger}}).ok());
  EngineTable* t = db->FindTable("probe");
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(t->AppendRowStrings({std::to_string(marker)}).ok());
  }
}

TEST(DataFacadeTest, SnapshotPinsGenerationAndTables) {
  Database db;
  BuildProbe(&db, 8, 1);
  std::shared_ptr<const DataFacade> snap = db.Snapshot();
  EXPECT_EQ(snap->generation(), 1u);
  EXPECT_EQ(snap->TableCount(), 1u);
  ASSERT_NE(snap->FindTable("probe"), nullptr);
  EXPECT_EQ(snap->FindTable("probe")->num_rows(), 8);
  EXPECT_EQ(snap->FindTable("nope"), nullptr);
  // The snapshot shares storage with the live database (no deep copy).
  EXPECT_EQ(snap->FindTable("probe"), db.FindTable("probe"));
}

TEST(DataFacadeTest, ForkIsCopyOnWriteAndAdoptSwapsAtomically) {
  Database db;
  BuildProbe(&db, 8, 1);
  ASSERT_TRUE(db.CreateTable("shared", {{"x", ColumnType::kInteger}}).ok());
  ASSERT_TRUE(db.FindTable("shared")->AppendRowStrings({"7"}).ok());

  std::shared_ptr<const DataFacade> pinned = db.Snapshot();
  Result<std::unique_ptr<Database>> fork = db.ForkForMaintenance({"probe"});
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();

  // Only the named table is cloned; the rest is shared by pointer.
  EXPECT_NE((*fork)->FindTable("probe"), db.FindTable("probe"));
  EXPECT_EQ((*fork)->FindTable("shared"), db.FindTable("shared"));

  // Mutating the fork leaves the live database and the pinned facade
  // untouched.
  EngineTable* forked = (*fork)->FindTable("probe");
  for (int64_t r = 0; r < forked->num_rows(); ++r) {
    forked->SetValue(r, 0, Value::Int(2));
  }
  EXPECT_EQ(db.FindTable("probe")->GetValue(0, 0).AsInt(), 1);
  EXPECT_EQ(pinned->FindTable("probe")->GetValue(0, 0).AsInt(), 1);

  uint64_t before = db.generation();
  ASSERT_TRUE(db.AdoptTablesFrom(fork->get()).ok());
  EXPECT_EQ(db.generation(), before + 1);
  EXPECT_EQ(db.FindTable("probe")->GetValue(0, 0).AsInt(), 2);
  // The pre-swap generation stays alive and unchanged for its holder.
  EXPECT_EQ(pinned->generation(), before);
  EXPECT_EQ(pinned->FindTable("probe")->GetValue(0, 0).AsInt(), 1);
}

TEST(DataFacadeTest, ForkUnknownTableFails) {
  Database db;
  BuildProbe(&db, 2, 1);
  Result<std::unique_ptr<Database>> fork =
      db.ForkForMaintenance({"no_such_table"});
  EXPECT_FALSE(fork.ok());
}

TEST(DataFacadeTest, ProviderPublishAndAcquire) {
  Database db;
  BuildProbe(&db, 4, 1);
  DataFacadeProvider provider;
  EXPECT_EQ(provider.Acquire(), nullptr);
  EXPECT_EQ(provider.PublishCount(), 0);
  provider.Publish(db.Snapshot());
  std::shared_ptr<const DataFacade> first = provider.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->generation(), 1u);
  // Swap in generation 2; the earlier Acquire keeps generation 1 alive.
  Result<std::unique_ptr<Database>> fork = db.ForkForMaintenance({"probe"});
  ASSERT_TRUE(fork.ok());
  ASSERT_TRUE(db.AdoptTablesFrom(fork->get()).ok());
  provider.Publish(db.Snapshot());
  EXPECT_EQ(provider.PublishCount(), 2);
  EXPECT_EQ(provider.Acquire()->generation(), 2u);
  EXPECT_EQ(first->generation(), 1u);
}

TEST(DataFacadeTest, RetiredDerivedStateStaysValidForHolders) {
  Database db;
  BuildProbe(&db, 16, 3);
  EngineTable* t = db.FindTable("probe");
  const EngineTable::HashIndex& index = t->GetOrBuildIntIndex(0);
  EXPECT_EQ(t->RetiredDerivedCount(), 0u);
  // Invalidation retires the bundle instead of destroying it: a reader
  // mid-probe keeps a consistent view.
  t->InvalidateIndexes();
  EXPECT_EQ(t->RetiredDerivedCount(), 1u);
  auto hit = index.find(3);
  ASSERT_NE(hit, index.end());
  EXPECT_EQ(hit->second.size(), 16u);
  // A rebuilt index is a fresh bundle, not the retired one.
  const EngineTable::HashIndex& rebuilt = t->GetOrBuildIntIndex(0);
  EXPECT_NE(&rebuilt, &index);
}

TEST(DataFacadeTest, MaintenanceGenerationPublishesToProvider) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.001;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());
  DataFacadeProvider provider;
  provider.Publish(db.Snapshot());
  std::shared_ptr<const DataFacade> old_gen = provider.Acquire();
  uint64_t old_hash = HashFacadeContent(*old_gen);

  MaintenanceOptions dm;
  dm.scale_factor = 0.001;
  dm.dimension_updates = 5;
  MaintenanceReport report;
  Status st = RunMaintenanceGeneration(&db, dm, &report, nullptr, &provider);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.operations.size(), 12u);

  std::shared_ptr<const DataFacade> new_gen = provider.Acquire();
  EXPECT_EQ(new_gen->generation(), old_gen->generation() + 1);
  EXPECT_NE(HashFacadeContent(*new_gen), old_hash);
  // The pinned pre-swap generation is bit-for-bit what it was.
  EXPECT_EQ(HashFacadeContent(*old_gen), old_hash);
}

/// TSan target: N reader threads hammer QueryFacade while the main thread
/// publishes M copy-on-write generation swaps. Every row of generation k
/// carries marker k, so any query observing two generations at once (or
/// a generation that does not match its pinned facade) fails.
TEST(DataFacadeConcurrencyTest, ReadersSeeExactlyOneGenerationPerQuery) {
  constexpr int kReaders = 4;
  constexpr int kSwaps = 24;
  constexpr int64_t kRows = 64;

  Database db;
  BuildProbe(&db, kRows, 1);
  DataFacadeProvider provider;
  provider.Publish(db.Snapshot());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<long long> queries_run{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      // do-while: even if the swapper finishes before this thread is
      // scheduled, every reader still runs at least one pinned query.
      do {
        std::shared_ptr<const DataFacade> facade = provider.Acquire();
        Result<QueryResult> r = QueryFacade(
            *facade, "SELECT MIN(g), MAX(g), COUNT(*) FROM probe",
            PlannerOptions{});
        if (!r.ok() || r->rows.size() != 1) {
          ++violations;
          continue;
        }
        int64_t min_g = r->rows[0][0].AsInt();
        int64_t max_g = r->rows[0][1].AsInt();
        int64_t count = r->rows[0][2].AsInt();
        // One generation, and exactly the one the facade is pinned to.
        if (min_g != max_g || count != kRows ||
            min_g != static_cast<int64_t>(facade->generation())) {
          ++violations;
        }
        ++queries_run;
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (int swap = 0; swap < kSwaps; ++swap) {
    Result<std::unique_ptr<Database>> fork = db.ForkForMaintenance({"probe"});
    ASSERT_TRUE(fork.ok()) << fork.status().ToString();
    EngineTable* t = (*fork)->FindTable("probe");
    int64_t marker = static_cast<int64_t>(db.generation()) + 1;
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      t->SetValue(r, 0, Value::Int(marker));
    }
    ASSERT_TRUE(db.AdoptTablesFrom(fork->get()).ok());
    provider.Publish(db.Snapshot());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(queries_run.load(), 0);
  EXPECT_EQ(provider.Acquire()->generation(),
            static_cast<uint64_t>(1 + kSwaps));
  EXPECT_EQ(provider.PublishCount(), 1 + kSwaps);
}

}  // namespace
}  // namespace tpcds
