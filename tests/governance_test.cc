// Query-governance tests: deadlines, memory/row budgets and external
// cancellation must stop queries with clean error statuses (checked at
// morsel boundaries), governed-but-under-limit queries must be
// byte-identical to ungoverned runs, and the fault-injection harness must
// drive a full benchmark through every failure site without crashing or
// breaking invariants.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.h"
#include "engine/database.h"
#include "engine/governor.h"
#include "maintenance/maintenance.h"
#include "util/fault.h"

namespace tpcds {
namespace {

/// A fault-injector guard: every test leaves the global injector disarmed
/// so governance state cannot leak into later tests in the binary.
class GovernanceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Clear(); }
};

/// Builds a table of `rows` rows — enough to span many 1024-row morsels.
void BuildWideTable(Database* db, const std::string& name, int64_t rows) {
  ASSERT_TRUE(db->CreateTable(name, {{"k", ColumnType::kInteger},
                                     {"grp", ColumnType::kInteger},
                                     {"txt", ColumnType::kVarchar}})
                  .ok());
  EngineTable* t = db->FindTable(name);
  for (int64_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(t->AppendRowStrings({std::to_string(i),
                                     std::to_string(i % 97),
                                     "filler-" + std::to_string(i % 13)})
                    .ok());
  }
}

TEST_F(GovernanceTest, DeadlineTripsMidScanWithCleanError) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  PlannerOptions options;
  options.timeout_ms = 1e-6;  // expires before the first morsel completes
  Result<QueryResult> r =
      db.Query("SELECT grp, COUNT(*) FROM t GROUP BY grp", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos);
}

TEST_F(GovernanceTest, MemoryBudgetTripsMidHashBuild) {
  Database db;
  BuildWideTable(&db, "fact", 20000);
  BuildWideTable(&db, "dim", 20000);
  PlannerOptions options;
  options.memory_budget_bytes = 4096;  // far below the build side's keys
  Result<QueryResult> r = db.Query(
      "SELECT COUNT(*) FROM fact, dim WHERE fact.k = dim.k", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
}

TEST_F(GovernanceTest, RowBudgetTripsWithinOneMorselAtAnyParallelism) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  for (int parallelism : {1, 2, 8}) {
    PlannerOptions options;
    options.parallelism = parallelism;
    options.row_budget = 2000;
    Result<QueryResult> r = db.Query("SELECT k, txt FROM t", options);
    ASSERT_FALSE(r.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << parallelism;
    EXPECT_NE(r.status().message().find("row budget"), std::string::npos);
  }
}

TEST_F(GovernanceTest, UnderLimitQueriesAreByteIdenticalToUngoverned) {
  Database db;
  BuildWideTable(&db, "t", 20000);
  const std::string sql =
      "SELECT grp, COUNT(*), MIN(txt) FROM t GROUP BY grp ORDER BY 2 DESC, 1";
  Result<QueryResult> baseline = db.Query(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (int parallelism : {1, 2, 8}) {
    PlannerOptions options;
    options.parallelism = parallelism;
    options.timeout_ms = 60000.0;
    options.memory_budget_bytes = 1LL << 30;
    options.row_budget = 1LL << 30;
    Result<QueryResult> governed = db.Query(sql, options);
    ASSERT_TRUE(governed.ok()) << governed.status().ToString();
    ASSERT_EQ(governed->rows.size(), baseline->rows.size());
    for (size_t i = 0; i < baseline->rows.size(); ++i) {
      for (size_t c = 0; c < baseline->rows[i].size(); ++c) {
        EXPECT_EQ(Value::Compare(governed->rows[i][c], baseline->rows[i][c]),
                  0)
            << "parallelism " << parallelism << " row " << i << " col " << c;
      }
    }
  }
}

TEST_F(GovernanceTest, RowBudgetTripsOnVectorizedScanPath) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  // The kernelizable WHERE makes the scan take the vectorized fast path
  // (confirmed by stats below); the budget must still trip there.
  const std::string sql = "SELECT k, txt FROM t WHERE k >= 0";
  {
    PlannerOptions options;
    ExecStats stats;
    Result<QueryResult> ok = db.Query(sql, options, &stats);
    ASSERT_TRUE(ok.ok());
    bool vectorized_scan = false;
    for (const auto& op : stats.operators) vectorized_scan |= op.vectorized;
    ASSERT_TRUE(vectorized_scan) << "query did not take the vectorized path";
  }
  for (int parallelism : {1, 4}) {
    PlannerOptions options;
    options.parallelism = parallelism;
    options.row_budget = 2000;
    Result<QueryResult> r = db.Query(sql, options);
    ASSERT_FALSE(r.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << parallelism;
    EXPECT_NE(r.status().message().find("row budget"), std::string::npos);
  }
}

TEST_F(GovernanceTest, DeadlineTripsOnVectorizedScanPath) {
  Database db;
  BuildWideTable(&db, "t", 50000);
  PlannerOptions options;
  options.timeout_ms = 1e-6;  // expires before the first morsel completes
  Result<QueryResult> r =
      db.Query("SELECT COUNT(*) FROM t WHERE k BETWEEN 100 AND 40000",
               options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernanceTest, MemoryBudgetTripsWithJoinBloomPushdownActive) {
  Database db;
  BuildWideTable(&db, "fact", 20000);
  // Small enough relative to the fact table that the join registers its
  // probe-side key pushdown (the selectivity gate requires it).
  BuildWideTable(&db, "dim", 2000);
  PlannerOptions options;
  options.memory_budget_bytes = 4096;  // far below the build side's keys
  // Vectorized execution is on by default, so this join builds its Bloom
  // filter and registers a probe-side pushdown; the budget still trips.
  ASSERT_TRUE(options.vectorized_execution);
  Result<QueryResult> r = db.Query(
      "SELECT COUNT(*) FROM fact, dim WHERE fact.k = dim.k", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
}

TEST_F(GovernanceTest, CancelBeforeStartStopsImmediately) {
  Database db;
  BuildWideTable(&db, "t", 5000);
  PlannerOptions options;
  QueryGovernor governor;
  governor.Cancel("test cancel");
  Result<QueryResult> r =
      db.Query("SELECT COUNT(*) FROM t", options, nullptr, &governor);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernanceTest, CancellationRacesMorselWorkersCleanly) {
  Database db;
  BuildWideTable(&db, "fact", 60000);
  BuildWideTable(&db, "dim", 60000);
  // Repeat the race: a worker pool mid-join against a concurrent Cancel.
  // Under TSan this doubles as a data-race check on the trip path.
  for (int round = 0; round < 5; ++round) {
    PlannerOptions options;
    options.parallelism = 4;
    QueryGovernor governor;
    std::thread canceller([&governor] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      governor.Cancel("raced cancel");
    });
    Result<QueryResult> r = db.Query(
        "SELECT COUNT(*), SUM(fact.grp) FROM fact, dim "
        "WHERE fact.k = dim.k",
        options, nullptr, &governor);
    canceller.join();
    // Either the query finished first or it was cancelled — both clean.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << "round "
                                                           << round;
    }
  }
}

TEST_F(GovernanceTest, ResourcePoolChargesNothingOnFailedReservation) {
  ResourcePool pool(1000);
  EXPECT_TRUE(pool.TryReserve(600));
  EXPECT_EQ(pool.used(), 600);
  // Over capacity: rejected, and the failed attempt charges nothing.
  EXPECT_FALSE(pool.TryReserve(500));
  EXPECT_EQ(pool.used(), 600);
  EXPECT_TRUE(pool.TryReserve(400));
  EXPECT_EQ(pool.used(), 1000);
  EXPECT_EQ(pool.peak(), 1000);
  pool.Release(1000);
  EXPECT_EQ(pool.used(), 0);
  EXPECT_EQ(pool.peak(), 1000);  // peak is a high-water mark, not usage
  // Capacity 0 = unlimited, but usage and peak still track.
  ResourcePool unlimited;
  EXPECT_TRUE(unlimited.TryReserve(1LL << 40));
  EXPECT_EQ(unlimited.used(), 1LL << 40);
  unlimited.Release(1LL << 40);
  EXPECT_EQ(unlimited.used(), 0);
}

TEST_F(GovernanceTest, ParentPoolDrainsToZeroAfterMixedQueryOutcomes) {
  // The admission-control contract: whatever mix of fates queries meet —
  // clean success, explicit Release, cancellation, or teardown with bytes
  // still outstanding (a shed or tripped query) — the shared pool must
  // read exactly zero once every governor is gone.
  ResourcePool pool(1LL << 20);
  {
    GovernorLimits limits;
    limits.memory_budget_bytes = 1LL << 30;
    // Success path: reserve, then explicit symmetric release.
    QueryGovernor ok_query(limits);
    ok_query.set_parent_pool(&pool);
    EXPECT_TRUE(ok_query.Reserve(4096));
    EXPECT_EQ(pool.used(), 4096);
    ok_query.Release(4096);
    EXPECT_EQ(pool.used(), 0);
    // Cancelled mid-flight with bytes outstanding: destructor credits.
    QueryGovernor cancelled(limits);
    cancelled.set_parent_pool(&pool);
    EXPECT_TRUE(cancelled.Reserve(8192));
    cancelled.Cancel("shed under overload");
    EXPECT_EQ(pool.used(), 8192);
    // Tripped by the pool itself: the failed reservation charges nothing.
    QueryGovernor over(limits);
    over.set_parent_pool(&pool);
    EXPECT_FALSE(over.Reserve(1LL << 20));
    EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(over.status().message().find("global memory pool exhausted"),
              std::string::npos);
    EXPECT_EQ(pool.used(), 8192);
  }
  // Every governor destroyed: the pool reads exactly zero.
  EXPECT_EQ(pool.used(), 0);
  EXPECT_EQ(pool.peak(), 8192);
}

TEST_F(GovernanceTest, PoolTripFailsTheQueryWithResourceExhausted) {
  Database db;
  BuildWideTable(&db, "fact", 20000);
  BuildWideTable(&db, "dim", 20000);
  // The hash build charges the pool key by key: big enough that early
  // reservations land (the pool sees real usage), far below the build
  // side's total (so the pool must trip mid-build).
  ResourcePool pool(128 * 1024);
  GovernorLimits limits;
  limits.memory_budget_bytes = 1LL << 40;  // only the pool can trip
  {
    QueryGovernor governor(limits);
    governor.set_parent_pool(&pool);
    PlannerOptions options;
    Result<QueryResult> r =
        db.Query("SELECT COUNT(*) FROM fact, dim WHERE fact.k = dim.k",
                 options, nullptr, &governor);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status().message().find("global memory pool exhausted"),
              std::string::npos);
    EXPECT_GT(pool.peak(), 0);
  }
  EXPECT_EQ(pool.used(), 0);  // governor teardown drained the charge
}

TEST_F(GovernanceTest, FaultSpecParsingRejectsUnknownSites) {
  EXPECT_FALSE(FaultInjector::Global().Configure("bogus=nth:1").ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("morsel=sometimes").ok());
  EXPECT_TRUE(FaultInjector::Global().Configure("morsel=nth:5").ok());
  EXPECT_TRUE(FaultInjector::Global().enabled());
  FaultInjector::Global().Clear();
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(GovernanceTest, NthFaultFiresExactlyOnce) {
  ASSERT_TRUE(FaultInjector::Global().Configure("morsel=nth:2").ok());
  EXPECT_TRUE(FaultInjector::Global().Maybe("morsel").ok());
  EXPECT_FALSE(FaultInjector::Global().Maybe("morsel").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultInjector::Global().Maybe("morsel").ok());
  }
  EXPECT_EQ(FaultInjector::Global().CallsAt("morsel"), 12);
}

/// Checks the benchmark database's invariants after a faulted run: one
/// open SCD revision per business key, and fact-to-fact integrity.
void ExpectInvariantsHold(Database* db, const std::string& context) {
  EngineTable* item = db->FindTable("item");
  ASSERT_NE(item, nullptr);
  int bk_col = item->ColumnIndex("i_item_id");
  int end_col = item->ColumnIndex("i_rec_end_date");
  const EngineTable::StringIndex& index = item->GetOrBuildStringIndex(bk_col);
  for (const auto& [key, rows] : index) {
    int open = 0;
    for (int64_t row : rows) {
      if (item->GetValue(row, end_col).is_null()) ++open;
    }
    ASSERT_EQ(open, 1) << context << ": item " << key;
  }
  Result<QueryResult> r = db->Query(
      "SELECT COUNT(*) FROM store_sales, store_returns "
      "WHERE ss_item_sk = sr_item_sk "
      "  AND ss_ticket_number = sr_ticket_number");
  ASSERT_TRUE(r.ok()) << context << ": " << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(),
            db->FindTable("store_returns")->num_rows())
      << context;
}

BenchmarkConfig MiniBenchmarkConfig() {
  BenchmarkConfig config;
  config.scale_factor = 0.002;
  config.streams = 2;
  config.queries_per_stream = 4;
  config.dimension_updates = 10;
  config.max_query_attempts = 3;
  config.retry_backoff_ms = 1.0;
  return config;
}

TEST_F(GovernanceTest, FaultSweepOverEverySiteCompletesBenchmark) {
  // One-shot faults at every site: the first hit fails, the retry (or the
  // maintenance rollback + retry, or the per-op WAL undo) succeeds or is
  // recorded, and the run completes with the failure on record. Durable
  // sites (wal-*, ckpt-*) only exist when the benchmark runs in
  // durability mode, so those sweeps enable it; the io-* sites belong to
  // the flat-file writer, which the benchmark never touches — they are
  // exercised by the flat-file regression tests in recovery_test.
  const std::string tmp = ::testing::TempDir() + "gov_fault_sweep";
  for (const std::string& site : FaultInjector::Sites()) {
    if (site == "io-write" || site == "io-close") continue;
    const bool durable_site =
        site.rfind("wal-", 0) == 0 || site.rfind("ckpt-", 0) == 0;
    // ckpt-manifest fires once per checkpoint, so only nth:1 can hit it;
    // shed only fires during overload victim selection, so the first
    // evaluation is the reliable one.
    const std::string trigger =
        site == "ckpt-manifest" || site == "shed" ? "=nth:1" : "=nth:3";
    ASSERT_TRUE(FaultInjector::Global().Configure(site + trigger).ok());
    BenchmarkConfig config = MiniBenchmarkConfig();
    if (site == "shed") {
      // Shedding needs overload with mixed priorities: 4 closed-loop
      // streams over 1 worker slot and a 1-deep queue, streams split
      // over 2 priority classes so a full queue can hold a
      // strictly-lower-priority victim.
      config.streams = 4;
      config.service_worker_slots = 1;
      config.service_queue_depth = 1;
      config.service_priority_spread = 2;
    }
    if (durable_site) {
      std::filesystem::remove_all(tmp);
      config.checkpoint_dir = tmp + "/ckpt";
      config.wal_path = tmp + "/dm.wal";
      config.recover_verify = true;
    }
    Database db;
    Result<BenchmarkResult> result = RunBenchmark(config, &db);
    FaultInjector::Global().Clear();
    ASSERT_TRUE(result.ok()) << "site " << site << ": "
                             << result.status().ToString();
    EXPECT_FALSE(result->failures.empty())
        << "site " << site << " never fired";
    if (durable_site && result->recovery_ran) {
      // Whatever prefix committed before the fault, the recovered state
      // must match the live database byte for byte.
      EXPECT_TRUE(result->recovery_verified) << "site " << site;
    }
    ExpectInvariantsHold(&db, "site " + site);
  }
  std::filesystem::remove_all(tmp);
}

TEST_F(GovernanceTest, ExhaustedRetriesAreRecordedAndIsolated) {
  // Every morsel fails, every attempt: all row-producing queries exhaust
  // their retries and land in the FailureReport — yet the benchmark still
  // completes and the database invariants hold.
  ASSERT_TRUE(FaultInjector::Global().Configure("morsel=every:1").ok());
  Database db;
  Result<BenchmarkResult> result = RunBenchmark(MiniBenchmarkConfig(), &db);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->failures.failures.empty());
  EXPECT_GT(result->failures.total_retries, 0);
  for (const QueryFailure& f : result->failures.failures) {
    EXPECT_EQ(f.attempts, 3) << "query" << f.template_id;
    EXPECT_NE(f.error.find("injected fault"), std::string::npos);
  }
  // The report flags the run as not metric-valid.
  MetricInputs inputs = result->ToMetricInputs();
  EXPECT_GT(inputs.failed_queries, 0);
  ExpectInvariantsHold(&db, "morsel=every:1");
}

TEST_F(GovernanceTest, MaintenanceFaultRollsBackAndRetries) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.002;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());
  int64_t sales_before = db.FindTable("store_sales")->num_rows();

  // Fire mid-run (after several operations have mutated tables): the
  // whole maintenance run must roll back, leaving row counts untouched.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("maintenance=nth:7").ok());
  MaintenanceOptions options;
  options.scale_factor = 0.002;
  options.dimension_updates = 10;
  MaintenanceReport report;
  Status st = RunDataMaintenance(&db, options, &report);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(report.operations.empty());
  EXPECT_EQ(db.FindTable("store_sales")->num_rows(), sales_before);
  ExpectInvariantsHold(&db, "post-rollback");

  // The one-shot fault is spent: the retry applies all 12 operations.
  st = RunDataMaintenance(&db, options, &report);
  FaultInjector::Global().Clear();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.operations.size(), 12u);
  ExpectInvariantsHold(&db, "post-retry");
}

TEST_F(GovernanceTest, BenchmarkFailsFastOnNonEmptyDatabase) {
  Database db;
  ASSERT_TRUE(db.CreateTable("left_over", {{"a", ColumnType::kInteger}})
                  .ok());
  Result<BenchmarkResult> result = RunBenchmark(MiniBenchmarkConfig(), &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("empty database"),
            std::string::npos);
}

}  // namespace
}  // namespace tpcds
