// Data-maintenance workload tests: the SCD update algorithms (paper
// Figs. 8/9), fact insert with business-key translation (Fig. 10) and the
// clustered fact range delete.

#include <gtest/gtest.h>

#include "dsgen/keys.h"
#include "maintenance/maintenance.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

constexpr double kSf = 0.002;

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = kSf;
    Status st = db_->LoadTpcdsData(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  MaintenanceOptions Options() {
    MaintenanceOptions o;
    o.scale_factor = kSf;
    o.refresh_cycle = 1;
    o.refresh_fraction = 0.05;
    o.dimension_updates = 20;
    return o;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(MaintenanceTest, HistoryKeepingUpdateCreatesRevisions) {
  EngineTable* item = db_->FindTable("item");
  int64_t before = item->num_rows();
  int end_col = item->ColumnIndex("i_rec_end_date");
  int bk_col = item->ColumnIndex("i_item_id");
  int64_t distinct_keys = static_cast<int64_t>(
      item->GetOrBuildStringIndex(bk_col).size());
  int64_t expected = std::min<int64_t>(20, distinct_keys);

  Result<int64_t> touched =
      UpdateHistoryKeepingDimension(db_.get(), "item", 20, 7);
  ASSERT_TRUE(touched.ok()) << touched.status().ToString();
  EXPECT_EQ(*touched, 2 * expected);  // each key: close + insert
  EXPECT_EQ(item->num_rows(), before + expected);

  // Invariant (Fig. 9): per business key exactly one open revision.
  const EngineTable::StringIndex& index =
      item->GetOrBuildStringIndex(bk_col);
  for (const auto& [key, rows] : index) {
    int open = 0;
    for (int64_t row : rows) {
      if (item->GetValue(row, end_col).is_null()) ++open;
    }
    EXPECT_EQ(open, 1) << "business key " << key;
  }
}

TEST_F(MaintenanceTest, NonHistoryUpdateKeepsRowCount) {
  EngineTable* customer = db_->FindTable("customer");
  int64_t before = customer->num_rows();
  Result<int64_t> updated =
      UpdateNonHistoryDimension(db_.get(), "customer", 25, 11);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 25);
  EXPECT_EQ(customer->num_rows(), before);  // in-place, Fig. 8
}

TEST_F(MaintenanceTest, DeleteThenInsertRefillsWindow) {
  EngineTable* sales = db_->FindTable("store_sales");
  EngineTable* returns = db_->FindTable("store_returns");
  int date_col = sales->ColumnIndex("ss_sold_date_sk");
  auto [begin, end] = RefreshWindow(1);
  int64_t in_window_before =
      static_cast<int64_t>(sales->FindRowsIntBetween(
          date_col, DateToSk(begin), DateToSk(end)).size());
  ASSERT_GT(in_window_before, 0);

  MaintenanceOptions options = Options();
  Result<int64_t> deleted = DeleteFactRange(db_.get(), "store", options);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_GE(*deleted, in_window_before);
  EXPECT_TRUE(sales->FindRowsIntBetween(date_col, DateToSk(begin),
                                        DateToSk(end)).empty());

  int64_t sales_before = sales->num_rows();
  int64_t returns_before = returns->num_rows();
  Result<int64_t> inserted = InsertFactRefresh(db_.get(), "store", options);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_GT(*inserted, 0);
  EXPECT_EQ(sales->num_rows() + returns->num_rows(),
            sales_before + returns_before + *inserted);
  // Inserts are clustered in the refresh window (Fig. 10's partition
  // orientation).
  EXPECT_FALSE(sales->FindRowsIntBetween(date_col, DateToSk(begin),
                                         DateToSk(end)).empty());
}

TEST_F(MaintenanceTest, InsertTranslatesToOpenItemRevision) {
  // Run the SCD update first so some business keys have *new* open
  // revisions, then verify inserted facts reference only open revisions.
  ASSERT_TRUE(UpdateHistoryKeepingDimension(db_.get(), "item", 50, 7).ok());
  MaintenanceOptions options = Options();
  EngineTable* sales = db_->FindTable("web_sales");
  int64_t rows_before = sales->num_rows();
  ASSERT_TRUE(InsertFactRefresh(db_.get(), "web", options).ok());

  EngineTable* item = db_->FindTable("item");
  int item_col = sales->ColumnIndex("ws_item_sk");
  int end_col = item->ColumnIndex("i_rec_end_date");
  const EngineTable::HashIndex& sk_index = item->GetOrBuildIntIndex(0);
  // Only the freshly inserted rows (beyond the pre-insert count) carry
  // translated keys; initial-load rows may reference older revisions.
  std::vector<int64_t> fresh;
  for (int64_t r = rows_before; r < sales->num_rows(); ++r) {
    fresh.push_back(r);
  }
  ASSERT_FALSE(fresh.empty());
  for (int64_t row : fresh) {
    int64_t sk = sales->GetValue(row, item_col).AsInt();
    auto it = sk_index.find(sk);
    ASSERT_NE(it, sk_index.end());
    EXPECT_TRUE(item->GetValue(it->second.front(), end_col).is_null())
        << "fact references closed item revision " << sk;
  }
}

TEST_F(MaintenanceTest, RefreshWindowsWalkBackwardsWeekByWeek) {
  auto [b1, e1] = RefreshWindow(1);
  auto [b2, e2] = RefreshWindow(2);
  auto [b3, e3] = RefreshWindow(3);
  EXPECT_EQ(e1.ToString(), "2003-01-02");  // sales window end
  EXPECT_EQ(e1 - b1, 6);                   // one week inclusive
  EXPECT_EQ(e2, b1.AddDays(-1));           // cycles tile without overlap
  EXPECT_EQ(e3, b2.AddDays(-1));
}

TEST_F(MaintenanceTest, ErrorsOnWrongDimensionClass) {
  // customer is non-history-keeping: the Fig. 9 algorithm must refuse it.
  EXPECT_FALSE(
      UpdateHistoryKeepingDimension(db_.get(), "customer", 5, 1).ok());
  EXPECT_FALSE(UpdateNonHistoryDimension(db_.get(), "no_table", 5, 1).ok());
  EXPECT_FALSE(InsertFactRefresh(db_.get(), "mail", Options()).ok());
  EXPECT_FALSE(DeleteFactRange(db_.get(), "mail", Options()).ok());
}

TEST_F(MaintenanceTest, FullTwelveOperationRun) {
  MaintenanceReport report;
  Status st = RunDataMaintenance(db_.get(), Options(), &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(report.operations.size(), 12u);
  EXPECT_GT(report.TotalRows(), 0);
  // Every operation class is present.
  int scd = 0;
  int inplace = 0;
  int deletes = 0;
  int inserts = 0;
  for (const MaintenanceOpResult& op : report.operations) {
    if (op.operation.starts_with("scd_update")) ++scd;
    if (op.operation.starts_with("inplace_update")) ++inplace;
    if (op.operation.starts_with("fact_delete")) ++deletes;
    if (op.operation.starts_with("fact_insert")) ++inserts;
  }
  EXPECT_EQ(scd, 3);
  EXPECT_EQ(inplace, 3);
  EXPECT_EQ(deletes, 3);
  EXPECT_EQ(inserts, 3);
}

TEST_F(MaintenanceTest, QueriesStillRunAfterMaintenance) {
  MaintenanceReport report;
  ASSERT_TRUE(RunDataMaintenance(db_.get(), Options(), &report).ok());
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(*) FROM store_sales, item "
      "WHERE ss_item_sk = i_item_sk AND i_rec_end_date IS NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace tpcds
