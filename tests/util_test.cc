// Unit tests for the util layer: Status/Result, the seekable RNG, the
// Julian-date calendar, fixed-point decimals, strings, flat files and the
// thread pool.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "util/date.h"
#include "util/decimal.h"
#include "util/flatfile.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace tpcds {
namespace {

// ---------------------------------------------------------------- status

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad");
  EXPECT_EQ(err.ToString(), "Invalid argument: bad");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Result<int> Doubled(int v) {
  TPCDS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPropagation) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

// ----------------------------------------------------------------- random

TEST(RngTest, DeterministicPerSeed) {
  RngStream a(7);
  RngStream b(7);
  RngStream c(8);
  bool saw_difference = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    if (va != c.NextUint64()) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

class RngSeekTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeekTest, SeekMatchesSequentialDraws) {
  uint64_t target = GetParam();
  RngStream sequential(99);
  for (uint64_t i = 0; i < target; ++i) sequential.NextUint64();
  uint64_t expected = sequential.NextUint64();

  RngStream seeker(99);
  seeker.SeekTo(target);
  EXPECT_EQ(seeker.offset(), target);
  EXPECT_EQ(seeker.NextUint64(), expected) << "offset " << target;
}

INSTANTIATE_TEST_SUITE_P(JumpTargets, RngSeekTest,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 1000, 4097,
                                           123456, 999999));

TEST(RngTest, SeekBackwards) {
  RngStream rng(5);
  std::vector<uint64_t> first(16);
  for (uint64_t& v : first) v = rng.NextUint64();
  rng.SeekTo(4);
  EXPECT_EQ(rng.NextUint64(), first[4]);
  rng.SeekTo(0);
  EXPECT_EQ(rng.NextUint64(), first[0]);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  RngStream rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 12);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 12);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  RngStream rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  RngStream rng(17);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
  EXPECT_NEAR(rng.Gaussian(100.0, 0.0), 100.0, 1e-9);
}

TEST(RngTest, WeightedPickFollowsWeights) {
  RngStream rng(19);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ++counts[rng.WeightedPick(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.02);
}

TEST(RngTest, DeriveSeedSeparatesStreams) {
  EXPECT_NE(DeriveSeed(1, 2, 3), DeriveSeed(1, 2, 4));
  EXPECT_NE(DeriveSeed(1, 2, 3), DeriveSeed(1, 3, 3));
  EXPECT_NE(DeriveSeed(1, 2, 3), DeriveSeed(2, 2, 3));
  EXPECT_EQ(DeriveSeed(1, 2, 3), DeriveSeed(1, 2, 3));
}

// ------------------------------------------------------------------ date

TEST(DateTest, KnownDates) {
  Date d = Date::FromYmd(2000, 1, 1);
  EXPECT_EQ(d.jdn(), 2451545);
  EXPECT_EQ(d.year(), 2000);
  EXPECT_EQ(d.month(), 1);
  EXPECT_EQ(d.day(), 1);
  EXPECT_STREQ(d.DayName(), "Saturday");
  EXPECT_EQ(d.ToString(), "2000-01-01");
}

TEST(DateTest, RoundTripAcrossTwoCenturies) {
  Date begin = Date::FromYmd(1900, 1, 1);
  for (int i = 0; i < 73049; i += 37) {  // sample the date_dim domain
    Date d = begin.AddDays(i);
    Date back = Date::FromYmd(d.year(), d.month(), d.day());
    ASSERT_EQ(back.jdn(), d.jdn()) << d.ToString();
  }
  // 73049 rows cover 1900-01-01 .. 2099-12-31; the next day is 2100-01-01.
  EXPECT_EQ(begin.AddDays(73048).ToString(), "2099-12-31");
  EXPECT_EQ(begin.AddDays(73049).ToString(), "2100-01-01");
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(Date::IsLeapYear(2000));
  EXPECT_FALSE(Date::IsLeapYear(1900));
  EXPECT_TRUE(Date::IsLeapYear(1996));
  EXPECT_FALSE(Date::IsLeapYear(1999));
  EXPECT_EQ(Date::DaysInMonth(2000, 2), 29);
  EXPECT_EQ(Date::DaysInMonth(1900, 2), 28);
  EXPECT_EQ(Date::FromYmd(2000, 2, 28).AddDays(1).ToString(), "2000-02-29");
}

TEST(DateTest, ParseAndValidate) {
  Result<Date> ok = Date::Parse("1999-02-21");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->ToString(), "1999-02-21");
  EXPECT_FALSE(Date::Parse("1999-02-30").ok());
  EXPECT_FALSE(Date::Parse("not a date").ok());
  EXPECT_FALSE(Date::Parse("1999-13-01").ok());
  EXPECT_FALSE(Date::IsValidYmd(2001, 2, 29));
}

TEST(DateTest, CalendarHelpers) {
  Date d = Date::FromYmd(2001, 5, 17);
  EXPECT_EQ(d.Quarter(), 2);
  EXPECT_EQ(d.DayOfYear(), 31 + 28 + 31 + 30 + 17);
  EXPECT_EQ(d.EndOfMonth().day(), 31);
  EXPECT_EQ(d.WeekOfYear(), 1 + (d.DayOfYear() - 1) / 7);
  EXPECT_EQ(Date::FromYmd(2001, 6, 1) - d, 15);
  EXPECT_STREQ(d.MonthName(), "May");
}

// --------------------------------------------------------------- decimal

TEST(DecimalTest, ParseAndPrint) {
  EXPECT_EQ(Decimal::Parse("12.34")->cents(), 1234);
  EXPECT_EQ(Decimal::Parse("-0.05")->cents(), -5);
  EXPECT_EQ(Decimal::Parse("7")->cents(), 700);
  EXPECT_EQ(Decimal::Parse("7.5")->cents(), 750);
  EXPECT_EQ(Decimal::Parse("7.999")->cents(), 800);  // rounds
  EXPECT_FALSE(Decimal::Parse("").ok());
  EXPECT_FALSE(Decimal::Parse("abc").ok());
  EXPECT_FALSE(Decimal::Parse("1.2.3").ok());
  EXPECT_EQ(Decimal::FromCents(-1234).ToString(), "-12.34");
  EXPECT_EQ(Decimal::FromCents(5).ToString(), "0.05");
}

TEST(DecimalTest, ArithmeticIsExact) {
  Decimal a = Decimal::FromCents(1050);  // 10.50
  Decimal b = Decimal::FromCents(275);   // 2.75
  EXPECT_EQ((a + b).cents(), 1325);
  EXPECT_EQ((a - b).cents(), 775);
  EXPECT_EQ((a * 3).cents(), 3150);
  EXPECT_EQ((-a).cents(), -1050);
  // Summing a million cents-values stays exact.
  Decimal total;
  for (int i = 0; i < 1000000; ++i) total += Decimal::FromCents(1);
  EXPECT_EQ(total.cents(), 1000000);
}

TEST(DecimalTest, MultiplyByDoubleRounds) {
  Decimal price = Decimal::FromCents(999);  // 9.99
  EXPECT_EQ(price.MultipliedBy(0.5).cents(), 500);  // 4.995 -> 5.00
  EXPECT_EQ(price.MultipliedBy(0.0).cents(), 0);
  // 1.005 is not exactly representable in binary (1.00499...), so use an
  // unambiguous value to check half-away-from-zero rounding.
  EXPECT_EQ(Decimal::FromDouble(1.0051).cents(), 101);
  EXPECT_EQ(Decimal::FromDouble(-1.0051).cents(), -101);
  EXPECT_EQ(Decimal::FromDouble(1.25).cents(), 125);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, SplitJoinTrimCase) {
  EXPECT_EQ(Split("a|b||c", '|'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_TRUE(StartsWith("ss_item_sk", "ss_"));
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-42), "-42");
  EXPECT_EQ(FormatWithCommas(100), "100");
}

// --------------------------------------------------------------- flatfile

TEST(FlatFileTest, WriteReadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "tpcds_ff_test.dat")
          .string();
  {
    FlatFileWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append({"1", "AAAA", "", "3.14"}).ok());
    ASSERT_TRUE(writer.Append({"2", "BBBB", "x", ""}).ok());
    EXPECT_EQ(writer.rows_written(), 2u);
    ASSERT_TRUE(writer.Close().ok());
  }
  FlatFileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "AAAA", "", "3.14"}));
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"2", "BBBB", "x", ""}));
  EXPECT_FALSE(reader.Next(&fields));
  std::remove(path.c_str());
}

TEST(FlatFileTest, CountingSinkMeasuresRawBytes) {
  CountingRowSink sink;
  ASSERT_TRUE(sink.Append({"ab", "c"}).ok());  // "ab|c|\n" = 6 bytes
  EXPECT_EQ(sink.rows(), 1u);
  EXPECT_EQ(sink.bytes(), 6u);
}

// ------------------------------------------------------------- threadpool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after WaitIdle.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 101);
}

}  // namespace
}  // namespace tpcds
