// Golden regression test: with the default master seed at SF 0.002, the
// whole stack (scaling -> generation -> load -> SQL execution) must keep
// producing byte-identical results. Any change to RNG streams, draw
// budgets, distributions, pricing, the loader or the executor that alters
// generated data or query semantics trips this test — intentionally. If a
// change is deliberate, regenerate the constants below (they are printed
// by the failing assertions).

#include <gtest/gtest.h>

#include "engine/database.h"

namespace tpcds {
namespace {

class GoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;  // default seed 19620718
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  static Database* db_;
};

Database* GoldenTest::db_ = nullptr;

TEST_F(GoldenTest, StoreSalesTotals) {
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(*), SUM(ss_quantity), SUM(ss_ext_sales_price) "
      "FROM store_sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 5655);
  EXPECT_EQ(r->rows[0][1].AsInt(), 283585);
  EXPECT_EQ(r->rows[0][2].AsDecimal().ToString(), "10618231.98");
}

TEST_F(GoldenTest, CatalogSalesProfit) {
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(*), SUM(cs_net_profit) FROM catalog_sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 2743);
  EXPECT_EQ(r->rows[0][1].AsDecimal().ToString(), "-2066405.79");
}

TEST_F(GoldenTest, WebReturnsLoss) {
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(*), SUM(wr_net_loss) FROM web_returns");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 129);
  EXPECT_EQ(r->rows[0][1].AsDecimal().ToString(), "43747.77");
}

TEST_F(GoldenTest, DistinctTickets) {
  Result<QueryResult> r = db_->Query(
      "SELECT COUNT(DISTINCT ss_ticket_number) FROM store_sales");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 549);  // = ChannelNumUnits at SF 0.002
}

TEST_F(GoldenTest, ItemCategoryBreakdown) {
  Result<QueryResult> r = db_->Query(
      "SELECT i_category, COUNT(*) FROM item GROUP BY i_category "
      "ORDER BY i_category LIMIT 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsString(), "Books");
  EXPECT_EQ(r->rows[0][1].AsInt(), 3);
  EXPECT_EQ(r->rows[1][0].AsString(), "Children");
  EXPECT_EQ(r->rows[1][1].AsInt(), 3);
  EXPECT_EQ(r->rows[2][0].AsString(), "Electronics");
  EXPECT_EQ(r->rows[2][1].AsInt(), 7);
}

TEST_F(GoldenTest, DateDimBounds) {
  Result<QueryResult> r = db_->Query(
      "SELECT MIN(d_date), MAX(d_date) FROM date_dim");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsDate().ToString(), "1900-01-01");
  EXPECT_EQ(r->rows[0][1].AsDate().ToString(), "2099-12-31");
}

}  // namespace
}  // namespace tpcds
