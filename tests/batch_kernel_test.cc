// Unit tests for the vectorized columnar primitives in engine/batch.{h,cc}:
// typed scan kernels over raw storage, zone-map construction and pruning,
// the Bloom filter, raw-storage key coercion, and the planner's
// kernel-vs-residual classification of pushed scan filters.

#include "engine/batch.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/parser.h"
#include "engine/plan.h"
#include "engine/table.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

// ---- ApplyScanKernel ----------------------------------------------------

/// Builds an int-backed column from parsed fields ("" = NULL).
StorageColumn MakeIntColumn(const std::vector<std::string>& fields,
                            ColumnType type = ColumnType::kInteger) {
  StorageColumn c(type);
  for (const std::string& f : fields) EXPECT_TRUE(c.AppendParsed(f).ok());
  return c;
}

StorageColumn MakeStrColumn(const std::vector<std::string>& fields) {
  StorageColumn c(ColumnType::kVarchar);
  for (const std::string& f : fields) EXPECT_TRUE(c.AppendParsed(f).ok());
  return c;
}

SelectionVector Identity(size_t n) {
  SelectionVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

TEST(ApplyScanKernelTest, IntRangeKeepsInclusiveBoundsAndDropsNulls) {
  StorageColumn c = MakeIntColumn({"1", "5", "", "10", "11", "4"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = 0;
  k.lo = 5;
  k.hi = 10;
  SelectionVector sel = Identity(6);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{1, 3}));  // 5 and 10 inclusive; NULL drops
}

TEST(ApplyScanKernelTest, IntRangeNegatedKeepsOutsideAndStillDropsNulls) {
  StorageColumn c = MakeIntColumn({"1", "5", "", "10", "11", "4"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = 0;
  k.lo = 5;
  k.hi = 10;
  k.negated = true;  // NOT BETWEEN: outside the range, NULL still unknown
  SelectionVector sel = Identity(6);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 4, 5}));
}

TEST(ApplyScanKernelTest, NegatedEmptyRangeKeepsAllNonNullRows) {
  // "x <> 7" compiles to a negated single-point range; the negation of an
  // *empty* range (always-false kernel encoding lo > hi) must keep every
  // non-null row.
  StorageColumn c = MakeIntColumn({"1", "", "7"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = 0;
  k.lo = std::numeric_limits<int64_t>::max();
  k.hi = std::numeric_limits<int64_t>::min();
  k.negated = true;
  SelectionVector sel = Identity(3);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 2}));
}

TEST(ApplyScanKernelTest, IntInAndNegatedIn) {
  StorageColumn c = MakeIntColumn({"3", "8", "", "5", "9"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntIn;
  k.col = 0;
  k.values = {3, 5};  // sorted, as the compiler produces
  SelectionVector sel = Identity(5);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 3}));

  k.negated = true;
  sel = Identity(5);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{1, 4}));  // NULL is unknown either way
}

TEST(ApplyScanKernelTest, NullTestBothDirections) {
  StorageColumn c = MakeIntColumn({"3", "", "", "5"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kNullTest;
  k.col = 0;
  SelectionVector sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{1, 2}));  // IS NULL

  k.negated = true;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 3}));  // IS NOT NULL
}

TEST(ApplyScanKernelTest, AlwaysFalseClearsSelection) {
  StorageColumn c = MakeIntColumn({"1", "2"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kAlwaysFalse;
  k.col = 0;
  SelectionVector sel = Identity(2);
  ApplyScanKernel(k, c, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(ApplyScanKernelTest, EmptySelectionStaysEmpty) {
  StorageColumn c = MakeIntColumn({"1", "2"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = 0;
  k.lo = 0;
  k.hi = 100;
  SelectionVector sel;
  ApplyScanKernel(k, c, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(ApplyScanKernelTest, StrCompareAllOperators) {
  StorageColumn c = MakeStrColumn({"apple", "", "banana", "cherry"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kStrCompare;
  k.col = 0;
  k.str = "banana";

  k.cmp = ScanKernel::Cmp::kEq;
  SelectionVector sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{2}));

  k.cmp = ScanKernel::Cmp::kNe;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 3}));  // NULL never passes <>

  k.cmp = ScanKernel::Cmp::kLt;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0}));

  k.cmp = ScanKernel::Cmp::kLe;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 2}));

  k.cmp = ScanKernel::Cmp::kGt;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{3}));

  k.cmp = ScanKernel::Cmp::kGe;
  sel = Identity(4);
  ApplyScanKernel(k, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{2, 3}));
}

TEST(ApplyScanKernelTest, StrInAndLike) {
  StorageColumn c =
      MakeStrColumn({"ale", "", "amber ale", "lager", "stout", "a"});
  ScanKernel in;
  in.kind = ScanKernel::Kind::kStrIn;
  in.col = 0;
  in.strs = {"ale", "stout"};
  SelectionVector sel = Identity(6);
  ApplyScanKernel(in, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 4}));

  in.negated = true;
  sel = Identity(6);
  ApplyScanKernel(in, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{2, 3, 5}));

  ScanKernel like;
  like.kind = ScanKernel::Kind::kStrLike;
  like.col = 0;
  like.str = "a%";
  like.like_prefix = "a";
  like.prefix_only = true;
  sel = Identity(6);
  ApplyScanKernel(like, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 2, 5}));

  // General pattern (not prefix-only): '%ale' suffix match.
  ScanKernel suffix;
  suffix.kind = ScanKernel::Kind::kStrLike;
  suffix.col = 0;
  suffix.str = "%ale";
  sel = Identity(6);
  ApplyScanKernel(suffix, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{0, 2}));

  suffix.negated = true;
  sel = Identity(6);
  ApplyScanKernel(suffix, c, &sel);
  EXPECT_EQ(sel, (SelectionVector{3, 4, 5}));  // NULL never passes NOT LIKE
}

// ---- zone maps ------------------------------------------------------------

TEST(ZoneMapTest, BuildTracksPerBlockMinMaxAndNulls) {
  StorageColumn c(ColumnType::kInteger);
  // Block 0: rows 0..1023 hold value 100 + (r % 7), with NULL every 50th.
  // Block 1 (partial): rows 1024..1199 hold value 5000 + r.
  for (size_t r = 0; r < 1200; ++r) {
    if (r < 1024) {
      if (r % 50 == 0) {
        ASSERT_TRUE(c.AppendParsed("").ok());
      } else {
        ASSERT_TRUE(
            c.AppendParsed(std::to_string(100 + (r % 7))).ok());
      }
    } else {
      ASSERT_TRUE(c.AppendParsed(std::to_string(5000 + r)).ok());
    }
  }
  ZoneMap zm = BuildZoneMap(c, 1200);
  ASSERT_EQ(zm.blocks.size(), 2u);
  EXPECT_TRUE(zm.blocks[0].has_null);
  EXPECT_TRUE(zm.blocks[0].has_nonnull);
  EXPECT_EQ(zm.blocks[0].min, 100);
  EXPECT_EQ(zm.blocks[0].max, 106);
  EXPECT_FALSE(zm.blocks[1].has_null);
  EXPECT_EQ(zm.blocks[1].min, 6024);
  EXPECT_EQ(zm.blocks[1].max, 6199);
}

TEST(ZoneMapTest, AllNullBlockPrunesEverythingExceptIsNull) {
  StorageColumn c(ColumnType::kInteger);
  for (size_t r = 0; r < 10; ++r) ASSERT_TRUE(c.AppendParsed("").ok());
  ZoneMap zm = BuildZoneMap(c, 10);
  ASSERT_EQ(zm.blocks.size(), 1u);
  EXPECT_FALSE(zm.blocks[0].has_nonnull);

  ScanKernel range;
  range.kind = ScanKernel::Kind::kIntRange;
  range.lo = std::numeric_limits<int64_t>::min();
  range.hi = std::numeric_limits<int64_t>::max();
  EXPECT_TRUE(KernelPrunesBlock(range, zm.blocks[0]));

  ScanKernel isnull;
  isnull.kind = ScanKernel::Kind::kNullTest;
  EXPECT_FALSE(KernelPrunesBlock(isnull, zm.blocks[0]));
  isnull.negated = true;  // IS NOT NULL: nothing can pass
  EXPECT_TRUE(KernelPrunesBlock(isnull, zm.blocks[0]));
}

TEST(ZoneMapTest, RangeAndInPruning) {
  ZoneEntry zone;
  zone.min = 100;
  zone.max = 200;
  zone.has_nonnull = true;

  ScanKernel range;
  range.kind = ScanKernel::Kind::kIntRange;
  range.lo = 201;
  range.hi = 500;
  EXPECT_TRUE(KernelPrunesBlock(range, zone));
  range.lo = 200;  // touches the block max
  EXPECT_FALSE(KernelPrunesBlock(range, zone));
  range.lo = 0;
  range.hi = 99;
  EXPECT_TRUE(KernelPrunesBlock(range, zone));

  // Negated range prunes only when the whole block sits inside [lo, hi].
  range.negated = true;
  range.lo = 100;
  range.hi = 200;
  EXPECT_TRUE(KernelPrunesBlock(range, zone));
  range.lo = 101;
  EXPECT_FALSE(KernelPrunesBlock(range, zone));

  ScanKernel in;
  in.kind = ScanKernel::Kind::kIntIn;
  in.values = {10, 50, 99};
  EXPECT_TRUE(KernelPrunesBlock(in, zone));
  in.values = {10, 150};
  EXPECT_FALSE(KernelPrunesBlock(in, zone));
  in.values.clear();  // IN () matches nothing
  EXPECT_TRUE(KernelPrunesBlock(in, zone));

  EXPECT_TRUE(RangePrunesBlock(zone, 201, 1000));
  EXPECT_FALSE(RangePrunesBlock(zone, 150, 160));
}

// ---- Bloom filter ----------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegativesAndMostlyRejectsOthers) {
  BloomFilter bloom(1000);
  for (size_t i = 0; i < 1000; ++i) {
    bloom.Add(HashStorageValue(ColumnType::kIdentifier,
                               static_cast<int64_t>(i * 3)));
  }
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain(HashStorageValue(
        ColumnType::kIdentifier, static_cast<int64_t>(i * 3))));
  }
  size_t false_positives = 0;
  for (size_t i = 0; i < 10000; ++i) {
    if (bloom.MayContain(HashStorageValue(
            ColumnType::kIdentifier, static_cast<int64_t>(1000000 + i)))) {
      ++false_positives;
    }
  }
  // ~10 bits/key gives a low single-digit percent rate; 20% is generous.
  EXPECT_LT(false_positives, 2000u);
}

TEST(BloomFilterTest, HashMatchesValueHash) {
  // HashStorageValue must agree with Value::Hash so pushdown hashes of raw
  // storage match the join's Value-level hashes.
  EXPECT_EQ(HashStorageValue(ColumnType::kInteger, 42),
            Value::Int(42).Hash());
  EXPECT_EQ(HashStorageValue(ColumnType::kIdentifier, -7),
            Value::Int(-7).Hash());
  EXPECT_EQ(HashStorageValue(ColumnType::kDecimal, 12345),
            Value::Dec(Decimal::FromCents(12345)).Hash());
  EXPECT_EQ(HashStorageValue(ColumnType::kDate, 2450815),
            Value::Dt(Date(2450815)).Hash());
}

// ---- raw-storage key coercion ----------------------------------------------

TEST(StorageValueForEqualityTest, IntAndDecimalAndDateKeys) {
  int64_t raw = 0;
  EXPECT_EQ(StorageValueForEquality(ColumnType::kInteger, Value::Int(42),
                                    &raw),
            StorageEq::kExact);
  EXPECT_EQ(raw, 42);

  // Integer key against a decimal (cents) column scales by 100.
  EXPECT_EQ(StorageValueForEquality(ColumnType::kDecimal, Value::Int(42),
                                    &raw),
            StorageEq::kExact);
  EXPECT_EQ(raw, 4200);

  // Decimal key against an int column matches only when whole.
  EXPECT_EQ(StorageValueForEquality(ColumnType::kInteger,
                                    Value::Dec(Decimal::FromCents(4200)),
                                    &raw),
            StorageEq::kExact);
  EXPECT_EQ(raw, 42);
  EXPECT_EQ(StorageValueForEquality(ColumnType::kInteger,
                                    Value::Dec(Decimal::FromCents(4250)),
                                    &raw),
            StorageEq::kNoMatch);

  // Date column against a parseable / unparseable string literal.
  EXPECT_EQ(StorageValueForEquality(ColumnType::kDate,
                                    Value::Str("1998-01-01"), &raw),
            StorageEq::kExact);
  EXPECT_EQ(StorageValueForEquality(ColumnType::kDate, Value::Str("bogus"),
                                    &raw),
            StorageEq::kNoMatch);

  // Magnitudes beyond the double-exact window are refused, not guessed.
  EXPECT_EQ(StorageValueForEquality(ColumnType::kDecimal,
                                    Value::Int(int64_t{1} << 60), &raw),
            StorageEq::kUnsupported);
}

// ---- kernel compilation (planner classification) ---------------------------

/// Finds the first kScan node in a plan tree.
const PlanNode* FindScan(const PlanNode* n) {
  if (n == nullptr) return nullptr;
  if (n->kind == PlanKind::kScan) return n;
  for (const auto& c : n->children) {
    if (const PlanNode* s = FindScan(c.get())) return s;
  }
  return nullptr;
}

class KernelCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t", {{"k", ColumnType::kIdentifier},
                                      {"n", ColumnType::kInteger},
                                      {"price", ColumnType::kDecimal},
                                      {"d", ColumnType::kDate},
                                      {"s", ColumnType::kVarchar}})
                    .ok());
    std::vector<std::string> row = {"1", "2", "3.50", "1998-01-01", "x"};
    ASSERT_TRUE(db_.FindTable("t")->AppendRowStrings(row).ok());
  }

  /// Plans `where` against t and returns (kernels, residual) of the scan.
  std::pair<size_t, size_t> Classify(const std::string& where) {
    Result<std::shared_ptr<SelectStmt>> stmt =
        ParseSql("SELECT k FROM t WHERE " + where);
    EXPECT_TRUE(stmt.ok()) << where;
    if (!stmt.ok()) return {0, 0};
    std::shared_ptr<const DataFacade> facade = db_.Snapshot();
    Result<PhysicalPlan> plan =
        BuildPlan(facade.get(), **stmt, db_.default_options());
    EXPECT_TRUE(plan.ok()) << where << ": " << plan.status().ToString();
    if (!plan.ok()) return {0, 0};
    const PlanNode* scan = FindScan(plan->root.get());
    EXPECT_NE(scan, nullptr) << where;
    if (scan == nullptr) return {0, 0};
    return {scan->kernels.size(), scan->residual_predicates.size()};
  }

  Database db_;
};

TEST_F(KernelCompileTest, SupportedShapesCompileToKernels) {
  EXPECT_EQ(Classify("n > 5"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("n BETWEEN 2 AND 9"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("price < 10.25"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("d >= '1998-01-01'"),
            (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("k IN (1, 2, 3)"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("s = 'x'"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("s LIKE 'ab%'"), (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(Classify("s IS NOT NULL"), (std::pair<size_t, size_t>{1, 0}));
  // String BETWEEN compiles to two compare kernels.
  EXPECT_EQ(Classify("s BETWEEN 'a' AND 'b'"),
            (std::pair<size_t, size_t>{2, 0}));
  // Two pushable conjuncts -> two kernels.
  EXPECT_EQ(Classify("n > 5 AND s = 'x'"),
            (std::pair<size_t, size_t>{2, 0}));
}

TEST_F(KernelCompileTest, UnsupportedShapesStayOnResidualPath) {
  // Column-vs-column comparison has no literal to compile against.
  EXPECT_EQ(Classify("n > k"), (std::pair<size_t, size_t>{0, 1}));
  // Arithmetic over the column defeats the raw-storage translation.
  EXPECT_EQ(Classify("n + 1 > 5"), (std::pair<size_t, size_t>{0, 1}));
  // Mixed kernel + residual conjunction splits.
  EXPECT_EQ(Classify("n > 5 AND n + 1 > 5"),
            (std::pair<size_t, size_t>{1, 1}));
}

// ---- end-to-end: vectorized scan equals reference scan ---------------------

TEST(VectorizedScanTest, MatchesRowSetPathOnSyntheticTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"k", ColumnType::kIdentifier},
                                   {"n", ColumnType::kInteger},
                                   {"s", ColumnType::kVarchar}})
                  .ok());
  EngineTable* t = db.FindTable("t");
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::string> row(3);
    row[0] = std::to_string(i);
    if (i % 11 != 0) row[1] = std::to_string(i % 97);
    if (i % 13 != 0) row[2] = StringPrintf("name-%d", i % 31);
    ASSERT_TRUE(t->AppendRowStrings(row).ok());
  }
  const char* queries[] = {
      "SELECT COUNT(*), SUM(n) FROM t WHERE n BETWEEN 10 AND 60",
      "SELECT COUNT(*) FROM t WHERE n NOT BETWEEN 10 AND 60",
      "SELECT COUNT(*) FROM t WHERE k IN (5, 50, 500, 5000)",
      "SELECT COUNT(*) FROM t WHERE s LIKE 'name-1%'",
      "SELECT COUNT(*) FROM t WHERE s IS NULL",
      "SELECT COUNT(*), MIN(k) FROM t WHERE n IS NOT NULL AND n <> 42",
      "SELECT s, COUNT(*) FROM t WHERE n > 50 AND s > 'name-2' "
      "GROUP BY s ORDER BY s",
  };
  for (const char* sql : queries) {
    PlannerOptions options = db.default_options();
    options.vectorized_execution = false;
    Result<QueryResult> ref = db.Query(sql, options, nullptr);
    ASSERT_TRUE(ref.ok()) << sql << "\n" << ref.status().ToString();
    options.vectorized_execution = true;
    for (int workers : {1, 4}) {
      options.parallelism = workers;
      Result<QueryResult> vec = db.Query(sql, options, nullptr);
      ASSERT_TRUE(vec.ok()) << sql << "\n" << vec.status().ToString();
      EXPECT_EQ(vec->ToCsv(), ref->ToCsv())
          << sql << " at parallelism " << workers;
    }
  }
}

TEST(VectorizedScanTest, ZoneMapsPruneAndStayCorrectAfterMutation) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable("t", {{"k", ColumnType::kIdentifier}}).ok());
  EngineTable* t = db.FindTable("t");
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(t->AppendRowStrings({std::to_string(i)}).ok());
  }
  const std::string sql = "SELECT COUNT(*) FROM t WHERE k >= 4000";
  ExecStats stats;
  Result<QueryResult> r = db.Query(sql, db.default_options(), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 96);
  EXPECT_GT(stats.morsels_pruned, 0);  // first three 1024-row blocks skip

  // Mutation invalidates the zone maps; the rebuilt map must see new rows.
  ASSERT_TRUE(t->AppendRowStrings({"100000"}).ok());
  stats = ExecStats();
  r = db.Query(sql, db.default_options(), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 97);
}

}  // namespace
}  // namespace tpcds
