// Constraint-validation tests: the generated database satisfies every
// declared primary key and foreign key, and keeps satisfying them through
// data maintenance (paper §5.2: "define and validate constraints" is part
// of the load test).

#include <gtest/gtest.h>

#include "engine/audit.h"
#include "schema/schema_stats.h"
#include "maintenance/maintenance.h"

namespace tpcds {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(AuditTest, FreshLoadSatisfiesAllConstraints) {
  Result<AuditReport> report = ValidateConstraints(db_.get(), TpcdsSchema());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 24 PK checks + one check per FK.
  SchemaStats stats = ComputeSchemaStats(TpcdsSchema());
  EXPECT_EQ(report->checks.size(),
            24u + static_cast<size_t>(stats.num_foreign_keys));
  EXPECT_EQ(report->TotalViolations(), 0) << report->ToString();
}

TEST_F(AuditTest, ConstraintsSurviveDataMaintenance) {
  MaintenanceOptions options;
  options.scale_factor = 0.002;
  options.refresh_fraction = 0.05;
  options.dimension_updates = 20;
  MaintenanceReport dm;
  ASSERT_TRUE(RunDataMaintenance(db_.get(), options, &dm).ok());

  Result<AuditReport> report = ValidateConstraints(db_.get(), TpcdsSchema());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->TotalViolations(), 0) << report->ToString();
}

TEST_F(AuditTest, DetectsViolations) {
  // Break a foreign key on purpose: point a sales row at a missing item.
  EngineTable* sales = db_->FindTable("store_sales");
  int item_col = sales->ColumnIndex("ss_item_sk");
  sales->SetValue(0, item_col, Value::Int(99999999));
  Result<AuditReport> report = ValidateConstraints(db_.get(), TpcdsSchema());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->TotalViolations(), 1);
  bool found = false;
  for (const ConstraintCheck& c : report->checks) {
    if (c.constraint.find("store_sales(ss_item_sk) -> item") !=
            std::string::npos &&
        c.violations >= 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report->ToString();
}

}  // namespace
}  // namespace tpcds
