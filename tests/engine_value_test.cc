// Unit tests for the engine's Value semantics: cross-kind comparison
// coercions, hash consistency with equality, truthiness and display.

#include <gtest/gtest.h>

#include "engine/value.h"

namespace tpcds {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Dec(Decimal::FromCents(1234)).AsDecimal().cents(), 1234);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Dt(Date::FromYmd(2000, 1, 1)).AsDate().ToString(),
            "2000-01-01");
  EXPECT_TRUE(Value::Int(7).is_numeric());
  EXPECT_FALSE(Value::Str("7").is_numeric());
}

TEST(ValueTest, NumericCoercionInComparison) {
  // int vs decimal vs double compare by numeric value.
  EXPECT_EQ(Value::Compare(Value::Int(5),
                           Value::Dec(Decimal::FromCents(500))),
            0);
  EXPECT_EQ(Value::Compare(Value::Int(5), Value::Dbl(5.0)), 0);
  EXPECT_LT(Value::Compare(Value::Dec(Decimal::FromCents(499)),
                           Value::Int(5)),
            0);
  EXPECT_GT(Value::Compare(Value::Dbl(5.01),
                           Value::Dec(Decimal::FromCents(500))),
            0);
}

TEST(ValueTest, DateStringComparison) {
  Value date = Value::Dt(Date::FromYmd(1999, 2, 21));
  EXPECT_EQ(Value::Compare(date, Value::Str("1999-02-21")), 0);
  EXPECT_LT(Value::Compare(date, Value::Str("1999-02-22")), 0);
  EXPECT_GT(Value::Compare(Value::Str("1999-02-22"), date), 0);
}

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-1000)), 0);
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(Value::SqlEquals(Value::Int(3), Value::Int(3)));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Values that SqlEquals must hash equal (group-by / join correctness).
  EXPECT_EQ(Value::Int(5).Hash(),
            Value::Dec(Decimal::FromCents(500)).Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Dbl(5.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Int(6).Hash());
}

TEST(ValueTest, TruthinessForFilters) {
  EXPECT_TRUE(Value::Int(1).IsTruthy());
  EXPECT_TRUE(Value::Int(-1).IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_TRUE(Value::Dbl(0.5).IsTruthy());
  EXPECT_FALSE(Value::Dbl(0.0).IsTruthy());
  EXPECT_TRUE(Value::Str("x").IsTruthy());
  EXPECT_FALSE(Value::Str("").IsTruthy());
  EXPECT_TRUE(Value::Bool(true).IsTruthy());
  EXPECT_FALSE(Value::Bool(false).IsTruthy());
}

TEST(ValueTest, DisplayRendering) {
  EXPECT_EQ(Value::Null().ToDisplayString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToDisplayString(), "-3");
  EXPECT_EQ(Value::Dec(Decimal::FromCents(105)).ToDisplayString(), "1.05");
  EXPECT_EQ(Value::Dt(Date::FromYmd(2001, 12, 9)).ToDisplayString(),
            "2001-12-09");
  EXPECT_EQ(Value::Str("hi").ToDisplayString(), "hi");
  EXPECT_EQ(Value::Dbl(2.5).ToDisplayString(), "2.5000");
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::Compare(Value::Str("apple"), Value::Str("banana")), 0);
  EXPECT_EQ(Value::Compare(Value::Str("a"), Value::Str("a")), 0);
  EXPECT_GT(Value::Compare(Value::Str("b"), Value::Str("ab")), 0);
}

}  // namespace
}  // namespace tpcds
