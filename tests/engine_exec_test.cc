// Executor-semantics tests on small hand-built tables: join variants,
// aggregation, windows, NULL handling, set operations — each result
// verified against hand-computed expectations.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace tpcds {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable(
                       "emp", {{"e_id", ColumnType::kIdentifier},
                               {"e_name", ColumnType::kChar},
                               {"e_dept", ColumnType::kIdentifier},
                               {"e_salary", ColumnType::kDecimal},
                               {"e_hired", ColumnType::kDate}})
                    .ok());
    ASSERT_TRUE(db_->CreateTable("dept",
                                 {{"d_id", ColumnType::kIdentifier},
                                  {"d_name", ColumnType::kChar}})
                    .ok());
    Load("emp", {{"1", "alice", "10", "120.00", "2000-01-15"},
                 {"2", "bob", "10", "80.00", "2000-03-01"},
                 {"3", "carol", "20", "150.50", "2001-06-10"},
                 {"4", "dave", "20", "80.00", "2001-07-20"},
                 {"5", "erin", "", "60.25", "2002-02-02"}});  // NULL dept
    Load("dept", {{"10", "sales"}, {"20", "tech"}, {"30", "empty"}});
  }

  void Load(const std::string& table,
            const std::vector<std::vector<std::string>>& rows) {
    EngineTable* t = db_->FindTable(table);
    ASSERT_NE(t, nullptr);
    for (const auto& row : rows) {
      Status st = t->AppendRowStrings(row);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }

  QueryResult Run(const std::string& sql) {
    Result<QueryResult> r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecTest, ProjectionFilterOrder) {
  QueryResult r = Run(
      "SELECT e_name, e_salary FROM emp WHERE e_salary >= 80 "
      "ORDER BY e_salary DESC, e_name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "carol");
  EXPECT_EQ(r.rows[1][0].AsString(), "alice");
  EXPECT_EQ(r.rows[2][0].AsString(), "bob");   // ties break by name
  EXPECT_EQ(r.rows[3][0].AsString(), "dave");
}

TEST_F(ExecTest, InnerJoinDropsNullKeys) {
  QueryResult r = Run(
      "SELECT e_name, d_name FROM emp, dept WHERE e_dept = d_id "
      "ORDER BY e_name");
  ASSERT_EQ(r.rows.size(), 4u);  // erin's NULL dept never matches
  EXPECT_EQ(r.rows[0][1].AsString(), "sales");
  EXPECT_EQ(r.rows[3][0].AsString(), "dave");
}

TEST_F(ExecTest, LeftJoinPreservesUnmatched) {
  QueryResult r = Run(
      "SELECT e_name, d_name FROM emp LEFT JOIN dept ON e_dept = d_id "
      "ORDER BY e_name");
  ASSERT_EQ(r.rows.size(), 5u);
  // erin survives with a NULL department.
  EXPECT_EQ(r.rows[4][0].AsString(), "erin");
  EXPECT_TRUE(r.rows[4][1].is_null());
}

TEST_F(ExecTest, AggregatesWithAndWithoutGroups) {
  QueryResult all = Run(
      "SELECT COUNT(*), COUNT(e_dept), SUM(e_salary), AVG(e_salary), "
      "MIN(e_name), MAX(e_hired) FROM emp");
  ASSERT_EQ(all.rows.size(), 1u);
  EXPECT_EQ(all.rows[0][0].AsInt(), 5);
  EXPECT_EQ(all.rows[0][1].AsInt(), 4);  // COUNT skips the NULL dept
  EXPECT_EQ(all.rows[0][2].AsDecimal().cents(), 49075);  // 490.75
  EXPECT_NEAR(all.rows[0][3].AsDouble(), 490.75 / 5, 1e-9);
  EXPECT_EQ(all.rows[0][4].AsString(), "alice");
  EXPECT_EQ(all.rows[0][5].AsDate().ToString(), "2002-02-02");

  QueryResult grouped = Run(
      "SELECT e_dept, COUNT(*) c, SUM(e_salary) s FROM emp "
      "GROUP BY e_dept ORDER BY e_dept");
  ASSERT_EQ(grouped.rows.size(), 3u);  // NULL group sorts first
  EXPECT_TRUE(grouped.rows[0][0].is_null());
  EXPECT_EQ(grouped.rows[0][1].AsInt(), 1);
  EXPECT_EQ(grouped.rows[1][2].AsDecimal().cents(), 20000);  // dept 10
  EXPECT_EQ(grouped.rows[2][2].AsDecimal().cents(), 23050);  // dept 20
}

TEST_F(ExecTest, CountDistinctAndHaving) {
  QueryResult r = Run(
      "SELECT e_dept, COUNT(DISTINCT e_salary) d FROM emp "
      "WHERE e_dept IS NOT NULL GROUP BY e_dept "
      "HAVING COUNT(*) >= 2 ORDER BY e_dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);  // 120, 80
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);  // 150.50, 80
}

TEST_F(ExecTest, WindowPartitionSumAndRank) {
  QueryResult r = Run(
      "SELECT e_name, e_salary, "
      "       SUM(e_salary) OVER (PARTITION BY e_dept) AS dept_total, "
      "       RANK() OVER (PARTITION BY e_dept ORDER BY e_salary DESC) rnk "
      "FROM emp WHERE e_dept IS NOT NULL ORDER BY e_name");
  ASSERT_EQ(r.rows.size(), 4u);
  // alice: dept 10 total 200, rank 1; bob: rank 2.
  EXPECT_EQ(r.rows[0][2].AsDecimal().cents(), 20000);
  EXPECT_EQ(r.rows[0][3].AsInt(), 1);
  EXPECT_EQ(r.rows[1][3].AsInt(), 2);
  // carol rank 1 in dept 20; dave rank 2.
  EXPECT_EQ(r.rows[2][3].AsInt(), 1);
  EXPECT_EQ(r.rows[3][3].AsInt(), 2);
}

TEST_F(ExecTest, WindowOverGroupedAggregates) {
  // SUM(SUM(x)) OVER (...) — the Q20 shape.
  QueryResult r = Run(
      "SELECT e_dept, SUM(e_salary) dept_sum, "
      "       SUM(SUM(e_salary)) OVER (PARTITION BY 1) AS grand "
      "FROM emp WHERE e_dept IS NOT NULL GROUP BY e_dept ORDER BY e_dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][2].AsDecimal().cents(), 43050);  // 200 + 230.50
  EXPECT_EQ(r.rows[1][2].AsDecimal().cents(), 43050);
}

TEST_F(ExecTest, CaseInBetweenLike) {
  QueryResult r = Run(
      "SELECT e_name, "
      "  CASE WHEN e_salary > 100 THEN 'high' "
      "       WHEN e_salary > 70 THEN 'mid' ELSE 'low' END AS band "
      "FROM emp WHERE e_name LIKE '_a%' OR e_name IN ('bob') "
      "ORDER BY e_name");
  // '_a%' matches carol, dave; plus bob.
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "mid");   // bob 80
  EXPECT_EQ(r.rows[1][1].AsString(), "high");  // carol 150.50
  EXPECT_EQ(r.rows[2][1].AsString(), "mid");   // dave 80
}

TEST_F(ExecTest, ScalarAndInSubqueries) {
  QueryResult r = Run(
      "SELECT e_name FROM emp "
      "WHERE e_salary > (SELECT AVG(e_salary) FROM emp) "
      "ORDER BY e_name");
  // avg = 98.15 -> alice (120), carol (150.50).
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
  EXPECT_EQ(r.rows[1][0].AsString(), "carol");

  QueryResult anti = Run(
      "SELECT d_name FROM dept WHERE d_id NOT IN "
      "(SELECT e_dept FROM emp WHERE e_dept IS NOT NULL) ORDER BY d_name");
  ASSERT_EQ(anti.rows.size(), 1u);
  EXPECT_EQ(anti.rows[0][0].AsString(), "empty");
}

TEST_F(ExecTest, UnionAllDistinctAndDerived) {
  QueryResult r = Run(
      "SELECT DISTINCT band FROM ("
      "  SELECT CASE WHEN e_salary >= 100 THEN 'high' ELSE 'low' END AS "
      "band FROM emp) x ORDER BY band");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "high");

  QueryResult u = Run(
      "SELECT e_name AS n FROM emp WHERE e_dept = 10 "
      "UNION ALL SELECT d_name AS n FROM dept ORDER BY n");
  EXPECT_EQ(u.rows.size(), 5u);  // 2 employees + 3 departments
}

TEST_F(ExecTest, DateArithmeticAndComparisons) {
  QueryResult r = Run(
      "SELECT e_name, e_hired + 30 FROM emp "
      "WHERE e_hired BETWEEN '2000-01-01' AND '2000-12-31' "
      "ORDER BY e_hired");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsDate().ToString(), "2000-02-14");
}

TEST_F(ExecTest, ThreeValuedLogic) {
  // NULL dept: e_dept = 10 is UNKNOWN -> filtered; NOT (e_dept = 10) also
  // UNKNOWN -> filtered.
  QueryResult eq = Run("SELECT COUNT(*) FROM emp WHERE e_dept = 10");
  EXPECT_EQ(eq.rows[0][0].AsInt(), 2);
  QueryResult ne = Run("SELECT COUNT(*) FROM emp WHERE NOT (e_dept = 10)");
  EXPECT_EQ(ne.rows[0][0].AsInt(), 2);  // carol, dave; erin excluded
  QueryResult isnull = Run("SELECT COUNT(*) FROM emp WHERE e_dept IS NULL");
  EXPECT_EQ(isnull.rows[0][0].AsInt(), 1);
}

TEST_F(ExecTest, OrdinalOrderByAndLimit) {
  QueryResult r = Run("SELECT e_name, e_salary FROM emp ORDER BY 2 DESC "
                      "LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "carol");
  EXPECT_EQ(r.rows[1][0].AsString(), "alice");
}

TEST_F(ExecTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_->Query("SELECT nope FROM emp").ok());
  EXPECT_FALSE(db_->Query("SELECT e_name FROM missing_table").ok());
  Result<QueryResult> ambiguous =
      db_->Query("SELECT e_id FROM emp a, emp b WHERE a.e_id = b.e_id");
  EXPECT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecTest, StatsReportScanAndJoinWork) {
  ExecStats stats;
  PlannerOptions options;
  Result<QueryResult> r = db_->Query(
      "SELECT e_name, d_name FROM emp, dept WHERE e_dept = d_id", options,
      &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.rows_scanned, 8);  // 5 emp + 3 dept
  EXPECT_GT(stats.rows_joined, 0);
}

TEST_F(ExecTest, RollupEmitsSubtotalLevels) {
  QueryResult r = Run(
      "SELECT e_dept, e_name, SUM(e_salary) s FROM emp "
      "WHERE e_dept IS NOT NULL "
      "GROUP BY ROLLUP(e_dept, e_name) ORDER BY e_dept, e_name");
  // 4 base rows + 2 dept subtotals + 1 grand total = 7.
  ASSERT_EQ(r.rows.size(), 7u);
  // Grand total: both keys NULL, sum of all four salaries.
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[0][2].AsDecimal().cents(), 43050);
  // Dept subtotal rows: dept set, name NULL.
  EXPECT_EQ(r.rows[1][0].AsInt(), 10);
  EXPECT_TRUE(r.rows[1][1].is_null());
  EXPECT_EQ(r.rows[1][2].AsDecimal().cents(), 20000);
  EXPECT_EQ(r.rows[4][0].AsInt(), 20);
  EXPECT_TRUE(r.rows[4][1].is_null());
  EXPECT_EQ(r.rows[4][2].AsDecimal().cents(), 23050);
}

TEST_F(ExecTest, SetOperations) {
  // INTERSECT: salaries appearing in both departments (80.00).
  QueryResult inter = Run(
      "SELECT e_salary FROM emp WHERE e_dept = 10 "
      "INTERSECT SELECT e_salary FROM emp WHERE e_dept = 20");
  ASSERT_EQ(inter.rows.size(), 1u);
  EXPECT_EQ(inter.rows[0][0].AsDecimal().cents(), 8000);
  // EXCEPT: dept-10 salaries not in dept 20 (120.00).
  QueryResult except = Run(
      "SELECT e_salary FROM emp WHERE e_dept = 10 "
      "EXCEPT SELECT e_salary FROM emp WHERE e_dept = 20");
  ASSERT_EQ(except.rows.size(), 1u);
  EXPECT_EQ(except.rows[0][0].AsDecimal().cents(), 12000);
  // UNION (distinct) dedupes the shared salary.
  QueryResult uni = Run(
      "SELECT e_salary FROM emp WHERE e_dept = 10 "
      "UNION SELECT e_salary FROM emp WHERE e_dept = 20 ORDER BY 1");
  EXPECT_EQ(uni.rows.size(), 3u);  // 80, 120, 150.50
}

TEST_F(ExecTest, NotInWithNullsIsThreeValued) {
  // SQL gotcha: x NOT IN (..., NULL, ...) is never TRUE — a non-match is
  // UNKNOWN because the NULL might equal x.
  QueryResult lit = Run(
      "SELECT COUNT(*) FROM emp WHERE e_id NOT IN (1, NULL)");
  EXPECT_EQ(lit.rows[0][0].AsInt(), 0);
  // Subquery form: e_dept contains a NULL (erin), so NOT IN filters all.
  QueryResult sub = Run(
      "SELECT COUNT(*) FROM dept WHERE d_id NOT IN "
      "(SELECT e_dept FROM emp)");
  EXPECT_EQ(sub.rows[0][0].AsInt(), 0);
  // Excluding the NULLs restores the expected anti-join.
  QueryResult clean = Run(
      "SELECT COUNT(*) FROM dept WHERE d_id NOT IN "
      "(SELECT e_dept FROM emp WHERE e_dept IS NOT NULL)");
  EXPECT_EQ(clean.rows[0][0].AsInt(), 1);  // 'empty'
  // Positive IN with NULL in the list still matches normally.
  QueryResult pos = Run(
      "SELECT COUNT(*) FROM emp WHERE e_id IN (1, 2, NULL)");
  EXPECT_EQ(pos.rows[0][0].AsInt(), 2);
}

TEST_F(ExecTest, ExplainTracesThePlan) {
  Result<std::string> plan = db_->Explain(
      "SELECT e_name, d_name FROM emp, dept "
      "WHERE e_dept = d_id AND e_salary > 100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("scan emp"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("scan dept"), std::string::npos);
  EXPECT_NE(plan->find("hash join"), std::string::npos);
  EXPECT_NE(plan->find("1 pushed filters"), std::string::npos);
  EXPECT_NE(plan->find("result rows"), std::string::npos);

  Result<std::string> agg = db_->Explain(
      "SELECT e_dept, SUM(e_salary) FROM emp GROUP BY e_dept");
  ASSERT_TRUE(agg.ok());
  EXPECT_NE(agg->find("aggregate: 1 keys, 1 aggregates"),
            std::string::npos)
      << *agg;
}

TEST_F(ExecTest, CteUsedTwiceAndNestedDerived) {
  // One CTE consumed by two FROM items (self-join through the CTE).
  QueryResult r = Run(
      "WITH spend AS (SELECT e_dept AS dept, SUM(e_salary) AS s FROM emp "
      "               WHERE e_dept IS NOT NULL GROUP BY e_dept) "
      "SELECT a.dept, b.dept FROM spend a, spend b "
      "WHERE a.s < b.s");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);  // 200.00 < 230.50
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);

  // Derived table nested inside a derived table.
  QueryResult nested = Run(
      "SELECT MAX(x.m) FROM "
      "  (SELECT inner_q.dept, MAX(inner_q.sal) AS m FROM "
      "     (SELECT e_dept AS dept, e_salary AS sal FROM emp) inner_q "
      "   GROUP BY inner_q.dept) x");
  ASSERT_EQ(nested.rows.size(), 1u);
  EXPECT_EQ(nested.rows[0][0].AsDecimal().cents(), 15050);
}

TEST_F(ExecTest, HavingWithoutGroupByAndRankTies) {
  // HAVING on a global aggregate.
  QueryResult keep = Run(
      "SELECT SUM(e_salary) FROM emp HAVING COUNT(*) > 3");
  EXPECT_EQ(keep.rows.size(), 1u);
  QueryResult drop = Run(
      "SELECT SUM(e_salary) FROM emp HAVING COUNT(*) > 100");
  EXPECT_EQ(drop.rows.size(), 0u);

  // RANK leaves gaps on ties; DENSE_RANK does not (bob and dave tie at 80).
  QueryResult ranks = Run(
      "SELECT e_name, RANK() OVER (ORDER BY e_salary DESC) r, "
      "       DENSE_RANK() OVER (ORDER BY e_salary DESC) d "
      "FROM emp ORDER BY r, e_name");
  ASSERT_EQ(ranks.rows.size(), 5u);
  // carol 150.50 -> 1/1, alice 120 -> 2/2, bob+dave 80 -> 3/3, erin -> 5/4.
  EXPECT_EQ(ranks.rows[2][1].AsInt(), 3);
  EXPECT_EQ(ranks.rows[3][1].AsInt(), 3);
  EXPECT_EQ(ranks.rows[4][1].AsInt(), 5);
  EXPECT_EQ(ranks.rows[4][2].AsInt(), 4);
}

TEST_F(ExecTest, DdlErrorsSurface) {
  EXPECT_FALSE(db_->CreateTable("emp", {{"x", ColumnType::kInteger}}).ok());
  GeneratorOptions gen;
  EXPECT_FALSE(db_->LoadTable("not_created", gen).ok());
  EXPECT_FALSE(
      db_->FindTable("emp")->AppendRowStrings({"only-one-field"}).ok());
}

TEST_F(ExecTest, ConcatAndFunctions) {
  QueryResult r = Run(
      "SELECT UPPER(e_name) || '-' || SUBSTR(e_name, 1, 2), "
      "       COALESCE(e_dept, -1), ABS(-5), ROUND(e_salary / 7, 1) "
      "FROM emp WHERE e_id = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ERIN-er");
  EXPECT_EQ(r.rows[0][1].AsInt(), -1);
  EXPECT_EQ(r.rows[0][2].AsInt(), 5);
  EXPECT_NEAR(r.rows[0][3].AsDouble(), 8.6, 1e-9);
}

}  // namespace
}  // namespace tpcds
