// Tests for the per-column lightweight encodings (dictionary / RLE /
// frame-of-reference): the stats-pass eligibility rules, byte-exact
// round-trips through the accessors (NULLs, empty columns, single runs,
// max bit-width, dictionary overflow fallback), the encoded-literal scan
// kernels against the generic path, mutation-decodes-first semantics on
// owned and mapped encoded columns, and checkpoint persistence (deep load
// decodes to plain, attach maps encoded sections zero-copy).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/audit.h"
#include "engine/batch.h"
#include "engine/database.h"
#include "engine/table.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

StorageColumn MakeIntColumn(const std::vector<std::string>& fields,
                            ColumnType type = ColumnType::kInteger) {
  StorageColumn c(type);
  for (const std::string& f : fields) EXPECT_TRUE(c.AppendParsed(f).ok());
  return c;
}

StorageColumn MakeStrColumn(const std::vector<std::string>& fields) {
  StorageColumn c(ColumnType::kVarchar);
  for (const std::string& f : fields) EXPECT_TRUE(c.AppendParsed(f).ok());
  return c;
}

SelectionVector Identity(size_t n) {
  SelectionVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

/// Every logical observation of `got` must equal `want`: size, null mask,
/// and per-row Value (which exercises Str/Num through the accessors).
void ExpectSameContent(const StorageColumn& got, const StorageColumn& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got.IsNull(r), want.IsNull(r)) << "row " << r;
    EXPECT_EQ(Value::Compare(got.Get(r), want.Get(r)), 0) << "row " << r;
  }
}

// ---- eligibility + round-trip ------------------------------------------

TEST(EncodingTest, DictRoundTripWithNullsPreservesContent) {
  std::vector<std::string> fields;
  const char* channels[] = {"web", "store", "catalog"};
  for (int i = 0; i < 300; ++i) {
    fields.push_back(i % 7 == 0 ? "" : channels[i % 3]);  // "" = NULL
  }
  StorageColumn plain = MakeStrColumn(fields);
  StorageColumn col = MakeStrColumn(fields);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kDict);
  EXPECT_EQ(col.DictNdv(), 4u);  // "", catalog, store, web
  EXPECT_LT(col.PayloadByteSize(), col.PlainByteSize());
  ExpectSameContent(col, plain);
  // Sorted dictionary: code order is string order.
  for (uint32_t c = 1; c < col.DictNdv(); ++c) {
    EXPECT_LT(col.DictEntry(c - 1), col.DictEntry(c));
  }
}

TEST(EncodingTest, DictOverflowPastNdvCapFallsBackToPlain) {
  StorageColumn col(ColumnType::kVarchar);
  for (int i = 0; i < (1 << 16) + 10; ++i) {
    ASSERT_TRUE(col.AppendParsed("v" + std::to_string(i)).ok());
  }
  EXPECT_FALSE(col.Encode());
  EXPECT_EQ(col.encoding(), ColEncoding::kPlain);
}

TEST(EncodingTest, DictThatWouldNotShrinkStaysPlain) {
  // All-distinct strings: codes + dictionary + arena exceed the plain
  // offsets + arena representation, so the stats pass must refuse.
  StorageColumn col = MakeStrColumn({"aa", "bb", "cc"});
  EXPECT_FALSE(col.Encode());
  EXPECT_EQ(col.encoding(), ColEncoding::kPlain);
}

TEST(EncodingTest, RleRoundTripOnClusteredIntsWithNulls) {
  std::vector<std::string> fields;
  for (int run = 0; run < 5; ++run) {
    for (int i = 0; i < 20; ++i) {
      fields.push_back(run == 2 && i < 3
                           ? ""
                           : StringPrintf("1998-01-%02d", run + 1));
    }
  }
  StorageColumn plain = MakeIntColumn(fields, ColumnType::kDate);
  StorageColumn col = MakeIntColumn(fields, ColumnType::kDate);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kRle);
  // NULL rows carry payload 0; the three at the head of run 2 form their
  // own run, so 5 date runs become 6.
  EXPECT_EQ(col.RleRuns(), 6u);
  EXPECT_LT(col.PayloadByteSize(), col.PlainByteSize());
  ExpectSameContent(col, plain);
}

TEST(EncodingTest, RleSingleRunColumn) {
  std::vector<std::string> fields(64, "42");
  StorageColumn plain = MakeIntColumn(fields);
  StorageColumn col = MakeIntColumn(fields);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kRle);
  EXPECT_EQ(col.RleRuns(), 1u);
  ExpectSameContent(col, plain);
}

TEST(EncodingTest, ForRoundTripOnDenseKeysIncludingNegatives) {
  std::vector<std::string> fields;
  for (int i = 0; i < 200; ++i) {
    fields.push_back(std::to_string((i % 2 == 0 ? -1 : 1) * (1000 + i)));
  }
  StorageColumn plain = MakeIntColumn(fields, ColumnType::kIdentifier);
  StorageColumn col = MakeIntColumn(fields, ColumnType::kIdentifier);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kFor);
  EXPECT_EQ(col.ForBase(), -1198);  // min payload
  EXPECT_LT(col.PayloadByteSize(), col.PlainByteSize());
  ExpectSameContent(col, plain);
}

TEST(EncodingTest, ForMaxBitWidthBoundary) {
  // Range 2^32 - 1 packs at the 32-bit cap; one wider must stay plain.
  // Alternating values keep RLE ineligible (runs == rows).
  std::vector<std::string> at_cap;
  std::vector<std::string> past_cap;
  for (int i = 0; i < 8; ++i) {
    at_cap.push_back(i % 2 == 0 ? "0" : "4294967295");
    past_cap.push_back(i % 2 == 0 ? "0" : "4294967296");
  }
  StorageColumn plain = MakeIntColumn(at_cap);
  StorageColumn col = MakeIntColumn(at_cap);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kFor);
  EXPECT_EQ(col.ForWidth(), 32u);
  ExpectSameContent(col, plain);

  StorageColumn wide = MakeIntColumn(past_cap);
  EXPECT_FALSE(wide.Encode());
  EXPECT_EQ(wide.encoding(), ColEncoding::kPlain);
}

TEST(EncodingTest, ZeroWidthForColumnDecodesToBase) {
  // A constant column is RLE's single-run case; force FOR's width-0 path
  // by alternating nulls (payload 0) with a constant... payload still has
  // two distinct values, so instead use runs shorter than the RLE minimum.
  std::vector<std::string> fields = {"7", "8", "7", "8", "7", "8"};
  StorageColumn col = MakeIntColumn(fields);
  StorageColumn plain = MakeIntColumn(fields);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kFor);
  EXPECT_EQ(col.ForWidth(), 1u);
  ExpectSameContent(col, plain);
}

TEST(EncodingTest, EmptyColumnStaysPlain) {
  StorageColumn num(ColumnType::kInteger);
  StorageColumn str(ColumnType::kVarchar);
  EXPECT_FALSE(num.Encode());
  EXPECT_FALSE(str.Encode());
  EXPECT_EQ(num.encoding(), ColEncoding::kPlain);
  EXPECT_EQ(str.encoding(), ColEncoding::kPlain);
}

// ---- encoded-literal kernels -------------------------------------------

/// Applies `kernel` through both paths — generic on the plain column,
/// prepared on the encoded one — and expects identical selections.
void ExpectKernelAgreement(const ScanKernel& kernel,
                           const StorageColumn& plain,
                           const StorageColumn& encoded,
                           const std::string& what) {
  SelectionVector expect = Identity(plain.size());
  ApplyScanKernel(kernel, plain, &expect);
  PreparedScanKernel prepared = PrepareScanKernel(kernel, encoded);
  SelectionVector got = Identity(encoded.size());
  ApplyPreparedScanKernel(prepared, encoded, &got);
  EXPECT_EQ(got, expect) << what;
}

TEST(EncodedKernelTest, DictCompareBecomesCodeRangeForEveryCmp) {
  std::vector<std::string> fields;
  const char* cats[] = {"Books", "Home", "Music", "Shoes", "Women"};
  for (int i = 0; i < 100; ++i) {
    fields.push_back(i % 11 == 0 ? "" : cats[i % 5]);
  }
  StorageColumn plain = MakeStrColumn(fields);
  StorageColumn encoded = MakeStrColumn(fields);
  ASSERT_TRUE(encoded.Encode());
  ASSERT_EQ(encoded.encoding(), ColEncoding::kDict);

  // Literals: present, absent-in-the-middle, below and above every entry.
  const char* literals[] = {"Music", "Jewelry", "", "zzz"};
  const ScanKernel::Cmp cmps[] = {ScanKernel::Cmp::kEq, ScanKernel::Cmp::kNe,
                                  ScanKernel::Cmp::kLt, ScanKernel::Cmp::kLe,
                                  ScanKernel::Cmp::kGt, ScanKernel::Cmp::kGe};
  for (const char* lit : literals) {
    for (ScanKernel::Cmp cmp : cmps) {
      ScanKernel k;
      k.kind = ScanKernel::Kind::kStrCompare;
      k.col = 0;
      k.cmp = cmp;
      k.str = lit;
      PreparedScanKernel p = PrepareScanKernel(k, encoded);
      EXPECT_EQ(p.mode, PreparedScanKernel::Mode::kCodeRange);
      ExpectKernelAgreement(
          k, plain, encoded,
          StringPrintf("cmp %d literal '%s'", static_cast<int>(cmp), lit));
    }
  }
}

TEST(EncodedKernelTest, DictInAndLikeBecomeCodeMasks) {
  std::vector<std::string> fields;
  const char* cats[] = {"ship", "shop", "stop", "top", "tip"};
  for (int i = 0; i < 80; ++i) {
    fields.push_back(i % 13 == 0 ? "" : cats[i % 5]);
  }
  StorageColumn plain = MakeStrColumn(fields);
  StorageColumn encoded = MakeStrColumn(fields);
  ASSERT_TRUE(encoded.Encode());

  for (bool negated : {false, true}) {
    ScanKernel in;
    in.kind = ScanKernel::Kind::kStrIn;
    in.col = 0;
    in.negated = negated;
    in.strs = {"absent", "shop", "tip"};  // sorted
    PreparedScanKernel p = PrepareScanKernel(in, encoded);
    EXPECT_EQ(p.mode, PreparedScanKernel::Mode::kCodeMask);
    ExpectKernelAgreement(in, plain, encoded,
                          negated ? "NOT IN" : "IN");

    ScanKernel like;
    like.kind = ScanKernel::Kind::kStrLike;
    like.col = 0;
    like.negated = negated;
    like.str = "sh%p";
    like.like_prefix = "sh";
    like.prefix_only = false;
    EXPECT_EQ(PrepareScanKernel(like, encoded).mode,
              PreparedScanKernel::Mode::kCodeMask);
    ExpectKernelAgreement(like, plain, encoded,
                          negated ? "NOT LIKE" : "LIKE");
  }
}

TEST(EncodedKernelTest, RleRangeSkipsWholeRunsAndAgreesWithGeneric) {
  std::vector<std::string> fields;
  for (int run = 0; run < 6; ++run) {
    for (int i = 0; i < 17; ++i) {
      fields.push_back(run == 3 && i == 5 ? "" : std::to_string(10 * run));
    }
  }
  StorageColumn plain = MakeIntColumn(fields);
  StorageColumn encoded = MakeIntColumn(fields);
  ASSERT_TRUE(encoded.Encode());
  ASSERT_EQ(encoded.encoding(), ColEncoding::kRle);

  struct Case {
    int64_t lo, hi;
    bool negated;
  };
  // Run-aligned, straddling, empty, and all-covering ranges; negated too.
  const Case cases[] = {{20, 40, false}, {20, 40, true},  {15, 15, false},
                        {-5, 100, false}, {-5, 100, true}, {50, 0, false},
                        {50, 0, true},    {0, 0, false}};
  for (const Case& tc : cases) {
    ScanKernel k;
    k.kind = ScanKernel::Kind::kIntRange;
    k.col = 0;
    k.lo = tc.lo;
    k.hi = tc.hi;
    k.negated = tc.negated;
    EXPECT_EQ(PrepareScanKernel(k, encoded).mode,
              PreparedScanKernel::Mode::kRleRuns);
    ExpectKernelAgreement(k, plain, encoded,
                          StringPrintf("[%lld, %lld] negated=%d",
                                       static_cast<long long>(tc.lo),
                                       static_cast<long long>(tc.hi),
                                       tc.negated));
  }
  ScanKernel in;
  in.kind = ScanKernel::Kind::kIntIn;
  in.col = 0;
  in.values = {0, 30, 99};
  for (bool negated : {false, true}) {
    in.negated = negated;
    ExpectKernelAgreement(in, plain, encoded, "rle IN");
  }
}

TEST(EncodedKernelTest, ForRangeShiftsBoundsWithSaturation) {
  std::vector<std::string> fields;
  for (int i = 0; i < 50; ++i) {
    fields.push_back(i % 9 == 0 ? "" : std::to_string(1'000'000 + i * 3));
  }
  StorageColumn plain = MakeIntColumn(fields, ColumnType::kIdentifier);
  StorageColumn encoded = MakeIntColumn(fields, ColumnType::kIdentifier);
  ASSERT_TRUE(encoded.Encode());
  ASSERT_EQ(encoded.encoding(), ColEncoding::kFor);

  struct Case {
    int64_t lo, hi;
    bool negated;
  };
  const Case cases[] = {
      {1'000'000, 1'000'060, false},
      {1'000'000, 1'000'060, true},
      // Bounds far outside the packed domain must saturate, not wrap —
      // note NULL payloads (0) sit below every real value here.
      {INT64_MIN, INT64_MAX, false},
      {INT64_MIN, INT64_MAX, true},
      {INT64_MIN, 999'999, false},
      {1'000'200, INT64_MAX, false},
      {1'000'200, INT64_MAX, true},
      {5, 3, false},  // empty
      {5, 3, true},
  };
  for (const Case& tc : cases) {
    ScanKernel k;
    k.kind = ScanKernel::Kind::kIntRange;
    k.col = 0;
    k.lo = tc.lo;
    k.hi = tc.hi;
    k.negated = tc.negated;
    EXPECT_EQ(PrepareScanKernel(k, encoded).mode,
              PreparedScanKernel::Mode::kForRange);
    ExpectKernelAgreement(k, plain, encoded,
                          StringPrintf("[%lld, %lld] negated=%d",
                                       static_cast<long long>(tc.lo),
                                       static_cast<long long>(tc.hi),
                                       tc.negated));
  }
}

TEST(EncodedKernelTest, PlainColumnPreparesAsGeneric) {
  StorageColumn col = MakeIntColumn({"1", "2", "3"});
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = 0;
  k.lo = 2;
  k.hi = 3;
  PreparedScanKernel p = PrepareScanKernel(k, col);
  EXPECT_EQ(p.mode, PreparedScanKernel::Mode::kGeneric);
  SelectionVector sel = Identity(3);
  ApplyPreparedScanKernel(p, col, &sel);
  EXPECT_EQ(sel, (SelectionVector{1, 2}));
}

// ---- mutation decodes first --------------------------------------------

TEST(EncodingTest, AppendToOwnedEncodedColumnDecodesFirst) {
  std::vector<std::string> fields(40, "7");
  StorageColumn col = MakeIntColumn(fields);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kRle);
  ASSERT_TRUE(col.AppendValue(Value::Int(9)).ok());
  EXPECT_EQ(col.encoding(), ColEncoding::kPlain);
  ASSERT_EQ(col.size(), 41u);
  for (size_t r = 0; r < 40; ++r) EXPECT_EQ(col.Num(r), 7);
  EXPECT_EQ(col.Num(40), 9);
}

TEST(EncodingTest, SetOnOwnedEncodedDictColumnDecodesFirst) {
  std::vector<std::string> fields;
  for (int i = 0; i < 60; ++i) fields.push_back(i % 2 == 0 ? "on" : "off");
  StorageColumn col = MakeStrColumn(fields);
  ASSERT_TRUE(col.Encode());
  ASSERT_EQ(col.encoding(), ColEncoding::kDict);
  col.Set(3, Value::Str("maybe"));
  EXPECT_EQ(col.encoding(), ColEncoding::kPlain);
  EXPECT_EQ(col.Str(3), "maybe");
  EXPECT_EQ(col.Str(2), "on");
  EXPECT_EQ(col.Str(5), "off");
}

/// Regression for the stale-payload class of bug: mutating a *mapped
/// encoded* column must decode the mapped sections before copy-on-write,
/// or the owned vectors would be installed empty/stale. The oracle is the
/// (representation-independent) content hash against a heap-plain table
/// that saw the same mutations.
TEST(EncodingTest, MutatingMappedEncodedColumnDecodesBeforeCow) {
  const std::string dir = ::testing::TempDir() + "enc_mut_ckpt";
  std::filesystem::remove_all(dir);

  auto build = [](Database* db) {
    ASSERT_TRUE(db->CreateTable("t", {{"k", ColumnType::kIdentifier},
                                      {"flag", ColumnType::kChar},
                                      {"d", ColumnType::kDate}})
                    .ok());
    EngineTable* t = db->FindTable("t");
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(t->AppendRowStrings({std::to_string(1000 + i),
                                       i % 2 == 0 ? "Y" : "N",
                                       StringPrintf("1998-02-%02d",
                                                    1 + i / 100)})
                      .ok());
    }
  };

  Database heap;
  build(&heap);

  Database encoded;
  build(&encoded);
  ASSERT_GE(encoded.EncodeStorage(), 3u);  // k=FOR, flag=dict, d=RLE
  ASSERT_TRUE(encoded.SaveCheckpoint(dir).ok());
  Database attached;
  ASSERT_TRUE(attached.AttachCheckpoint(dir).ok());
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_NE(attached.FindTable("t")->column(c).encoding(),
              ColEncoding::kPlain)
        << "column " << c << " should attach encoded";
  }

  auto mutate = [](Database* db) {
    EngineTable* t = db->FindTable("t");
    t->SetValue(10, 1, Value::Str("X"));
    t->SetValue(499, 0, Value::Int(99));
    ASSERT_TRUE(
        t->AppendRowStrings({"2000", "Y", "1998-03-01"}).ok());
  };
  mutate(&heap);
  mutate(&attached);

  EXPECT_EQ(HashTableContent(*attached.FindTable("t")),
            HashTableContent(*heap.FindTable("t")));
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(attached.FindTable("t")->column(c).encoding(),
              ColEncoding::kPlain);
  }
  std::filesystem::remove_all(dir);
}

// ---- checkpoint persistence --------------------------------------------

class EncodedCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "enc_ckpt";
    std::filesystem::remove_all(dir_);
    BuildSource();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void BuildSource() {
    ASSERT_TRUE(source_.CreateTable("s", {{"sk", ColumnType::kIdentifier},
                                          {"channel", ColumnType::kChar},
                                          {"sold", ColumnType::kDate},
                                          {"price", ColumnType::kDecimal}})
                    .ok());
    EngineTable* t = source_.FindTable("s");
    const char* channels[] = {"web", "store", "catalog"};
    for (int i = 0; i < 1200; ++i) {
      std::vector<std::string> row = {
          std::to_string(500'000 + i), channels[i % 3],
          StringPrintf("1999-01-%02d", 1 + i / 200), "12.34"};
      if (i % 37 == 0) row[1] = "";  // NULL channel
      if (i % 53 == 0) row[2] = "";  // NULL date
      ASSERT_TRUE(t->AppendRowStrings(row).ok());
    }
    hash_plain_ = HashTableContent(*t);
    ASSERT_GE(source_.EncodeStorage(), 3u);
    // Encoding itself is content-neutral.
    ASSERT_EQ(HashTableContent(*source_.FindTable("s")), hash_plain_);
    ASSERT_TRUE(source_.SaveCheckpoint(dir_).ok());
  }

  Database source_;
  std::string dir_;
  uint64_t hash_plain_ = 0;
};

TEST_F(EncodedCheckpointTest, DeepLoadDecodesToPlainAndVerifies) {
  Database loaded;
  ASSERT_TRUE(loaded.LoadCheckpoint(dir_).ok());
  const EngineTable* t = loaded.FindTable("s");
  ASSERT_NE(t, nullptr);
  for (size_t c = 0; c < t->num_columns(); ++c) {
    EXPECT_EQ(t->column(c).encoding(), ColEncoding::kPlain) << "col " << c;
  }
  EXPECT_EQ(HashTableContent(*t), hash_plain_);
}

TEST_F(EncodedCheckpointTest, AttachMapsEncodedSectionsZeroCopy) {
  Database attached;
  ASSERT_TRUE(attached.AttachCheckpoint(dir_).ok());
  const EngineTable* t = attached.FindTable("s");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->column(0).encoding(), ColEncoding::kFor);
  EXPECT_EQ(t->column(1).encoding(), ColEncoding::kDict);
  EXPECT_EQ(t->column(2).encoding(), ColEncoding::kRle);
  EXPECT_EQ(HashTableContent(*t), hash_plain_);

  // Encoded execution answers identically to the plain source.
  const std::string sql =
      "SELECT channel, COUNT(*), MIN(sk) FROM s "
      "WHERE sold >= '1999-01-03' AND channel <> 'store' "
      "GROUP BY channel ORDER BY channel";
  Result<QueryResult> want = source_.Query(sql);
  Result<QueryResult> got = attached.Query(sql);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->ToCsv(), want->ToCsv());
}

TEST_F(EncodedCheckpointTest, CorruptEncodedSectionFailsDeepLoadCleanly) {
  // Flip one byte inside the table file body (past header + directory):
  // deep load must report kDataLoss, not crash or silently decode junk.
  const std::string path = dir_ + "/s.col";
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 4096u);
  bytes[bytes.size() - 17] ^= 0x40;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  Database loaded;
  Status st = loaded.LoadCheckpoint(dir_);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
}

TEST(EncodingStatsTest, ExplainReportsBytesTouchedAndEncodingShrinks) {
  Database db;
  ASSERT_TRUE(db.CreateTable("f", {{"k", ColumnType::kIdentifier},
                                   {"v", ColumnType::kInteger}})
                  .ok());
  EngineTable* t = db.FindTable("f");
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t->AppendRowStrings(
                     {std::to_string(i), std::to_string(i % 10)})
                    .ok());
  }
  const std::string sql = "SELECT COUNT(*) FROM f WHERE k BETWEEN 10 AND 90";
  ExecStats plain_stats;
  ASSERT_TRUE(db.Query(sql, db.default_options(), &plain_stats).ok());
  EXPECT_GT(plain_stats.bytes_touched, 0);

  ASSERT_GE(db.EncodeStorage(), 1u);
  Database::CompressionStats cs = db.TableCompression("f");
  EXPECT_GT(cs.ratio, 1.0);
  EXPECT_LT(cs.encoded_bytes, cs.plain_bytes);

  ExecStats enc_stats;
  ASSERT_TRUE(db.Query(sql, db.default_options(), &enc_stats).ok());
  EXPECT_GT(enc_stats.bytes_touched, 0);
  EXPECT_LT(enc_stats.bytes_touched, plain_stats.bytes_touched);

  Result<std::string> explain = db.Explain(sql);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("bytes touched"), std::string::npos) << *explain;
}

}  // namespace
}  // namespace tpcds
