// Property tests of the data generator: determinism, chunk-parallel
// equivalence, scaling fidelity, referential integrity, SCD invariants,
// and the coupling of sales and returns (paper §3).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "dsgen/generator.h"
#include "dsgen/parallel.h"
#include "dsgen/keys.h"
#include "dsgen/scd.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

constexpr double kSf = 0.002;

GeneratorOptions Options(double sf = kSf) {
  GeneratorOptions o;
  o.scale_factor = sf;
  return o;
}

Result<std::vector<std::vector<std::string>>> GenerateAll(
    const std::string& table, const GeneratorOptions& options) {
  TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<TableGenerator> gen,
                         MakeGenerator(table, options));
  MemoryRowSink sink;
  TPCDS_RETURN_NOT_OK(gen->Generate(&sink));
  return sink.rows();
}

int64_t ToInt(const std::string& field) {
  return std::strtoll(field.c_str(), nullptr, 10);
}

TEST(DsgenTest, BusinessKeyFormat) {
  EXPECT_EQ(BusinessKey(0), "AAAAAAAAAAAAAAAA");
  EXPECT_EQ(BusinessKey(1), "AAAAAAAABAAAAAAA");
  EXPECT_EQ(BusinessKey(26), "AAAAAAAAABAAAAAA");
  EXPECT_EQ(BusinessKey(27), "AAAAAAAABBAAAAAA");
  EXPECT_EQ(BusinessKey(123456).size(), 16u);
  EXPECT_NE(BusinessKey(5), BusinessKey(6));
}

TEST(DsgenTest, DateSkRoundTrip) {
  Date d = Date::FromYmd(2000, 11, 15);
  EXPECT_EQ(SkToDate(DateToSk(d)), d);
  EXPECT_EQ(DateToSk(ScalingModel::DateDimBeginDate()), 1);
  EXPECT_EQ(SecondsToTimeSk(0), 1);
  EXPECT_EQ(SecondsToTimeSk(86399), 86400);
}

TEST(DsgenTest, GenerationIsDeterministic) {
  for (const char* table : {"customer", "item", "store_sales"}) {
    auto a = GenerateAll(table, Options());
    auto b = GenerateAll(table, Options());
    ASSERT_TRUE(a.ok() && b.ok()) << table;
    EXPECT_EQ(*a, *b) << table;
  }
}

TEST(DsgenTest, DifferentSeedsDifferentData) {
  GeneratorOptions other = Options();
  other.master_seed = 42;
  auto a = GenerateAll("customer", Options());
  auto b = GenerateAll("customer", other);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());  // same cardinality...
  EXPECT_NE(*a, *b);                // ...different content
}

class ChunkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ChunkEquivalenceTest, ChunkedEqualsSerial) {
  // The paper's parallel-generation requirement: the concatenation of
  // independently generated chunks is bit-identical to a serial run.
  auto [table, num_chunks] = GetParam();
  auto serial = GenerateAll(table, Options());
  ASSERT_TRUE(serial.ok());
  std::vector<std::vector<std::string>> combined;
  for (int chunk = 1; chunk <= num_chunks; ++chunk) {
    GeneratorOptions options = Options();
    options.chunk = chunk;
    options.num_chunks = num_chunks;
    auto part = GenerateAll(table, options);
    ASSERT_TRUE(part.ok());
    combined.insert(combined.end(), part->begin(), part->end());
  }
  EXPECT_EQ(combined, *serial) << table << " in " << num_chunks << " chunks";
}

INSTANTIATE_TEST_SUITE_P(
    TablesAndChunkCounts, ChunkEquivalenceTest,
    ::testing::Combine(::testing::Values("customer", "item", "store_sales",
                                         "web_returns", "inventory",
                                         "customer_demographics"),
                       ::testing::Values(2, 3, 7)));

TEST(DsgenTest, ThreadPoolParallelGenerationEqualsSerial) {
  ThreadPool pool(3);
  for (const char* table : {"customer", "store_sales"}) {
    auto serial = GenerateAll(table, Options());
    ASSERT_TRUE(serial.ok());
    MemoryRowSink parallel;
    Status st = GenerateTableParallel(table, Options(), /*num_chunks=*/5,
                                      &pool, &parallel);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(parallel.rows(), *serial) << table;
  }
  EXPECT_FALSE(
      GenerateTableParallel("customer", Options(), 0, &pool, nullptr).ok());
}

TEST(DsgenTest, FrequentNameSkewReachesCustomers) {
  // Paper §3.2: real-world skew ("frequent names") must survive into the
  // generated customer dimension — Smith outnumbers a tail name.
  auto rows = GenerateAll("customer", Options(0.05));
  ASSERT_TRUE(rows.ok());
  int64_t smith = 0;
  int64_t hayes = 0;  // tail of the embedded census list
  for (const auto& row : *rows) {
    if (row[9] == "Smith") ++smith;
    if (row[9] == "Hayes") ++hayes;
  }
  EXPECT_GT(smith, 0);
  EXPECT_GT(smith, 3 * hayes) << "Smith " << smith << " Hayes " << hayes;
}

TEST(DsgenTest, TimeDimContent) {
  GeneratorOptions options = Options();
  auto gen = MakeGenerator("time_dim", options);
  ASSERT_TRUE(gen.ok());
  MemoryRowSink sink;
  // 08:30:15 = second 30615; 19:00:00 = 68400.
  ASSERT_TRUE((*gen)->GenerateUnits(30615, 1, &sink).ok());
  ASSERT_TRUE((*gen)->GenerateUnits(68400, 1, &sink).ok());
  const auto& morning = sink.rows()[0];
  EXPECT_EQ(morning[3], "8");           // hour
  EXPECT_EQ(morning[4], "30");          // minute
  EXPECT_EQ(morning[5], "15");          // second
  EXPECT_EQ(morning[6], "AM");
  EXPECT_EQ(morning[9], "breakfast");
  const auto& evening = sink.rows()[1];
  EXPECT_EQ(evening[6], "PM");
  EXPECT_EQ(evening[7], "second");      // shift
  EXPECT_EQ(evening[9], "dinner");
}

TEST(DsgenTest, DateDimHolidaysAndWeekends) {
  GeneratorOptions options = Options();
  auto gen = MakeGenerator("date_dim", options);
  ASSERT_TRUE(gen.ok());
  MemoryRowSink sink;
  ASSERT_TRUE((*gen)
                  ->GenerateUnits(DateToSk(Date::FromYmd(2000, 12, 25)) - 1,
                                  1, &sink)
                  .ok());
  ASSERT_TRUE((*gen)
                  ->GenerateUnits(DateToSk(Date::FromYmd(2000, 7, 8)) - 1, 1,
                                  &sink)
                  .ok());
  const auto& christmas = sink.rows()[0];
  EXPECT_EQ(christmas[16], "Y");  // d_holiday
  const auto& saturday = sink.rows()[1];
  EXPECT_EQ(saturday[17], "Y");   // d_weekend
  EXPECT_EQ(saturday[14], "Saturday");
}

TEST(DsgenTest, RowCountsTrackScalingModel) {
  // Dimensions hit the model exactly; sales are organised in tickets of
  // 1..20 items (mean 10.5), so their totals land within ~2%.
  for (const char* table : {"customer", "item", "store", "promotion"}) {
    auto rows = GenerateAll(table, Options());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(static_cast<int64_t>(rows->size()),
              ScalingModel::RowCount(table, kSf))
        << table;
  }
  auto sales = GenerateAll("store_sales", Options());
  ASSERT_TRUE(sales.ok());
  double expected = static_cast<double>(
      ScalingModel::RowCount("store_sales", kSf));
  EXPECT_NEAR(static_cast<double>(sales->size()) / expected, 1.0, 0.05);
}

TEST(DsgenTest, SalesReferentialIntegrity) {
  auto sales = GenerateAll("store_sales", Options());
  ASSERT_TRUE(sales.ok());
  int64_t items = ScalingModel::RowCount("item", kSf);
  int64_t customers = ScalingModel::RowCount("customer", kSf);
  int64_t stores = ScalingModel::RowCount("store", kSf);
  int64_t dates = ScalingModel::DateDimRows();
  int64_t sold_begin = DateToSk(ScalingModel::SalesBeginDate());
  int64_t sold_end = DateToSk(ScalingModel::SalesEndDate());
  for (const auto& row : *sales) {
    ASSERT_EQ(row.size(), 23u);
    int64_t date_sk = ToInt(row[0]);
    EXPECT_GE(date_sk, sold_begin);
    EXPECT_LE(date_sk, sold_end);
    EXPECT_LE(date_sk, dates);
    EXPECT_GE(ToInt(row[2]), 1);          // item
    EXPECT_LE(ToInt(row[2]), items);
    EXPECT_GE(ToInt(row[3]), 1);          // customer
    EXPECT_LE(ToInt(row[3]), customers);
    EXPECT_GE(ToInt(row[7]), 1);          // store
    EXPECT_LE(ToInt(row[7]), stores);
    EXPECT_GE(ToInt(row[10]), 1);         // quantity
    EXPECT_LE(ToInt(row[10]), 100);
  }
}

TEST(DsgenTest, ReturnsAreSubsetOfSales) {
  GeneratorOptions options = Options();
  MemoryRowSink sales;
  MemoryRowSink returns;
  ASSERT_TRUE(GenerateSalesChannel("store_sales", options, &sales, &returns)
                  .ok());
  ASSERT_GT(returns.rows().size(), 0u);
  // Each return's (item_sk, ticket_number) matches exactly one sale.
  std::set<std::pair<int64_t, int64_t>> sold;
  for (const auto& row : sales.rows()) {
    EXPECT_TRUE(sold.insert({ToInt(row[2]), ToInt(row[9])}).second)
        << "duplicate sales PK";
  }
  for (const auto& row : returns.rows()) {
    ASSERT_EQ(row.size(), 20u);
    EXPECT_TRUE(sold.count({ToInt(row[2]), ToInt(row[9])}))
        << "orphan return";
    // Returned quantity can't exceed the 1..100 sold quantity.
    EXPECT_GE(ToInt(row[10]), 1);
    EXPECT_LE(ToInt(row[10]), 100);
  }
  // Return rate tracks the paper's ~4.9% for the store channel.
  double rate = static_cast<double>(returns.rows().size()) /
                static_cast<double>(sales.rows().size());
  EXPECT_NEAR(rate, 140000.0 / 2880000.0, 0.02);
}

TEST(DsgenTest, TicketsAverageTenAndAHalfItems) {
  auto sales = GenerateAll("store_sales", Options(0.005));
  ASSERT_TRUE(sales.ok());
  std::map<int64_t, int> ticket_sizes;
  for (const auto& row : *sales) ++ticket_sizes[ToInt(row[9])];
  double total = 0;
  int max_items = 0;
  for (const auto& [ticket, n] : ticket_sizes) {
    total += n;
    max_items = std::max(max_items, n);
  }
  double avg = total / static_cast<double>(ticket_sizes.size());
  EXPECT_NEAR(avg, 10.5, 0.6);  // paper §3.1: avg cart = 10.5 items
  EXPECT_LE(max_items, 20);
}

TEST(DsgenTest, ScdInvariants) {
  auto rows = GenerateAll("item", Options(0.05));
  ASSERT_TRUE(rows.ok());
  // Column layout: 0 sk, 1 business key, 2 rec_start, 3 rec_end.
  std::map<std::string, std::vector<size_t>> by_bk;
  for (size_t i = 0; i < rows->size(); ++i) {
    by_bk[(*rows)[i][1]].push_back(i);
    EXPECT_EQ(ToInt((*rows)[i][0]), static_cast<int64_t>(i) + 1)
        << "surrogates must be dense and 1-based";
  }
  for (const auto& [bk, indices] : by_bk) {
    ASSERT_LE(indices.size(), 3u) << "paper: up to 3 revisions";
    int open = 0;
    std::string prev_end;
    for (size_t k = 0; k < indices.size(); ++k) {
      const auto& row = (*rows)[indices[k]];
      if (row[3].empty()) {
        ++open;
        EXPECT_EQ(k, indices.size() - 1) << "only the newest is open";
      }
      if (k > 0) {
        // Consecutive revision windows must not overlap.
        const auto& prev = (*rows)[indices[k - 1]];
        EXPECT_LT(prev[3], row[2]) << bk;
      }
      // Identity attributes are stable across revisions (item_id col 1 is
      // the key itself; category col 12 must match).
      EXPECT_EQ(row[12], (*rows)[indices[0]][12]) << bk;
    }
    EXPECT_EQ(open, 1) << bk;
  }
}

TEST(DsgenTest, RevisionMapDistributesAllRows) {
  RevisionMap map(123, 1000);
  EXPECT_EQ(map.surrogate_rows(), 1000);
  EXPECT_GT(map.num_business_keys(), 300);  // avg 2 revisions
  EXPECT_LT(map.num_business_keys(), 700);
  for (int64_t i = 1; i < 1000; ++i) {
    const RevisionMap::Entry& prev = map.At(i - 1);
    const RevisionMap::Entry& cur = map.At(i);
    if (cur.business_key == prev.business_key) {
      EXPECT_EQ(cur.revision, prev.revision + 1);
    } else {
      EXPECT_EQ(cur.business_key, prev.business_key + 1);
      EXPECT_EQ(cur.revision, 0);
    }
    EXPECT_LE(cur.num_revisions, 3);
    EXPECT_LT(cur.revision, cur.num_revisions);
  }
}

TEST(DsgenTest, RevisionValidityWindows) {
  // Single revision: open-ended from the first epoch.
  RevisionWindow w1 = RevisionValidity(0, 1);
  EXPECT_FALSE(w1.rec_end_date.has_value());
  // Three revisions tile the epochs without gaps or overlaps.
  RevisionWindow a = RevisionValidity(0, 3);
  RevisionWindow b = RevisionValidity(1, 3);
  RevisionWindow c = RevisionValidity(2, 3);
  ASSERT_TRUE(a.rec_end_date.has_value());
  ASSERT_TRUE(b.rec_end_date.has_value());
  EXPECT_FALSE(c.rec_end_date.has_value());
  EXPECT_EQ(a.rec_end_date->AddDays(1), b.rec_begin_date);
  EXPECT_EQ(b.rec_end_date->AddDays(1), c.rec_begin_date);
}

TEST(DsgenTest, DateDimContent) {
  GeneratorOptions options = Options();
  auto gen = MakeGenerator("date_dim", options);
  ASSERT_TRUE(gen.ok());
  MemoryRowSink sink;
  // Generate a slice around 2000-02-29 (leap day).
  int64_t leap_index = DateToSk(Date::FromYmd(2000, 2, 29)) - 1;
  ASSERT_TRUE((*gen)->GenerateUnits(leap_index, 2, &sink).ok());
  const auto& leap = sink.rows()[0];
  EXPECT_EQ(leap[2], "2000-02-29");
  EXPECT_EQ(leap[6], "2000");   // d_year
  EXPECT_EQ(leap[8], "2");      // d_moy
  EXPECT_EQ(leap[9], "29");     // d_dom
  EXPECT_EQ(leap[10], "1");     // d_qoy
  const auto& march = sink.rows()[1];
  EXPECT_EQ(march[2], "2000-03-01");
}

TEST(DsgenTest, UnknownTableRejected) {
  GeneratorOptions options = Options();
  auto gen = MakeGenerator("nope", options);
  EXPECT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kNotFound);
}

TEST(DsgenTest, LoadOrderCoversAllTables) {
  EXPECT_EQ(GeneratorTableNames().size(), 24u);
  // Every listed table has a working generator.
  for (const std::string& table : GeneratorTableNames()) {
    auto gen = MakeGenerator(table, Options());
    ASSERT_TRUE(gen.ok()) << table;
    EXPECT_GT((*gen)->NumUnits(), 0) << table;
  }
}

}  // namespace
}  // namespace tpcds
