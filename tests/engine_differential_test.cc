// Differential testing of the SQL engine: random mini-databases and
// randomly parameterised queries are evaluated both by the engine and by
// an independent brute-force evaluator written directly against the
// stored data. Any divergence in filter, join, aggregation or NULL
// semantics fails the test.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>

#include "engine/audit.h"
#include "engine/data_facade.h"
#include "engine/database.h"
#include "maintenance/maintenance.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// A plain-C++ mirror of the test tables, NULLs as std::optional.
struct MiniRow {
  std::optional<int64_t> a;
  std::optional<int64_t> b;
  std::optional<int64_t> g;  // group / join key
  std::optional<int64_t> v;  // t2 payload
};

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void BuildDatabase(RngStream* rng) {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->CreateTable("t1", {{"a", ColumnType::kInteger},
                                        {"b", ColumnType::kInteger},
                                        {"g", ColumnType::kInteger}})
                    .ok());
    ASSERT_TRUE(db_->CreateTable("t2", {{"g", ColumnType::kInteger},
                                        {"v", ColumnType::kInteger}})
                    .ok());
    int64_t n1 = rng->UniformInt(0, 120);
    t1_.clear();
    for (int64_t i = 0; i < n1; ++i) {
      MiniRow row;
      if (rng->NextDouble() > 0.1) row.a = rng->UniformInt(-20, 20);
      if (rng->NextDouble() > 0.1) row.b = rng->UniformInt(0, 100);
      if (rng->NextDouble() > 0.15) row.g = rng->UniformInt(0, 8);
      t1_.push_back(row);
      std::vector<std::string> fields(3);
      if (row.a) fields[0] = std::to_string(*row.a);
      if (row.b) fields[1] = std::to_string(*row.b);
      if (row.g) fields[2] = std::to_string(*row.g);
      ASSERT_TRUE(db_->FindTable("t1")->AppendRowStrings(fields).ok());
    }
    int64_t n2 = rng->UniformInt(0, 30);
    t2_.clear();
    for (int64_t i = 0; i < n2; ++i) {
      MiniRow row;
      if (rng->NextDouble() > 0.15) row.g = rng->UniformInt(0, 8);
      row.v = rng->UniformInt(0, 1000);
      t2_.push_back(row);
      std::vector<std::string> fields(2);
      if (row.g) fields[0] = std::to_string(*row.g);
      fields[1] = std::to_string(*row.v);
      ASSERT_TRUE(db_->FindTable("t2")->AppendRowStrings(fields).ok());
    }
  }

  std::unique_ptr<Database> db_;
  std::vector<MiniRow> t1_;  // a, b, g
  std::vector<MiniRow> t2_;  // g (in .g), v (in .v)... see alias below
};

TEST_P(DifferentialTest, FilterCountSumAgainstBruteForce) {
  RngStream rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 15; ++round) {
    BuildDatabase(&rng);
    int64_t lo = rng.UniformInt(-20, 10);
    int64_t hi = lo + rng.UniformInt(0, 25);
    std::string sql = StringPrintf(
        "SELECT COUNT(*), COUNT(a), SUM(b), MIN(a), MAX(b) FROM t1 "
        "WHERE a BETWEEN %lld AND %lld",
        static_cast<long long>(lo), static_cast<long long>(hi));
    Result<QueryResult> r = db_->Query(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    // Brute force with explicit SQL NULL semantics.
    int64_t count_star = 0;
    int64_t count_a = 0;
    int64_t sum_b = 0;
    bool any_b = false;
    std::optional<int64_t> min_a;
    std::optional<int64_t> max_b;
    for (const MiniRow& row : t1_) {
      if (!row.a || *row.a < lo || *row.a > hi) continue;  // NULL filters out
      ++count_star;
      ++count_a;  // a is non-null here by the filter
      if (row.b) {
        sum_b += *row.b;
        any_b = true;
        if (!max_b || *row.b > *max_b) max_b = row.b;
      }
      if (!min_a || *row.a < *min_a) min_a = row.a;
    }
    const auto& out = r->rows[0];
    EXPECT_EQ(out[0].AsInt(), count_star) << sql;
    EXPECT_EQ(out[1].AsInt(), count_a) << sql;
    if (any_b) {
      EXPECT_EQ(out[2].AsInt(), sum_b) << sql;
    } else {
      EXPECT_TRUE(out[2].is_null()) << sql;
    }
    if (min_a) {
      EXPECT_EQ(out[3].AsInt(), *min_a) << sql;
    } else {
      EXPECT_TRUE(out[3].is_null()) << sql;
    }
    if (max_b) {
      EXPECT_EQ(out[4].AsInt(), *max_b) << sql;
    } else {
      EXPECT_TRUE(out[4].is_null()) << sql;
    }
  }
}

TEST_P(DifferentialTest, GroupByAgainstBruteForce) {
  RngStream rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 15; ++round) {
    BuildDatabase(&rng);
    Result<QueryResult> r = db_->Query(
        "SELECT g, COUNT(*), SUM(b) FROM t1 GROUP BY g ORDER BY g");
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    std::map<std::optional<int64_t>, std::pair<int64_t, int64_t>> groups;
    std::map<std::optional<int64_t>, bool> any_b;
    for (const MiniRow& row : t1_) {
      auto& [cnt, sum] = groups[row.g];  // NULL is its own group
      ++cnt;
      if (row.b) {
        sum += *row.b;
        any_b[row.g] = true;
      }
    }
    ASSERT_EQ(r->rows.size(), groups.size());
    size_t i = 0;
    // std::map sorts nullopt first — matching NULL-first ORDER BY.
    for (const auto& [g, cs] : groups) {
      if (g) {
        EXPECT_EQ(r->rows[i][0].AsInt(), *g);
      } else {
        EXPECT_TRUE(r->rows[i][0].is_null());
      }
      EXPECT_EQ(r->rows[i][1].AsInt(), cs.first);
      if (any_b[g]) {
        EXPECT_EQ(r->rows[i][2].AsInt(), cs.second);
      } else {
        EXPECT_TRUE(r->rows[i][2].is_null());
      }
      ++i;
    }
  }
}

TEST_P(DifferentialTest, EquiJoinAgainstBruteForce) {
  RngStream rng(static_cast<uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 15; ++round) {
    BuildDatabase(&rng);
    Result<QueryResult> r = db_->Query(
        "SELECT COUNT(*), SUM(t1.b + t2.v) FROM t1, t2 "
        "WHERE t1.g = t2.g");
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    int64_t matches = 0;
    int64_t sum = 0;
    bool any = false;
    for (const MiniRow& left : t1_) {
      if (!left.g) continue;  // NULL keys never join
      for (const MiniRow& right : t2_) {
        if (!right.g || *right.g != *left.g) continue;
        ++matches;
        if (left.b && right.v) {  // b + v NULL-propagates
          sum += *left.b + *right.v;
          any = true;
        }
      }
    }
    EXPECT_EQ(r->rows[0][0].AsInt(), matches);
    if (any) {
      EXPECT_EQ(r->rows[0][1].AsInt(), sum);
    } else {
      EXPECT_TRUE(r->rows[0][1].is_null());
    }
  }
}

TEST_P(DifferentialTest, LeftJoinAgainstBruteForce) {
  RngStream rng(static_cast<uint64_t>(GetParam()) * 1299709);
  for (int round = 0; round < 10; ++round) {
    BuildDatabase(&rng);
    Result<QueryResult> r = db_->Query(
        "SELECT COUNT(*), COUNT(t2.v) FROM t1 LEFT JOIN t2 "
        "ON t1.g = t2.g");
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    int64_t out_rows = 0;
    int64_t matched = 0;
    for (const MiniRow& left : t1_) {
      int64_t hits = 0;
      if (left.g) {
        for (const MiniRow& right : t2_) {
          if (right.g && *right.g == *left.g) ++hits;
        }
      }
      out_rows += hits > 0 ? hits : 1;  // unmatched emits one NULL row
      matched += hits;
    }
    EXPECT_EQ(r->rows[0][0].AsInt(), out_rows);
    EXPECT_EQ(r->rows[0][1].AsInt(), matched);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11, 22, 33, 44));

/// Vectorized-vs-reference differential over the real workload: a sample
/// of the 99 TPC-DS templates on generated data must produce byte-identical
/// CSV with the columnar fast path on and off, serial and parallel. The
/// reference (vectorized off) is the row-at-a-time RowSet path.
class VectorizedDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  static Database* db_;
};

Database* VectorizedDifferentialTest::db_ = nullptr;

TEST_F(VectorizedDifferentialTest, SampledTemplatesAgreeWithRowSetPath) {
  // Spread across the four template families (store / catalog / web /
  // cross-channel); every id must exist.
  const int kSample[] = {1, 7, 14, 21, 27, 31, 38, 46, 55,
                         56, 63, 70, 76, 82, 88, 95, 99};
  QueryGenerator qgen(19620718);
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr) << "template " << id;
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok()) << "template " << id;

    // Reference: every execution-strategy knob off / serial.
    PlannerOptions options = db_->default_options();
    options.vectorized_execution = false;
    options.parallelism = 1;
    options.topk_pushdown = false;
    Result<QueryResult> reference = db_->Query(*sql, options, nullptr);
    ASSERT_TRUE(reference.ok())
        << "template " << id << ": " << reference.status().ToString();
    std::string expected = reference->ToCsv();

    // Full sweep: parallelism x columnar path x Top-K fusion. Every
    // combination must reproduce the reference bytes.
    for (int workers : {1, 4}) {
      for (bool vectorized : {false, true}) {
        for (bool topk : {false, true}) {
          if (workers == 1 && !vectorized && !topk) continue;  // reference
          options.parallelism = workers;
          options.vectorized_execution = vectorized;
          options.topk_pushdown = topk;
          Result<QueryResult> run = db_->Query(*sql, options, nullptr);
          ASSERT_TRUE(run.ok())
              << "template " << id << ": " << run.status().ToString();
          EXPECT_EQ(run->ToCsv(), expected)
              << "template " << id << " at parallelism " << workers
              << (vectorized ? ", vectorized" : ", row-at-a-time")
              << (topk ? ", topk" : ", full sort");
        }
      }
    }
  }
}

/// Backing-vs-backing differential: the same checkpoint deep-loaded onto
/// the heap and mmap-attached (zero-copy) must answer the 17-template
/// sample byte-identically, serial and parallel. This is the oracle for
/// the v2 checkpoint format — any offset, alignment or arena bug shows up
/// as a CSV diff.
class MmapDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    heap_ = new Database();
    ASSERT_TRUE(heap_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(heap_->LoadTpcdsData(options).ok());
    ckpt_dir_ = ::testing::TempDir() + "mmap_differential_ckpt";
    std::filesystem::remove_all(ckpt_dir_);
    Status saved = heap_->SaveCheckpoint(ckpt_dir_);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
    attached_ = new Database();
    Status att = attached_->AttachCheckpoint(ckpt_dir_);
    ASSERT_TRUE(att.ok()) << att.ToString();
  }

  static void TearDownTestSuite() {
    delete attached_;
    attached_ = nullptr;
    delete heap_;
    heap_ = nullptr;
    std::filesystem::remove_all(ckpt_dir_);
  }

  static Database* heap_;
  static Database* attached_;
  static std::string ckpt_dir_;
};

Database* MmapDifferentialTest::heap_ = nullptr;
Database* MmapDifferentialTest::attached_ = nullptr;
std::string MmapDifferentialTest::ckpt_dir_;

TEST_F(MmapDifferentialTest, AttachIsZeroCopy) {
  // The attached database must serve string and numeric columns straight
  // out of the mapping — a materializing attach would defeat the O(1)
  // cold start this path exists for.
  EXPECT_GT(attached_->Snapshot()->MappedColumnCount(), 0u);
  EXPECT_EQ(heap_->Snapshot()->MappedColumnCount(), 0u);
}

TEST_F(MmapDifferentialTest, SampledTemplatesAgreeAcrossBackings) {
  const int kSample[] = {1, 7, 14, 21, 27, 31, 38, 46, 55,
                         56, 63, 70, 76, 82, 88, 95, 99};
  QueryGenerator qgen(19620718);
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr) << "template " << id;
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok()) << "template " << id;
    for (int workers : {1, 4}) {
      PlannerOptions options = heap_->default_options();
      options.parallelism = workers;
      Result<QueryResult> on_heap = heap_->Query(*sql, options, nullptr);
      ASSERT_TRUE(on_heap.ok())
          << "template " << id << ": " << on_heap.status().ToString();
      Result<QueryResult> on_mmap = attached_->Query(*sql, options, nullptr);
      ASSERT_TRUE(on_mmap.ok())
          << "template " << id << ": " << on_mmap.status().ToString();
      EXPECT_EQ(on_mmap->ToCsv(), on_heap->ToCsv())
          << "template " << id << " at parallelism " << workers;
    }
  }
}

/// Encoded-vs-plain differential: the 17-template sample answered on plain
/// storage is the reference; after EncodeStorage() installs dictionary /
/// RLE / frame-of-reference encodings, every combination of
/// encoded_execution x parallelism must reproduce the reference bytes.
/// This is the correctness oracle for the encoded scan kernels.
class EncodedDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* EncodedDifferentialTest::db_ = nullptr;

TEST_F(EncodedDifferentialTest, SampledTemplatesAgreeAcrossEncodings) {
  const int kSample[] = {1, 7, 14, 21, 27, 31, 38, 46, 55,
                         56, 63, 70, 76, 82, 88, 95, 99};
  QueryGenerator qgen(19620718);
  std::vector<std::string> sqls;
  std::vector<std::string> expected;
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr) << "template " << id;
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok()) << "template " << id;
    Result<QueryResult> reference = db_->Query(*sql);
    ASSERT_TRUE(reference.ok())
        << "template " << id << ": " << reference.status().ToString();
    sqls.push_back(*sql);
    expected.push_back(reference->ToCsv());
  }

  // Encoding is a logical no-op: the content hash (representation
  // independent by construction) must not move.
  const uint64_t hash_before = HashFacadeContent(*db_->Snapshot());
  const size_t encoded = db_->EncodeStorage();
  EXPECT_GT(encoded, 0u) << "no column qualified for any encoding";
  EXPECT_EQ(HashFacadeContent(*db_->Snapshot()), hash_before);

  for (size_t i = 0; i < sqls.size(); ++i) {
    for (int workers : {1, 4}) {
      for (bool enc : {false, true}) {
        PlannerOptions options = db_->default_options();
        options.parallelism = workers;
        options.encoded_execution = enc;
        Result<QueryResult> run = db_->Query(sqls[i], options, nullptr);
        ASSERT_TRUE(run.ok()) << "template " << kSample[i] << ": "
                              << run.status().ToString();
        EXPECT_EQ(run->ToCsv(), expected[i])
            << "template " << kSample[i] << " at parallelism " << workers
            << (enc ? ", encoded kernels" : ", accessor decode");
      }
    }
  }
}

/// Cost-based-vs-structural differential: the 17-template sample answered
/// by the structural planner (cost_based off, FROM-order shapes) is the
/// reference; the cost-based planner may reorder joins, reorder star
/// dimensions and gate pushdowns differently, but every combination of
/// cost_based x parallelism must reproduce the reference bytes. This is
/// the correctness oracle for the optimizer (docs/PLANNER.md).
class CostBasedDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->CreateTpcdsTables().ok());
    GeneratorOptions options;
    options.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpcdsData(options).ok());
    // Eager one-pass collection; lazy per-table collection is equivalent.
    EXPECT_GT(db_->AnalyzeStorage(), 0u);
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* CostBasedDifferentialTest::db_ = nullptr;

TEST_F(CostBasedDifferentialTest, SampledTemplatesAgreeWithStructuralPlans) {
  const int kSample[] = {1, 7, 14, 21, 27, 31, 38, 46, 55,
                         56, 63, 70, 76, 82, 88, 95, 99};
  QueryGenerator qgen(19620718);
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr) << "template " << id;
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok()) << "template " << id;

    PlannerOptions options = db_->default_options();
    options.cost_based = false;
    options.parallelism = 1;
    Result<QueryResult> reference = db_->Query(*sql, options, nullptr);
    ASSERT_TRUE(reference.ok())
        << "template " << id << ": " << reference.status().ToString();
    std::string expected = reference->ToCsv();

    for (int workers : {1, 4}) {
      for (bool cost : {false, true}) {
        if (workers == 1 && !cost) continue;  // reference
        options.parallelism = workers;
        options.cost_based = cost;
        ExecStats stats;
        Result<QueryResult> run = db_->Query(*sql, options, &stats);
        ASSERT_TRUE(run.ok())
            << "template " << id << ": " << run.status().ToString();
        EXPECT_EQ(run->ToCsv(), expected)
            << "template " << id << " at parallelism " << workers
            << (cost ? ", cost-based" : ", structural");
        if (cost) {
          // A cost-annotated run reports its worst estimation error; 1.0
          // is a perfect estimate, 0 would mean nothing was annotated.
          EXPECT_GE(stats.max_q_error, 1.0) << "template " << id;
        } else {
          EXPECT_EQ(stats.max_q_error, 0.0) << "template " << id;
        }
      }
    }
  }
}

/// Snapshot-isolation differential: a facade pinned before a maintenance
/// generation swap must keep answering byte-identically after the swap,
/// while fresh snapshots see the refreshed generation.
TEST_F(MmapDifferentialTest, PinnedFacadeSurvivesGenerationSwap) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.002;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());

  const int kSample[] = {1, 27, 55, 82, 99};
  QueryGenerator qgen(19620718);
  std::vector<std::string> sqls;
  std::vector<std::string> before;
  std::shared_ptr<const DataFacade> pinned = db.Snapshot();
  for (int id : kSample) {
    const QueryTemplate* tmpl = FindTemplate(id);
    ASSERT_NE(tmpl, nullptr);
    Result<std::string> sql = qgen.Instantiate(*tmpl, 0);
    ASSERT_TRUE(sql.ok());
    Result<QueryResult> r = QueryFacade(*pinned, *sql, db.default_options());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sqls.push_back(*sql);
    before.push_back(r->ToCsv());
  }

  uint64_t gen_before = db.generation();
  MaintenanceOptions dm;
  dm.scale_factor = 0.002;
  dm.dimension_updates = 10;
  MaintenanceReport report;
  Status st = RunMaintenanceGeneration(&db, dm, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(db.generation(), gen_before + 1);
  EXPECT_EQ(pinned->generation(), gen_before);

  // The pinned pre-swap generation answers exactly as before the swap.
  for (size_t i = 0; i < sqls.size(); ++i) {
    Result<QueryResult> r =
        QueryFacade(*pinned, sqls[i], db.default_options());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ToCsv(), before[i]) << "template sample " << i;
  }
  // A fresh snapshot sees the refreshed generation (the maintenance run
  // must have changed at least one sampled answer or the content hash).
  std::shared_ptr<const DataFacade> fresh = db.Snapshot();
  EXPECT_EQ(fresh->generation(), gen_before + 1);
  EXPECT_NE(HashFacadeContent(*fresh), HashFacadeContent(*pinned));
}

}  // namespace
}  // namespace tpcds
