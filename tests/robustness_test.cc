// Robustness tests: the SQL frontend and executor must return error
// statuses — never crash — on malformed, truncated or mutated input, and
// multi-cycle maintenance must preserve invariants.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/parser.h"
#include "maintenance/maintenance.h"
#include "util/random.h"

namespace tpcds {
namespace {

TEST(ParserRobustnessTest, TruncationsNeverCrash) {
  const std::string base =
      "WITH x AS (SELECT ss_item_sk k, SUM(ss_ext_sales_price) r "
      "FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk "
      "AND d_year = 2000 GROUP BY ss_item_sk) "
      "SELECT k, r, RANK() OVER (ORDER BY r DESC) FROM x "
      "WHERE r > (SELECT AVG(r) FROM x) ORDER BY 3 LIMIT 10";
  // Every prefix of a valid statement must parse or error cleanly.
  for (size_t len = 0; len <= base.size(); ++len) {
    auto result = ParseSql(base.substr(0, len));
    (void)result;  // ok or error; reaching here without UB is the test
  }
  SUCCEED();
}

class ParserMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserMutationTest, RandomMutationsNeverCrash) {
  const std::string base =
      "SELECT i_category, COUNT(*), SUM(ss_ext_sales_price) "
      "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "AND i_current_price BETWEEN 10 AND 50 "
      "GROUP BY i_category HAVING COUNT(*) > 3 ORDER BY 2 DESC";
  RngStream rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:  // delete a span
          mutated.erase(pos, static_cast<size_t>(rng.UniformInt(1, 10)));
          break;
        case 2:  // duplicate a span
          mutated.insert(pos, mutated.substr(
                                  pos, static_cast<size_t>(
                                           rng.UniformInt(1, 10))));
          break;
        default:  // inject a hostile token
          mutated.insert(pos, "('");
          break;
      }
      if (mutated.empty()) mutated = "SELECT";
    }
    auto result = ParseSql(mutated);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MaintenanceRobustnessTest, MultipleRefreshCyclesKeepInvariants) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());
  GeneratorOptions gen;
  gen.scale_factor = 0.002;
  ASSERT_TRUE(db.LoadTpcdsData(gen).ok());

  for (int cycle = 1; cycle <= 3; ++cycle) {
    MaintenanceOptions options;
    options.scale_factor = 0.002;
    options.refresh_cycle = cycle;
    options.refresh_fraction = 0.02;
    options.dimension_updates = 10;
    MaintenanceReport report;
    Status st = RunDataMaintenance(&db, options, &report);
    ASSERT_TRUE(st.ok()) << "cycle " << cycle << ": " << st.ToString();
    ASSERT_EQ(report.operations.size(), 12u);

    // The SCD invariant survives repeated cycles: one open revision per
    // business key.
    EngineTable* item = db.FindTable("item");
    int bk_col = item->ColumnIndex("i_item_id");
    int end_col = item->ColumnIndex("i_rec_end_date");
    const EngineTable::StringIndex& index =
        item->GetOrBuildStringIndex(bk_col);
    for (const auto& [key, rows] : index) {
      int open = 0;
      for (int64_t row : rows) {
        if (item->GetValue(row, end_col).is_null()) ++open;
      }
      ASSERT_EQ(open, 1) << "cycle " << cycle << " key " << key;
    }
    // Queries keep running against the refreshed database.
    Result<QueryResult> r = db.Query(
        "SELECT COUNT(*) FROM store_sales, store_returns "
        "WHERE ss_item_sk = sr_item_sk "
        "  AND ss_ticket_number = sr_ticket_number");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Fact-to-fact integrity: every return still has its sale.
    EXPECT_EQ(r->rows[0][0].AsInt(),
              db.FindTable("store_returns")->num_rows())
        << "cycle " << cycle;
  }
}

// ---- execution-level fuzzing -------------------------------------------
// Parsing alone is not enough: a mutated statement that still parses must
// also plan and execute without crashing — at serial and parallel morsel
// settings, since worker threads see the same malformed shapes.

class ExecutionFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static Database* SharedDb() {
    static Database* db = [] {
      auto* d = new Database();
      if (!d->CreateTpcdsTables().ok()) return d;
      GeneratorOptions gen;
      gen.scale_factor = 0.001;
      (void)d->LoadTpcdsData(gen);
      return d;
    }();
    return db;
  }
};

TEST_P(ExecutionFuzzTest, MutatedQueriesExecuteOrErrorCleanly) {
  Database* db = SharedDb();
  const std::string base =
      "SELECT i_category, COUNT(*), SUM(ss_ext_sales_price) "
      "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "AND i_current_price BETWEEN 10 AND 50 "
      "GROUP BY i_category HAVING COUNT(*) > 3 ORDER BY 2 DESC LIMIT 20";
  RngStream rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int parallelism : {1, 4}) {
    PlannerOptions options;
    options.parallelism = parallelism;
    for (int round = 0; round < 60; ++round) {
      std::string mutated = base;
      int edits = static_cast<int>(rng.UniformInt(1, 4));
      for (int e = 0; e < edits; ++e) {
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        switch (rng.UniformInt(0, 3)) {
          case 0:
            mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
            break;
          case 1:
            mutated.erase(pos, static_cast<size_t>(rng.UniformInt(1, 8)));
            break;
          case 2:
            mutated.insert(
                pos, mutated.substr(
                         pos, static_cast<size_t>(rng.UniformInt(1, 8))));
            break;
          default:
            mutated.insert(pos, ",0");
            break;
        }
        if (mutated.empty()) mutated = "SELECT";
      }
      // The full pipeline — parse, plan, execute — must return ok or a
      // clean error; reaching the next round without UB is the test.
      Result<QueryResult> result = db->Query(mutated, options);
      (void)result;
    }
  }
  SUCCEED();
}

TEST_P(ExecutionFuzzTest, TruncatedQueriesExecuteOrErrorCleanly) {
  Database* db = SharedDb();
  const std::string base =
      "WITH x AS (SELECT ss_item_sk k, SUM(ss_ext_sales_price) r "
      "FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk "
      "AND d_year = 2000 GROUP BY ss_item_sk) "
      "SELECT k, r FROM x WHERE r > (SELECT AVG(r) FROM x) "
      "ORDER BY 2 DESC LIMIT 10";
  // Offset truncation lengths per seed so the five shards cover different
  // prefixes; every prefix goes through plan + execute, not just parse.
  for (int parallelism : {1, 4}) {
    PlannerOptions options;
    options.parallelism = parallelism;
    for (size_t len = static_cast<size_t>(GetParam()); len <= base.size();
         len += 5) {
      Result<QueryResult> result = db->Query(base.substr(0, len), options);
      (void)result;
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EngineRobustnessTest, DeepExpressionNesting) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"a", ColumnType::kInteger}}).ok());
  ASSERT_TRUE(db.FindTable("t")->AppendRowStrings({"1"}).ok());
  // 200 nested parens stay within recursion limits.
  std::string sql = "SELECT ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "a";
  for (int i = 0; i < 200; ++i) sql += ")";
  sql += " FROM t";
  Result<QueryResult> r = db.Query(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST(EngineRobustnessTest, EmptyTablesEverywhere) {
  Database db;
  ASSERT_TRUE(db.CreateTpcdsTables().ok());  // created but never loaded
  Result<QueryResult> r = db.Query(
      "SELECT i_category, COUNT(*), SUM(ss_ext_sales_price) "
      "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
      "GROUP BY i_category ORDER BY 2 DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 0u);
  // Global aggregate over empty input yields a single row.
  Result<QueryResult> agg =
      db.Query("SELECT COUNT(*), SUM(ss_quantity) FROM store_sales");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][0].AsInt(), 0);
  EXPECT_TRUE(agg->rows[0][1].is_null());  // SUM of nothing is NULL
}

}  // namespace
}  // namespace tpcds
