// Tests of the domain distributions and comparability zones (paper §3.2,
// Figs. 2/3).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dist/distribution.h"
#include "dist/domains.h"
#include "dist/zones.h"

namespace tpcds {
namespace {

TEST(DistributionTest, WeightedAndUniformPicks) {
  Distribution d("test", {{"a", 8.0}, {"b", 1.0}, {"c", 1.0}});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.IndexOf("b"), 1);
  EXPECT_EQ(d.IndexOf("zzz"), -1);
  RngStream rng(1);
  std::map<std::string, int> weighted;
  std::map<std::string, int> uniform;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    ++weighted[d.PickWeighted(&rng)];
    ++uniform[d.PickUniform(&rng)];
  }
  // Weighted: "a" dominates 80/10/10.
  EXPECT_NEAR(weighted["a"] / static_cast<double>(kN), 0.8, 0.02);
  // Uniform: all equal regardless of weights (comparability requirement).
  EXPECT_NEAR(uniform["a"] / static_cast<double>(kN), 1.0 / 3, 0.02);
  EXPECT_NEAR(uniform["c"] / static_cast<double>(kN), 1.0 / 3, 0.02);
}

TEST(DomainsTest, KeyDomainsPopulated) {
  EXPECT_GE(domains::FirstNames().size(), 90u);
  EXPECT_GE(domains::LastNames().size(), 90u);
  EXPECT_GE(domains::Cities().size(), 90u);
  EXPECT_GE(domains::Counties().size(), 100u);
  EXPECT_EQ(domains::States().size(), 50u);
  EXPECT_EQ(domains::Categories().size(), 10u);
  EXPECT_GE(domains::Colors().size(), 80u);
  EXPECT_GE(domains::Words().size(), 300u);
  EXPECT_GE(domains::ReasonDescriptions().size(), 75u);
}

TEST(DomainsTest, FrequentNamesCarryCensusSkew) {
  // Paper §3.2: real-world skew such as frequent names. Smith must be
  // materially more likely than the tail.
  const Distribution& names = domains::LastNames();
  int smith = names.IndexOf("Smith");
  ASSERT_GE(smith, 0);
  double max_w = 0;
  for (size_t i = 0; i < names.size(); ++i) max_w = std::max(max_w,
                                                             names.weight(i));
  EXPECT_EQ(names.weight(static_cast<size_t>(smith)), max_w);
  EXPECT_GT(max_w / names.weight(names.size() - 1), 5.0);
}

TEST(DomainsTest, ItemHierarchyIsSingleInheritance) {
  // Paper Fig. 5: each class belongs to exactly one category.
  std::set<std::string> seen_classes;
  for (int cat = 0; cat < 10; ++cat) {
    const Distribution& classes = domains::ClassesOf(cat);
    ASSERT_GE(classes.size(), 4u);
    for (size_t i = 0; i < classes.size(); ++i) {
      std::string qualified =
          classes.name();  // class lists are distinct per category
      EXPECT_TRUE(seen_classes.insert(classes.name() + "/" +
                                      classes.value(i)).second)
          << classes.value(i);
    }
  }
}

TEST(ZonesTest, CensusIndexIsNormalised) {
  const std::array<double, 12>& census = CensusMonthlyRetailIndex();
  double total = 0;
  for (double share : census) {
    EXPECT_GT(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // December is the annual peak (holiday spike, paper Fig. 2).
  for (int m = 0; m < 11; ++m) EXPECT_GT(census[11], census[m]);
}

TEST(ZonesTest, ThreeZonesWithIncreasingLikelihood) {
  const std::array<ComparabilityZone, 3>& zones = ComparabilityZones();
  EXPECT_EQ(zones[0].first_month, 1);
  EXPECT_EQ(zones[0].last_month, 7);
  EXPECT_EQ(zones[1].first_month, 8);
  EXPECT_EQ(zones[1].last_month, 10);
  EXPECT_EQ(zones[2].first_month, 11);
  EXPECT_EQ(zones[2].last_month, 12);
  // Paper: zone 1 low, zone 2 medium, zone 3 high.
  EXPECT_NEAR(zones[0].daily_weight, 1.0, 1e-9);
  EXPECT_GT(zones[1].daily_weight, zones[0].daily_weight);
  EXPECT_GT(zones[2].daily_weight, zones[1].daily_weight);
}

TEST(ZonesTest, ZoneOfMonth) {
  EXPECT_EQ(ZoneOfMonth(1), 1);
  EXPECT_EQ(ZoneOfMonth(7), 1);
  EXPECT_EQ(ZoneOfMonth(8), 2);
  EXPECT_EQ(ZoneOfMonth(10), 2);
  EXPECT_EQ(ZoneOfMonth(11), 3);
  EXPECT_EQ(ZoneOfMonth(12), 3);
}

TEST(ZonesTest, SalesDatePickFollowsZoneWeights) {
  Date begin = Date::FromYmd(1998, 1, 1);
  Date end = Date::FromYmd(1998, 12, 31);
  SalesDateDistribution dist(begin, end);
  RngStream rng(23);
  std::array<int64_t, 3> zone_days{};
  std::array<int64_t, 3> zone_picks{};
  for (int32_t i = 0; i <= end - begin; ++i) {
    ++zone_days[static_cast<size_t>(ZoneOfMonth(begin.AddDays(i).month())) -
                1];
  }
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    Date d = dist.Pick(&rng);
    ASSERT_GE(d.jdn(), begin.jdn());
    ASSERT_LE(d.jdn(), end.jdn());
    ++zone_picks[static_cast<size_t>(dist.ZoneOfDate(d)) - 1];
  }
  // Per-day pick rates must line up with the configured zone weights.
  const std::array<ComparabilityZone, 3>& zones = ComparabilityZones();
  double base_rate = static_cast<double>(zone_picks[0]) / zone_days[0];
  for (int z = 1; z < 3; ++z) {
    double rate = static_cast<double>(zone_picks[static_cast<size_t>(z)]) /
                  zone_days[static_cast<size_t>(z)];
    EXPECT_NEAR(rate / base_rate,
                zones[static_cast<size_t>(z)].daily_weight, 0.12)
        << "zone " << z + 1;
  }
}

TEST(ZonesTest, UniformWithinZone) {
  // Paper §3.2: all domain values in one zone occur with the same
  // likelihood — the property that makes substitutions comparable.
  Date begin = Date::FromYmd(1999, 1, 1);
  Date end = Date::FromYmd(1999, 12, 31);
  SalesDateDistribution dist(begin, end);
  RngStream rng(29);
  std::map<int, int> march_days;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    Date d = dist.Pick(&rng);
    if (d.month() == 3) ++march_days[d.day()];
  }
  double total = 0;
  for (const auto& [day, cnt] : march_days) total += cnt;
  double expected = total / 31.0;
  for (const auto& [day, cnt] : march_days) {
    EXPECT_NEAR(cnt / expected, 1.0, 0.25) << "March " << day;
  }
}

TEST(ZonesTest, SyntheticGaussianShape) {
  // Paper Fig. 3: weekly sales follow a Gaussian with mu=200, sigma=50 —
  // peak near week 29 (day 200), low tails.
  double peak_week = 0;
  double peak_weight = 0;
  for (int w = 1; w <= 52; ++w) {
    double weight = SyntheticGaussianWeekWeight(w);
    EXPECT_GE(weight, 0.0);
    if (weight > peak_weight) {
      peak_weight = weight;
      peak_week = w;
    }
  }
  EXPECT_NEAR(peak_week, 29, 1);
  EXPECT_GT(peak_weight / SyntheticGaussianWeekWeight(1), 100.0);
  // The weekly series integrates to ~1 (it tiles the Gaussian).
  double total = 0;
  for (int w = 1; w <= 53; ++w) total += SyntheticGaussianWeekWeight(w);
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(ZonesTest, WeightOfDateMatchesZone) {
  SalesDateDistribution dist(Date::FromYmd(1998, 1, 1),
                             Date::FromYmd(2002, 12, 31));
  const std::array<ComparabilityZone, 3>& zones = ComparabilityZones();
  EXPECT_EQ(dist.WeightOfDate(Date::FromYmd(1999, 3, 10)),
            zones[0].daily_weight);
  EXPECT_EQ(dist.WeightOfDate(Date::FromYmd(1999, 9, 10)),
            zones[1].daily_weight);
  EXPECT_EQ(dist.WeightOfDate(Date::FromYmd(1999, 12, 10)),
            zones[2].daily_weight);
}

}  // namespace
}  // namespace tpcds
