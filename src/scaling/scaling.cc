#include "scaling/scaling.h"

#include <algorithm>
#include <cmath>

namespace tpcds {
namespace {

struct Anchor {
  double sf;
  double rows;
};

/// Geometric (log-log) interpolation through anchors; constant outside the
/// anchored range. Anchors must be sorted by sf.
int64_t Interpolate(const std::vector<Anchor>& anchors, double sf) {
  if (sf <= anchors.front().sf) {
    // Extrapolate down proportionally to sf so tiny dev scales shrink too,
    // with a floor of 1 row.
    double scaled = anchors.front().rows * sf / anchors.front().sf;
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(scaled)));
  }
  if (sf >= anchors.back().sf) {
    return static_cast<int64_t>(std::llround(anchors.back().rows));
  }
  for (size_t i = 1; i < anchors.size(); ++i) {
    if (sf <= anchors[i].sf) {
      const Anchor& lo = anchors[i - 1];
      const Anchor& hi = anchors[i];
      double t = (std::log(sf) - std::log(lo.sf)) /
                 (std::log(hi.sf) - std::log(lo.sf));
      double rows = lo.rows * std::pow(hi.rows / lo.rows, t);
      return static_cast<int64_t>(std::llround(rows));
    }
  }
  return static_cast<int64_t>(std::llround(anchors.back().rows));
}

struct TableScaling {
  const char* table;
  bool linear;            // facts: rows = rows_per_sf * sf
  double rows_per_sf;     // used when linear
  std::vector<Anchor> anchors;  // used when !linear
};

/// Linear fact rates are calibrated to the paper's Table 2 at SF 100
/// (store_sales 288M, store_returns 14M) and to the official kit's channel
/// proportions for catalog (50% of store volume) and web (25%); returns run
/// at ~5% of sales for the store channel (paper) and ~10% for the remote
/// channels.
const std::vector<TableScaling>& Tables() {
  static const std::vector<TableScaling>& tables = *new std::vector<
      TableScaling>{
      {"store_sales", true, 2880000.0, {}},
      {"store_returns", true, 140000.0, {}},
      {"catalog_sales", true, 1440000.0, {}},
      {"catalog_returns", true, 144000.0, {}},
      {"web_sales", true, 720000.0, {}},
      {"web_returns", true, 72000.0, {}},
      // Dimensions: anchors hit the paper's Table 2 at 100/1000/10000/100000
      // and the official kit's SF-1 values for dev scales.
      {"store",
       false,
       0,
       {{1, 12}, {100, 200}, {1000, 500}, {10000, 750}, {100000, 1500}}},
      {"customer",
       false,
       0,
       {{1, 100000},
        {100, 2000000},
        {1000, 8000000},
        {10000, 20000000},
        {100000, 100000000}}},
      {"item",
       false,
       0,
       {{1, 18000},
        {100, 200000},
        {1000, 300000},
        {10000, 400000},
        {100000, 500000}}},
      {"customer_address",
       false,
       0,
       {{1, 50000},
        {100, 1000000},
        {1000, 4000000},
        {10000, 10000000},
        {100000, 50000000}}},
      {"warehouse",
       false,
       0,
       {{1, 5}, {100, 15}, {1000, 20}, {10000, 25}, {100000, 30}}},
      {"promotion",
       false,
       0,
       {{1, 300}, {100, 1000}, {1000, 1500}, {10000, 2000}, {100000, 2500}}},
      {"call_center",
       false,
       0,
       {{1, 6}, {100, 30}, {1000, 42}, {10000, 54}, {100000, 60}}},
      {"catalog_page",
       false,
       0,
       {{1, 11718},
        {100, 20400},
        {1000, 30000},
        {10000, 40000},
        {100000, 50000}}},
      {"web_page",
       false,
       0,
       {{1, 60}, {100, 2040}, {1000, 3000}, {10000, 4002}, {100000, 5004}}},
      {"web_site",
       false,
       0,
       {{1, 12}, {100, 24}, {1000, 54}, {10000, 78}, {100000, 96}}},
      {"reason",
       false,
       0,
       {{1, 35}, {100, 55}, {1000, 65}, {10000, 70}, {100000, 75}}},
  };
  return tables;
}

}  // namespace

const std::vector<int>& ScalingModel::ValidScaleFactors() {
  static const std::vector<int>& sfs =
      *new std::vector<int>{100, 300, 1000, 3000, 10000, 30000, 100000};
  return sfs;
}

bool ScalingModel::IsValidScaleFactor(int sf) {
  const std::vector<int>& sfs = ValidScaleFactors();
  return std::find(sfs.begin(), sfs.end(), sf) != sfs.end();
}

int64_t ScalingModel::RowCount(const std::string& table, double sf) {
  if (sf <= 0) return 0;
  // Fixed-size, domain-driven tables.
  if (table == "date_dim") return DateDimRows();
  if (table == "time_dim") return 86400;
  if (table == "income_band") return 20;
  if (table == "ship_mode") return 20;
  if (table == "household_demographics") {
    return 7200;  // 20 income bands x 6 buy potentials x 10 deps x 6 vehicles
  }
  if (table == "customer_demographics") {
    // Full cross-product of the demographic domains. At dev scales (< 1)
    // a reduced cross-product keeps test databases small.
    return sf >= 1.0 ? 1920800 : 15120;
  }
  if (table == "inventory") {
    // Weekly snapshots over the 5-year window for every (distinct item,
    // warehouse) pair. Distinct item ids are half the item rows because the
    // item dimension is history-keeping with ~2 revisions per business key.
    int64_t weeks = 261;
    return weeks * (RowCount("item", sf) / 2) * RowCount("warehouse", sf);
  }
  for (const TableScaling& t : Tables()) {
    if (table == t.table) {
      if (t.linear) {
        return std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(t.rows_per_sf * sf)));
      }
      return Interpolate(t.anchors, sf);
    }
  }
  return 0;
}

int ScalingModel::MinimumStreams(double sf) {
  if (sf <= 100) return 3;
  if (sf <= 300) return 5;
  if (sf <= 1000) return 7;
  if (sf <= 3000) return 9;
  if (sf <= 10000) return 11;
  if (sf <= 30000) return 13;
  return 15;
}

Date ScalingModel::SalesBeginDate() { return Date::FromYmd(1998, 1, 2); }

Date ScalingModel::SalesEndDate() { return Date::FromYmd(2003, 1, 2); }

Date ScalingModel::DateDimBeginDate() { return Date::FromYmd(1900, 1, 1); }

int64_t ScalingModel::DateDimRows() { return 73049; }

}  // namespace tpcds
