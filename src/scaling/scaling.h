#ifndef TPCDS_SCALING_SCALING_H_
#define TPCDS_SCALING_SCALING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/date.h"

namespace tpcds {

/// TPC-DS's hybrid scaling model (paper §3.1, Table 2).
///
/// Fact tables scale linearly with the scale factor (the raw-data size in
/// GB); dimension tables scale sub-linearly so that customer/item/store
/// counts stay realistic even at 100 TB, fixing the unrealistic-cardinality
/// problem the paper calls out in TPC-H. Sub-linear growth is modelled as
/// log-log (geometric) interpolation through anchor cardinalities that
/// reproduce the paper's Table 2 at the published scale factors.
///
/// Scale factors below 100 (including fractional ones such as 0.01) are not
/// publishable but are supported for development and testing, mirroring how
/// the official dsdgen accepts SF 1.
class ScalingModel {
 public:
  /// The discrete scale factors at which results may be published
  /// (paper §3: 100, 300, 1000, 3000, 10000, 30000, 100000).
  static const std::vector<int>& ValidScaleFactors();
  static bool IsValidScaleFactor(int sf);

  /// Row count for `table` at scale factor `sf` (> 0; fractional allowed
  /// for development scales). Returns 0 for unknown tables.
  static int64_t RowCount(const std::string& table, double sf);

  /// Minimum number of concurrent query streams required at a published
  /// scale factor (paper Fig. 12). Development scale factors (< 100) use
  /// the SF-100 minimum of 3.
  static int MinimumStreams(double sf);

  /// First calendar day covered by sales transactions (5 business years).
  static Date SalesBeginDate();
  /// Last calendar day covered by sales transactions (inclusive).
  static Date SalesEndDate();

  /// date_dim coverage: 1900-01-01 .. 2100-01-01 (73049 rows).
  static Date DateDimBeginDate();
  static int64_t DateDimRows();
};

}  // namespace tpcds

#endif  // TPCDS_SCALING_SCALING_H_
