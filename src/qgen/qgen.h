#ifndef TPCDS_QGEN_QGEN_H_
#define TPCDS_QGEN_QGEN_H_

#include <string>
#include <vector>

#include "qgen/template.h"
#include "util/result.h"

namespace tpcds {

/// The query generator (the paper's dsqgen, ref [10]): instantiates query
/// templates by substituting bind variables drawn from the same
/// distributions the data generator used — the tool coupling that makes
/// substitutions comparable (paper §3.2, §4.1).
class QueryGenerator {
 public:
  /// `seed` seeds all substitution streams; runs of the benchmark use the
  /// data generator's master seed so both tools agree on distributions.
  explicit QueryGenerator(uint64_t seed);

  /// Instantiates `tmpl` for (stream, iteration): parses its define
  /// block, evaluates each substitution deterministically, splices the
  /// values into the SQL text. The same (template, stream, iteration)
  /// always yields the same SQL.
  Result<std::string> Instantiate(const QueryTemplate& tmpl, int stream,
                                  int iteration = 0) const;

  /// The order in which a stream executes the 99 templates: a
  /// deterministic permutation, distinct per stream, so concurrent
  /// streams do not run the same query simultaneously (paper §5.2).
  std::vector<int> StreamPermutation(int stream, int num_templates) const;

  /// Family-aware permutation over the given templates: iterative-OLAP
  /// drill sequences (templates sharing an olap_family) stay contiguous
  /// and in ascending template order — "syntactically independent but
  /// logically affiliated" queries run as a session (paper §4.1).
  /// Returns indexes into `templates`.
  std::vector<int> StreamPermutation(
      int stream, const std::vector<QueryTemplate>& templates) const;

 private:
  uint64_t seed_;
};

}  // namespace tpcds

#endif  // TPCDS_QGEN_QGEN_H_
