#ifndef TPCDS_QGEN_QGEN_H_
#define TPCDS_QGEN_QGEN_H_

#include <string>
#include <vector>

#include "qgen/template.h"
#include "util/result.h"

namespace tpcds {

/// Bind-variable skew and mix parameters of a workload profile (the
/// DWEB-style tunable workload, PAPERS.md). The default-constructed
/// profile reproduces the uniform comparability-zone draws byte for
/// byte; raising zipf_theta concentrates substitution draws on hot
/// values, hot_dates skews date() picks toward recent years, and the
/// class weights tilt the template mix toward ad-hoc or reporting
/// queries. All draws stay seeded and deterministic per stream.
struct BindProfile {
  /// Skew of value draws (random/dist/list defines): 0 = uniform,
  /// -> 1 concentrates mass on the hot head. Must be in [0, 1).
  double zipf_theta = 0.0;
  /// Skew date() draws toward recent years / late-in-zone days using
  /// zipf_theta (requires zipf_theta > 0 to have an effect).
  bool hot_dates = false;
  /// Template-mix weights by query class; a (1, 4, 1) profile draws
  /// reporting templates 4x as often as either other class.
  double adhoc_weight = 1.0;
  double reporting_weight = 1.0;
  double hybrid_weight = 1.0;
  /// >1 expands each picked template into an iterative session chain of
  /// this many steps that tightens its IN-list predicate step by step.
  int chain_length = 1;
  /// XORed into the master seed so distinct profiles sharing one
  /// benchmark seed draw from decorrelated streams.
  uint64_t seed_salt = 0;

  /// True when bind draws are identical to the unprofiled path.
  bool uniform() const { return zipf_theta <= 0.0; }
};

/// One slot of a profile-driven stream sequence (ProfileSequence).
struct ProfileSlot {
  int template_index = 0;  // index into the templates vector
  int chain_id = -1;       // -1 standalone; else the session chain id
  int chain_step = 0;      // 0-based step within the chain
};

/// The query generator (the paper's dsqgen, ref [10]): instantiates query
/// templates by substituting bind variables drawn from the same
/// distributions the data generator used — the tool coupling that makes
/// substitutions comparable (paper §3.2, §4.1).
class QueryGenerator {
 public:
  /// `seed` seeds all substitution streams; runs of the benchmark use the
  /// data generator's master seed so both tools agree on distributions.
  explicit QueryGenerator(uint64_t seed);

  /// Instantiates `tmpl` for (stream, iteration): parses its define
  /// block, evaluates each substitution deterministically, splices the
  /// values into the SQL text. The same (template, stream, iteration)
  /// always yields the same SQL.
  ///
  /// `profile` (optional) skews the draws per the BindProfile; null or a
  /// uniform profile is byte-identical to the unprofiled path.
  /// `refine_step` > 0 instantiates a later step of an iterative session
  /// chain over the same base binds: every scalar substitution keeps its
  /// step-0 value while list() predicates shrink to a prefix of the
  /// step-0 pick set (one fewer element per step, floor 1) — the
  /// "tighten a predicate across consecutive queries" session shape.
  Result<std::string> Instantiate(const QueryTemplate& tmpl, int stream,
                                  int iteration = 0,
                                  const BindProfile* profile = nullptr,
                                  int refine_step = 0) const;

  /// A profile-driven sequence of `length` slots for one stream: each
  /// slot picks a template class by the profile's mix weights, then a
  /// template uniformly within the class; with chain_length > 1 every
  /// pick expands in place into a session chain whose steps share
  /// chain_id and advance chain_step (feed chain_step to Instantiate's
  /// refine_step). Deterministic per (seed, profile salt, stream).
  std::vector<ProfileSlot> ProfileSequence(
      int stream, const std::vector<QueryTemplate>& templates,
      const BindProfile& profile, int length) const;

  /// The order in which a stream executes the 99 templates: a
  /// deterministic permutation, distinct per stream, so concurrent
  /// streams do not run the same query simultaneously (paper §5.2).
  std::vector<int> StreamPermutation(int stream, int num_templates) const;

  /// Family-aware permutation over the given templates: iterative-OLAP
  /// drill sequences (templates sharing an olap_family) stay contiguous
  /// and in ascending template order — "syntactically independent but
  /// logically affiliated" queries run as a session (paper §4.1).
  /// Returns indexes into `templates`.
  std::vector<int> StreamPermutation(
      int stream, const std::vector<QueryTemplate>& templates) const;

 private:
  uint64_t seed_;
};

}  // namespace tpcds

#endif  // TPCDS_QGEN_QGEN_H_
