#include "qgen/qgen.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "dist/domains.h"
#include "dist/zones.h"
#include "scaling/scaling.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tpcds {

const char* QueryClassToString(QueryClass c) {
  switch (c) {
    case QueryClass::kAdHoc:
      return "ad-hoc";
    case QueryClass::kReporting:
      return "reporting";
    case QueryClass::kHybrid:
      return "hybrid";
  }
  return "?";
}

const char* QueryFlavorToString(QueryFlavor f) {
  switch (f) {
    case QueryFlavor::kStandard:
      return "standard";
    case QueryFlavor::kIterativeOlap:
      return "iterative-olap";
    case QueryFlavor::kDataMining:
      return "data-mining";
  }
  return "?";
}

namespace {

/// Maps a dist(...) name to its embedded domain.
Result<const Distribution*> LookupDistribution(const std::string& name) {
  static const std::map<std::string, const Distribution* (*)()>& table =
      *new std::map<std::string, const Distribution* (*)()>{
          {"categories", +[] { return &domains::Categories(); }},
          {"states", +[] { return &domains::States(); }},
          {"cities", +[] { return &domains::Cities(); }},
          {"counties", +[] { return &domains::Counties(); }},
          {"colors", +[] { return &domains::Colors(); }},
          {"sizes", +[] { return &domains::Sizes(); }},
          {"units", +[] { return &domains::Units(); }},
          {"education", +[] { return &domains::EducationStatuses(); }},
          {"genders", +[] { return &domains::Genders(); }},
          {"marital", +[] { return &domains::MaritalStatuses(); }},
          {"credit_ratings", +[] { return &domains::CreditRatings(); }},
          {"buy_potentials", +[] { return &domains::BuyPotentials(); }},
          {"first_names", +[] { return &domains::FirstNames(); }},
          {"last_names", +[] { return &domains::LastNames(); }},
          {"ship_mode_types", +[] { return &domains::ShipModeTypes(); }},
          {"location_types", +[] { return &domains::LocationTypes(); }},
      };
  auto it = table.find(name);
  if (it == table.end()) {
    return Status::NotFound("unknown distribution in template: " + name);
  }
  return it->second();
}

struct Define {
  std::string name;
  std::string function;            // random/date/dist/list/choice
  std::vector<std::string> args;   // raw argument strings
};

/// Splits the template into define declarations and the SQL body.
Result<std::pair<std::vector<Define>, std::string>> SplitTemplate(
    const std::string& text) {
  std::vector<Define> defines;
  std::string sql;
  bool in_sql = false;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (!in_sql) {
      if (line.empty() || StartsWith(line, "--")) continue;
      if (StartsWith(line, "define ")) {
        // define NAME = func(arg, arg, ...);
        std::string decl(line.substr(7));
        size_t eq = decl.find('=');
        size_t open = decl.find('(');
        size_t close = decl.rfind(')');
        if (eq == std::string::npos || open == std::string::npos ||
            close == std::string::npos || open > close) {
          return Status::ParseError("malformed define: " + decl);
        }
        Define d;
        d.name = std::string(Trim(decl.substr(0, eq)));
        d.function = std::string(Trim(decl.substr(eq + 1, open - eq - 1)));
        std::string args = decl.substr(open + 1, close - open - 1);
        // choice() uses | so its alternatives may contain commas.
        char sep = d.function == "choice" ? '|' : ',';
        for (const std::string& a : Split(args, sep)) {
          d.args.emplace_back(Trim(a));
        }
        defines.push_back(std::move(d));
        continue;
      }
      in_sql = true;
    }
    sql += raw_line;
    sql += '\n';
  }
  return std::make_pair(std::move(defines), std::move(sql));
}

/// Evaluates one define into its substitution text.
///
/// `theta` > 0 switches value draws from uniform to Zipf-skewed; every
/// skewed evaluation consumes exactly as many draws as its uniform
/// counterpart, so a single profile toggle never desynchronizes the
/// stream. `refine_step` > 0 shrinks list() picks to a prefix of the
/// step-0 set (the full set is still drawn, keeping draw counts fixed);
/// all other functions ignore it, so chain steps share base binds.
Result<std::string> EvaluateDefine(const Define& d, RngStream* rng,
                                   double theta, bool hot_dates,
                                   int refine_step) {
  bool skew = theta > 0.0;
  if (d.function == "random") {
    if (d.args.size() < 2) {
      return Status::ParseError("random() needs lo, hi");
    }
    int64_t lo = std::strtoll(d.args[0].c_str(), nullptr, 10);
    int64_t hi = std::strtoll(d.args[1].c_str(), nullptr, 10);
    if (skew) {
      // Hot head at the high end of the range (recent years, late
      // months), matching where real workloads concentrate.
      return std::to_string(hi - rng->ZipfInt(hi - lo + 1, theta));
    }
    return std::to_string(rng->UniformInt(lo, hi));
  }
  if (d.function == "date") {
    if (d.args.size() != 2) {
      return Status::ParseError("date() needs span_days, zone");
    }
    int span = static_cast<int>(std::strtol(d.args[0].c_str(), nullptr, 10));
    int zone = static_cast<int>(std::strtol(d.args[1].c_str(), nullptr, 10));
    if (zone < 1 || zone > 3) {
      return Status::ParseError("date() zone must be 1..3");
    }
    const ComparabilityZone& z =
        ComparabilityZones()[static_cast<size_t>(zone - 1)];
    // The sales window opens 1998-01-02 and closes 5 years later; keep the
    // whole span inside one zone of one year.
    int year = skew && hot_dates
                   ? 2002 - static_cast<int>(rng->ZipfInt(5, theta))
                   : static_cast<int>(rng->UniformInt(1998, 2002));
    Date zone_begin = Date::FromYmd(year, z.first_month, 1);
    Date zone_end = Date::FromYmd(year, z.last_month, 1).EndOfMonth();
    int32_t latest_start = (zone_end - zone_begin) - span;
    if (latest_start < 0) latest_start = 0;
    int offset =
        skew && hot_dates
            ? latest_start - static_cast<int>(
                                 rng->ZipfInt(latest_start + 1, theta))
            : static_cast<int>(rng->UniformInt(0, latest_start));
    return zone_begin.AddDays(offset).ToString();
  }
  if (d.function == "dist") {
    if (d.args.size() != 1) return Status::ParseError("dist() needs a name");
    TPCDS_ASSIGN_OR_RETURN(const Distribution* dist,
                           LookupDistribution(d.args[0]));
    if (skew) {
      return dist->value(static_cast<size_t>(
          rng->ZipfInt(static_cast<int64_t>(dist->size()), theta)));
    }
    // Uniform pick: comparability requires equal likelihood per value.
    return dist->PickUniform(rng);
  }
  if (d.function == "list") {
    if (d.args.size() != 2) {
      return Status::ParseError("list() needs name, count");
    }
    TPCDS_ASSIGN_OR_RETURN(const Distribution* dist,
                           LookupDistribution(d.args[0]));
    size_t want = static_cast<size_t>(
        std::strtoul(d.args[1].c_str(), nullptr, 10));
    want = std::min(want, dist->size());
    std::vector<size_t> picked;
    while (picked.size() < want) {
      if (skew) {
        // One draw per accepted pick: collisions probe linearly instead
        // of redrawing, so the hot head cannot stall the loop.
        size_t idx = static_cast<size_t>(
            rng->ZipfInt(static_cast<int64_t>(dist->size()), theta));
        while (std::find(picked.begin(), picked.end(), idx) != picked.end()) {
          idx = (idx + 1) % dist->size();
        }
        picked.push_back(idx);
      } else {
        size_t idx = dist->PickUniformIndex(rng);
        if (std::find(picked.begin(), picked.end(), idx) == picked.end()) {
          picked.push_back(idx);
        }
      }
    }
    // Session-chain refinement: later steps keep a prefix of the step-0
    // pick set, so each step's IN-list is a strict subset of the last.
    size_t keep = want;
    if (refine_step > 0) {
      size_t drop = static_cast<size_t>(refine_step);
      keep = drop >= want ? 1 : std::max<size_t>(1, want - drop);
    }
    std::string out;
    for (size_t i = 0; i < keep; ++i) {
      if (i > 0) out += ", ";
      out += "'" + dist->value(picked[i]) + "'";
    }
    return out;
  }
  if (d.function == "choice") {
    if (d.args.empty()) return Status::ParseError("choice() needs options");
    return d.args[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(d.args.size()) - 1))];
  }
  return Status::ParseError("unknown substitution function: " + d.function);
}

}  // namespace

QueryGenerator::QueryGenerator(uint64_t seed) : seed_(seed) {}

Result<std::string> QueryGenerator::Instantiate(const QueryTemplate& tmpl,
                                                int stream, int iteration,
                                                const BindProfile* profile,
                                                int refine_step) const {
  TPCDS_ASSIGN_OR_RETURN(auto parts, SplitTemplate(tmpl.text));
  auto& [defines, sql] = parts;
  // refine_step is deliberately NOT part of the seed: every step of a
  // session chain re-derives the step-0 binds and only the list()
  // prefixes differ, which is what makes the chain a refinement.
  uint64_t master = seed_ ^ (profile != nullptr ? profile->seed_salt : 0);
  RngStream rng(DeriveSeed(
      master,
      static_cast<uint64_t>(tmpl.id) * 1000 + static_cast<uint64_t>(stream),
      static_cast<uint64_t>(iteration)));
  double theta =
      profile != nullptr && !profile->uniform() ? profile->zipf_theta : 0.0;
  bool hot_dates = profile != nullptr && profile->hot_dates;
  std::map<std::string, std::string> values;
  for (const Define& d : defines) {
    TPCDS_ASSIGN_OR_RETURN(
        std::string v,
        EvaluateDefine(d, &rng, theta, hot_dates, refine_step));
    values[d.name] = std::move(v);
  }
  // Substitute [NAME] occurrences.
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  while (i < sql.size()) {
    if (sql[i] == '[') {
      size_t close = sql.find(']', i);
      if (close != std::string::npos) {
        std::string tag = sql.substr(i + 1, close - i - 1);
        auto it = values.find(tag);
        if (it != values.end()) {
          out += it->second;
          i = close + 1;
          continue;
        }
        return Status::ParseError("template " + tmpl.name +
                                  " references undefined tag [" + tag + "]");
      }
    }
    out += sql[i++];
  }
  return out;
}

std::vector<ProfileSlot> QueryGenerator::ProfileSequence(
    int stream, const std::vector<QueryTemplate>& templates,
    const BindProfile& profile, int length) const {
  std::vector<ProfileSlot> out;
  if (length <= 0 || templates.empty()) return out;
  // Partition templates by class; absent classes get zero weight.
  std::vector<std::vector<int>> by_class(3);
  for (size_t i = 0; i < templates.size(); ++i) {
    by_class[static_cast<size_t>(templates[i].query_class)].push_back(
        static_cast<int>(i));
  }
  std::vector<double> weights = {profile.adhoc_weight,
                                 profile.reporting_weight,
                                 profile.hybrid_weight};
  double total = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    if (by_class[c].empty() || weights[c] < 0.0) weights[c] = 0.0;
    total += weights[c];
  }
  if (total <= 0.0) {
    // Degenerate weights: fall back to drawing any present class.
    for (size_t c = 0; c < 3; ++c) weights[c] = by_class[c].empty() ? 0 : 1;
  }
  RngStream rng(DeriveSeed(seed_ ^ profile.seed_salt, 779,
                           static_cast<uint64_t>(stream)));
  int chain_len = std::max(1, profile.chain_length);
  int next_chain = 0;
  while (static_cast<int>(out.size()) < length) {
    // Two draws per pick (class, then template within class), so the
    // sequence stays aligned regardless of the weights chosen.
    size_t cls = rng.WeightedPick(weights);
    const std::vector<int>& pool = by_class[cls];
    int tmpl_idx = pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    if (chain_len == 1) {
      out.push_back(ProfileSlot{tmpl_idx, -1, 0});
      continue;
    }
    int chain_id = next_chain++;
    for (int step = 0;
         step < chain_len && static_cast<int>(out.size()) < length; ++step) {
      out.push_back(ProfileSlot{tmpl_idx, chain_id, step});
    }
  }
  return out;
}

std::vector<int> QueryGenerator::StreamPermutation(int stream,
                                                   int num_templates) const {
  std::vector<int> order(static_cast<size_t>(num_templates));
  for (int i = 0; i < num_templates; ++i) order[static_cast<size_t>(i)] = i;
  RngStream rng(DeriveSeed(seed_, 777, static_cast<uint64_t>(stream)));
  for (int i = num_templates - 1; i > 0; --i) {
    int j = static_cast<int>(rng.UniformInt(0, i));
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
  }
  return order;
}

std::vector<int> QueryGenerator::StreamPermutation(
    int stream, const std::vector<QueryTemplate>& templates) const {
  // Units: singleton templates, plus one unit per OLAP family holding its
  // steps in ascending template order (the drill-down sequence).
  std::map<int, std::vector<int>> families;
  std::vector<std::vector<int>> units;
  for (size_t i = 0; i < templates.size(); ++i) {
    if (templates[i].olap_family > 0) {
      families[templates[i].olap_family].push_back(static_cast<int>(i));
    } else {
      units.push_back({static_cast<int>(i)});
    }
  }
  for (auto& [family, indexes] : families) {
    std::sort(indexes.begin(), indexes.end(),
              [&](int a, int b) {
                return templates[static_cast<size_t>(a)].id <
                       templates[static_cast<size_t>(b)].id;
              });
    units.push_back(indexes);
  }
  RngStream rng(DeriveSeed(seed_, 778, static_cast<uint64_t>(stream)));
  for (size_t i = units.size() - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i)));
    std::swap(units[i], units[j]);
  }
  std::vector<int> order;
  order.reserve(templates.size());
  for (const std::vector<int>& unit : units) {
    order.insert(order.end(), unit.begin(), unit.end());
  }
  return order;
}

}  // namespace tpcds
