#ifndef TPCDS_QGEN_TEMPLATE_H_
#define TPCDS_QGEN_TEMPLATE_H_

#include <string>
#include <vector>

namespace tpcds {

/// Workload class of a template (paper §4.1). Ad-hoc queries touch the
/// store/web channels where complex auxiliary structures are forbidden;
/// reporting queries touch the catalog channel where they are allowed;
/// queries touching both are hybrid.
enum class QueryClass { kAdHoc, kReporting, kHybrid };

/// Behavioural flavour (paper §4.1): standard, one step of an iterative
/// OLAP drill sequence, or a data-mining extraction returning a large
/// result destined for external tools.
enum class QueryFlavor { kStandard, kIterativeOlap, kDataMining };

const char* QueryClassToString(QueryClass c);
const char* QueryFlavorToString(QueryFlavor f);

/// One of the 99 query templates: SQL text preceded by `define` lines that
/// declare its bind-variable substitutions, e.g.
///
///   define YEAR = random(1998, 2002, uniform);
///   define MONTH = random(11, 12, uniform);          -- stays in zone 3
///   define STATE = dist(states);
///   define CATS = list(categories, 3);
///   SELECT ... WHERE d_year = [YEAR] AND d_moy = [MONTH]
///     AND s_state = '[STATE]' AND i_category IN ([CATS])
///
/// Substitution functions:
///   random(lo, hi, uniform)   uniform integer
///   date(span_days, zone)     'YYYY-MM-DD' such that the span stays in
///                             the comparability zone (paper §3.2)
///   dist(name)                uniform pick from a domain distribution
///   list(name, n)             n distinct quoted picks, comma-separated
///   choice(a|b|c)             verbatim token pick (aggregate exchange)
struct QueryTemplate {
  int id = 0;               // 1..99
  std::string name;         // "q01".."q99"
  QueryClass query_class = QueryClass::kAdHoc;
  QueryFlavor flavor = QueryFlavor::kStandard;
  /// Iterative OLAP steps of one logical sequence share a family id.
  int olap_family = 0;
  std::string text;  // define lines + SQL with [TAG] references
};

}  // namespace tpcds

#endif  // TPCDS_QGEN_TEMPLATE_H_
