#include "engine/database.h"

#include <algorithm>

#include "dsgen/generator.h"
#include "engine/parser.h"
#include "schema/schema.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// RowSink that feeds generated rows straight into an EngineTable,
/// bypassing the flat-file round trip.
class TableLoadSink : public RowSink {
 public:
  explicit TableLoadSink(EngineTable* table) : table_(table) {}
  Status Append(const std::vector<std::string>& fields) override {
    return table_->AppendRowStrings(fields);
  }

 private:
  EngineTable* table_;
};

std::vector<EngineTable::ColumnMeta> MetasFor(const TableDef& def) {
  std::vector<EngineTable::ColumnMeta> metas;
  metas.reserve(def.columns.size());
  for (const ColumnDef& c : def.columns) {
    metas.push_back(EngineTable::ColumnMeta{c.name, c.type});
  }
  return metas;
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  size_t limit = max_rows == 0 ? rows.size() : std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(limit);
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> fields;
    fields.reserve(columns.size());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      fields.push_back(rows[r][c].ToDisplayString());
      widths[c] = std::max(widths[c], fields.back().size());
    }
    rendered.push_back(std::move(fields));
  }
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    out += StringPrintf("%-*s ", static_cast<int>(widths[c]),
                        columns[c].c_str());
  }
  out += '\n';
  for (const auto& fields : rendered) {
    for (size_t c = 0; c < fields.size(); ++c) {
      out += StringPrintf("%-*s ", static_cast<int>(widths[c]),
                          fields[c].c_str());
    }
    out += '\n';
  }
  if (limit < rows.size()) {
    out += StringPrintf("... (%zu rows total)\n", rows.size());
  }
  return out;
}

std::string QueryResult::ToCsv() const {
  auto field = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) return text;
    std::string quoted = "\"";
    for (char c : text) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ',';
    out += field(columns[c]);
  }
  out += '\n';
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      if (!row[c].is_null()) out += field(row[c].ToDisplayString());
    }
    out += '\n';
  }
  return out;
}

Status Database::CreateTpcdsTables() {
  const Schema& schema = TpcdsSchema();
  for (const TableDef& def : schema.tables()) {
    TPCDS_RETURN_NOT_OK(CreateTable(def.name, MetasFor(def)));
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name,
                             std::vector<EngineTable::ColumnMeta> columns) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_[name] = std::make_shared<EngineTable>(name, std::move(columns));
  return Status::OK();
}

std::shared_ptr<const DataFacade> Database::Snapshot() const {
  return std::make_shared<DataFacade>(generation_, tables_);
}

Result<std::unique_ptr<Database>> Database::ForkForMaintenance(
    const std::vector<std::string>& cow_tables) const {
  auto fork = std::make_unique<Database>();
  fork->tables_ = tables_;
  fork->generation_ = generation_;
  fork->default_options_ = default_options_;
  for (const std::string& name : cow_tables) {
    auto it = fork->tables_.find(name);
    if (it == fork->tables_.end()) {
      return Status::NotFound("maintenance fork: no such table: " + name);
    }
    it->second = std::shared_ptr<EngineTable>(it->second->Clone());
  }
  return fork;
}

Status Database::AdoptTablesFrom(Database* build) {
  for (const auto& [name, table] : tables_) {
    if (build->tables_.count(name) == 0) {
      return Status::InvalidArgument(
          "generation commit: build is missing table " + name);
    }
  }
  tables_ = build->tables_;
  ++generation_;
  return Status::OK();
}

Status Database::LoadTpcdsData(const GeneratorOptions& options) {
  for (const std::string& table : GeneratorTableNames()) {
    // Returns tables load together with their sales table.
    if (table.ends_with("_returns")) continue;
    if (table.ends_with("_sales")) {
      EngineTable* sales = FindTable(table);
      std::string returns_name =
          table.substr(0, table.size() - 6) + "_returns";
      EngineTable* returns = FindTable(returns_name);
      if (sales == nullptr || returns == nullptr) {
        return Status::NotFound("missing fact tables for " + table);
      }
      TableLoadSink sales_sink(sales);
      TableLoadSink returns_sink(returns);
      TPCDS_RETURN_NOT_OK(GenerateSalesChannel(table, options, &sales_sink,
                                               &returns_sink));
      continue;
    }
    TPCDS_RETURN_NOT_OK(LoadTable(table, options));
  }
  return Status::OK();
}

Status Database::LoadTable(const std::string& name,
                           const GeneratorOptions& options) {
  EngineTable* table = FindTable(name);
  if (table == nullptr) {
    return Status::NotFound("table not created: " + name);
  }
  TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<TableGenerator> gen,
                         MakeGenerator(name, options));
  TableLoadSink sink(table);
  return gen->Generate(&sink);
}

EngineTable* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const EngineTable* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->num_rows();
  return total;
}

size_t Database::EncodeStorage() {
  size_t encoded = 0;
  for (auto& [name, table] : tables_) encoded += table->EncodeColumns();
  return encoded;
}

size_t Database::AnalyzeStorage() {
  size_t analyzed = 0;
  for (auto& [name, table] : tables_) {
    table->GetOrComputeStats();
    ++analyzed;
  }
  return analyzed;
}

Database::CompressionStats Database::TableCompression(
    const std::string& name) const {
  CompressionStats cs;
  const EngineTable* table = FindTable(name);
  if (table == nullptr) return cs;
  for (size_t c = 0; c < table->num_columns(); ++c) {
    cs.encoded_bytes += table->column(c).PayloadByteSize();
    cs.plain_bytes += table->column(c).PlainByteSize();
  }
  cs.ratio = cs.encoded_bytes == 0
                 ? 1.0
                 : static_cast<double>(cs.plain_bytes) /
                       static_cast<double>(cs.encoded_bytes);
  return cs;
}

Result<QueryResult> Database::Query(const std::string& sql) {
  return Query(sql, default_options_, nullptr);
}

Result<std::string> Database::Explain(const std::string& sql) {
  ExecStats stats;
  TPCDS_ASSIGN_OR_RETURN(QueryResult result,
                         Query(sql, default_options_, &stats));
  std::string out;
  // Physical operator tree, pre-order, with per-operator row counts and
  // self time. Operators elided at run time (memoised duplicates) show
  // their label only.
  for (const ExecStats::OpStat& op : stats.operators) {
    out += "  ";
    out.append(static_cast<size_t>(op.depth) * 2, ' ');
    out += "-> " + op.label;
    if (op.executed) {
      std::string extra;
      if (op.vectorized) extra += ", vec";
      if (op.morsels_pruned > 0) {
        extra += StringPrintf(", %lld morsels pruned",
                              static_cast<long long>(op.morsels_pruned));
      }
      if (op.bloom_rejects > 0) {
        extra += StringPrintf(", %lld bloom rejects",
                              static_cast<long long>(op.bloom_rejects));
      }
      if (op.topk_seen > 0) {
        extra += StringPrintf(", topk: kept %lld of %lld rows",
                              static_cast<long long>(op.topk_kept),
                              static_cast<long long>(op.topk_seen));
      }
      if (op.bytes_touched > 0) {
        extra += StringPrintf(", %lld bytes touched",
                              static_cast<long long>(op.bytes_touched));
      }
      std::string est;
      if (op.est_rows >= 0.0) {
        est = StringPrintf("est %lld, ",
                           static_cast<long long>(op.est_rows));
      }
      out += StringPrintf(" [%s%lld -> %lld rows, %.3f ms%s]",
                          est.c_str(),
                          static_cast<long long>(op.rows_in),
                          static_cast<long long>(op.rows_out),
                          op.seconds * 1e3, extra.c_str());
    }
    out += "\n";
  }
  out += StringPrintf(
      "  => %zu result rows (scanned %lld, joined %lld, star-pruned %lld, "
      "morsels pruned %lld, bloom rejects %lld, topk kept %lld of %lld, "
      "bytes touched %lld)\n",
      result.rows.size(), static_cast<long long>(stats.rows_scanned),
      static_cast<long long>(stats.rows_joined),
      static_cast<long long>(stats.star_filtered_rows),
      static_cast<long long>(stats.morsels_pruned),
      static_cast<long long>(stats.bloom_rejects),
      static_cast<long long>(stats.topk_kept),
      static_cast<long long>(stats.topk_seen),
      static_cast<long long>(stats.bytes_touched));
  if (stats.max_q_error > 0.0) {
    out += StringPrintf("  => max q-error %.2f\n", stats.max_q_error);
  }
  return out;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const PlannerOptions& options,
                                    ExecStats* stats,
                                    QueryGovernor* governor) {
  // Pin one generation for the query's whole lifetime: concurrent
  // generation swaps (data maintenance commits) never change the data a
  // running query sees.
  std::shared_ptr<const DataFacade> facade = Snapshot();
  return QueryFacade(*facade, sql, options, stats, governor);
}

Result<QueryResult> QueryFacade(const DataFacade& facade,
                                const std::string& sql,
                                const PlannerOptions& options,
                                ExecStats* stats, QueryGovernor* governor) {
  TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> stmt, ParseSql(sql));
  TPCDS_ASSIGN_OR_RETURN(
      std::shared_ptr<RowSet> rs,
      ExecuteSelect(&facade, *stmt, options, stats, governor));
  QueryResult result;
  result.columns.reserve(rs->cols.size());
  for (size_t i = 0; i < rs->cols.size(); ++i) {
    result.columns.push_back(rs->HeaderOf(i));
  }
  result.rows = std::move(rs->rows);
  return result;
}

}  // namespace tpcds
