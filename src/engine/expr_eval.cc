#include "engine/expr_eval.h"

#include <cmath>
#include <unordered_set>

#include "util/string_util.h"

namespace tpcds {
namespace {

// ---------------------------------------------------------------- helpers

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    if (a.is_null() && b.is_null()) return true;
    if (a.is_null() || b.is_null()) return false;
    return Value::Compare(a, b) == 0;
  }
};
using ValueSet = std::unordered_set<Value, ValueHasher, ValueEq>;

/// Simple SQL LIKE matcher: % = any run, _ = any one character.
bool LikeMatch(std::string_view text, const std::string& pattern,
               size_t ti = 0, size_t pi = 0) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t t = ti; t <= text.size(); ++t) {
        if (LikeMatch(text, pattern, t, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

// ------------------------------------------------------------ bound nodes

class BoundLiteral : public BoundExpr {
 public:
  explicit BoundLiteral(Value v) : value_(std::move(v)) {}
  Value Eval(const std::vector<Value>&) const override { return value_; }

 private:
  Value value_;
};

class BoundColumn : public BoundExpr {
 public:
  explicit BoundColumn(int index) : index_(index) {}
  Value Eval(const std::vector<Value>& row) const override {
    return row[static_cast<size_t>(index_)];
  }

 private:
  int index_;
};

class BoundUnary : public BoundExpr {
 public:
  BoundUnary(std::string op, std::unique_ptr<BoundExpr> inner)
      : op_(std::move(op)), inner_(std::move(inner)) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value v = inner_->Eval(row);
    if (v.is_null()) return Value::Null();
    if (op_ == "NOT") return Value::Bool(!v.IsTruthy());
    // Unary minus.
    switch (v.kind()) {
      case Value::Kind::kInt:
        return Value::Int(-v.AsInt());
      case Value::Kind::kDecimal:
        return Value::Dec(-v.AsDecimal());
      default:
        return Value::Dbl(-v.AsDouble());
    }
  }

 private:
  std::string op_;
  std::unique_ptr<BoundExpr> inner_;
};

class BoundBinary : public BoundExpr {
 public:
  BoundBinary(std::string op, std::unique_ptr<BoundExpr> l,
              std::unique_ptr<BoundExpr> r)
      : op_(std::move(op)), left_(std::move(l)), right_(std::move(r)) {}

  Value Eval(const std::vector<Value>& row) const override {
    if (op_ == "AND") {
      Value l = left_->Eval(row);
      if (!l.is_null() && !l.IsTruthy()) return Value::Bool(false);
      Value r = right_->Eval(row);
      if (!r.is_null() && !r.IsTruthy()) return Value::Bool(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    if (op_ == "OR") {
      Value l = left_->Eval(row);
      if (!l.is_null() && l.IsTruthy()) return Value::Bool(true);
      Value r = right_->Eval(row);
      if (!r.is_null() && r.IsTruthy()) return Value::Bool(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    Value l = left_->Eval(row);
    Value r = right_->Eval(row);
    if (l.is_null() || r.is_null()) return Value::Null();
    if (op_ == "=") return Value::Bool(Value::Compare(l, r) == 0);
    if (op_ == "<>") return Value::Bool(Value::Compare(l, r) != 0);
    if (op_ == "<") return Value::Bool(Value::Compare(l, r) < 0);
    if (op_ == "<=") return Value::Bool(Value::Compare(l, r) <= 0);
    if (op_ == ">") return Value::Bool(Value::Compare(l, r) > 0);
    if (op_ == ">=") return Value::Bool(Value::Compare(l, r) >= 0);
    if (op_ == "||") return Value::Str(l.ToDisplayString() + r.ToDisplayString());
    return EvalArithmetic(op_, l, r);
  }

 private:
  std::string op_;
  std::unique_ptr<BoundExpr> left_;
  std::unique_ptr<BoundExpr> right_;
};

class BoundBetween : public BoundExpr {
 public:
  BoundBetween(bool negated, std::unique_ptr<BoundExpr> v,
               std::unique_ptr<BoundExpr> lo, std::unique_ptr<BoundExpr> hi)
      : negated_(negated),
        value_(std::move(v)),
        lo_(std::move(lo)),
        hi_(std::move(hi)) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value v = value_->Eval(row);
    Value lo = lo_->Eval(row);
    Value hi = hi_->Eval(row);
    if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
    bool in = Value::Compare(v, lo) >= 0 && Value::Compare(v, hi) <= 0;
    return Value::Bool(negated_ ? !in : in);
  }

 private:
  bool negated_;
  std::unique_ptr<BoundExpr> value_;
  std::unique_ptr<BoundExpr> lo_;
  std::unique_ptr<BoundExpr> hi_;
};

class BoundInSet : public BoundExpr {
 public:
  BoundInSet(bool negated, std::unique_ptr<BoundExpr> probe, ValueSet set,
             bool set_contains_null)
      : negated_(negated),
        probe_(std::move(probe)),
        set_(std::move(set)),
        set_contains_null_(set_contains_null) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value v = probe_->Eval(row);
    if (v.is_null()) return Value::Null();
    bool in = set_.find(v) != set_.end();
    // SQL three-valued IN: a non-match against a set containing NULL is
    // UNKNOWN, not FALSE — which makes NOT IN filter everything out.
    if (!in && set_contains_null_) return Value::Null();
    return Value::Bool(negated_ ? !in : in);
  }

 private:
  bool negated_;
  std::unique_ptr<BoundExpr> probe_;
  ValueSet set_;
  bool set_contains_null_;
};

class BoundInExprList : public BoundExpr {
 public:
  BoundInExprList(bool negated, std::vector<std::unique_ptr<BoundExpr>> exprs)
      : negated_(negated), exprs_(std::move(exprs)) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value v = exprs_[0]->Eval(row);
    if (v.is_null()) return Value::Null();
    for (size_t i = 1; i < exprs_.size(); ++i) {
      Value candidate = exprs_[i]->Eval(row);
      if (!candidate.is_null() && Value::Compare(v, candidate) == 0) {
        return Value::Bool(!negated_);
      }
    }
    return Value::Bool(negated_);
  }

 private:
  bool negated_;
  std::vector<std::unique_ptr<BoundExpr>> exprs_;  // [probe, v1, v2, ...]
};

class BoundIsNull : public BoundExpr {
 public:
  BoundIsNull(bool negated, std::unique_ptr<BoundExpr> inner)
      : negated_(negated), inner_(std::move(inner)) {}
  Value Eval(const std::vector<Value>& row) const override {
    bool null = inner_->Eval(row).is_null();
    return Value::Bool(negated_ ? !null : null);
  }

 private:
  bool negated_;
  std::unique_ptr<BoundExpr> inner_;
};

class BoundLike : public BoundExpr {
 public:
  BoundLike(bool negated, std::unique_ptr<BoundExpr> text,
            std::unique_ptr<BoundExpr> pattern)
      : negated_(negated),
        text_(std::move(text)),
        pattern_(std::move(pattern)) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value t = text_->Eval(row);
    Value p = pattern_->Eval(row);
    if (t.is_null() || p.is_null()) return Value::Null();
    bool match = LikeMatch(t.ToDisplayString(), p.ToDisplayString());
    return Value::Bool(negated_ ? !match : match);
  }

 private:
  bool negated_;
  std::unique_ptr<BoundExpr> text_;
  std::unique_ptr<BoundExpr> pattern_;
};

class BoundCase : public BoundExpr {
 public:
  BoundCase(std::vector<std::unique_ptr<BoundExpr>> parts, bool has_else)
      : parts_(std::move(parts)), has_else_(has_else) {}
  Value Eval(const std::vector<Value>& row) const override {
    size_t pairs = has_else_ ? (parts_.size() - 1) / 2 : parts_.size() / 2;
    for (size_t i = 0; i < pairs; ++i) {
      Value cond = parts_[2 * i]->Eval(row);
      if (!cond.is_null() && cond.IsTruthy()) {
        return parts_[2 * i + 1]->Eval(row);
      }
    }
    if (has_else_) return parts_.back()->Eval(row);
    return Value::Null();
  }

 private:
  std::vector<std::unique_ptr<BoundExpr>> parts_;
  bool has_else_;
};

class BoundCast : public BoundExpr {
 public:
  BoundCast(std::string type, std::unique_ptr<BoundExpr> inner)
      : type_(std::move(type)), inner_(std::move(inner)) {}
  Value Eval(const std::vector<Value>& row) const override {
    Value v = inner_->Eval(row);
    if (v.is_null()) return Value::Null();
    if (type_ == "DATE") {
      if (v.kind() == Value::Kind::kDate) return v;
      Result<Date> d = Date::Parse(v.ToDisplayString());
      return d.ok() ? Value::Dt(d.ValueOrDie()) : Value::Null();
    }
    if (type_ == "INTEGER" || type_ == "INT" || type_ == "BIGINT") {
      return Value::Int(static_cast<int64_t>(v.AsDouble()));
    }
    if (type_ == "DECIMAL" || type_ == "NUMERIC") {
      return Value::Dec(Decimal::FromDouble(v.AsDouble()));
    }
    if (type_ == "DOUBLE" || type_ == "FLOAT" || type_ == "REAL") {
      return Value::Dbl(v.AsDouble());
    }
    if (type_ == "CHAR" || type_ == "VARCHAR") {
      return Value::Str(v.ToDisplayString());
    }
    return v;
  }

 private:
  std::string type_;
  std::unique_ptr<BoundExpr> inner_;
};

class BoundFunction : public BoundExpr {
 public:
  BoundFunction(std::string name,
                std::vector<std::unique_ptr<BoundExpr>> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Value Eval(const std::vector<Value>& row) const override {
    if (name_ == "COALESCE") {
      for (const auto& a : args_) {
        Value v = a->Eval(row);
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    if (name_ == "SUBSTR" || name_ == "SUBSTRING") {
      Value s = args_[0]->Eval(row);
      if (s.is_null()) return Value::Null();
      std::string text = s.ToDisplayString();
      int64_t start = args_.size() > 1
                          ? args_[1]->Eval(row).AsInt()
                          : 1;
      int64_t len = args_.size() > 2
                        ? args_[2]->Eval(row).AsInt()
                        : static_cast<int64_t>(text.size());
      if (start < 1) start = 1;
      if (static_cast<size_t>(start - 1) >= text.size()) {
        return Value::Str("");
      }
      return Value::Str(text.substr(static_cast<size_t>(start - 1),
                                    static_cast<size_t>(len)));
    }
    if (name_ == "UPPER" || name_ == "LOWER") {
      Value s = args_[0]->Eval(row);
      if (s.is_null()) return Value::Null();
      std::string text = s.ToDisplayString();
      return Value::Str(name_ == "UPPER" ? ToUpper(text) : ToLower(text));
    }
    if (name_ == "ABS") {
      Value v = args_[0]->Eval(row);
      if (v.is_null()) return Value::Null();
      switch (v.kind()) {
        case Value::Kind::kInt:
          return Value::Int(std::abs(v.AsInt()));
        case Value::Kind::kDecimal:
          return Value::Dec(Decimal::FromCents(
              std::abs(v.AsDecimal().cents())));
        default:
          return Value::Dbl(std::abs(v.AsDouble()));
      }
    }
    if (name_ == "ROUND") {
      Value v = args_[0]->Eval(row);
      if (v.is_null()) return Value::Null();
      int64_t digits = args_.size() > 1 ? args_[1]->Eval(row).AsInt() : 0;
      double scale = std::pow(10.0, static_cast<double>(digits));
      return Value::Dbl(std::round(v.AsDouble() * scale) / scale);
    }
    return Value::Null();
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<BoundExpr>> args_;
};

}  // namespace

bool SqlLikeMatch(std::string_view text, const std::string& pattern) {
  return LikeMatch(text, pattern);
}

Value EvalArithmetic(const std::string& op, const Value& a, const Value& b) {
  using K = Value::Kind;
  if (a.is_null() || b.is_null()) return Value::Null();
  // Date +/- days.
  if (a.kind() == K::kDate && b.kind() == K::kInt) {
    if (op == "+") return Value::Dt(a.AsDate().AddDays(
        static_cast<int>(b.AsInt())));
    if (op == "-") return Value::Dt(a.AsDate().AddDays(
        static_cast<int>(-b.AsInt())));
  }
  if (a.kind() == K::kDate && b.kind() == K::kDate && op == "-") {
    return Value::Int(a.AsDate() - b.AsDate());
  }
  if (op == "/") {
    double denom = b.AsDouble();
    if (denom == 0.0) return Value::Null();
    return Value::Dbl(a.AsDouble() / denom);
  }
  // Exact paths first.
  if (a.kind() == K::kInt && b.kind() == K::kInt) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    if (op == "+") return Value::Int(x + y);
    if (op == "-") return Value::Int(x - y);
    if (op == "*") return Value::Int(x * y);
  }
  if (a.kind() == K::kDecimal && b.kind() == K::kDecimal &&
      (op == "+" || op == "-")) {
    return Value::Dec(op == "+" ? a.AsDecimal() + b.AsDecimal()
                                : a.AsDecimal() - b.AsDecimal());
  }
  if (a.kind() == K::kDecimal && b.kind() == K::kInt) {
    if (op == "*") return Value::Dec(a.AsDecimal() * b.AsInt());
    if (op == "+") return Value::Dec(a.AsDecimal() +
                                     Decimal::FromUnits(b.AsInt()));
    if (op == "-") return Value::Dec(a.AsDecimal() -
                                     Decimal::FromUnits(b.AsInt()));
  }
  if (a.kind() == K::kInt && b.kind() == K::kDecimal) {
    if (op == "*") return Value::Dec(b.AsDecimal() * a.AsInt());
    if (op == "+") return Value::Dec(Decimal::FromUnits(a.AsInt()) +
                                     b.AsDecimal());
    if (op == "-") return Value::Dec(Decimal::FromUnits(a.AsInt()) -
                                     b.AsDecimal());
  }
  // Everything else through double.
  double x = a.AsDouble();
  double y = b.AsDouble();
  if (op == "+") return Value::Dbl(x + y);
  if (op == "-") return Value::Dbl(x - y);
  if (op == "*") return Value::Dbl(x * y);
  return Value::Null();
}

Result<std::unique_ptr<BoundExpr>> BindExpr(const Expr& expr,
                                            const RowSet& scope,
                                            SubqueryEvaluator* subqueries) {
  switch (expr.tag) {
    case Expr::Tag::kLiteral:
      return std::unique_ptr<BoundExpr>(new BoundLiteral(expr.literal));
    case Expr::Tag::kColumnRef: {
      TPCDS_ASSIGN_OR_RETURN(int idx,
                             scope.Resolve(expr.qualifier, expr.name));
      return std::unique_ptr<BoundExpr>(new BoundColumn(idx));
    }
    case Expr::Tag::kUnary: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> inner,
                             BindExpr(*expr.children[0], scope, subqueries));
      return std::unique_ptr<BoundExpr>(
          new BoundUnary(expr.name, std::move(inner)));
    }
    case Expr::Tag::kBinary: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> l,
                             BindExpr(*expr.children[0], scope, subqueries));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> r,
                             BindExpr(*expr.children[1], scope, subqueries));
      return std::unique_ptr<BoundExpr>(
          new BoundBinary(expr.name, std::move(l), std::move(r)));
    }
    case Expr::Tag::kBetween: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> v,
                             BindExpr(*expr.children[0], scope, subqueries));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> lo,
                             BindExpr(*expr.children[1], scope, subqueries));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> hi,
                             BindExpr(*expr.children[2], scope, subqueries));
      return std::unique_ptr<BoundExpr>(new BoundBetween(
          expr.negated, std::move(v), std::move(lo), std::move(hi)));
    }
    case Expr::Tag::kInList: {
      // Constant lists compile to a hash set.
      bool all_literals = true;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (expr.children[i]->tag != Expr::Tag::kLiteral) {
          all_literals = false;
          break;
        }
      }
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> probe,
                             BindExpr(*expr.children[0], scope, subqueries));
      if (all_literals) {
        ValueSet set;
        bool contains_null = false;
        for (size_t i = 1; i < expr.children.size(); ++i) {
          if (expr.children[i]->literal.is_null()) {
            contains_null = true;
          } else {
            set.insert(expr.children[i]->literal);
          }
        }
        return std::unique_ptr<BoundExpr>(
            new BoundInSet(expr.negated, std::move(probe), std::move(set),
                           contains_null));
      }
      std::vector<std::unique_ptr<BoundExpr>> exprs;
      exprs.push_back(std::move(probe));
      for (size_t i = 1; i < expr.children.size(); ++i) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> e,
                               BindExpr(*expr.children[i], scope, subqueries));
        exprs.push_back(std::move(e));
      }
      return std::unique_ptr<BoundExpr>(
          new BoundInExprList(expr.negated, std::move(exprs)));
    }
    case Expr::Tag::kInSubquery: {
      if (subqueries == nullptr) {
        return Status::NotImplemented("subquery not allowed here");
      }
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> probe,
                             BindExpr(*expr.children[0], scope, subqueries));
      TPCDS_ASSIGN_OR_RETURN(std::vector<Value> values,
                             subqueries->EvaluateColumn(*expr.subquery));
      ValueSet set;
      bool contains_null = false;
      for (Value& v : values) {
        if (v.is_null()) {
          contains_null = true;
        } else {
          set.insert(std::move(v));
        }
      }
      return std::unique_ptr<BoundExpr>(
          new BoundInSet(expr.negated, std::move(probe), std::move(set),
                         contains_null));
    }
    case Expr::Tag::kScalarSubquery: {
      if (subqueries == nullptr) {
        return Status::NotImplemented("subquery not allowed here");
      }
      TPCDS_ASSIGN_OR_RETURN(std::vector<Value> values,
                             subqueries->EvaluateColumn(*expr.subquery));
      Value v = values.empty() ? Value::Null() : values[0];
      return std::unique_ptr<BoundExpr>(new BoundLiteral(std::move(v)));
    }
    case Expr::Tag::kExistsSubquery: {
      if (subqueries == nullptr) {
        return Status::NotImplemented("subquery not allowed here");
      }
      TPCDS_ASSIGN_OR_RETURN(std::vector<Value> values,
                             subqueries->EvaluateColumn(*expr.subquery));
      bool exists = !values.empty();
      return std::unique_ptr<BoundExpr>(
          new BoundLiteral(Value::Bool(expr.negated ? !exists : exists)));
    }
    case Expr::Tag::kIsNull: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> inner,
                             BindExpr(*expr.children[0], scope, subqueries));
      return std::unique_ptr<BoundExpr>(
          new BoundIsNull(expr.negated, std::move(inner)));
    }
    case Expr::Tag::kLike: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> text,
                             BindExpr(*expr.children[0], scope, subqueries));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> pattern,
                             BindExpr(*expr.children[1], scope, subqueries));
      return std::unique_ptr<BoundExpr>(new BoundLike(
          expr.negated, std::move(text), std::move(pattern)));
    }
    case Expr::Tag::kCase: {
      std::vector<std::unique_ptr<BoundExpr>> parts;
      for (const auto& c : expr.children) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*c, scope, subqueries));
        parts.push_back(std::move(b));
      }
      return std::unique_ptr<BoundExpr>(
          new BoundCase(std::move(parts), expr.case_has_else));
    }
    case Expr::Tag::kCast: {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> inner,
                             BindExpr(*expr.children[0], scope, subqueries));
      return std::unique_ptr<BoundExpr>(
          new BoundCast(expr.cast_type, std::move(inner)));
    }
    case Expr::Tag::kFunction: {
      std::vector<std::unique_ptr<BoundExpr>> args;
      for (const auto& c : expr.children) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*c, scope, subqueries));
        args.push_back(std::move(b));
      }
      return std::unique_ptr<BoundExpr>(
          new BoundFunction(expr.name, std::move(args)));
    }
    case Expr::Tag::kAggregate:
      return Status::Internal(
          "aggregate not rewritten before binding: " + ExprToString(expr));
    case Expr::Tag::kWindow:
      return Status::Internal(
          "window function not rewritten before binding: " +
          ExprToString(expr));
    case Expr::Tag::kStar:
      return Status::Internal("unexpected * outside COUNT(*)");
  }
  return Status::Internal("unhandled expression tag");
}

std::string ExprToString(const Expr& expr) {
  switch (expr.tag) {
    case Expr::Tag::kLiteral:
      return expr.literal.is_null()
                 ? "NULL"
                 : (expr.literal.kind() == Value::Kind::kString
                        ? "'" + expr.literal.AsString() + "'"
                        : expr.literal.ToDisplayString());
    case Expr::Tag::kColumnRef:
      return expr.qualifier.empty()
                 ? ToLower(expr.name)
                 : ToLower(expr.qualifier) + "." + ToLower(expr.name);
    case Expr::Tag::kStar:
      return "*";
    case Expr::Tag::kBinary:
      return "(" + ExprToString(*expr.children[0]) + " " + expr.name + " " +
             ExprToString(*expr.children[1]) + ")";
    case Expr::Tag::kUnary:
      return expr.name + "(" + ExprToString(*expr.children[0]) + ")";
    case Expr::Tag::kFunction:
    case Expr::Tag::kAggregate: {
      std::string out = ToLower(expr.name) + "(";
      if (expr.distinct) out += "distinct ";
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprToString(*expr.children[i]);
      }
      return out + ")";
    }
    case Expr::Tag::kWindow: {
      std::string out = ToLower(expr.name) + "(";
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprToString(*expr.children[i]);
      }
      out += ") over (partition by ";
      for (size_t i = 0; i < expr.partition_by.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprToString(*expr.partition_by[i]);
      }
      if (!expr.order_by.empty()) {
        out += " order by ";
        for (size_t i = 0; i < expr.order_by.size(); ++i) {
          if (i > 0) out += ",";
          out += ExprToString(*expr.order_by[i]);
          if (expr.order_desc[i]) out += " desc";
        }
      }
      return out + ")";
    }
    case Expr::Tag::kCase: {
      std::string out = "case";
      size_t pairs = expr.case_has_else ? (expr.children.size() - 1) / 2
                                        : expr.children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " when " + ExprToString(*expr.children[2 * i]) + " then " +
               ExprToString(*expr.children[2 * i + 1]);
      }
      if (expr.case_has_else) {
        out += " else " + ExprToString(*expr.children.back());
      }
      return out + " end";
    }
    case Expr::Tag::kBetween:
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " not between " : " between ") +
             ExprToString(*expr.children[1]) + " and " +
             ExprToString(*expr.children[2]);
    case Expr::Tag::kInList: {
      std::string out = ExprToString(*expr.children[0]) +
                        (expr.negated ? " not in (" : " in (");
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (i > 1) out += ",";
        out += ExprToString(*expr.children[i]);
      }
      return out + ")";
    }
    case Expr::Tag::kInSubquery:
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " not in (<subquery>)" : " in (<subquery>)");
    case Expr::Tag::kScalarSubquery:
      return "(<subquery>)";
    case Expr::Tag::kExistsSubquery:
      return expr.negated ? "not exists(<subquery>)" : "exists(<subquery>)";
    case Expr::Tag::kIsNull:
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " is not null" : " is null");
    case Expr::Tag::kLike:
      return ExprToString(*expr.children[0]) +
             (expr.negated ? " not like " : " like ") +
             ExprToString(*expr.children[1]);
    case Expr::Tag::kCast:
      return "cast(" + ExprToString(*expr.children[0]) + " as " +
             ToLower(expr.cast_type) + ")";
  }
  return "?";
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.tag == Expr::Tag::kAggregate) return true;
  // Window arguments may contain aggregates, but the window itself is
  // evaluated after aggregation; the planner inspects them separately.
  for (const auto& c : expr.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

bool ContainsWindow(const Expr& expr) {
  if (expr.tag == Expr::Tag::kWindow) return true;
  for (const auto& c : expr.children) {
    if (ContainsWindow(*c)) return true;
  }
  return false;
}

}  // namespace tpcds
