#ifndef TPCDS_ENGINE_AGG_PARALLEL_H_
#define TPCDS_ENGINE_AGG_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/value.h"

namespace tpcds {

/// Partitioned-hash building blocks shared by the parallel aggregation,
/// DISTINCT / set-operation, sort and Top-K paths in the executor. All of
/// them follow the same determinism rule as the rest of the morsel
/// executor: partition assignment is a pure function of the input (a value
/// hash, never a thread id), and per-partition results are recombined in
/// first-seen input order, so results are byte-identical at any
/// parallelism level.

/// Number of hash partitions for parallel aggregate / distinct / set-op
/// builds. A constant (like the executor's join partitions): partition
/// contents must not depend on the worker count.
inline constexpr size_t kHashPartitions = 16;

/// Borrowed view of a composite key: a prefix of a materialised row, or a
/// per-row scratch buffer. Lets the group hash tables probe a candidate
/// key without materialising it — the key values are copied only when a
/// new group is inserted (transparent lookup, in the style of the
/// string_view lookups on EngineTable::StringIndex).
struct GroupKeyView {
  const Value* data = nullptr;
  size_t size = 0;

  static GroupKeyView Of(const std::vector<Value>& key) {
    return {key.data(), key.size()};
  }
  /// The first `n` values of `row` (a RowSet visible prefix).
  static GroupKeyView Prefix(const std::vector<Value>& row, size_t n) {
    return {row.data(), std::min(n, row.size())};
  }
};

/// FNV-style hash over a key's values. Transparent: a view and its
/// materialised copy hash identically, so heterogeneous lookup and
/// hash-based partition assignment agree everywhere.
struct GroupKeyHash {
  using is_transparent = void;
  size_t operator()(const std::vector<Value>& key) const {
    return Hash(key.data(), key.size());
  }
  size_t operator()(const GroupKeyView& key) const {
    return Hash(key.data, key.size);
  }
  static size_t Hash(const Value* values, size_t n);
};

/// SQL GROUP BY / DISTINCT key equality: NULLs compare equal to each
/// other (unlike predicate evaluation). Transparent, matching GroupKeyHash.
struct GroupKeyEq {
  using is_transparent = void;
  static bool Eq(const Value* a, size_t an, const Value* b, size_t bn);

  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    return Eq(a.data(), a.size(), b.data(), b.size());
  }
  bool operator()(const std::vector<Value>& a, const GroupKeyView& b) const {
    return Eq(a.data(), a.size(), b.data, b.size);
  }
  bool operator()(const GroupKeyView& a, const std::vector<Value>& b) const {
    return Eq(a.data, a.size, b.data(), b.size());
  }
  bool operator()(const GroupKeyView& a, const GroupKeyView& b) const {
    return Eq(a.data, a.size, b.data, b.size);
  }
};

/// Merges per-partition ascending row-index lists into one ascending list
/// — the survivor order of a partitioned duplicate elimination, equal to
/// the input order a serial scan would have produced.
std::vector<uint32_t> MergeAscendingIndexLists(
    const std::vector<std::vector<uint32_t>>& lists);

/// Rows per locally-sorted run in the parallel sort. A constant multiple
/// of the morsel size — like the morsel size itself, independent of the
/// worker count so the run structure is a function of the input alone
/// (the merged order is additionally unique because sort comparators
/// break ties on the original row index, making them total orders).
inline constexpr size_t kSortRunRows = 16 * 1024;

inline size_t SortRunCount(size_t n) {
  return (n + kSortRunRows - 1) / kSortRunRows;
}

/// One Top-K candidate: the materialised sort key and the input row it
/// belongs to.
struct TopKEntry {
  std::vector<Value> key;
  uint32_t row = 0;
};

/// Bounded candidate heap for the Top-K operator: keeps the best
/// `capacity` entries seen so far under `better` (a total order —
/// callers break key ties on the row index). The heap top is the worst
/// retained entry, so a non-qualifying row is rejected with one
/// comparison and its key is never stored — the memory win over a full
/// sort. The retained set is input-only (exact top-k of the offered
/// rows), so merging per-chunk heaps yields the same k rows however the
/// input was chunked.
template <typename Better>
class TopKHeap {
 public:
  TopKHeap(size_t capacity, Better better)
      : capacity_(capacity), better_(std::move(better)),
        worse_first_(HeapCmp{&better_}) {}

  /// Offers one row. `key` is the caller's scratch buffer; it is moved
  /// from (leaving it empty) only when the entry is retained.
  bool Offer(std::vector<Value>* key, uint32_t row) {
    if (capacity_ == 0) return false;
    if (entries_.size() < capacity_) {
      entries_.push_back(TopKEntry{std::move(*key), row});
      std::push_heap(entries_.begin(), entries_.end(), worse_first_);
      return true;
    }
    TopKEntry candidate{std::move(*key), row};
    if (!better_(candidate, entries_.front())) {
      *key = std::move(candidate.key);  // give the scratch buffer back
      return false;
    }
    std::pop_heap(entries_.begin(), entries_.end(), worse_first_);
    entries_.back() = std::move(candidate);
    std::push_heap(entries_.begin(), entries_.end(), worse_first_);
    return true;
  }

  const std::vector<TopKEntry>& entries() const { return entries_; }
  std::vector<TopKEntry> Take() { return std::move(entries_); }

 private:
  /// std::push_heap keeps the *greatest* element (under the comparator)
  /// at the front; ordering by `better` puts the worst retained entry
  /// there, which is exactly the eviction candidate.
  struct HeapCmp {
    const Better* better;
    bool operator()(const TopKEntry& a, const TopKEntry& b) const {
      return (*better)(a, b);
    }
  };

  size_t capacity_;
  Better better_;
  HeapCmp worse_first_;
  std::vector<TopKEntry> entries_;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_AGG_PARALLEL_H_
