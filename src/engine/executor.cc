#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "engine/agg_parallel.h"
#include "engine/data_facade.h"
#include "engine/expr_eval.h"
#include "engine/governor.h"
#include "engine/table.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace tpcds {
namespace {

/// Fixed morsel size. Deliberately independent of the worker count: the
/// partial-result structure (and therefore every merge order and every
/// floating-point reassociation) is a function of the input alone, which
/// makes query results byte-identical across parallelism levels.
constexpr size_t kMorselRows = 1024;

/// Hash-join build partitions. Like the morsel size, a constant — the
/// per-key match lists come out identical for any worker count.
constexpr size_t kJoinPartitions = 16;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------------ value keys

/// Composite keys (join keys, group keys, whole-row distinct keys) hash
/// and compare through the transparent GroupKeyHash/GroupKeyEq from
/// agg_parallel.h: lookups accept a GroupKeyView over a scratch buffer or
/// a row prefix, so the per-row path materialises no key vectors.
using VecValueHash = GroupKeyHash;
using VecValueEq = GroupKeyEq;

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    if (a.is_null() && b.is_null()) return true;
    if (a.is_null() || b.is_null()) return false;
    return Value::Compare(a, b) == 0;
  }
};
using ValueSet = std::unordered_set<Value, ValueHasher, ValueEq>;

// ------------------------------------------------------------ aggregates

class Accumulator {
 public:
  explicit Accumulator(const PlanAggSpec* spec) : spec_(spec) {}

  void Add(const Value& v) {
    if (spec_->star) {
      ++count_;
      return;
    }
    if (v.is_null()) return;
    if (spec_->distinct) {
      distinct_.insert(v);
      return;
    }
    Accept(v);
  }

  /// Folds a partial accumulator (one morsel's worth) into this one.
  /// Callers merge strictly in morsel order so the result is reproducible.
  void Merge(const Accumulator& o) {
    count_ += o.count_;
    sum_int_ += o.sum_int_;
    sum_cents_ += o.sum_cents_;
    sum_double_ += o.sum_double_;
    sum_squares_ += o.sum_squares_;
    saw_decimal_ |= o.saw_decimal_;
    saw_double_ |= o.saw_double_;
    if (!o.min_.is_null() &&
        (min_.is_null() || Value::Compare(o.min_, min_) < 0)) {
      min_ = o.min_;
    }
    if (!o.max_.is_null() &&
        (max_.is_null() || Value::Compare(o.max_, max_) > 0)) {
      max_ = o.max_;
    }
    for (const Value& v : o.distinct_) distinct_.insert(v);
  }

  Value Finalize() const {
    if (spec_->distinct && !spec_->star) {
      Accumulator plain(&plain_spec());
      for (const Value& v : distinct_) plain.Accept(v);
      plain.count_ = static_cast<int64_t>(distinct_.size());
      return plain.FinalizePlain(spec_->function);
    }
    return FinalizePlain(spec_->function);
  }

 private:
  static const PlanAggSpec& plain_spec() {
    static const PlanAggSpec& s = *new PlanAggSpec{};
    return s;
  }

  void Accept(const Value& v) {
    ++count_;
    double d = v.AsDouble();
    sum_double_ += d;
    sum_squares_ += d * d;
    if (v.kind() == Value::Kind::kDecimal) {
      sum_cents_ += v.AsDecimal().cents();
      saw_decimal_ = true;
    } else if (v.kind() == Value::Kind::kInt) {
      sum_int_ += v.AsInt();
    } else {
      saw_double_ = true;
    }
    if (min_.is_null() || Value::Compare(v, min_) < 0) min_ = v;
    if (max_.is_null() || Value::Compare(v, max_) > 0) max_ = v;
  }

  Value FinalizePlain(const std::string& function) const {
    if (function == "COUNT") return Value::Int(count_);
    if (count_ == 0) return Value::Null();
    if (function == "SUM") {
      if (saw_double_) return Value::Dbl(sum_double_);
      if (saw_decimal_) {
        return Value::Dec(
            Decimal::FromCents(sum_cents_ + sum_int_ * Decimal::kScale));
      }
      return Value::Int(sum_int_);
    }
    if (function == "AVG") {
      return Value::Dbl(sum_double_ / static_cast<double>(count_));
    }
    if (function == "MIN") return min_;
    if (function == "MAX") return max_;
    if (function == "STDDEV_SAMP") {
      if (count_ < 2) return Value::Null();
      double n = static_cast<double>(count_);
      double var = (sum_squares_ - sum_double_ * sum_double_ / n) / (n - 1);
      return Value::Dbl(var < 0 ? 0.0 : std::sqrt(var));
    }
    return Value::Null();
  }

  const PlanAggSpec* spec_;
  int64_t count_ = 0;
  int64_t sum_int_ = 0;
  int64_t sum_cents_ = 0;
  double sum_double_ = 0.0;
  double sum_squares_ = 0.0;
  bool saw_decimal_ = false;
  bool saw_double_ = false;
  Value min_;
  Value max_;
  ValueSet distinct_;
};

/// Direct slot passthrough (ORDER BY ordinals, star expansion).
class SlotExpr : public BoundExpr {
 public:
  explicit SlotExpr(int idx) : idx_(idx) {}
  Value Eval(const std::vector<Value>& row) const override {
    return row[static_cast<size_t>(idx_)];
  }

 private:
  int idx_;
};

// -------------------------------------------------------------- executor

class PlanExecutor : public SubqueryEvaluator {
 public:
  /// Top-level executor: owns the intra-query pool when parallelism > 1.
  /// `governor` enforces the options' limits and is shared by every nested
  /// subquery executor so the whole statement obeys one budget.
  PlanExecutor(const DataFacade* facade, const PlannerOptions& options,
               ExecStats* stats, const PhysicalPlan* plan,
               QueryGovernor* governor)
      : facade_(facade),
        options_(options),
        stats_(stats),
        plan_(plan),
        governor_(governor),
        track_(governor->has_limits() || FaultInjector::Global().enabled()) {
    int workers = options.parallelism;
    if (workers == 0) {
      workers = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (workers > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(
          static_cast<size_t>(workers));
      pool_ = owned_pool_.get();
    }
  }

  /// Nested executor for uncorrelated subqueries: shares the parent's
  /// pool, governor, CTE results, and stat counters (subquery scans count,
  /// exactly as the pre-plan-tree executor counted them).
  PlanExecutor(const DataFacade* facade, const PlannerOptions& options,
               ExecStats* stats, const PhysicalPlan* plan,
               QueryGovernor* governor, ThreadPool* pool,
               const std::map<std::string, std::shared_ptr<RowSet>>& ctes)
      : facade_(facade),
        options_(options),
        stats_(stats),
        plan_(plan),
        governor_(governor),
        track_(governor->has_limits() || FaultInjector::Global().enabled()),
        pool_(pool),
        cte_results_(ctes) {}

  Result<std::shared_ptr<RowSet>> Run() {
    for (const auto& [name, node] : plan_->ctes) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs, Exec(node));
      cte_results_[name] = std::move(rs);
    }
    return Exec(plan_->root);
  }

  // SubqueryEvaluator: first visible column of the subquery result.
  Result<std::vector<Value>> EvaluateColumn(const SelectStmt& stmt) override {
    TPCDS_ASSIGN_OR_RETURN(
        PhysicalPlan sub,
        BuildSubqueryPlan(facade_, stmt, options_, plan_->cte_schemas));
    PlanExecutor nested(facade_, options_, stats_, &sub, governor_, pool_,
                        cte_results_);
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs, nested.Run());
    std::vector<Value> out;
    out.reserve(rs->rows.size());
    for (const auto& row : rs->rows) {
      if (!row.empty()) out.push_back(row[0]);
    }
    return out;
  }

 private:
  using RowList = std::vector<std::vector<Value>>;

  // ---- infrastructure -------------------------------------------------

  Result<std::shared_ptr<RowSet>> Exec(
      const std::shared_ptr<PlanNode>& node) {
    if (node->memoize) {
      auto it = memo_.find(node.get());
      if (it != memo_.end()) return it->second;
    }
    if (track_) TPCDS_FAULT_POINT("op-open");
    double saved_child = child_seconds_;
    child_seconds_ = 0;
    double start = NowSeconds();
    Result<std::shared_ptr<RowSet>> result = Dispatch(*node);
    double total = NowSeconds() - start;
    node->stats.executed = true;
    node->stats.seconds = total - child_seconds_;
    child_seconds_ = saved_child + total;
    if (!result.ok()) return result;
    // Morsel workers don't propagate errors themselves — a tripped
    // governor (deadline, budget, cancel, injected morsel fault) leaves
    // partial operator output behind, which must never be returned as a
    // real result.
    if (governor_->cancelled()) return governor_->status();
    if (!node->children.empty()) {
      int64_t in = 0;
      for (const auto& c : node->children) in += c->stats.rows_out;
      node->stats.rows_in = in;
    }
    node->stats.rows_out = static_cast<int64_t>((*result)->rows.size());
    if (node->memoize) memo_[node.get()] = *result;
    return result;
  }

  Result<std::shared_ptr<RowSet>> Dispatch(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kScan: return ExecScan(node);
      case PlanKind::kCteRef: return ExecCteRef(node);
      case PlanKind::kDerived: return ExecDerived(node);
      case PlanKind::kIndexJoin: return ExecIndexJoin(node);
      case PlanKind::kSemiJoinReduce: return ExecSemiJoinReduce(node);
      case PlanKind::kHashJoin: return ExecHashJoin(node);
      case PlanKind::kFilter: return ExecFilter(node);
      case PlanKind::kAggregate: return ExecAggregate(node);
      case PlanKind::kWindow: return ExecWindow(node);
      case PlanKind::kProject: return ExecProject(node);
      case PlanKind::kDistinct: return ExecDistinct(node);
      case PlanKind::kSort: return ExecSort(node);
      case PlanKind::kTopK: return ExecTopK(node);
      case PlanKind::kLimit: return ExecLimit(node);
      case PlanKind::kTruncate: return ExecTruncate(node);
      case PlanKind::kSetOp: return ExecSetOp(node);
    }
    return Status::InvalidArgument("unknown plan node");
  }

  /// Executes a child whose result this operator will mutate in place.
  /// Memoised (shared) results are copied; exclusive ones pass through.
  Result<std::shared_ptr<RowSet>> ExecOwned(
      const std::shared_ptr<PlanNode>& child) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs, Exec(child));
    if (child->memoize) return std::make_shared<RowSet>(*rs);
    return rs;
  }

  static size_t MorselCount(size_t n) {
    return (n + kMorselRows - 1) / kMorselRows;
  }

  /// Runs fn(i) for every i in [0, count). With a pool, work units are
  /// pulled from a shared atomic counter by up to num_threads() pool
  /// workers *and the calling thread* — one submitted task per worker,
  /// not per unit, so scheduling overhead is O(workers). `fn` must be
  /// pure w.r.t. shared state except its own unit's slot; which thread
  /// runs a unit never affects the result. A tripped governor makes every
  /// worker stop pulling units; the enclosing Exec() turns the partial
  /// output into the governor's error.
  template <typename Fn>
  void ParallelFor(size_t count, const Fn& fn) {
    QueryGovernor* gov = governor_;
    if (pool_ == nullptr || count <= 1) {
      for (size_t i = 0; i < count; ++i) {
        if (gov->cancelled()) return;
        fn(i);
      }
      return;
    }
    std::atomic<size_t> next{0};
    auto drain = [&next, &fn, gov, count] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        if (gov->cancelled()) return;
        fn(i);
      }
    };
    size_t helpers = std::min(pool_->num_threads(), count - 1);
    for (size_t t = 0; t < helpers; ++t) pool_->Submit(drain);
    drain();
    pool_->WaitIdle();
  }

  /// Runs fn(begin, end, morsel_index) over [0, n) in fixed-size morsels.
  /// Each morsel passes the governor's boundary check (cancellation token,
  /// deadline, "morsel" fault site) before it runs — the unit of
  /// responsiveness the limits are specified in.
  template <typename Fn>
  void ForEachMorsel(size_t n, const Fn& fn) {
    QueryGovernor* gov = governor_;
    bool checked = track_;
    ParallelFor(MorselCount(n), [&fn, gov, checked, n](size_t m) {
      if (checked && !gov->BeginMorsel()) return;
      size_t b = m * kMorselRows;
      fn(b, std::min(n, b + kMorselRows), m);
    });
  }

  /// Charges one operator's freshly materialised buffer against the row
  /// and memory budgets (and the "alloc" fault site). No-op while the
  /// query is ungoverned and no faults are armed, so the hot path pays a
  /// single branch.
  void ChargeRows(const RowList& buf, size_t from = 0) {
    if (!track_ || buf.size() <= from) return;
    int64_t bytes = 0;
    for (size_t i = from; i < buf.size(); ++i) {
      bytes += ApproxRowBytes(buf[i]);
    }
    if (!governor_->ChargeRows(static_cast<int64_t>(buf.size() - from))) {
      return;
    }
    governor_->Reserve(bytes);
  }

  /// Concatenates per-morsel output buffers in morsel order — this is what
  /// keeps parallel row order identical to the serial row order.
  static void ConcatMorsels(std::vector<RowList>* bufs, RowList* out) {
    size_t total = 0;
    for (const RowList& b : *bufs) total += b.size();
    out->reserve(out->size() + total);
    for (RowList& b : *bufs) {
      for (auto& row : b) out->push_back(std::move(row));
    }
  }

  Result<std::vector<std::unique_ptr<BoundExpr>>> BindAll(
      const std::vector<const Expr*>& exprs, const RowSet& scope) {
    std::vector<std::unique_ptr<BoundExpr>> out;
    out.reserve(exprs.size());
    for (const Expr* e : exprs) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                             BindExpr(*e, scope, this));
      out.push_back(std::move(b));
    }
    return out;
  }

  static bool PassesAll(const std::vector<std::unique_ptr<BoundExpr>>& preds,
                        const std::vector<Value>& row) {
    for (const auto& p : preds) {
      Value v = p->Eval(row);
      if (v.is_null() || !v.IsTruthy()) return false;
    }
    return true;
  }

  void Trace(std::string line) {
    if (stats_ != nullptr) stats_->plan.push_back(std::move(line));
  }

  // ---- leaf operators -------------------------------------------------

  /// A join-key filter a hash/semi join registered on its probe-side scan:
  /// rows whose key column can't be in the build side's key set are dropped
  /// inside the scan morsel. The Bloom filter (owned by the registering
  /// join's stack frame, unregistered before it returns) only has false
  /// positives, and the join's exact key check still runs downstream, so
  /// results stay byte-identical.
  struct ScanPushdown {
    int col = -1;               // storage column on the scanned table
    bool is_string = false;
    const BloomFilter* bloom = nullptr;
    bool has_range = false;     // int-backed: min/max over the build keys
    int64_t lo = 0;
    int64_t hi = 0;
    /// Dictionary-encoded string column + encoded_execution: Bloom
    /// membership evaluated once per dictionary entry, so probe rows test
    /// one mask byte by code instead of hashing their string. Points into
    /// the owning scan's per-query mask storage.
    const std::vector<uint8_t>* dict_mask = nullptr;
  };

  Result<std::shared_ptr<RowSet>> ExecScan(const PlanNode& node) {
    EngineTable* table = facade_->FindTable(node.table_name);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + node.table_name);
    }
    const std::vector<ScanPushdown>* pushdowns = nullptr;
    auto pit = pushdowns_.find(&node);
    if (pit != pushdowns_.end() && !pit->second.empty()) {
      pushdowns = &pit->second;
    }
    if (options_.vectorized_execution &&
        (!node.kernels.empty() || pushdowns != nullptr) &&
        static_cast<uint64_t>(table->num_rows()) <= UINT32_MAX) {
      return ExecScanVectorized(node, table, pushdowns);
    }
    RowSet scope;
    scope.cols = node.schema;
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> filters,
                           BindAll(node.predicates, scope));

    auto rs = std::make_shared<RowSet>();
    rs->cols = node.schema;
    int64_t n = table->num_rows();
    node.stats.rows_in = n;
    if (stats_ != nullptr) stats_->rows_scanned += n;

    // Row-at-a-time path reads every scanned column in full.
    int64_t scan_bytes = 0;
    for (int c : node.scan_cols) {
      scan_bytes += static_cast<int64_t>(
          table->column(static_cast<size_t>(c)).PayloadByteSize());
    }
    node.stats.bytes_touched += scan_bytes;
    if (stats_ != nullptr) stats_->bytes_touched += scan_bytes;

    std::vector<RowList> bufs(MorselCount(static_cast<size_t>(n)));
    ForEachMorsel(static_cast<size_t>(n), [&](size_t b, size_t e, size_t m) {
      RowList& buf = bufs[m];
      std::vector<Value> row;
      for (size_t r = b; r < e; ++r) {
        row.clear();
        row.reserve(node.scan_cols.size());
        for (int c : node.scan_cols) {
          row.push_back(table->GetValue(static_cast<int64_t>(r), c));
        }
        if (PassesAll(filters, row)) buf.push_back(row);
      }
      ChargeRows(buf);
    });
    ConcatMorsels(&bufs, &rs->rows);
    Trace(StringPrintf(
        "scan %s%s%s: %zu cols, %zu pushed filters, %lld -> %zu rows",
        table->name().c_str(), node.alias.empty() ? "" : " as ",
        node.alias.c_str(), node.scan_cols.size(), filters.size(),
        static_cast<long long>(n), rs->rows.size()));
    return rs;
  }

  /// Columnar fast path: each morsel starts from an identity selection
  /// vector, zone maps prune whole morsels first, typed kernels and pushed
  /// join-key filters compact the selection on the raw storage vectors, and
  /// only surviving rows are materialised as Values (through the residual
  /// expr_eval predicates, when any). Governance boundaries are identical
  /// to the fallback path: BeginMorsel per morsel, ChargeRows on the
  /// materialised output.
  Result<std::shared_ptr<RowSet>> ExecScanVectorized(
      const PlanNode& node, EngineTable* table,
      const std::vector<ScanPushdown>* pushdowns) {
    RowSet scope;
    scope.cols = node.schema;
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> residual,
                           BindAll(node.residual_predicates, scope));

    auto rs = std::make_shared<RowSet>();
    rs->cols = node.schema;
    int64_t n = table->num_rows();
    node.stats.rows_in = n;
    node.stats.vectorized = true;
    if (stats_ != nullptr) stats_->rows_scanned += n;

    // Zone-map checks, one per prunable kernel and pushed key range. Built
    // (or fetched) before the parallel morsels: the getter mutates the
    // table's lazy cache under its own mutex.
    bool always_false = false;
    struct KernelZone {
      const ZoneMap* zm;
      const ScanKernel* k;
    };
    std::vector<KernelZone> kernel_zones;
    for (const ScanKernel& k : node.kernels) {
      if (k.kind == ScanKernel::Kind::kAlwaysFalse) {
        always_false = true;
        continue;
      }
      if (k.kind != ScanKernel::Kind::kIntRange &&
          k.kind != ScanKernel::Kind::kIntIn &&
          k.kind != ScanKernel::Kind::kNullTest) {
        continue;
      }
      const ZoneMap* zm = table->GetOrBuildZoneMap(k.col);
      if (zm != nullptr) kernel_zones.push_back({zm, &k});
    }
    struct RangeZone {
      const ZoneMap* zm;
      int64_t lo;
      int64_t hi;
    };
    std::vector<RangeZone> range_zones;
    if (pushdowns != nullptr) {
      for (const ScanPushdown& pd : *pushdowns) {
        if (!pd.has_range) continue;
        const ZoneMap* zm = table->GetOrBuildZoneMap(pd.col);
        if (zm != nullptr) range_zones.push_back({zm, pd.lo, pd.hi});
      }
    }

    // Encoded fast paths, computed once per scan: kernels translated onto
    // each column's encoded domain, and string pushdown Blooms evaluated
    // per dictionary entry instead of per row.
    std::vector<PreparedScanKernel> prepared;
    std::vector<ScanPushdown> local_pds;
    std::vector<std::vector<uint8_t>> pd_masks;
    if (options_.encoded_execution) {
      prepared.reserve(node.kernels.size());
      for (const ScanKernel& k : node.kernels) {
        prepared.push_back(
            PrepareScanKernel(k, table->column(static_cast<size_t>(k.col))));
      }
      if (pushdowns != nullptr) {
        local_pds = *pushdowns;
        pd_masks.resize(local_pds.size());
        for (size_t i = 0; i < local_pds.size(); ++i) {
          ScanPushdown& pd = local_pds[i];
          const StorageColumn& c =
              table->column(static_cast<size_t>(pd.col));
          if (!pd.is_string || pd.bloom == nullptr ||
              c.encoding() != ColEncoding::kDict) {
            continue;
          }
          pd_masks[i].resize(c.DictNdv());
          for (uint32_t code = 0; code < c.DictNdv(); ++code) {
            pd_masks[i][code] =
                pd.bloom->MayContain(std::hash<std::string_view>()(
                    c.DictEntry(code)))
                    ? 1
                    : 0;
          }
          pd.dict_mask = &pd_masks[i];
        }
        pushdowns = &local_pds;
      }
    }

    // Morsel-granular payload accounting: the storage columns this scan
    // reads (output + kernel + pushdown), charged per non-pruned morsel in
    // proportion to its rows. Integer math on fixed morsel boundaries, so
    // the total is identical at any parallelism.
    std::vector<int> touched_cols = node.scan_cols;
    for (const ScanKernel& k : node.kernels) touched_cols.push_back(k.col);
    if (pushdowns != nullptr) {
      for (const ScanPushdown& pd : *pushdowns) touched_cols.push_back(pd.col);
    }
    std::sort(touched_cols.begin(), touched_cols.end());
    touched_cols.erase(
        std::unique(touched_cols.begin(), touched_cols.end()),
        touched_cols.end());
    int64_t touched_payload = 0;
    for (int c : touched_cols) {
      touched_payload += static_cast<int64_t>(
          table->column(static_cast<size_t>(c)).PayloadByteSize());
    }

    std::atomic<int64_t> pruned{0};
    std::atomic<int64_t> rejects{0};
    std::atomic<int64_t> bytes{0};
    std::vector<RowList> bufs(MorselCount(static_cast<size_t>(n)));
    ForEachMorsel(static_cast<size_t>(n), [&](size_t b, size_t e, size_t m) {
      if (always_false) {
        pruned.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (const KernelZone& kz : kernel_zones) {
        if (m < kz.zm->blocks.size() &&
            KernelPrunesBlock(*kz.k, kz.zm->blocks[m])) {
          pruned.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      for (const RangeZone& rz : range_zones) {
        if (m < rz.zm->blocks.size() &&
            RangePrunesBlock(rz.zm->blocks[m], rz.lo, rz.hi)) {
          pruned.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      bytes.fetch_add(touched_payload * static_cast<int64_t>(e - b) / n,
                      std::memory_order_relaxed);
      SelectionVector sel;
      sel.reserve(e - b);
      for (size_t r = b; r < e; ++r) sel.push_back(static_cast<uint32_t>(r));
      for (size_t ki = 0; ki < node.kernels.size(); ++ki) {
        if (sel.empty()) break;
        const ScanKernel& k = node.kernels[ki];
        const StorageColumn& col = table->column(static_cast<size_t>(k.col));
        if (!prepared.empty()) {
          ApplyPreparedScanKernel(prepared[ki], col, &sel);
        } else {
          ApplyScanKernel(k, col, &sel);
        }
      }
      if (pushdowns != nullptr && !sel.empty()) {
        int64_t removed = ApplyPushdowns(*table, *pushdowns, &sel);
        rejects.fetch_add(removed, std::memory_order_relaxed);
      }
      RowList& buf = bufs[m];
      if (residual.empty()) {
        GatherRows(*table, node.scan_cols, sel, &buf);
      } else {
        buf.reserve(sel.size());
        std::vector<Value> row;
        for (uint32_t r : sel) {
          row.clear();
          row.reserve(node.scan_cols.size());
          for (int c : node.scan_cols) {
            row.push_back(table->GetValue(static_cast<int64_t>(r), c));
          }
          if (PassesAll(residual, row)) buf.push_back(row);
        }
      }
      ChargeRows(buf);
    });
    ConcatMorsels(&bufs, &rs->rows);
    node.stats.morsels_pruned += pruned.load();
    node.stats.bloom_rejects += rejects.load();
    node.stats.bytes_touched += bytes.load();
    if (stats_ != nullptr) {
      stats_->morsels_pruned += pruned.load();
      stats_->bloom_rejects += rejects.load();
      stats_->bytes_touched += bytes.load();
    }
    Trace(StringPrintf(
        "scan %s%s%s: %zu cols, %zu pushed filters (vectorized: %zu "
        "kernels, %zu residual, %lld morsels pruned, %lld bloom rejects), "
        "%lld -> %zu rows",
        table->name().c_str(), node.alias.empty() ? "" : " as ",
        node.alias.c_str(), node.scan_cols.size(), node.predicates.size(),
        node.kernels.size(), node.residual_predicates.size(),
        static_cast<long long>(pruned.load()),
        static_cast<long long>(rejects.load()), static_cast<long long>(n),
        rs->rows.size()));
    return rs;
  }

  /// Applies every registered join-key pushdown to the selection vector.
  /// NULL key rows are dropped too — a NULL key can never match an inner
  /// or semi join, which is the only context that registers a pushdown.
  /// Returns the number of rows rejected by a range or Bloom check.
  static int64_t ApplyPushdowns(const EngineTable& table,
                                const std::vector<ScanPushdown>& pds,
                                SelectionVector* sel) {
    int64_t removed = 0;
    for (const ScanPushdown& pd : pds) {
      const StorageColumn& c = table.column(static_cast<size_t>(pd.col));
      SelectionVector& s = *sel;
      size_t w = 0;
      if (pd.is_string && pd.dict_mask != nullptr) {
        const uint32_t* codes = c.DictCodes();
        const std::vector<uint8_t>& mask = *pd.dict_mask;
        for (uint32_t r : s) {
          if (c.IsNull(r)) continue;
          if (!mask[codes[r]]) {
            ++removed;
            continue;
          }
          s[w++] = r;
        }
      } else if (pd.is_string) {
        for (uint32_t r : s) {
          if (c.IsNull(r)) continue;
          if (pd.bloom != nullptr &&
              !pd.bloom->MayContain(
                  std::hash<std::string_view>()(c.Str(r)))) {
            ++removed;
            continue;
          }
          s[w++] = r;
        }
      } else {
        for (uint32_t r : s) {
          if (c.IsNull(r)) continue;
          int64_t v = c.Num(r);
          if (pd.has_range && (v < pd.lo || v > pd.hi)) {
            ++removed;
            continue;
          }
          if (pd.bloom != nullptr &&
              !pd.bloom->MayContain(HashStorageValue(c.type(), v))) {
            ++removed;
            continue;
          }
          s[w++] = r;
        }
      }
      s.resize(w);
      if (s.empty()) break;
    }
    return removed;
  }

  /// Walks through chained semi-join reductions (which preserve the fact
  /// scan's schema) down to the underlying scan a join-key filter can be
  /// pushed into. Memoized nodes anywhere on the chain are shared by
  /// several consumers and must never see a consumer-specific filter.
  static const PlanNode* PushdownTargetScan(const PlanNode* n) {
    while (n != nullptr && n->kind == PlanKind::kSemiJoinReduce &&
           !n->memoize) {
      n = n->children[0].get();
    }
    if (n == nullptr || n->kind != PlanKind::kScan || n->memoize) {
      return nullptr;
    }
    return n;
  }

  /// Resolves a bare column-ref key against a scan's output schema to its
  /// storage column index, or -1.
  static int ResolveScanStorageCol(const PlanNode& scan, const Expr& key) {
    if (key.tag != Expr::Tag::kColumnRef) return -1;
    RowSet scope;
    scope.cols = scan.schema;
    Result<int> slot = scope.Resolve(key.qualifier, key.name);
    if (!slot.ok()) return -1;
    size_t s = static_cast<size_t>(*slot);
    if (s >= scan.scan_cols.size()) return -1;
    return scan.scan_cols[s];
  }

  /// Walks schema-preserving operators on a join's build side down to the
  /// base scan `key` traces to and returns that storage column, or nullptr.
  /// Lets pushdown gating see the column's encoding (a dictionary's size is
  /// an exact NDV) before any keys are collected.
  const StorageColumn* BuildKeyColumn(const PlanNode* n,
                                      const Expr& key) const {
    while (n != nullptr && (n->kind == PlanKind::kSemiJoinReduce ||
                            n->kind == PlanKind::kFilter)) {
      n = n->children[0].get();
    }
    if (n == nullptr || n->kind != PlanKind::kScan) return nullptr;
    int col = ResolveScanStorageCol(*n, key);
    if (col < 0) return nullptr;
    EngineTable* table = facade_->FindTable(n->table_name);
    if (table == nullptr) return nullptr;
    return &table->column(static_cast<size_t>(col));
  }

  /// Gate for pushing `keys` distinct build/dim key values into a probe
  /// scan of `pd_table` column `pd_col`. Cost-based planning estimates the
  /// surviving probe fraction by NDV containment (pushed keys over the
  /// probe column's distinct values), tightened by the histogram mass of
  /// the pushed key range when a built pushdown is supplied — a dimension
  /// key set often spans a narrow slice of a sparse probe column, where
  /// containment alone under-sells the reduction (e.g. daily date keys
  /// against weekly inventory snapshots). The push happens whenever at
  /// least a quarter of the probe rows should be rejected; without
  /// cost-based planning the structural keys*8 <= rows rule of thumb
  /// applies. Either decision only affects speed: the exact join checks
  /// run regardless.
  bool ShouldPushKeys(int64_t keys, EngineTable* pd_table, int pd_col,
                      const ScanPushdown* pd) const {
    if (options_.cost_based) {
      std::shared_ptr<const TableStats> stats = pd_table->GetOrComputeStats();
      if (pd_col >= 0 &&
          static_cast<size_t>(pd_col) < stats->columns.size()) {
        const ColumnStats& cs = stats->columns[static_cast<size_t>(pd_col)];
        if (cs.ndv > 0) {
          double survival =
              static_cast<double>(keys) / static_cast<double>(cs.ndv);
          if (pd != nullptr && pd->has_range && !cs.histogram.empty()) {
            survival = std::min(
                survival, cs.histogram.SelectivityRange(pd->lo, pd->hi));
          }
          return survival <= 0.75;
        }
      }
    }
    return keys * 8 <= pd_table->num_rows();
  }

  /// Fills `pd` from the distinct build/dim key values: Bloom hashes plus
  /// a min/max range for int-backed columns. Returns false (pushdown
  /// abandoned) when any key's coercion onto the column's raw storage
  /// can't be reproduced exactly.
  static bool BuildKeyPushdown(const ValueSet& keys, const StorageColumn& col,
                               BloomFilter* bloom, ScanPushdown* pd) {
    pd->is_string = col.is_string();
    pd->bloom = bloom;
    if (pd->is_string) {
      for (const Value& k : keys) {
        if (k.kind() != Value::Kind::kString) return false;
        bloom->Add(std::hash<std::string>()(k.AsString()));
      }
      return true;
    }
    pd->has_range = true;
    pd->lo = INT64_MAX;  // empty until a key maps: rejects every row
    pd->hi = INT64_MIN;
    for (const Value& k : keys) {
      int64_t raw = 0;
      switch (StorageValueForEquality(col.type(), k, &raw)) {
        case StorageEq::kExact:
          bloom->Add(HashStorageValue(col.type(), raw));
          pd->lo = std::min(pd->lo, raw);
          pd->hi = std::max(pd->hi, raw);
          break;
        case StorageEq::kNoMatch:
          break;  // this key matches no stored value; nothing to admit
        case StorageEq::kUnsupported:
          return false;
      }
    }
    return true;
  }

  Result<std::shared_ptr<RowSet>> ExecCteRef(const PlanNode& node) {
    auto it = cte_results_.find(node.cte_name);
    if (it == cte_results_.end()) {
      return Status::InvalidArgument("unknown CTE: " + node.cte_name);
    }
    // Copy: the same CTE may be consumed (and re-qualified) several times.
    auto rs = std::make_shared<RowSet>(*it->second);
    rs->cols = node.schema;
    rs->num_visible = node.num_visible;
    node.stats.rows_in = static_cast<int64_t>(rs->rows.size());
    return rs;
  }

  Result<std::shared_ptr<RowSet>> ExecDerived(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    rs->cols = node.schema;  // re-qualified under the FROM alias
    rs->num_visible = node.num_visible;
    return rs;
  }

  // ---- joins ----------------------------------------------------------

  /// Evaluates `key_expr` over every row of `rs` (morsel-parallel) and
  /// returns the distinct non-NULL key values.
  Result<ValueSet> CollectKeys(const Expr& key_expr, const RowSet& rs) {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> key,
                           BindExpr(key_expr, rs, this));
    size_t n = rs.rows.size();
    std::vector<Value> vals(n);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t) {
      for (size_t r = b; r < e; ++r) vals[r] = key->Eval(rs.rows[r]);
    });
    ValueSet keys;
    keys.reserve(n);
    for (Value& v : vals) {
      if (!v.is_null()) keys.insert(std::move(v));
    }
    return keys;
  }

  Result<std::shared_ptr<RowSet>> ExecSemiJoinReduce(const PlanNode& node) {
    // Vectorized path: when the fact side bottoms out in a private scan
    // and the reduction key is a bare column, run the dimension first and
    // push its key set (min/max range + Bloom filter) into that scan, so
    // most non-qualifying fact rows are never materialised. The exact
    // key-set check below still runs over whatever the scan produced, so
    // results are byte-identical to the unpushed order.
    const PlanNode* target = nullptr;
    int pd_col = -1;
    EngineTable* pd_table = nullptr;
    if (options_.vectorized_execution &&
        node.fact_key->tag == Expr::Tag::kColumnRef) {
      target = PushdownTargetScan(node.children[0].get());
      if (target != nullptr) {
        pd_col = ResolveScanStorageCol(*target, *node.fact_key);
        pd_table =
            pd_col >= 0 ? facade_->FindTable(target->table_name) : nullptr;
        if (pd_table == nullptr) target = nullptr;
      }
    }

    std::shared_ptr<RowSet> fact, dim;
    ValueSet keys;
    if (target != nullptr) {
      TPCDS_ASSIGN_OR_RETURN(dim, Exec(node.children[1]));
      TPCDS_ASSIGN_OR_RETURN(keys, CollectKeys(*node.dim_key, *dim));
      BloomFilter bloom(keys.size());
      ScanPushdown pd;
      pd.col = pd_col;
      // Only push a selective key set; a reduction whose key set rivals
      // the fact table in size rejects almost nothing at the scan.
      // Cost-based gating wants the pushed key range, so it builds the
      // pushdown first (O(keys), and the keys are already collected) and
      // gates on the refined estimate; the structural rule gates up front.
      bool registered;
      if (options_.cost_based) {
        registered =
            BuildKeyPushdown(
                keys, pd_table->column(static_cast<size_t>(pd_col)), &bloom,
                &pd) &&
            ShouldPushKeys(static_cast<int64_t>(keys.size()), pd_table,
                           pd_col, &pd);
      } else {
        registered =
            ShouldPushKeys(static_cast<int64_t>(keys.size()), pd_table,
                           pd_col, nullptr) &&
            BuildKeyPushdown(
                keys, pd_table->column(static_cast<size_t>(pd_col)), &bloom,
                &pd);
      }
      if (registered) {
        pushdowns_[target].push_back(pd);
        node.stats.vectorized = true;
      }
      Result<std::shared_ptr<RowSet>> fr = ExecOwned(node.children[0]);
      if (registered) {  // unregister before any error propagates
        auto it = pushdowns_.find(target);
        it->second.pop_back();
        if (it->second.empty()) pushdowns_.erase(it);
      }
      TPCDS_ASSIGN_OR_RETURN(fact, std::move(fr));
    } else {
      TPCDS_ASSIGN_OR_RETURN(fact, ExecOwned(node.children[0]));
      TPCDS_ASSIGN_OR_RETURN(dim, Exec(node.children[1]));
      TPCDS_ASSIGN_OR_RETURN(keys, CollectKeys(*node.dim_key, *dim));
    }
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> fact_key,
                           BindExpr(*node.fact_key, *fact, this));

    size_t before = fact->rows.size();
    std::vector<RowList> bufs(MorselCount(before));
    ForEachMorsel(before, [&](size_t b, size_t e, size_t m) {
      RowList& buf = bufs[m];
      for (size_t r = b; r < e; ++r) {
        Value v = fact_key->Eval(fact->rows[r]);
        if (!v.is_null() && keys.find(v) != keys.end()) {
          buf.push_back(std::move(fact->rows[r]));
        }
      }
    });
    fact->rows.clear();
    ConcatMorsels(&bufs, &fact->rows);
    if (stats_ != nullptr) {
      stats_->star_filtered_rows +=
          static_cast<int64_t>(before - fact->rows.size());
    }
    Trace(StringPrintf(
        "star semi-join on %s (%zu dim keys): %zu -> %zu fact rows",
        ExprToString(*node.fact_key).c_str(), keys.size(), before,
        fact->rows.size()));
    return fact;
  }

  Result<std::shared_ptr<RowSet>> ExecHashJoin(const PlanNode& node) {
    const bool vec = options_.vectorized_execution;
    // Vectorized path: an inner equi-join whose probe side bottoms out in
    // a private scan, with at least one bare probe-side key column, runs
    // the build side first and pushes the build keys (min/max range +
    // Bloom filter) into that scan. The exact hash-table probe below still
    // runs, so results are byte-identical to the unpushed order.
    const PlanNode* target = nullptr;
    int pd_col = -1;
    size_t pd_key = 0;
    EngineTable* pd_table = nullptr;
    if (vec && !node.left_outer && !node.equi.empty()) {
      const PlanNode* t = PushdownTargetScan(node.children[0].get());
      if (t != nullptr) {
        for (size_t i = 0; i < node.equi.size(); ++i) {
          int c = ResolveScanStorageCol(*t, *node.equi[i].left);
          if (c < 0) continue;
          pd_col = c;
          pd_key = i;
          pd_table = facade_->FindTable(t->table_name);
          if (pd_table != nullptr) target = t;
          break;
        }
      }
    }

    std::shared_ptr<RowSet> left, right;
    if (target == nullptr) {
      TPCDS_ASSIGN_OR_RETURN(left, Exec(node.children[0]));
    }
    TPCDS_ASSIGN_OR_RETURN(right, Exec(node.children[1]));

    std::vector<std::unique_ptr<BoundExpr>> rkeys;
    rkeys.reserve(node.equi.size());
    for (const PlanEquiKey& pair : node.equi) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> r,
                             BindExpr(*pair.right, *right, this));
      rkeys.push_back(std::move(r));
    }

    // Build-side keys, computed before the probe side runs so a key
    // pushdown can be registered on the probe scan first. Shared by the
    // pushdown, the join-level Bloom filter, and the hash-table build.
    size_t nr = right->rows.size();
    struct BuildKey {
      std::vector<Value> key;
      size_t hash = 0;
      bool has_null = false;
    };
    std::vector<BuildKey> bkeys;
    if (!node.equi.empty()) {
      bkeys.resize(nr);
      ForEachMorsel(nr, [&](size_t b, size_t e, size_t) {
        int64_t key_bytes = 0;
        for (size_t r = b; r < e; ++r) {
          BuildKey& bk = bkeys[r];
          bk.key.reserve(rkeys.size());
          for (const auto& k : rkeys) {
            Value v = k->Eval(right->rows[r]);
            bk.has_null |= v.is_null();
            bk.key.push_back(std::move(v));
          }
          if (!bk.has_null) bk.hash = VecValueHash()(bk.key);
          if (track_) key_bytes += ApproxRowBytes(bk.key);
        }
        // Hash-build memory: the materialised build keys are what a large
        // build side costs, so a budget violation fires mid-build.
        if (track_) governor_->Reserve(key_bytes);
      });
    }

    if (target != nullptr) {
      bool registered = false;
      ScanPushdown pd;
      pd.col = pd_col;
      BloomFilter pushed_bloom(0);
      // Only push when the build side is selective: a build key set in the
      // same order of magnitude as the target table rejects little, and
      // collecting + hashing its keys is pure overhead on the probe scan
      // (e.g. a reversed star shape where the fact table is the build
      // side of a dimension join).
      // The build side's distinct-key count is what matters, not its row
      // count: when the build key column is dictionary-encoded, its
      // dictionary size caps the key set exactly, so a large build side
      // over a low-cardinality key still pushes.
      int64_t build_keys_hint = static_cast<int64_t>(nr);
      const StorageColumn* build_col =
          BuildKeyColumn(node.children[1].get(), *node.equi[pd_key].right);
      if (build_col != nullptr &&
          build_col->encoding() == ColEncoding::kDict) {
        build_keys_hint = std::min(
            build_keys_hint, static_cast<int64_t>(build_col->DictNdv()));
      }
      // The hint gate runs before the O(build rows) key collection; in
      // cost-based mode a hint that fails plain NDV containment but passes
      // the structural rule still collects, because the refined gate below
      // can justify the push from the keys' actual range. The collection
      // itself must also pay: when the probe scan's own filters are
      // estimated to leave far fewer rows than the build side holds,
      // there is nothing left worth rejecting and the key sweep is pure
      // overhead (e.g. a reversed star where the fact table is the build
      // side of a heavily filtered dimension scan).
      bool collection_pays = true;
      if (options_.cost_based && target->stats.est_rows >= 0.0) {
        collection_pays = static_cast<double>(nr) <=
                          8.0 * std::max(1.0, target->stats.est_rows);
      }
      if (collection_pays &&
          (ShouldPushKeys(build_keys_hint, pd_table, pd_col, nullptr) ||
           (options_.cost_based &&
            build_keys_hint * 8 <= pd_table->num_rows()))) {
        ValueSet comp;
        comp.reserve(nr);
        for (const BuildKey& bk : bkeys) {
          // A tripped governor leaves partially built keys behind (the
          // query errors out after the operator); skip those, don't index
          // them.
          if (!bk.has_null && bk.key.size() > pd_key) {
            comp.insert(bk.key[pd_key]);
          }
        }
        pushed_bloom = BloomFilter(comp.size());
        registered = BuildKeyPushdown(
            comp, pd_table->column(static_cast<size_t>(pd_col)), &pushed_bloom,
            &pd);
        if (registered && options_.cost_based) {
          registered = ShouldPushKeys(static_cast<int64_t>(comp.size()),
                                      pd_table, pd_col, &pd);
        }
      }
      if (registered) pushdowns_[target].push_back(pd);
      Result<std::shared_ptr<RowSet>> lr = Exec(node.children[0]);
      if (registered) {  // unregister before any error propagates
        auto it = pushdowns_.find(target);
        it->second.pop_back();
        if (it->second.empty()) pushdowns_.erase(it);
      }
      TPCDS_ASSIGN_OR_RETURN(left, std::move(lr));
    }

    auto out = std::make_shared<RowSet>();
    out->cols = node.schema;

    std::vector<std::unique_ptr<BoundExpr>> lkeys;
    lkeys.reserve(node.equi.size());
    for (const PlanEquiKey& pair : node.equi) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> l,
                             BindExpr(*pair.left, *left, this));
      lkeys.push_back(std::move(l));
    }
    RowSet combined_scope;
    combined_scope.cols = node.schema;
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> residual,
                           BindAll(node.residual, combined_scope));

    // Emits lrow ++ rrow into `buf` if the residual predicates pass.
    auto emit = [&](const std::vector<Value>& lrow,
                    const std::vector<Value>& rrow, RowList* buf) {
      std::vector<Value> combined;
      combined.reserve(out->cols.size());
      combined.insert(combined.end(), lrow.begin(), lrow.end());
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      for (const auto& rb : residual) {
        Value v = rb->Eval(combined);
        if (v.is_null() || !v.IsTruthy()) return false;
      }
      buf->push_back(std::move(combined));
      return true;
    };

    size_t nl = left->rows.size();
    std::vector<RowList> bufs(MorselCount(nl));
    std::atomic<int64_t> rejects{0};
    if (node.equi.empty()) {
      // Nested-loop (cross product with residual filter). This is the
      // runaway shape a bad substitution produces, so the governor is
      // consulted per *left row*, not just per morsel: one morsel of left
      // rows can emit left*right rows before the next boundary check.
      ForEachMorsel(nl, [&](size_t b, size_t e, size_t m) {
        RowList& buf = bufs[m];
        for (size_t lr = b; lr < e; ++lr) {
          if (track_ && !governor_->Tick()) return;
          size_t emitted_before = buf.size();
          const auto& lrow = left->rows[lr];
          bool matched = false;
          for (const auto& rrow : right->rows) {
            matched |= emit(lrow, rrow, &buf);
          }
          if (node.left_outer && !matched) {
            std::vector<Value> combined = lrow;
            combined.resize(out->cols.size());
            buf.push_back(std::move(combined));
          }
          ChargeRows(buf, emitted_before);
        }
      });
    } else {
      // Partitioned build: build-side keys were hashed in parallel above;
      // assign rows to a fixed number of partitions serially (cheap), then
      // build the per-partition tables in parallel. Row indices enter each
      // match list in ascending order, so probe output is deterministic.
      // On the vectorized path a join-level Bloom filter over the build
      // hashes rejects unmatchable probe keys before the table lookup.
      // Only worthwhile when the build side is smaller than the probe
      // side: each build row costs one insert, so with fewer probe rows
      // than build rows the filter can never pay for itself.
      std::optional<BloomFilter> bloom;
      if (vec && nr < nl) bloom.emplace(nr);
      std::vector<std::vector<size_t>> part_rows(kJoinPartitions);
      for (size_t r = 0; r < nr; ++r) {
        if (!bkeys[r].has_null) {  // NULL keys never match
          part_rows[bkeys[r].hash % kJoinPartitions].push_back(r);
          if (bloom) bloom->Add(bkeys[r].hash);
        }
      }
      using JoinTable =
          std::unordered_map<std::vector<Value>, std::vector<size_t>,
                             VecValueHash, VecValueEq>;
      std::vector<JoinTable> tables(kJoinPartitions);
      ParallelFor(kJoinPartitions, [&](size_t p) {
        JoinTable& t = tables[p];
        t.reserve(part_rows[p].size());
        for (size_t r : part_rows[p]) {
          t[std::move(bkeys[r].key)].push_back(r);
        }
      });
      node.stats.vectorized = vec;

      ForEachMorsel(nl, [&](size_t b, size_t e, size_t m) {
        RowList& buf = bufs[m];
        buf.reserve(e - b);
        std::vector<Value> key;
        int64_t morsel_rejects = 0;
        for (size_t lr = b; lr < e; ++lr) {
          const auto& lrow = left->rows[lr];
          key.clear();
          key.reserve(lkeys.size());
          bool has_null = false;
          for (const auto& k : lkeys) {
            Value v = k->Eval(lrow);
            has_null |= v.is_null();
            key.push_back(std::move(v));
          }
          bool matched = false;
          if (!has_null) {
            size_t h = VecValueHash()(key);
            if (bloom && !bloom->MayContain(h)) {
              ++morsel_rejects;  // definitely absent from the build side
            } else {
              const JoinTable& t = tables[h % kJoinPartitions];
              auto it = t.find(key);
              if (it != t.end()) {
                for (size_t r : it->second) {
                  matched |= emit(lrow, right->rows[r], &buf);
                }
              }
            }
          }
          if (node.left_outer && !matched) {
            std::vector<Value> combined = lrow;
            combined.resize(out->cols.size());
            buf.push_back(std::move(combined));
          }
        }
        if (morsel_rejects > 0) {
          rejects.fetch_add(morsel_rejects, std::memory_order_relaxed);
        }
        ChargeRows(buf);
      });
    }
    ConcatMorsels(&bufs, &out->rows);
    node.stats.bloom_rejects += rejects.load();
    if (stats_ != nullptr) {
      stats_->rows_joined += static_cast<int64_t>(out->rows.size());
      stats_->bloom_rejects += rejects.load();
    }
    Trace(StringPrintf(
        "%s%s: %zu equi keys, %zu residual, %zu x %zu -> %zu rows"
        "%s",
        node.equi.empty() ? "nested-loop join" : "hash join",
        node.left_outer ? " (left outer)" : "", node.equi.size(),
        node.residual.size(), left->rows.size(), right->rows.size(),
        out->rows.size(),
        rejects.load() > 0
            ? StringPrintf(" (%lld bloom rejects)",
                           static_cast<long long>(rejects.load()))
                  .c_str()
            : ""));
    return out;
  }

  Result<std::shared_ptr<RowSet>> ExecIndexJoin(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> left,
                           Exec(node.children[0]));
    EngineTable* table = facade_->FindTable(node.table_name);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + node.table_name);
    }
    auto out = std::make_shared<RowSet>();
    out->cols = node.schema;

    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> probe,
                           BindExpr(*node.probe_key, *left, this));
    // Built (or fetched) before the parallel probes: the getter mutates
    // the table's lazy index cache under its own mutex.
    const EngineTable::HashIndex& index =
        table->GetOrBuildIntIndex(node.index_col);

    size_t nl = left->rows.size();
    std::vector<RowList> bufs(MorselCount(nl));
    ForEachMorsel(nl, [&](size_t b, size_t e, size_t m) {
      RowList& buf = bufs[m];
      for (size_t lr = b; lr < e; ++lr) {
        const auto& lrow = left->rows[lr];
        Value v = probe->Eval(lrow);
        if (v.is_null()) continue;
        auto it = index.find(v.AsInt());
        if (it == index.end()) continue;
        for (int64_t r : it->second) {
          std::vector<Value> combined;
          combined.reserve(out->cols.size());
          combined.insert(combined.end(), lrow.begin(), lrow.end());
          for (int c : node.scan_cols) {
            combined.push_back(table->GetValue(r, c));
          }
          buf.push_back(std::move(combined));
        }
      }
      ChargeRows(buf);
    });
    ConcatMorsels(&bufs, &out->rows);
    if (stats_ != nullptr) {
      stats_->rows_joined += static_cast<int64_t>(out->rows.size());
    }
    Trace(StringPrintf(
        "index join %s on %s: %zu probes -> %zu rows (no scan)",
        table->name().c_str(),
        table->column_meta(static_cast<size_t>(node.index_col)).name.c_str(),
        left->rows.size(), out->rows.size()));
    return out;
  }

  // ---- row-wise operators ---------------------------------------------

  Result<std::shared_ptr<RowSet>> ExecFilter(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> preds,
                           BindAll(node.predicates, *rs));
    size_t n = rs->rows.size();
    std::vector<RowList> bufs(MorselCount(n));
    ForEachMorsel(n, [&](size_t b, size_t e, size_t m) {
      RowList& buf = bufs[m];
      buf.reserve(e - b);
      for (size_t r = b; r < e; ++r) {
        if (PassesAll(preds, rs->rows[r])) {
          buf.push_back(std::move(rs->rows[r]));
        }
      }
    });
    rs->rows.clear();
    ConcatMorsels(&bufs, &rs->rows);
    return rs;
  }

  Result<std::shared_ptr<RowSet>> ExecProject(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> input,
                           Exec(node.children[0]));
    std::vector<std::unique_ptr<BoundExpr>> projections;
    projections.reserve(node.projections.size());
    for (const PlanProjection& p : node.projections) {
      if (p.expr == nullptr) {
        projections.push_back(std::make_unique<SlotExpr>(p.slot));
      } else {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*p.expr, *input, this));
        projections.push_back(std::move(b));
      }
    }
    auto out = std::make_shared<RowSet>();
    out->cols = node.schema;
    out->num_visible = node.num_visible;
    size_t n = input->rows.size();
    out->rows.resize(n);  // 1:1 mapping: write morsel outputs in place
    ForEachMorsel(n, [&](size_t b, size_t e, size_t) {
      int64_t bytes = 0;
      for (size_t r = b; r < e; ++r) {
        const auto& row = input->rows[r];
        std::vector<Value> projected;
        projected.reserve(out->cols.size());
        for (const auto& p : projections) projected.push_back(p->Eval(row));
        for (const Value& v : row) projected.push_back(v);
        if (track_) bytes += ApproxRowBytes(projected);
        out->rows[r] = std::move(projected);
      }
      if (track_ && governor_->ChargeRows(static_cast<int64_t>(e - b))) {
        governor_->Reserve(bytes);
      }
    });
    return out;
  }

  Result<std::shared_ptr<RowSet>> ExecDistinct(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    DistinctRows(rs.get());
    return rs;
  }

  /// Binds a sort-key list against `scope` (ordinals become slot
  /// passthroughs), returning the bound expressions and descending flags.
  Result<std::vector<std::unique_ptr<BoundExpr>>> BindSortKeys(
      const std::vector<PlanSortKey>& sort_keys, const RowSet& scope,
      std::vector<bool>* desc) {
    std::vector<std::unique_ptr<BoundExpr>> bound;
    bound.reserve(sort_keys.size());
    for (const PlanSortKey& key : sort_keys) {
      desc->push_back(key.desc);
      if (key.expr == nullptr) {
        bound.push_back(std::make_unique<SlotExpr>(key.ordinal));
      } else {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*key.expr, scope, this));
        bound.push_back(std::move(b));
      }
    }
    return bound;
  }

  /// Compares two key vectors under the per-key descending flags.
  /// Returns 0 on a full tie; callers break ties on the original row
  /// index, which turns the sort order into a total order — exactly
  /// std::stable_sort semantics, and the reason the parallel run/merge
  /// structure cannot influence the result.
  static int CompareKeys(const std::vector<Value>& a,
                         const std::vector<Value>& b,
                         const std::vector<bool>& desc) {
    for (size_t k = 0; k < desc.size(); ++k) {
      int c = Value::Compare(a[k], b[k]);
      if (c != 0) return desc[k] ? -c : c;
    }
    return 0;
  }

  Result<std::shared_ptr<RowSet>> ExecSort(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    std::vector<bool> desc;
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> bound,
                           BindSortKeys(node.sort_keys, *rs, &desc));
    size_t n = rs->rows.size();
    std::vector<std::vector<Value>> keys(n);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t) {
      int64_t bytes = 0;
      for (size_t r = b; r < e; ++r) {
        keys[r].reserve(bound.size());
        for (const auto& k : bound) keys[r].push_back(k->Eval(rs->rows[r]));
        if (track_) bytes += ApproxRowBytes(keys[r]);
      }
      // Sort keys are a second materialisation of the input; count them
      // against the memory budget (rows were charged upstream).
      if (track_) governor_->Reserve(bytes);
    });
    // Total order: sort keys, then original row index. Equal-key rows
    // keep their input order, so this reproduces std::stable_sort
    // byte-for-byte while letting runs sort and merge in parallel.
    auto before = [&](uint32_t a, uint32_t b) {
      int c = CompareKeys(keys[a], keys[b], desc);
      return c != 0 ? c < 0 : a < b;
    };
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

    // Morsel-parallel run sort: fixed-size runs (input-only structure)
    // sorted locally, then merged pairwise in log2(runs) parallel passes.
    // The total order makes the merged result independent of the run
    // boundaries anyway; fixed runs keep the intermediate states — and
    // governor charge points — reproducible too.
    QueryGovernor* gov = governor_;
    bool checked = track_;
    ParallelFor(SortRunCount(n), [&](size_t run) {
      if (checked && !gov->BeginMorsel()) return;
      size_t b = run * kSortRunRows;
      size_t e = std::min(n, b + kSortRunRows);
      std::sort(order.begin() + static_cast<long>(b),
                order.begin() + static_cast<long>(e), before);
    });
    if (n > kSortRunRows) {
      std::vector<uint32_t> scratch(n);
      for (size_t width = kSortRunRows; width < n; width *= 2) {
        size_t units = (n + 2 * width - 1) / (2 * width);
        ParallelFor(units, [&](size_t u) {
          if (checked && !gov->Tick()) return;
          size_t lo = u * 2 * width;
          size_t mid = std::min(n, lo + width);
          size_t hi = std::min(n, lo + 2 * width);
          std::merge(order.begin() + static_cast<long>(lo),
                     order.begin() + static_cast<long>(mid),
                     order.begin() + static_cast<long>(mid),
                     order.begin() + static_cast<long>(hi),
                     scratch.begin() + static_cast<long>(lo), before);
        });
        order.swap(scratch);
      }
    }

    RowList sorted(n);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t) {
      for (size_t r = b; r < e; ++r) {
        sorted[r] = std::move(rs->rows[order[r]]);
      }
    });
    rs->rows = std::move(sorted);
    return rs;
  }

  /// Fused ORDER BY + LIMIT: each morsel keeps a bounded heap of the
  /// best `limit` rows (by sort keys, ties on original row index), heaps
  /// merge into the global best `limit`. Only retained sort keys are
  /// materialised — O(rows·log k) work and O(morsels·k) peak keys
  /// instead of a full n-key sort — and because each heap holds the
  /// exact top-k of its morsel under a total order, the merged result is
  /// byte-identical to sort-then-limit at any parallelism.
  Result<std::shared_ptr<RowSet>> ExecTopK(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    std::vector<bool> desc;
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> bound,
                           BindSortKeys(node.sort_keys, *rs, &desc));
    size_t n = rs->rows.size();
    size_t k = static_cast<size_t>(std::max<int64_t>(node.limit, 0));
    auto better = [&](const TopKEntry& a, const TopKEntry& b) {
      int c = CompareKeys(a.key, b.key, desc);
      return c != 0 ? c < 0 : a.row < b.row;
    };

    size_t morsels = MorselCount(n);
    std::vector<std::vector<TopKEntry>> kept(morsels);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t m) {
      TopKHeap<decltype(better)> heap(std::min(k, e - b), better);
      std::vector<Value> scratch;
      for (size_t r = b; r < e; ++r) {
        scratch.clear();
        scratch.reserve(bound.size());
        for (const auto& kx : bound) scratch.push_back(kx->Eval(rs->rows[r]));
        heap.Offer(&scratch, static_cast<uint32_t>(r));
      }
      kept[m] = heap.Take();
      // Only the retained keys count against the memory budget — the
      // Top-K saving a full sort's n-key materialisation would charge.
      if (track_) {
        int64_t bytes = 0;
        for (const TopKEntry& entry : kept[m]) {
          bytes += ApproxRowBytes(entry.key);
        }
        governor_->Reserve(bytes);
      }
    });

    std::vector<TopKEntry> candidates;
    size_t total_kept = 0;
    for (const auto& m : kept) total_kept += m.size();
    candidates.reserve(total_kept);
    for (auto& m : kept) {
      for (TopKEntry& entry : m) candidates.push_back(std::move(entry));
    }
    std::sort(candidates.begin(), candidates.end(), better);
    if (candidates.size() > k) candidates.resize(k);

    RowList out;
    out.reserve(candidates.size());
    for (const TopKEntry& entry : candidates) {
      out.push_back(std::move(rs->rows[entry.row]));
    }
    rs->rows = std::move(out);
    node.stats.topk_seen += static_cast<int64_t>(n);
    node.stats.topk_kept += static_cast<int64_t>(rs->rows.size());
    if (stats_ != nullptr) {
      stats_->topk_seen += static_cast<int64_t>(n);
      stats_->topk_kept += static_cast<int64_t>(rs->rows.size());
    }
    Trace(StringPrintf("top-k (%zu keys, limit %lld): kept %zu of %zu rows",
                       node.sort_keys.size(),
                       static_cast<long long>(node.limit), rs->rows.size(),
                       n));
    return rs;
  }

  Result<std::shared_ptr<RowSet>> ExecLimit(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    if (node.limit >= 0 &&
        rs->rows.size() > static_cast<size_t>(node.limit)) {
      rs->rows.resize(static_cast<size_t>(node.limit));
    }
    return rs;
  }

  Result<std::shared_ptr<RowSet>> ExecTruncate(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                           ExecOwned(node.children[0]));
    rs->cols = node.schema;
    for (auto& row : rs->rows) row.resize(node.schema.size());
    rs->num_visible = 0;
    return rs;
  }

  Result<std::shared_ptr<RowSet>> ExecSetOp(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> acc,
                           ExecOwned(node.children[0]));
    for (size_t i = 1; i < node.children.size(); ++i) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                             ExecOwned(node.children[i]));
      using Kind = SelectStmt::SetOpBranch::Kind;
      switch (node.set_kinds[i - 1]) {
        case Kind::kUnionAll:
          acc->rows.reserve(acc->rows.size() + rs->rows.size());
          for (auto& row : rs->rows) acc->rows.push_back(std::move(row));
          break;
        case Kind::kUnion:
          acc->rows.reserve(acc->rows.size() + rs->rows.size());
          for (auto& row : rs->rows) acc->rows.push_back(std::move(row));
          DistinctRows(acc.get());
          break;
        case Kind::kIntersect:
        case Kind::kExcept: {
          // Partitioned hash build over the branch rows (whole-row keys,
          // borrowed as views — `rs` outlives the probe), then a
          // morsel-parallel membership probe over the accumulated side.
          constexpr size_t kWholeRow = static_cast<size_t>(-1);
          std::vector<std::vector<uint32_t>> parts =
              PartitionRows(rs->rows, kWholeRow);
          std::vector<
              std::unordered_set<GroupKeyView, GroupKeyHash, GroupKeyEq>>
              sets(kHashPartitions);
          ParallelFor(kHashPartitions, [&, this](size_t p) {
            if (track_ && !governor_->Tick()) return;
            sets[p].reserve(parts[p].size());
            for (uint32_t r : parts[p]) {
              sets[p].insert(GroupKeyView::Of(rs->rows[r]));
            }
          });
          bool keep_present = node.set_kinds[i - 1] == Kind::kIntersect;
          size_t an = acc->rows.size();
          std::vector<uint8_t> match(an, 0);
          ForEachMorsel(an, [&](size_t b, size_t e, size_t) {
            for (size_t r = b; r < e; ++r) {
              GroupKeyView key = GroupKeyView::Of(acc->rows[r]);
              const auto& set = sets[GroupKeyHash()(key) % kHashPartitions];
              match[r] = set.count(key) != 0 ? 1 : 0;
            }
          });
          RowList kept;
          for (size_t r = 0; r < an; ++r) {
            if ((match[r] != 0) == keep_present) {
              kept.push_back(std::move(acc->rows[r]));
            }
          }
          acc->rows = std::move(kept);
          DistinctRows(acc.get());  // set semantics
          break;
        }
      }
    }
    return acc;
  }

  // ---- aggregation ----------------------------------------------------

  /// One aggregate hash table: group keys in first-seen order, their
  /// accumulators, and a view-keyed index into `keys`. The views stay
  /// valid as `keys` grows because moving a std::vector<Value> preserves
  /// its heap buffer — the same trick EngineTable::StringIndex plays with
  /// string_views, applied to composite keys. Probes go through a view
  /// over a scratch buffer or a row prefix, so the per-row path never
  /// materialises a key vector for an existing group.
  struct AggTable {
    std::vector<std::vector<Value>> keys;
    std::vector<std::vector<Accumulator>> accs;
    std::unordered_map<GroupKeyView, uint32_t, GroupKeyHash, GroupKeyEq>
        index;

    void Reserve(size_t n) {
      keys.reserve(n);
      accs.reserve(n);
      index.reserve(n);
    }
    size_t size() const { return keys.size(); }

    /// Adopts `key` (moved) and `group_accs` as a new group; returns its
    /// ordinal.
    uint32_t Insert(std::vector<Value>&& key,
                    std::vector<Accumulator>&& group_accs) {
      uint32_t g = static_cast<uint32_t>(keys.size());
      keys.push_back(std::move(key));
      accs.push_back(std::move(group_accs));
      index.emplace(GroupKeyView::Of(keys[g]), g);
      return g;
    }
  };

  std::vector<Accumulator> FreshAccumulators(const PlanNode& node) {
    std::vector<Accumulator> accs;
    accs.reserve(node.aggs.size());
    for (const PlanAggSpec& spec : node.aggs) accs.emplace_back(&spec);
    return accs;
  }

  /// Phase 2 of partitioned aggregation: every group key hashes into one
  /// of kHashPartitions partitions (a pure function of the key), and each
  /// partition merges its groups from all partials *in partial order* —
  /// the same per-group Merge sequence the serial morsel-order merge
  /// performs, so no result depends on how partitions interleave. Each
  /// surviving group is tagged with its first-seen token (partial index,
  /// insertion index); concatenating partitions by ascending token
  /// reproduces the global first-seen order exactly. Consumes `partials`.
  AggTable MergePartials(std::vector<AggTable>* partials, size_t naggs) {
    size_t np = partials->size();
    if (np == 1) return std::move((*partials)[0]);
    std::vector<size_t> offset(np + 1, 0);
    for (size_t i = 0; i < np; ++i) {
      offset[i + 1] = offset[i] + (*partials)[i].size();
    }
    // Partition assignment, one hash per group, computed in parallel.
    std::vector<std::vector<uint8_t>> parts(np);
    QueryGovernor* gov = governor_;
    bool checked = track_;
    ParallelFor(np, [&](size_t i) {
      if (checked && !gov->Tick()) return;
      const AggTable& pt = (*partials)[i];
      parts[i].resize(pt.size());
      for (size_t j = 0; j < pt.size(); ++j) {
        parts[i][j] =
            static_cast<uint8_t>(GroupKeyHash()(pt.keys[j]) %
                                 kHashPartitions);
      }
    });
    std::vector<AggTable> merged(kHashPartitions);
    std::vector<std::vector<uint32_t>> tokens(kHashPartitions);
    ParallelFor(kHashPartitions, [&](size_t p) {
      if (checked && !gov->BeginMorsel()) return;
      AggTable& out = merged[p];
      out.Reserve(offset[np] / kHashPartitions + 1);
      for (size_t i = 0; i < np; ++i) {
        AggTable& pt = (*partials)[i];
        for (size_t j = 0; j < pt.size(); ++j) {
          if (parts[i][j] != p) continue;
          auto it = out.index.find(GroupKeyView::Of(pt.keys[j]));
          if (it == out.index.end()) {
            out.Insert(std::move(pt.keys[j]), std::move(pt.accs[j]));
            tokens[p].push_back(static_cast<uint32_t>(offset[i] + j));
          } else {
            for (size_t a = 0; a < naggs; ++a) {
              out.accs[it->second][a].Merge(pt.accs[j][a]);
            }
          }
        }
      }
    });
    // Concatenate partitions in ascending-token (= global first-seen)
    // order. The per-partition token lists are ascending, so this is a
    // P-way merge with linear cursor scans (P is small).
    AggTable result;
    size_t total = 0;
    for (const AggTable& t : merged) total += t.size();
    result.keys.reserve(total);
    result.accs.reserve(total);
    std::vector<size_t> cur(kHashPartitions, 0);
    for (size_t taken = 0; taken < total; ++taken) {
      size_t best = kHashPartitions;
      uint32_t best_tok = 0;
      for (size_t p = 0; p < kHashPartitions; ++p) {
        if (cur[p] >= tokens[p].size()) continue;
        uint32_t tok = tokens[p][cur[p]];
        if (best == kHashPartitions || tok < best_tok) {
          best = p;
          best_tok = tok;
        }
      }
      result.keys.push_back(std::move(merged[best].keys[cur[best]]));
      result.accs.push_back(std::move(merged[best].accs[cur[best]]));
      ++cur[best];
    }
    return result;
  }

  /// One ROLLUP subtotal level, computed from the leaf-level table
  /// instead of rescanning the input: leaf groups sharing the first
  /// `depth` key values merge (in leaf first-seen order) into one
  /// depth-`depth` group whose trailing key slots are NULL. The first
  /// leaf with a given prefix is also the first input row with it, so
  /// subtotal groups appear in the same order a row rescan would emit.
  AggTable RollupDepth(const PlanNode& node, const AggTable& leaf,
                       size_t depth, size_t nkeys) {
    size_t n = leaf.size();
    size_t morsels = MorselCount(n);
    std::vector<AggTable> partials(morsels);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t m) {
      AggTable& pt = partials[m];
      pt.Reserve(e - b);
      std::vector<Value> scratch(nkeys);
      int64_t group_bytes = 0;
      int64_t new_groups = 0;
      for (size_t r = b; r < e; ++r) {
        for (size_t k = 0; k < depth; ++k) scratch[k] = leaf.keys[r][k];
        auto it = pt.index.find(GroupKeyView::Of(scratch));
        uint32_t g;
        if (it == pt.index.end()) {
          if (track_) {
            group_bytes +=
                ApproxRowBytes(scratch) +
                static_cast<int64_t>(node.aggs.size() * sizeof(Accumulator));
            ++new_groups;
          }
          g = pt.Insert(std::move(scratch), FreshAccumulators(node));
          scratch.assign(nkeys, Value());
        } else {
          g = it->second;
        }
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          pt.accs[g][a].Merge(leaf.accs[r][a]);
        }
      }
      // Same charging rule as the leaf build: every new group costs its
      // key plus one accumulator per aggregate.
      if (track_ && governor_->ChargeRows(new_groups)) {
        governor_->Reserve(group_bytes);
      }
    });
    return MergePartials(&partials, node.aggs.size());
  }

  Result<std::shared_ptr<RowSet>> ExecAggregate(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> input,
                           Exec(node.children[0]));
    TPCDS_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<BoundExpr>> key_exprs,
                           BindAll(node.group_by, *input));
    std::vector<std::unique_ptr<BoundExpr>> arg_exprs;
    for (const PlanAggSpec& spec : node.aggs) {
      if (spec.arg == nullptr) {
        arg_exprs.push_back(nullptr);
      } else {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*spec.arg, *input, this));
        arg_exprs.push_back(std::move(b));
      }
    }

    size_t nkeys = key_exprs.size();
    size_t naggs = node.aggs.size();
    size_t n = input->rows.size();

    // Phase 1: morsel-parallel partial aggregation at the leaf depth
    // (all group keys evaluated). Each morsel fills its own table in
    // first-appearance order; the partition merge below recombines them
    // in a sequence that depends only on the input.
    size_t morsels = MorselCount(n);
    std::vector<AggTable> partials(morsels);
    ForEachMorsel(n, [&](size_t b, size_t e, size_t m) {
      AggTable& pt = partials[m];
      pt.Reserve(e - b);
      std::vector<Value> scratch(nkeys);
      int64_t group_bytes = 0;
      for (size_t r = b; r < e; ++r) {
        const auto& row = input->rows[r];
        for (size_t k = 0; k < nkeys; ++k) scratch[k] = key_exprs[k]->Eval(row);
        auto it = pt.index.find(GroupKeyView::Of(scratch));
        uint32_t g;
        if (it == pt.index.end()) {
          if (track_) {
            group_bytes += ApproxRowBytes(scratch) +
                           static_cast<int64_t>(naggs * sizeof(Accumulator));
          }
          g = pt.Insert(std::move(scratch), FreshAccumulators(node));
          scratch.assign(nkeys, Value());
        } else {
          g = it->second;
        }
        for (size_t i = 0; i < naggs; ++i) {
          if (node.aggs[i].star) {
            pt.accs[g][i].Add(Value::Int(1));
          } else {
            pt.accs[g][i].Add(arg_exprs[i]->Eval(row));
          }
        }
      }
      // Charge the aggregate hash-table build: each new group holds its
      // key plus one accumulator per aggregate.
      if (track_ &&
          governor_->ChargeRows(static_cast<int64_t>(pt.size()))) {
        governor_->Reserve(group_bytes);
      }
    });
    AggTable groups = MergePartials(&partials, naggs);

    if (node.rollup && nkeys > 0 && !governor_->cancelled()) {
      // SQL-99 subtotal levels n-1, ..., 0, each computed from the
      // pristine leaf table, then folded into the global table in depth
      // order. A subtotal key can collide with a natural all-NULL leaf
      // key; as in the serial engine, the collision merges into the
      // earlier group instead of emitting a duplicate key.
      std::vector<AggTable> levels;
      levels.reserve(nkeys);
      for (size_t d = nkeys; d-- > 0;) {
        levels.push_back(RollupDepth(node, groups, d, nkeys));
      }
      groups.index.clear();
      groups.index.reserve(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        groups.index.emplace(GroupKeyView::Of(groups.keys[g]),
                             static_cast<uint32_t>(g));
      }
      for (AggTable& level : levels) {
        for (size_t j = 0; j < level.size(); ++j) {
          auto it = groups.index.find(GroupKeyView::Of(level.keys[j]));
          if (it == groups.index.end()) {
            groups.Insert(std::move(level.keys[j]), std::move(level.accs[j]));
          } else {
            for (size_t a = 0; a < naggs; ++a) {
              groups.accs[it->second][a].Merge(level.accs[j][a]);
            }
          }
        }
      }
    }

    // No GROUP BY and no input rows still yields one (empty) group.
    if (node.group_by.empty() && groups.size() == 0) {
      groups.Insert(std::vector<Value>{}, FreshAccumulators(node));
    }

    auto out = std::make_shared<RowSet>();
    out->cols = node.schema;
    size_t ngroups = groups.size();
    out->rows.resize(ngroups);
    // Finalize morsel-parallel: each output row adopts its group's key
    // vector and appends the finalized aggregate values.
    ForEachMorsel(ngroups, [&](size_t b, size_t e, size_t) {
      for (size_t g = b; g < e; ++g) {
        std::vector<Value>& row = out->rows[g];
        row = std::move(groups.keys[g]);
        row.reserve(nkeys + naggs);
        for (const Accumulator& acc : groups.accs[g]) {
          row.push_back(acc.Finalize());
        }
      }
    });
    Trace(StringPrintf(
        "aggregate%s: %zu keys, %zu aggregates, %zu -> %zu groups",
        node.rollup ? " (rollup)" : "", node.group_by.size(),
        node.aggs.size(), input->rows.size(), out->rows.size()));
    return out;
  }

  // ---- window functions -----------------------------------------------

  Result<std::shared_ptr<RowSet>> ExecWindow(const PlanNode& node) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> scope,
                           ExecOwned(node.children[0]));
    for (const PlanWindowFn& fn : node.windows) {
      TPCDS_ASSIGN_OR_RETURN(
          std::vector<std::unique_ptr<BoundExpr>> part_exprs,
          BindAll(fn.partition_by, *scope));
      std::unordered_map<std::vector<Value>, std::vector<size_t>,
                         VecValueHash, VecValueEq>
          partitions;
      for (size_t r = 0; r < scope->rows.size(); ++r) {
        std::vector<Value> key;
        key.reserve(part_exprs.size());
        for (const auto& p : part_exprs) key.push_back(p->Eval(scope->rows[r]));
        partitions[std::move(key)].push_back(r);
      }

      std::vector<Value> results(scope->rows.size());
      if (fn.function == "RANK" || fn.function == "ROW_NUMBER" ||
          fn.function == "DENSE_RANK") {
        TPCDS_ASSIGN_OR_RETURN(
            std::vector<std::unique_ptr<BoundExpr>> order_exprs,
            BindAll(fn.order_by, *scope));
        for (auto& [key, rows] : partitions) {
          std::vector<std::vector<Value>> sort_keys(rows.size());
          for (size_t i = 0; i < rows.size(); ++i) {
            for (const auto& o : order_exprs) {
              sort_keys[i].push_back(o->Eval(scope->rows[rows[i]]));
            }
          }
          std::vector<size_t> idx(rows.size());
          for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
          std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            for (size_t k = 0; k < order_exprs.size(); ++k) {
              int c = Value::Compare(sort_keys[a][k], sort_keys[b][k]);
              if (c != 0) return fn.order_desc[k] ? c > 0 : c < 0;
            }
            return false;
          });
          int64_t rank = 0;
          int64_t dense = 0;
          for (size_t i = 0; i < idx.size(); ++i) {
            bool tie = i > 0 &&
                       VecValueEq()(sort_keys[idx[i]], sort_keys[idx[i - 1]]);
            if (fn.function == "ROW_NUMBER") {
              rank = static_cast<int64_t>(i) + 1;
            } else if (fn.function == "RANK") {
              if (!tie) rank = static_cast<int64_t>(i) + 1;
            } else {  // DENSE_RANK
              if (!tie) ++dense;
              rank = dense;
            }
            results[rows[idx[i]]] = Value::Int(rank);
          }
        }
      } else {
        // Aggregate over the whole partition.
        PlanAggSpec spec;
        spec.function = fn.function;
        spec.star = fn.star;
        std::unique_ptr<BoundExpr> arg;
        if (!spec.star && fn.arg != nullptr) {
          TPCDS_ASSIGN_OR_RETURN(arg, BindExpr(*fn.arg, *scope, this));
        }
        for (auto& [key, rows] : partitions) {
          Accumulator acc(&spec);
          for (size_t r : rows) {
            acc.Add(spec.star ? Value::Int(1) : arg->Eval(scope->rows[r]));
          }
          Value v = acc.Finalize();
          for (size_t r : rows) results[r] = v;
        }
      }

      RowSet::Col col;
      col.name = fn.out_col;
      scope->cols.push_back(std::move(col));
      for (size_t r = 0; r < scope->rows.size(); ++r) {
        scope->rows[r].push_back(results[r]);
      }
    }
    return scope;
  }

  /// Assigns each row's first `prefix` values to one of kHashPartitions
  /// partitions by hash (a pure input function) and returns per-partition
  /// ascending row-index lists. Morsel-parallel: each morsel buckets its
  /// own rows, then buckets concatenate in morsel order.
  std::vector<std::vector<uint32_t>> PartitionRows(const RowList& rows,
                                                   size_t prefix) {
    size_t n = rows.size();
    size_t morsels = MorselCount(n);
    std::vector<std::vector<std::vector<uint32_t>>> buckets(
        morsels, std::vector<std::vector<uint32_t>>(kHashPartitions));
    ForEachMorsel(n, [&](size_t b, size_t e, size_t m) {
      for (size_t r = b; r < e; ++r) {
        size_t p = GroupKeyHash()(GroupKeyView::Prefix(rows[r], prefix)) %
                   kHashPartitions;
        buckets[m][p].push_back(static_cast<uint32_t>(r));
      }
    });
    std::vector<std::vector<uint32_t>> parts(kHashPartitions);
    ParallelFor(kHashPartitions, [&](size_t p) {
      size_t total = 0;
      for (size_t m = 0; m < morsels; ++m) total += buckets[m][p].size();
      parts[p].reserve(total);
      for (size_t m = 0; m < morsels; ++m) {
        parts[p].insert(parts[p].end(), buckets[m][p].begin(),
                        buckets[m][p].end());
      }
    });
    return parts;
  }

  /// Duplicate elimination over the visible prefix, partition-parallel:
  /// rows partition by key hash, each partition keeps the first
  /// occurrence of every key (keys are borrowed views into the rows —
  /// nothing is materialised), and the per-partition survivor lists merge
  /// back into one ascending index list. A key's first occurrence lands
  /// in that key's partition regardless of chunking, so the survivors —
  /// and their order — are exactly what a serial first-seen scan keeps.
  void DistinctRows(RowSet* rs) {
    size_t n = rs->rows.size();
    if (n == 0) return;
    size_t visible = rs->VisibleCols();
    std::vector<std::vector<uint32_t>> parts =
        PartitionRows(rs->rows, visible);
    std::vector<std::vector<uint32_t>> survivors(kHashPartitions);
    QueryGovernor* gov = governor_;
    bool checked = track_;
    ParallelFor(kHashPartitions, [&](size_t p) {
      if (checked && !gov->Tick()) return;
      std::unordered_set<GroupKeyView, GroupKeyHash, GroupKeyEq> seen;
      seen.reserve(parts[p].size());
      for (uint32_t r : parts[p]) {
        if (seen.insert(GroupKeyView::Prefix(rs->rows[r], visible)).second) {
          survivors[p].push_back(r);
        }
      }
    });
    std::vector<uint32_t> keep = MergeAscendingIndexLists(survivors);
    if (keep.size() == n) return;
    RowList unique_rows(keep.size());
    ForEachMorsel(keep.size(), [&](size_t b, size_t e, size_t) {
      for (size_t i = b; i < e; ++i) {
        unique_rows[i] = std::move(rs->rows[keep[i]]);
      }
    });
    rs->rows = std::move(unique_rows);
  }

  const DataFacade* facade_;
  PlannerOptions options_;
  ExecStats* stats_;
  const PhysicalPlan* plan_;
  QueryGovernor* governor_;  // never null; default governor is a no-op
  bool track_ = false;       // charge rows/bytes only when limits or faults on
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  std::map<std::string, std::shared_ptr<RowSet>> cte_results_;
  std::map<const PlanNode*, std::shared_ptr<RowSet>> memo_;
  /// Join-key filters registered on scans by enclosing hash/semi joins.
  /// Registration and unregistration happen in the (serial) operator
  /// open/close path; only morsel workers read it concurrently.
  std::map<const PlanNode*, std::vector<ScanPushdown>> pushdowns_;
  double child_seconds_ = 0.0;
};

void EmitOperator(const PlanNode* node, int depth, ExecStats* stats,
                  std::set<const PlanNode*>* visited) {
  ExecStats::OpStat op;
  op.label = PlanNodeLabel(*node);
  op.depth = depth;
  op.rows_in = node->stats.rows_in;
  op.rows_out = node->stats.rows_out;
  op.seconds = node->stats.seconds;
  op.executed = node->stats.executed;
  op.morsels_pruned = node->stats.morsels_pruned;
  op.bloom_rejects = node->stats.bloom_rejects;
  op.vectorized = node->stats.vectorized;
  op.topk_seen = node->stats.topk_seen;
  op.topk_kept = node->stats.topk_kept;
  op.bytes_touched = node->stats.bytes_touched;
  op.est_rows = node->stats.est_rows;
  if (op.executed && op.est_rows >= 0.0) {
    // +1 smoothing keeps empty outputs finite; 1.0 = perfect estimate.
    double est = op.est_rows + 1.0;
    double actual = static_cast<double>(op.rows_out) + 1.0;
    stats->max_q_error =
        std::max(stats->max_q_error, std::max(est / actual, actual / est));
  }
  bool first_visit = visited->insert(node).second;
  if (!first_visit) op.label += " (shared)";
  stats->operators.push_back(std::move(op));
  if (!first_visit) return;  // shared subtree already listed
  for (const auto& c : node->children) {
    EmitOperator(c.get(), depth + 1, stats, visited);
  }
}

}  // namespace

Result<std::shared_ptr<RowSet>> ExecutePlan(const DataFacade* facade,
                                            const PhysicalPlan& plan,
                                            const PlannerOptions& options,
                                            ExecStats* stats,
                                            QueryGovernor* governor) {
  // An external governor (cancellation from another thread) takes
  // precedence; otherwise build one from the options' limits.
  GovernorLimits limits;
  limits.timeout_ms = options.timeout_ms;
  limits.memory_budget_bytes = options.memory_budget_bytes;
  limits.row_budget = options.row_budget;
  QueryGovernor local(limits);
  QueryGovernor* gov = governor != nullptr ? governor : &local;
  PlanExecutor executor(facade, options, stats, &plan, gov);
  Result<std::shared_ptr<RowSet>> result = executor.Run();
  if (result.ok() && stats != nullptr) {
    std::set<const PlanNode*> visited;
    for (const auto& [name, node] : plan.ctes) {
      EmitOperator(node.get(), 0, stats, &visited);
    }
    EmitOperator(plan.root.get(), 0, stats, &visited);
  }
  return result;
}

}  // namespace tpcds
