#ifndef TPCDS_ENGINE_BATCH_H_
#define TPCDS_ENGINE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/value.h"
#include "schema/column.h"

namespace tpcds {

struct Expr;
class EngineTable;
class StorageColumn;
struct RowSet;

/// Rows per columnar batch. Matches the executor's morsel size so a zone-map
/// entry maps 1:1 onto a scan morsel and pruning a block prunes a morsel.
inline constexpr size_t kBatchRows = 1024;

/// A selection vector: row indices into a table, ascending. The vectorized
/// scan starts from the identity selection of a morsel and lets each kernel
/// compact it in place; only surviving rows are materialised as Values.
using SelectionVector = std::vector<uint32_t>;

/// One compiled predicate over a single storage column. Kernels evaluate on
/// the raw typed vectors (int64 for identifiers/ints/decimal-cents/date-JDNs,
/// std::string otherwise) and must be exactly equivalent to evaluating the
/// original expression through expr_eval — predicates whose SQL coercion
/// rules cannot be reproduced on raw storage stay on the residual path.
struct ScanKernel {
  enum class Kind {
    /// No row can pass (NULL literal, negated IN with NULL, empty range).
    kAlwaysFalse,
    /// Int-backed column within inclusive [lo, hi]; negated = outside.
    kIntRange,
    /// Int-backed column in the sorted `values` list; negated = NOT IN.
    kIntIn,
    /// String column compared against `str` with `cmp`.
    kStrCompare,
    /// String column in the sorted `strs` list; negated = NOT IN.
    kStrIn,
    /// String column LIKE `str` (SQL %/_ wildcards); negated = NOT LIKE.
    kStrLike,
    /// IS NULL; negated = IS NOT NULL.
    kNullTest,
  };
  enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kAlwaysFalse;
  /// Storage column index on the scanned table (not the output slot).
  int col = -1;
  bool negated = false;
  int64_t lo = INT64_MIN;  // kIntRange, inclusive
  int64_t hi = INT64_MAX;
  std::vector<int64_t> values;    // kIntIn, sorted ascending
  Cmp cmp = Cmp::kEq;             // kStrCompare
  std::string str;                // kStrCompare literal / kStrLike pattern
  std::string like_prefix;        // kStrLike: literal prefix before the first
                                  // wildcard, used as a fast pre-filter
  bool prefix_only = false;       // kStrLike: pattern is exactly prefix + "%"
  std::vector<std::string> strs;  // kStrIn, sorted ascending
};

/// Compiles one pushed scan predicate into typed kernels appended to `out`.
/// `scope` is the scan's output schema (for slot resolution), `scan_cols`
/// maps output slots back to storage columns. Returns false — appending
/// nothing — when the predicate needs the generic expr_eval path. A single
/// predicate may compile to more than one kernel (string BETWEEN becomes two
/// compares); the appended kernels pass iff the predicate passes.
bool CompileScanKernel(const Expr& pred, const RowSet& scope,
                       const EngineTable& table,
                       const std::vector<int>& scan_cols,
                       std::vector<ScanKernel>* out);

/// Filters `sel` in place, keeping rows that pass the kernel. Reads the
/// column's typed storage directly; never constructs a Value. Handles any
/// column encoding (encoded columns decode row-at-a-time through the
/// accessors); use PrepareScanKernel + ApplyPreparedScanKernel for the
/// encoded fast paths.
void ApplyScanKernel(const ScanKernel& kernel, const StorageColumn& column,
                     SelectionVector* sel);

/// A scan kernel translated onto one column's *encoded* domain, computed
/// once per scan (PlannerOptions::encoded_execution). The per-morsel apply
/// then compares pre-encoded literals — dictionary code ranges / per-code
/// pass masks for strings, frame-of-reference-shifted bounds for packed
/// ints — and skips whole RLE runs, without decoding non-matching rows.
struct PreparedScanKernel {
  enum class Mode {
    kGeneric,    // no encoded translation; delegate to ApplyScanKernel
    kCodeRange,  // dict: non-null rows pass iff code in [lo, hi]
    kCodeMask,   // dict: non-null rows pass iff mask[code]
    kRleRuns,    // rle: per-run verdict, whole failing runs skipped
    kForRange,   // for: packed (unshifted) value in [lo, hi]
  };
  const ScanKernel* kernel = nullptr;
  Mode mode = Mode::kGeneric;
  bool negated = false;        // kCodeRange / kForRange: pass outside
  int64_t lo = 0;              // kCodeRange: dict codes; kForRange: packed
  int64_t hi = -1;
  std::vector<uint8_t> mask;   // kCodeMask: DictNdv() entries
};

/// Translates `kernel` onto `column`'s encoding. Plain columns (and
/// kernel/encoding pairs with no specialised form) yield kGeneric.
PreparedScanKernel PrepareScanKernel(const ScanKernel& kernel,
                                     const StorageColumn& column);

/// Filters `sel` in place using the prepared (encoded-domain) form.
void ApplyPreparedScanKernel(const PreparedScanKernel& prepared,
                             const StorageColumn& column,
                             SelectionVector* sel);

/// Gathers the selected rows of `cols` into row-major Values, column at a
/// time so the per-column type dispatch is hoisted out of the row loop.
/// Appends `sel.size()` rows to `out`.
void GatherRows(const EngineTable& table, const std::vector<int>& cols,
                const SelectionVector& sel,
                std::vector<std::vector<Value>>* out);

/// Min/max summary of one kBatchRows block of an int-backed column.
struct ZoneEntry {
  int64_t min = 0;
  int64_t max = 0;
  bool has_nonnull = false;
  bool has_null = false;
};

/// Per-block zone map over an int-backed column; blocks.size() ==
/// ceil(rows / kBatchRows). Built lazily by EngineTable and invalidated with
/// the hash indexes on mutation.
struct ZoneMap {
  std::vector<ZoneEntry> blocks;
};

/// Builds the zone map for the first `num_rows` rows of an int-backed
/// column. `column.is_string()` must be false.
ZoneMap BuildZoneMap(const StorageColumn& column, size_t num_rows);

/// True when no row in the block can pass the kernel, so the whole morsel
/// can be skipped without touching the data. Only meaningful for int-backed
/// kernel kinds (kIntRange / kIntIn / kNullTest / kAlwaysFalse).
bool KernelPrunesBlock(const ScanKernel& kernel, const ZoneEntry& zone);

/// True when the block has no non-null value in inclusive [lo, hi].
bool RangePrunesBlock(const ZoneEntry& zone, int64_t lo, int64_t hi);

/// Blocked Bloom filter over pre-computed hashes. Used by the hash join to
/// reject probe rows before touching the partition hash tables, and pushed
/// down into probe-side scans when the build side is selective. False
/// positives only — a downstream exact check keeps results byte-identical.
class BloomFilter {
 public:
  /// Sizes the filter at ~10 bits per expected key (rounded up to a power
  /// of two), giving a low single-digit false-positive rate.
  explicit BloomFilter(size_t expected_keys);

  void Add(size_t hash);
  bool MayContain(size_t hash) const;
  size_t bit_count() const { return words_.size() * 64; }

 private:
  std::vector<uint64_t> words_;
  size_t bit_mask_ = 0;
};

/// Hash of the non-null stored value `raw` of a column with type `type`,
/// identical to StorageColumn::Get(row).Hash() without building the Value.
size_t HashStorageValue(ColumnType type, int64_t raw);

/// Result of mapping a join/IN key onto a column's raw storage domain.
enum class StorageEq {
  kExact,        // *out is the unique raw value comparing equal to the key
  kNoMatch,      // provably no stored value compares equal
  kUnsupported,  // coercion rules too exotic to reproduce on raw storage
};

/// Maps `key` onto the raw stored representation that would compare equal
/// (by Value::Compare) in an int-backed column of type `type`.
StorageEq StorageValueForEquality(ColumnType type, const Value& key,
                                  int64_t* out);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_BATCH_H_
