#include "engine/rowset.h"

#include "util/string_util.h"

namespace tpcds {

Result<int> RowSet::Resolve(const std::string& qualifier,
                            const std::string& name) const {
  // Visible (projected) columns shadow hidden pass-through columns, so an
  // ORDER BY on a select alias is never "ambiguous" against the hidden
  // copy of the underlying column.
  size_t visible = VisibleCols();
  if (visible < cols.size()) {
    Result<int> r = ResolveRange(qualifier, name, 0, visible);
    if (r.ok()) return r;
    if (r.status().code() == StatusCode::kInvalidArgument) return r;
    return ResolveRange(qualifier, name, visible, cols.size());
  }
  return ResolveRange(qualifier, name, 0, cols.size());
}

Result<int> RowSet::ResolveRange(const std::string& qualifier,
                                 const std::string& name, size_t begin,
                                 size_t end) const {
  int found = -1;
  for (size_t i = begin; i < end; ++i) {
    if (!EqualsIgnoreCase(cols[i].name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(cols[i].qualifier, qualifier)) {
      continue;
    }
    if (found >= 0) {
      // Duplicate (qualifier, name) pairs refer to the same source column
      // (e.g. a projected column plus its hidden copy): first one wins.
      // Matches under *different* qualifiers make a bare ref ambiguous.
      if (EqualsIgnoreCase(cols[i].qualifier,
                           cols[static_cast<size_t>(found)].qualifier)) {
        continue;
      }
      if (qualifier.empty()) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      continue;
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::NotFound("unknown column: " + full);
  }
  return found;
}

std::string RowSet::HeaderOf(size_t i) const {
  const Col& c = cols[i];
  return c.qualifier.empty() ? c.name : c.qualifier + "." + c.name;
}

}  // namespace tpcds
