#ifndef TPCDS_ENGINE_PLANNER_H_
#define TPCDS_ENGINE_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/ast.h"
#include "engine/rowset.h"
#include "util/result.h"

namespace tpcds {

class DataFacade;
class QueryGovernor;

/// Execution-strategy switches, exposed so benchmarks can compare plans
/// (paper §2.1: the schema must exercise both star-schema and 3NF paths).
struct PlannerOptions {
  /// Semi-join reduction: before joining, filter the first FROM table (the
  /// fact table in a star query) against the qualifying-key sets of every
  /// filtered dimension it equi-joins — the engine's star transformation.
  /// Off = pure hash-join pipeline (the "3NF" path).
  bool star_transformation = true;

  /// Index-driven joins (paper §2.1's third DSS access path): an
  /// unfiltered base table equi-joined on one integer column is never
  /// scanned; the join probes the table's hash index and fetches matching
  /// rows directly. Off by default — hash joins are the baseline.
  bool index_joins = false;

  /// Intra-query worker threads. 1 = serial (default), 0 = one worker per
  /// hardware core. Results are byte-identical at every setting: morsels
  /// have a fixed row count and partial results always merge in morsel
  /// order, so no ordering or float reassociation depends on this knob.
  int parallelism = 1;

  /// Query-governance limits, enforced at morsel boundaries by a
  /// QueryGovernor (docs/ROBUSTNESS.md). All zero = ungoverned. A query
  /// over any limit returns a clean kDeadlineExceeded / kResourceExhausted
  /// error; queries under the limits are byte-identical to ungoverned runs.
  double timeout_ms = 0.0;          // wall-clock deadline, 0 = unlimited
  int64_t memory_budget_bytes = 0;  // materialised-bytes budget, 0 = unlimited
  int64_t row_budget = 0;           // materialised-rows budget, 0 = unlimited

  /// Vectorized columnar fast path: pushed scan filters run as typed
  /// kernels over the raw storage vectors with selection vectors, zone
  /// maps prune whole morsels, and hash/semi joins build Bloom filters
  /// that reject probe rows early (pushed into probe-side scans when the
  /// build side is selective). Off = the row-at-a-time reference path.
  /// Results are byte-identical either way, at any parallelism.
  bool vectorized_execution = true;

  /// Fuse `ORDER BY ... LIMIT n` into a Top-K operator: bounded
  /// per-worker heaps keep the best n rows (O(rows·log n), only n sort
  /// keys resident) instead of materialising a full sort. The heaps keep
  /// the exact top-k under a total order (keys, then original row index),
  /// so results are byte-identical to sort-then-limit at any parallelism.
  /// EXPLAIN reports `topk: kept X of Y rows` on fused nodes.
  bool topk_pushdown = true;

  /// Cost-based planning (docs/PLANNER.md): column statistics
  /// (engine/stats.h) drive selectivity and join-cardinality estimates,
  /// which (a) reorder comma-joined FROM lists greedily
  /// smallest-estimated-intermediate-first, (b) pick the star-transform
  /// dimension order most-selective-first, and (c) gate Bloom/semi-join
  /// key pushdown on the estimated reduction ratio instead of the
  /// structural keys*8<=rows guess. Plans are annotated with estimated
  /// rows per operator (EXPLAIN shows est vs. actual plus the query's max
  /// q-error). Off restores the structural FROM-order shapes. Results are
  /// byte-identical either way, at any parallelism: join output feeds
  /// name-resolved operators, and pushdown never changes what the exact
  /// join checks admit.
  bool cost_based = true;

  /// Evaluate scan predicates directly on encoded columns (docs/STORAGE.md):
  /// string compares become dictionary-code ranges or per-code masks,
  /// frame-of-reference columns compare pre-shifted bounds against the
  /// packed bits, and whole RLE runs that cannot match are skipped without
  /// per-row work. Off = encoded columns decode row-at-a-time through the
  /// generic accessors. Results are byte-identical either way, and
  /// identical to running on un-encoded storage.
  bool encoded_execution = true;
};

/// Statistics of one statement execution, for benchmarking and EXPLAIN.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_joined = 0;
  int64_t star_filtered_rows = 0;  // fact rows removed by semi-join filters
  int64_t morsels_pruned = 0;      // scan morsels skipped via zone maps
  int64_t bloom_rejects = 0;       // join/scan rows rejected by Bloom filters
  int64_t topk_seen = 0;           // rows offered to Top-K bounded heaps
  int64_t topk_kept = 0;           // rows those heaps retained
  int64_t bytes_touched = 0;       // storage payload bytes read by scans
                                   // (morsel-granular; pruned morsels and
                                   // encoded savings excluded)
  /// Human-readable plan trace: one line per scan / semi-join reduction /
  /// join / aggregation, in execution order.
  std::vector<std::string> plan;

  /// One entry per physical-plan operator, pre-order with `depth` giving
  /// the tree indentation. `executed` is false for operators skipped at
  /// run time (e.g. a memoised subtree's duplicate listing).
  struct OpStat {
    std::string label;
    int depth = 0;
    int64_t rows_in = 0;
    int64_t rows_out = 0;
    double seconds = 0.0;  // self time, children excluded
    bool executed = false;
    int64_t morsels_pruned = 0;
    int64_t bloom_rejects = 0;
    bool vectorized = false;
    int64_t topk_seen = 0;
    int64_t topk_kept = 0;
    int64_t bytes_touched = 0;
    /// Planner cardinality estimate for this operator's output; negative
    /// when the plan was not cost-annotated (cost_based off).
    double est_rows = -1.0;
  };
  std::vector<OpStat> operators;

  /// Worst estimation error across executed, cost-annotated operators:
  /// max over operators of max(est/actual, actual/est), with +1 smoothing
  /// so empty outputs stay finite. 0 when nothing was annotated; 1.0 is a
  /// perfect estimate.
  double max_q_error = 0.0;
};

/// Plans and executes a parsed SELECT against one pinned dataset
/// generation. The returned RowSet is fully materialised and truncated to
/// its visible columns. `governor`, when supplied, overrides the governor
/// the executor would build from the options' limits — callers hold it to
/// cancel the query from another thread. The caller keeps the facade
/// alive (usually via the shared_ptr it acquired) for the call's
/// duration.
Result<std::shared_ptr<RowSet>> ExecuteSelect(const DataFacade* facade,
                                              const SelectStmt& stmt,
                                              const PlannerOptions& options,
                                              ExecStats* stats = nullptr,
                                              QueryGovernor* governor =
                                                  nullptr);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_PLANNER_H_
