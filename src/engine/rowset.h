#ifndef TPCDS_ENGINE_ROWSET_H_
#define TPCDS_ENGINE_ROWSET_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/value.h"
#include "util/result.h"

namespace tpcds {

/// A fully materialised intermediate result: named columns, row-major
/// values. Operators in the executor consume and produce RowSets
/// (operator-at-a-time execution keeps the engine simple and testable; the
/// benchmark's comparative shapes do not depend on pipelining).
struct RowSet {
  struct Col {
    std::string qualifier;  // table alias; empty for computed columns
    std::string name;
  };

  std::vector<Col> cols;
  std::vector<std::vector<Value>> rows;
  /// Number of leading user-visible columns; the remainder are hidden
  /// pass-through columns kept so ORDER BY can reference non-projected
  /// expressions. 0 means "all visible".
  size_t num_visible = 0;

  size_t VisibleCols() const { return num_visible == 0 ? cols.size()
                                                       : num_visible; }
  size_t num_cols() const { return cols.size(); }
  size_t num_rows() const { return rows.size(); }

  /// Resolves a column reference. Empty qualifier matches any column with
  /// that name, erroring on ambiguity across distinct qualifiers. Visible
  /// columns shadow hidden ones.
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;

  /// Resolve within [begin, end); helper for visibility shadowing.
  Result<int> ResolveRange(const std::string& qualifier,
                           const std::string& name, size_t begin,
                           size_t end) const;

  /// Display header ("alias.name" or "name").
  std::string HeaderOf(size_t i) const;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_ROWSET_H_
