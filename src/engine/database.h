#ifndef TPCDS_ENGINE_DATABASE_H_
#define TPCDS_ENGINE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsgen/options.h"
#include "engine/data_facade.h"
#include "engine/planner.h"
#include "engine/table.h"
#include "util/result.h"

namespace tpcds {

/// A query result ready for display: column headers plus row-major values.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Renders up to `max_rows` as aligned text (all rows when 0).
  std::string ToString(size_t max_rows = 20) const;

  /// Renders the full result as CSV with a header row — the output format
  /// for data-mining extraction queries, whose large results feed
  /// external tools (paper §4.1). Fields containing commas, quotes or
  /// newlines are quoted; NULL renders as an empty field.
  std::string ToCsv() const;
};

/// The embedded columnar database: catalog of EngineTables, a loader fed
/// directly by the data generator, and the SQL entry point. This is the
/// "system under test" substrate the benchmark driver measures.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates empty tables for the full 24-table TPC-DS schema.
  Status CreateTpcdsTables();

  /// Creates one custom table (tests use this for mini-schemas).
  Status CreateTable(const std::string& name,
                     std::vector<EngineTable::ColumnMeta> columns);

  /// Generates and loads every TPC-DS table at options.scale_factor.
  /// Sales and returns of each channel are produced in one generator pass.
  Status LoadTpcdsData(const GeneratorOptions& options);

  /// Generates and loads one table.
  Status LoadTable(const std::string& name, const GeneratorOptions& options);

  EngineTable* FindTable(const std::string& name);
  const EngineTable* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  int64_t TotalRows() const;

  /// Runs the per-column stats pass over every table and installs the
  /// lightweight encoding each column qualifies for (dictionary for
  /// low-NDV strings, RLE for clustered ints, frame-of-reference
  /// bit-packing for dense ints — docs/STORAGE.md). A logical no-op:
  /// queries return byte-identical results. Returns the number of columns
  /// that changed representation. Encodings persist through
  /// SaveCheckpoint and survive AttachCheckpoint zero-copy.
  size_t EncodeStorage();

  /// Collects optimizer statistics (engine/stats.h: NDV sketches,
  /// equi-depth histograms, min/max/null counts) for every table in one
  /// pass each and installs them as the current derived-state generation.
  /// Queries planned with PlannerOptions::cost_based pick the stats up
  /// immediately; tables left un-analyzed collect lazily on first use.
  /// Returns the number of tables analyzed. Stats persist through
  /// SaveCheckpoint (STATS aux file) so LoadCheckpoint/AttachCheckpoint
  /// restore them without re-scanning; data maintenance invalidates and
  /// recollects them alongside the indexes.
  size_t AnalyzeStorage();

  /// Storage footprint of one table: the payload bytes of its current
  /// (possibly encoded) representation vs. the plain representation the
  /// load path produces. ratio = plain / encoded (1.0 when un-encoded).
  struct CompressionStats {
    uint64_t encoded_bytes = 0;
    uint64_t plain_bytes = 0;
    double ratio = 1.0;
  };
  CompressionStats TableCompression(const std::string& name) const;

  /// Immutable snapshot of the current tables stamped with the current
  /// generation id. The facade shares table storage (shared_ptr per
  /// table), so this is O(#tables). Queries executed through Query() pin
  /// such a snapshot for their whole lifetime.
  std::shared_ptr<const DataFacade> Snapshot() const;

  /// Monotonic dataset generation: starts at 1, advances on
  /// AdoptTablesFrom, and is restored from the manifest on checkpoint
  /// load/attach.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t g) { generation_ = g; }

  /// Copy-on-write fork for a maintenance generation build: the fork
  /// shares every table except those named in `cow_tables`, which are
  /// deep-cloned so maintenance can mutate them without disturbing
  /// readers of the current generation. Unknown names are an error.
  Result<std::unique_ptr<Database>> ForkForMaintenance(
      const std::vector<std::string>& cow_tables) const;

  /// Commits a finished generation build: adopts every table of `build`
  /// (sharing its pointers) and advances the generation id. Tables in
  /// this database but not in `build` are an error (a build forks all
  /// tables, mutating only its private clones).
  Status AdoptTablesFrom(Database* build);

  /// Serialises every table's raw columnar storage into `dir` (implemented
  /// in engine/checkpoint.cc). One binary file per table plus a MANIFEST,
  /// which is written last (via tmp + rename) so a crash mid-checkpoint
  /// never leaves a manifest pointing at missing or partial table files.
  /// Derived state (hash indexes, zone maps) is not checkpointed — it
  /// rebuilds lazily after load.
  Status SaveCheckpoint(const std::string& dir) const;

  /// Restores the database from a checkpoint directory into this (empty)
  /// database; table schemas come from the manifest. Any CRC mismatch in
  /// manifest or table sections yields kDataLoss. This is the deep
  /// (heap-materialising, fully CRC-verified) path.
  Status LoadCheckpoint(const std::string& dir);

  /// O(1) cold start: attaches the checkpoint via mmap without
  /// materialising column payloads — columns point straight into the
  /// mapped files (zero-copy strings included) and copy-on-write to heap
  /// only if mutated. Header and directory CRCs are verified; payload
  /// bytes are trusted until first deep read (use LoadCheckpoint when
  /// end-to-end verification is required, e.g. crash recovery).
  Status AttachCheckpoint(const std::string& dir);

  /// Parses and executes a SELECT with the database's default planner
  /// options.
  Result<QueryResult> Query(const std::string& sql);
  /// Parses and executes with explicit options (benchmarks use this to
  /// compare the star-transformation and hash-join paths). A non-null
  /// `governor` overrides the options' limits and lets another thread
  /// cancel the running query.
  Result<QueryResult> Query(const std::string& sql,
                            const PlannerOptions& options,
                            ExecStats* stats = nullptr,
                            QueryGovernor* governor = nullptr);

  /// Executes the statement and returns its plan trace (one line per
  /// scan / semi-join reduction / join / aggregation) plus row counters —
  /// an EXPLAIN ANALYZE equivalent.
  Result<std::string> Explain(const std::string& sql);

  PlannerOptions& default_options() { return default_options_; }

 private:
  std::map<std::string, std::shared_ptr<EngineTable>> tables_;
  uint64_t generation_ = 1;
  PlannerOptions default_options_;
};

/// Executes a SELECT against a pinned facade generation — the overlap
/// path: query streams run on the generation they acquired while data
/// maintenance builds and publishes the next one. The caller's shared_ptr
/// keeps the generation alive for the query's duration.
Result<QueryResult> QueryFacade(const DataFacade& facade,
                                const std::string& sql,
                                const PlannerOptions& options,
                                ExecStats* stats = nullptr,
                                QueryGovernor* governor = nullptr);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_DATABASE_H_
