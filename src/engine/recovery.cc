#include "engine/recovery.h"

#include <chrono>
#include <filesystem>
#include <set>
#include <utility>

#include "util/bytes.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

// Cell encoding inside WAL payloads: u8 tag 0 = NULL, 1 = numeric (the raw
// int64 a StorageColumn holds — int, decimal cents, or date JDN), 2 =
// string. Decoding restores the Value kind from the column's schema type,
// so a logged cell round-trips through SetValue/AppendValue into storage
// byte-identically.
constexpr uint8_t kCellNull = 0;
constexpr uint8_t kCellNum = 1;
constexpr uint8_t kCellStr = 2;

void PutCell(std::string* out, const Value& v) {
  if (v.is_null()) {
    out->push_back(static_cast<char>(kCellNull));
  } else if (v.kind() == Value::Kind::kString) {
    out->push_back(static_cast<char>(kCellStr));
    PutLenString(out, v.AsString());
  } else {
    out->push_back(static_cast<char>(kCellNum));
    PutU64(out, static_cast<uint64_t>(v.AsInt()));
  }
}

Result<Value> ReadCell(ByteReader* reader, ColumnType type,
                       const std::string& ctx) {
  TPCDS_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kCellNull:
      return Value::Null();
    case kCellStr: {
      TPCDS_ASSIGN_OR_RETURN(std::string s, reader->ReadLenString());
      return Value::Str(std::move(s));
    }
    case kCellNum: {
      TPCDS_ASSIGN_OR_RETURN(uint64_t raw, reader->ReadU64());
      int64_t num = static_cast<int64_t>(raw);
      switch (type) {
        case ColumnType::kIdentifier:
        case ColumnType::kInteger:
          return Value::Int(num);
        case ColumnType::kDecimal:
          return Value::Dec(Decimal::FromCents(num));
        case ColumnType::kDate:
          return Value::Dt(Date(static_cast<int32_t>(num)));
        default:
          return Status::DataLoss(ctx + ": numeric cell in string column");
      }
    }
    default:
      return Status::DataLoss(ctx + ": invalid cell tag " +
                              std::to_string(tag));
  }
}

std::string EncodeOpMarker(const std::string& op_name) {
  std::string payload;
  PutLenString(&payload, op_name);
  return payload;
}

}  // namespace

Status WalSession::Log(WalRecordType type, const std::string& payload) {
  if (writer_ == nullptr) return Status::OK();
  return writer_->Append(type, payload).status();
}

Status WalSession::BeginOp(const std::string& op_name) {
  return Log(WalRecordType::kOpBegin, EncodeOpMarker(op_name));
}

Status WalSession::CommitOp(const std::string& op_name,
                            int64_t rows_affected) {
  if (writer_ == nullptr) return Status::OK();
  std::string payload = EncodeOpMarker(op_name);
  PutU64(&payload, static_cast<uint64_t>(rows_affected));
  return writer_->AppendCommit(payload).status();
}

Status WalSession::SetCell(EngineTable* table, int64_t row, int col,
                           const Value& v) {
  Value before = table->GetValue(row, col);
  table->SetValue(row, col, v);
  std::string payload;
  PutLenString(&payload, table->name());
  PutU64(&payload, static_cast<uint64_t>(row));
  PutU32(&payload, static_cast<uint32_t>(col));
  PutCell(&payload, before);
  // After-image read back from storage, not the caller's argument: what
  // got stored is what must replay.
  PutCell(&payload, table->GetValue(row, col));
  Status logged = Log(WalRecordType::kUpdateCell, payload);
  if (!logged.ok()) {
    table->SetValue(row, col, before);
    return logged;
  }
  AppliedRecord rec;
  rec.type = WalRecordType::kUpdateCell;
  rec.table = table;
  rec.row = row;
  rec.col = col;
  rec.before = std::move(before);
  applied_.push_back(std::move(rec));
  return Status::OK();
}

Status WalSession::AppendRowValues(EngineTable* table,
                                   const std::vector<Value>& row) {
  TPCDS_RETURN_NOT_OK(table->AppendRowValues(row));
  return LogAppendedRow(table);
}

Status WalSession::AppendRowStrings(EngineTable* table,
                                    const std::vector<std::string>& fields) {
  TPCDS_RETURN_NOT_OK(table->AppendRowStrings(fields));
  return LogAppendedRow(table);
}

Status WalSession::LogAppendedRow(EngineTable* table) {
  const int64_t new_row = table->num_rows() - 1;
  std::string payload;
  PutLenString(&payload, table->name());
  PutU32(&payload, static_cast<uint32_t>(table->num_columns()));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    PutCell(&payload, table->GetValue(new_row, static_cast<int>(c)));
  }
  Status logged = Log(WalRecordType::kAppendRow, payload);
  if (!logged.ok()) {
    TPCDS_RETURN_NOT_OK(table->TruncateRows(new_row));
    return logged;
  }
  AppliedRecord rec;
  rec.type = WalRecordType::kAppendRow;
  rec.table = table;
  applied_.push_back(std::move(rec));
  return Status::OK();
}

Result<int64_t> WalSession::DeleteRows(
    EngineTable* table, const std::vector<int64_t>& sorted_rows) {
  if (sorted_rows.empty()) return static_cast<int64_t>(0);
  std::vector<std::vector<Value>> images;
  images.reserve(sorted_rows.size());
  const size_t ncols = table->num_columns();
  for (int64_t r : sorted_rows) {
    std::vector<Value> image;
    image.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      image.push_back(table->GetValue(r, static_cast<int>(c)));
    }
    images.push_back(std::move(image));
  }
  int64_t removed = table->DeleteRows(sorted_rows);
  std::string payload;
  PutLenString(&payload, table->name());
  PutU32(&payload, static_cast<uint32_t>(ncols));
  PutU32(&payload, static_cast<uint32_t>(sorted_rows.size()));
  for (int64_t r : sorted_rows) PutU64(&payload, static_cast<uint64_t>(r));
  for (const std::vector<Value>& image : images) {
    for (const Value& v : image) PutCell(&payload, v);
  }
  Status logged = Log(WalRecordType::kDeleteRows, payload);
  if (!logged.ok()) {
    TPCDS_RETURN_NOT_OK(table->ReinsertRows(sorted_rows, images));
    return logged;
  }
  AppliedRecord rec;
  rec.type = WalRecordType::kDeleteRows;
  rec.table = table;
  rec.deleted_rows = sorted_rows;
  rec.deleted_images = std::move(images);
  applied_.push_back(std::move(rec));
  return removed;
}

Status WalSession::UndoToMark(size_t mark) {
  while (applied_.size() > mark) {
    AppliedRecord& rec = applied_.back();
    switch (rec.type) {
      case WalRecordType::kUpdateCell:
        rec.table->SetValue(rec.row, rec.col, rec.before);
        break;
      case WalRecordType::kAppendRow:
        TPCDS_RETURN_NOT_OK(
            rec.table->TruncateRows(rec.table->num_rows() - 1));
        break;
      case WalRecordType::kDeleteRows:
        TPCDS_RETURN_NOT_OK(
            rec.table->ReinsertRows(rec.deleted_rows, rec.deleted_images));
        break;
      default:
        return Status::Internal("WalSession: cannot undo record type " +
                                std::to_string(static_cast<int>(rec.type)));
    }
    applied_.pop_back();
  }
  return Status::OK();
}

namespace {

/// Applies one committed mutation record to the recovering database.
Status ApplyRecord(Database* db, const WalRecord& record,
                   std::set<std::string>* touched) {
  const std::string ctx = "wal record lsn " + std::to_string(record.lsn);
  ByteReader reader(record.payload, ctx);
  TPCDS_ASSIGN_OR_RETURN(std::string table_name, reader.ReadLenString());
  EngineTable* table = db->FindTable(table_name);
  if (table == nullptr) {
    return Status::DataLoss(ctx + ": unknown table '" + table_name + "'");
  }
  touched->insert(table_name);
  switch (record.type) {
    case WalRecordType::kUpdateCell: {
      TPCDS_ASSIGN_OR_RETURN(uint64_t row, reader.ReadU64());
      TPCDS_ASSIGN_OR_RETURN(uint32_t col, reader.ReadU32());
      if (col >= table->num_columns() ||
          static_cast<int64_t>(row) >= table->num_rows()) {
        return Status::DataLoss(ctx + ": cell out of range for " +
                                table_name);
      }
      ColumnType type = table->column_meta(col).type;
      TPCDS_ASSIGN_OR_RETURN(Value before, ReadCell(&reader, type, ctx));
      (void)before;  // the redo pass only needs the after-image
      TPCDS_ASSIGN_OR_RETURN(Value after, ReadCell(&reader, type, ctx));
      table->SetValue(static_cast<int64_t>(row), static_cast<int>(col),
                      after);
      return Status::OK();
    }
    case WalRecordType::kAppendRow: {
      TPCDS_ASSIGN_OR_RETURN(uint32_t ncells, reader.ReadU32());
      if (ncells != table->num_columns()) {
        return Status::DataLoss(ctx + ": arity mismatch for " + table_name);
      }
      std::vector<Value> row;
      row.reserve(ncells);
      for (uint32_t c = 0; c < ncells; ++c) {
        TPCDS_ASSIGN_OR_RETURN(
            Value v, ReadCell(&reader, table->column_meta(c).type, ctx));
        row.push_back(std::move(v));
      }
      return table->AppendRowValues(row);
    }
    case WalRecordType::kDeleteRows: {
      TPCDS_ASSIGN_OR_RETURN(uint32_t ncols, reader.ReadU32());
      if (ncols != table->num_columns()) {
        return Status::DataLoss(ctx + ": arity mismatch for " + table_name);
      }
      TPCDS_ASSIGN_OR_RETURN(uint32_t k, reader.ReadU32());
      std::vector<int64_t> rows;
      rows.reserve(k);
      for (uint32_t i = 0; i < k; ++i) {
        TPCDS_ASSIGN_OR_RETURN(uint64_t r, reader.ReadU64());
        rows.push_back(static_cast<int64_t>(r));
      }
      // The before-images only matter for undo; decode (and discard) them
      // so corruption inside the record is still detected.
      for (uint32_t i = 0; i < k; ++i) {
        for (uint32_t c = 0; c < ncols; ++c) {
          TPCDS_ASSIGN_OR_RETURN(
              Value v, ReadCell(&reader, table->column_meta(c).type, ctx));
          (void)v;
        }
      }
      if (!rows.empty() && rows.back() >= table->num_rows()) {
        return Status::DataLoss(ctx + ": delete row out of range for " +
                                table_name);
      }
      table->DeleteRows(rows);
      return Status::OK();
    }
    default:
      return Status::DataLoss(ctx + ": unexpected record type " +
                              std::to_string(static_cast<int>(record.type)));
  }
}

Result<std::string> DecodeOpName(const WalRecord& record) {
  ByteReader reader(record.payload,
                    "wal record lsn " + std::to_string(record.lsn));
  return reader.ReadLenString();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = StringPrintf(
      "recovery: %lld tables restored, %lld/%lld WAL records replayed, "
      "%lld ops committed, %lld uncommitted op(s) discarded, "
      "%llu torn byte(s) truncated, %.3fs\n",
      static_cast<long long>(tables_restored),
      static_cast<long long>(records_replayed),
      static_cast<long long>(records_scanned),
      static_cast<long long>(ops_replayed),
      static_cast<long long>(ops_discarded),
      static_cast<unsigned long long>(torn_bytes), seconds);
  if (!replayed_ops.empty()) {
    out += "  replayed: " + Join(replayed_ops, ", ") + "\n";
  }
  if (!tables_touched.empty()) {
    out += "  tables touched: " + Join(tables_touched, ", ") + "\n";
  }
  return out;
}

Result<RecoveryReport> Recover(Database* db,
                               const std::string& checkpoint_dir,
                               const std::string& wal_path) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryReport report;
  TPCDS_RETURN_NOT_OK(db->LoadCheckpoint(checkpoint_dir));
  report.tables_restored = static_cast<int64_t>(db->TableNames().size());
  const auto finish = [&]() {
    report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
  };
  // No WAL (or none was ever written): recover to the checkpoint alone.
  if (wal_path.empty() || !std::filesystem::exists(wal_path)) {
    return finish();
  }
  TPCDS_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(wal_path));
  report.torn_bytes = wal.torn_bytes;
  report.records_scanned = static_cast<int64_t>(wal.records.size());
  std::set<std::string> touched;
  std::vector<const WalRecord*> pending;
  bool in_op = false;
  for (const WalRecord& record : wal.records) {
    switch (record.type) {
      case WalRecordType::kOpBegin: {
        if (in_op) {
          return Status::DataLoss(
              "wal: operation begins at lsn " + std::to_string(record.lsn) +
              " while the previous operation is still open");
        }
        in_op = true;
        pending.clear();
        break;
      }
      case WalRecordType::kOpCommit: {
        if (!in_op) {
          return Status::DataLoss("wal: commit without begin at lsn " +
                                  std::to_string(record.lsn));
        }
        TPCDS_ASSIGN_OR_RETURN(std::string op_name, DecodeOpName(record));
        for (const WalRecord* mutation : pending) {
          TPCDS_RETURN_NOT_OK(ApplyRecord(db, *mutation, &touched));
        }
        report.records_replayed += static_cast<int64_t>(pending.size());
        ++report.ops_replayed;
        report.replayed_ops.push_back(std::move(op_name));
        pending.clear();
        in_op = false;
        break;
      }
      default: {
        if (!in_op) {
          return Status::DataLoss("wal: mutation outside operation at lsn " +
                                  std::to_string(record.lsn));
        }
        pending.push_back(&record);
        break;
      }
    }
  }
  if (in_op) report.ops_discarded = 1;
  report.tables_touched.assign(touched.begin(), touched.end());
  return finish();
}

}  // namespace tpcds
