#ifndef TPCDS_ENGINE_PLAN_H_
#define TPCDS_ENGINE_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/ast.h"
#include "engine/batch.h"
#include "engine/planner.h"
#include "engine/rowset.h"
#include "util/result.h"

namespace tpcds {

class DataFacade;

/// Physical operator kinds. One tagged struct (like Expr) keeps the tree
/// walkable without a visitor hierarchy; per-kind payload fields below.
enum class PlanKind {
  kScan,            // base-table scan with pruned columns + pushed filters
  kCteRef,          // reference to a materialised WITH-CTE result
  kDerived,         // derived table (subselect in FROM), re-qualified
  kIndexJoin,       // probe a base table's hash index from the left input
  kSemiJoinReduce,  // star transformation: filter fact by dim key set
  kHashJoin,        // hash (or nested-loop when no equi keys) join
  kFilter,          // residual predicate application
  kAggregate,       // grouped aggregation (plain or ROLLUP)
  kWindow,          // window functions appended as extra columns
  kProject,         // select-list projection + hidden passthrough columns
  kDistinct,        // duplicate elimination over the visible prefix
  kSort,            // ORDER BY
  kTopK,            // fused ORDER BY + LIMIT: bounded heap, no full sort
  kLimit,           // LIMIT
  kTruncate,        // drop hidden columns at select-core boundaries
  kSetOp,           // UNION [ALL] / INTERSECT / EXCEPT chain
};

/// One aggregate occurrence, deduplicated by canonical expression text.
struct PlanAggSpec {
  std::string key;       // canonical text (dedup / rewrite key)
  std::string function;  // SUM/MIN/MAX/AVG/COUNT/STDDEV_SAMP
  bool distinct = false;
  bool star = false;     // COUNT(*)
  const Expr* arg = nullptr;
};

/// One window function, with its inputs already rewritten against the
/// aggregate output (rewrites happen at plan time; the executor only binds).
struct PlanWindowFn {
  std::string function;
  bool star = false;
  const Expr* arg = nullptr;
  std::vector<const Expr*> partition_by;
  std::vector<const Expr*> order_by;
  std::vector<bool> order_desc;
  std::string out_col;  // "#win<i>"
};

/// One select-list output. Either a bound-at-open expression or a direct
/// passthrough of an input slot (star expansion).
struct PlanProjection {
  const Expr* expr = nullptr;  // nullptr -> passthrough of `slot`
  int slot = -1;
};

struct PlanSortKey {
  const Expr* expr = nullptr;  // nullptr -> visible-column ordinal
  int ordinal = -1;            // 0-based when expr == nullptr
  bool desc = false;
};

/// An equi-join key pair; `left` resolves in the left child's schema,
/// `right` in the right child's.
struct PlanEquiKey {
  const Expr* left = nullptr;
  const Expr* right = nullptr;
};

/// Per-operator execution counters, filled in by the executor.
struct PlanOpStats {
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double seconds = 0.0;  // self time (children excluded)
  bool executed = false;
  // Vectorized-path observability (EXPLAIN renders these when non-zero).
  int64_t morsels_pruned = 0;   // morsels skipped via zone maps
  int64_t bloom_rejects = 0;    // rows rejected by a Bloom filter
  bool vectorized = false;      // operator ran the columnar fast path
  // Top-K observability: input rows seen vs. rows kept by the bounded
  // heaps — the memory-budget win over a full materialised sort.
  int64_t topk_seen = 0;
  int64_t topk_kept = 0;
  // Storage payload bytes this operator's scan read (morsel-granular:
  // pruned morsels don't count, and encoded columns count their encoded —
  // not decoded — footprint).
  int64_t bytes_touched = 0;
  // Plan-time cardinality estimate (engine/cost.h), filled in when the
  // plan was built with PlannerOptions::cost_based; negative = none.
  double est_rows = -1.0;
};

/// A physical plan operator. Output schema (`schema` + `num_visible`) is
/// fixed at plan time: the executor binds expressions against it once per
/// operator open, so the per-row path never resolves names.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<std::shared_ptr<PlanNode>> children;
  std::vector<RowSet::Col> schema;
  size_t num_visible = 0;  // 0 = all visible (RowSet convention)

  /// Result shared by several parents (a star-transformed dimension feeds
  /// both its semi-join reduction and the final hash join): executed once,
  /// cached by the executor, and treated as read-only by all consumers.
  bool memoize = false;

  // kScan
  std::string table_name;  // catalog key (lower-cased)
  std::string alias;
  std::vector<int> scan_cols;  // storage column indices, pruned

  // kScan pushed filters / kFilter predicates (may carry subqueries on
  // kFilter; the executor evaluates those while binding).
  std::vector<const Expr*> predicates;

  // kScan vectorized fast path: `predicates` split into typed kernels and
  // the residual expressions the kernels could not reproduce exactly.
  // Invariant: kernels + residual_predicates ≡ predicates, which stays
  // intact as the fallback path and for EXPLAIN labels.
  std::vector<ScanKernel> kernels;
  std::vector<const Expr*> residual_predicates;

  // kCteRef / kDerived
  std::string cte_name;   // lower-cased CTE key
  std::string qualifier;  // FROM alias the output is re-qualified under

  // kIndexJoin
  int index_col = -1;
  const Expr* probe_key = nullptr;  // over the left child's schema

  // kSemiJoinReduce (children = {fact, dim})
  const Expr* fact_key = nullptr;
  const Expr* dim_key = nullptr;

  // kHashJoin (children = {left, right})
  std::vector<PlanEquiKey> equi;
  std::vector<const Expr*> residual;
  bool left_outer = false;

  // kAggregate
  std::vector<const Expr*> group_by;
  bool rollup = false;
  std::vector<PlanAggSpec> aggs;

  // kWindow
  std::vector<PlanWindowFn> windows;

  // kProject
  std::vector<PlanProjection> projections;

  // kSort / kTopK
  std::vector<PlanSortKey> sort_keys;

  // kLimit / kTopK
  int64_t limit = -1;

  // kSetOp: children = {first, branch...}; set_kinds[i] applies child i+1.
  std::vector<SelectStmt::SetOpBranch::Kind> set_kinds;

  mutable PlanOpStats stats;
};

/// A planned statement: CTE plans in definition order, then the root.
/// The plan borrows the SelectStmt AST it was built from (expression
/// pointers reach into it), so the statement must outlive the plan;
/// expressions synthesised by plan-time rewrites live in `owned_exprs`.
struct PhysicalPlan {
  std::vector<std::pair<std::string, std::shared_ptr<PlanNode>>> ctes;
  std::shared_ptr<PlanNode> root;
  /// Lower-cased CTE name -> result schema; subquery planning reuses it.
  std::map<std::string, std::vector<RowSet::Col>> cte_schemas;
  std::vector<std::unique_ptr<Expr>> owned_exprs;
};

/// Static display label for one operator (EXPLAIN; no runtime counters).
std::string PlanNodeLabel(const PlanNode& node);

/// Builds the physical plan for `stmt` (including its CTEs). Pure schema
/// computation: no table data is touched.
Result<PhysicalPlan> BuildPlan(const DataFacade* facade,
                               const SelectStmt& stmt,
                               const PlannerOptions& options);

/// Plans an uncorrelated subquery (select core only — a subquery's own
/// CTEs are out of scope, matching executor semantics), resolving CTE
/// references against the enclosing plan's schemas.
Result<PhysicalPlan> BuildSubqueryPlan(
    const DataFacade* facade, const SelectStmt& stmt,
    const PlannerOptions& options,
    const std::map<std::string, std::vector<RowSet::Col>>& cte_schemas);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_PLAN_H_
