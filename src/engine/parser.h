#ifndef TPCDS_ENGINE_PARSER_H_
#define TPCDS_ENGINE_PARSER_H_

#include <memory>
#include <string>

#include "engine/ast.h"
#include "util/result.h"

namespace tpcds {

/// Parses one SQL SELECT statement (optionally prefixed by WITH-CTEs and
/// followed by UNION ALL branches) into an AST.
///
/// The accepted dialect is the SQL-99 subset the TPC-DS query templates
/// use: joins (comma / INNER / LEFT ... ON), WHERE with AND/OR/NOT,
/// BETWEEN / IN (list or subquery) / LIKE / IS NULL, GROUP BY / HAVING,
/// aggregates incl. DISTINCT, window aggregates and RANK/ROW_NUMBER with
/// OVER (PARTITION BY ... [ORDER BY ...]), CASE, CAST, scalar and EXISTS
/// subqueries, ORDER BY (expressions, aliases or ordinals) and LIMIT.
Result<std::shared_ptr<SelectStmt>> ParseSql(const std::string& sql);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_PARSER_H_
