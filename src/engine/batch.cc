#include "engine/batch.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "engine/ast.h"
#include "engine/expr_eval.h"
#include "engine/rowset.h"
#include "engine/table.h"
#include "util/date.h"
#include "util/decimal.h"

namespace tpcds {
namespace {

// Floor division for b > 0 (C++ '/' truncates toward zero).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && r < 0) ? q - 1 : q;
}

// Cross-kind comparisons (int column vs decimal literal, date vs int, ...)
// go through Value::Compare's double coercion. Translating them onto exact
// int64 range bounds is only guaranteed to agree with the double compare
// when the literal is small enough that no rounding can cross an integer
// boundary; larger literals stay on the residual path.
constexpr int64_t kMaxExactLiteral = int64_t{1} << 44;

struct LitRational {
  int64_t num = 0;  // literal == num / den in the column's storage units
  int64_t den = 1;  // 1 or Decimal::kScale
};

enum class LitMap {
  kOk,
  kUnsupported,  // coercion not reproducible on raw storage
  kParseFail,    // date column vs unparseable date string: Compare == -1
};

// Maps a non-null literal onto the storage-unit axis of an int-backed
// column (identifier/integer: units, decimal: cents, date: JDN).
LitMap MapLiteral(ColumnType col_type, const Value& lit, LitRational* out) {
  switch (col_type) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      switch (lit.kind()) {
        case Value::Kind::kInt:
          *out = {lit.AsInt(), 1};
          return LitMap::kOk;
        case Value::Kind::kDate:
          *out = {lit.AsDate().jdn(), 1};
          return LitMap::kOk;
        case Value::Kind::kDecimal: {
          int64_t cents = lit.AsDecimal().cents();
          if (std::abs(cents) > kMaxExactLiteral) return LitMap::kUnsupported;
          *out = {cents, Decimal::kScale};
          return LitMap::kOk;
        }
        default:
          return LitMap::kUnsupported;
      }
    case ColumnType::kDecimal:
      switch (lit.kind()) {
        case Value::Kind::kDecimal:
          *out = {lit.AsDecimal().cents(), 1};
          return LitMap::kOk;
        case Value::Kind::kInt: {
          int64_t v = lit.AsInt();
          if (std::abs(v) > kMaxExactLiteral) return LitMap::kUnsupported;
          *out = {v * Decimal::kScale, 1};
          return LitMap::kOk;
        }
        case Value::Kind::kDate:
          *out = {int64_t{lit.AsDate().jdn()} * Decimal::kScale, 1};
          return LitMap::kOk;
        default:
          return LitMap::kUnsupported;
      }
    case ColumnType::kDate:
      switch (lit.kind()) {
        case Value::Kind::kDate:
          *out = {lit.AsDate().jdn(), 1};
          return LitMap::kOk;
        case Value::Kind::kInt: {
          int64_t v = lit.AsInt();
          if (std::abs(v) > kMaxExactLiteral) return LitMap::kUnsupported;
          *out = {v, 1};
          return LitMap::kOk;
        }
        case Value::Kind::kDecimal: {
          int64_t cents = lit.AsDecimal().cents();
          if (std::abs(cents) > kMaxExactLiteral) return LitMap::kUnsupported;
          *out = {cents, Decimal::kScale};
          return LitMap::kOk;
        }
        case Value::Kind::kString: {
          Result<Date> d = Date::Parse(lit.AsString());
          if (!d.ok()) return LitMap::kParseFail;
          *out = {(*d).jdn(), 1};
          return LitMap::kOk;
        }
        default:
          return LitMap::kUnsupported;
      }
    default:
      return LitMap::kUnsupported;
  }
}

struct PassRange {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  bool negated = false;      // "<>": pass outside [lo, hi]
  bool always_false = false;
};

// Inclusive raw-storage pass range for `column OP literal`, with the
// literal already mapped onto the storage axis. `op` is one of the six
// comparison operators with the column on the left.
bool RangeForCompare(const std::string& op, LitMap lm, const LitRational& q,
                     PassRange* out) {
  *out = PassRange();
  if (lm == LitMap::kUnsupported) return false;
  if (lm == LitMap::kParseFail) {
    // Date vs unparseable string always compares "less" (value.cc), so
    // <, <=, <> pass every non-null row and =, >, >= pass none.
    if (op == "<" || op == "<=" || op == "<>") return true;  // full range
    out->always_false = true;
    return true;
  }
  int64_t num = q.num, den = q.den;
  if (op == "<") {
    if (den == 1 && num == INT64_MIN) {
      out->always_false = true;
    } else {
      out->hi = den == 1 ? num - 1 : FloorDiv(num - 1, den);
    }
    return true;
  }
  if (op == "<=") {
    out->hi = den == 1 ? num : FloorDiv(num, den);
    return true;
  }
  if (op == ">") {
    if (den == 1 && num == INT64_MAX) {
      out->always_false = true;
    } else {
      out->lo = den == 1 ? num + 1 : FloorDiv(num, den) + 1;
    }
    return true;
  }
  if (op == ">=") {
    out->lo = den == 1 ? num : FloorDiv(num - 1, den) + 1;
    return true;
  }
  if (op == "=" || op == "<>") {
    bool exact = den == 1 || num % den == 0;
    if (op == "=") {
      if (!exact) {
        out->always_false = true;
      } else {
        out->lo = out->hi = num / den;
      }
    } else {
      if (exact) {
        out->lo = out->hi = num / den;
        out->negated = true;
      }  // inexact <>: no stored value equals it, full range passes
    }
    return true;
  }
  return false;
}

std::string FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // = and <> are symmetric
}

// Resolves a bare column reference to its storage column index, or -1.
int ResolveStorageCol(const Expr& e, const RowSet& scope,
                      const std::vector<int>& scan_cols) {
  if (e.tag != Expr::Tag::kColumnRef) return -1;
  Result<int> slot = scope.Resolve(e.qualifier, e.name);
  if (!slot.ok()) return -1;
  size_t s = static_cast<size_t>(*slot);
  if (s >= scan_cols.size()) return -1;
  return scan_cols[s];
}

void PushAlwaysFalse(int col, std::vector<ScanKernel>* out) {
  ScanKernel k;
  k.kind = ScanKernel::Kind::kAlwaysFalse;
  k.col = col;
  out->push_back(std::move(k));
}

bool MapStrCmp(const std::string& op, ScanKernel::Cmp* out) {
  if (op == "=") *out = ScanKernel::Cmp::kEq;
  else if (op == "<>") *out = ScanKernel::Cmp::kNe;
  else if (op == "<") *out = ScanKernel::Cmp::kLt;
  else if (op == "<=") *out = ScanKernel::Cmp::kLe;
  else if (op == ">") *out = ScanKernel::Cmp::kGt;
  else if (op == ">=") *out = ScanKernel::Cmp::kGe;
  else return false;
  return true;
}

bool CompileCompare(const Expr& pred, const RowSet& scope,
                    const EngineTable& table,
                    const std::vector<int>& scan_cols,
                    std::vector<ScanKernel>* out) {
  if (pred.children.size() != 2) return false;
  std::string op = pred.name;
  if (op == "==") op = "=";
  if (op == "!=") op = "<>";
  if (op != "=" && op != "<>" && op != "<" && op != "<=" && op != ">" &&
      op != ">=") {
    return false;
  }
  const Expr* colref = pred.children[0].get();
  const Expr* lit = pred.children[1].get();
  if (colref->tag == Expr::Tag::kLiteral &&
      lit->tag == Expr::Tag::kColumnRef) {
    // Value::Compare is antisymmetric across every coercion pair, so
    // `lit OP col` is exactly `col FLIP(OP) lit`.
    std::swap(colref, lit);
    op = FlipOp(op);
  }
  if (lit->tag != Expr::Tag::kLiteral) return false;
  int col = ResolveStorageCol(*colref, scope, scan_cols);
  if (col < 0) return false;
  const Value& v = lit->literal;
  if (v.is_null()) {  // comparison with NULL is never true
    PushAlwaysFalse(col, out);
    return true;
  }
  const StorageColumn& c = table.column(static_cast<size_t>(col));
  if (c.is_string()) {
    if (v.kind() != Value::Kind::kString) return false;
    ScanKernel k;
    k.kind = ScanKernel::Kind::kStrCompare;
    k.col = col;
    k.str = v.AsString();
    if (!MapStrCmp(op, &k.cmp)) return false;
    out->push_back(std::move(k));
    return true;
  }
  LitRational q;
  LitMap lm = MapLiteral(c.type(), v, &q);
  PassRange pr;
  if (!RangeForCompare(op, lm, q, &pr)) return false;
  if (pr.always_false) {
    PushAlwaysFalse(col, out);
    return true;
  }
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = col;
  k.lo = pr.lo;
  k.hi = pr.hi;
  k.negated = pr.negated;
  out->push_back(std::move(k));
  return true;
}

bool CompileBetween(const Expr& pred, const RowSet& scope,
                    const EngineTable& table,
                    const std::vector<int>& scan_cols,
                    std::vector<ScanKernel>* out) {
  if (pred.children.size() != 3) return false;
  const Expr& lo_e = *pred.children[1];
  const Expr& hi_e = *pred.children[2];
  if (lo_e.tag != Expr::Tag::kLiteral || hi_e.tag != Expr::Tag::kLiteral) {
    return false;
  }
  int col = ResolveStorageCol(*pred.children[0], scope, scan_cols);
  if (col < 0) return false;
  if (lo_e.literal.is_null() || hi_e.literal.is_null()) {
    // BETWEEN with a NULL bound evaluates to NULL even when negated.
    PushAlwaysFalse(col, out);
    return true;
  }
  const StorageColumn& c = table.column(static_cast<size_t>(col));
  if (c.is_string()) {
    // NOT BETWEEN on strings is a disjunction — one kernel can't carry it.
    if (pred.negated) return false;
    if (lo_e.literal.kind() != Value::Kind::kString ||
        hi_e.literal.kind() != Value::Kind::kString) {
      return false;
    }
    ScanKernel ge, le;
    ge.kind = le.kind = ScanKernel::Kind::kStrCompare;
    ge.col = le.col = col;
    ge.cmp = ScanKernel::Cmp::kGe;
    ge.str = lo_e.literal.AsString();
    le.cmp = ScanKernel::Cmp::kLe;
    le.str = hi_e.literal.AsString();
    out->push_back(std::move(ge));
    out->push_back(std::move(le));
    return true;
  }
  LitRational ql, qh;
  LitMap lml = MapLiteral(c.type(), lo_e.literal, &ql);
  LitMap lmh = MapLiteral(c.type(), hi_e.literal, &qh);
  PassRange rl, rh;
  if (!RangeForCompare(">=", lml, ql, &rl)) return false;
  if (!RangeForCompare("<=", lmh, qh, &rh)) return false;
  ScanKernel k;
  k.kind = ScanKernel::Kind::kIntRange;
  k.col = col;
  k.lo = rl.always_false ? INT64_MAX : rl.lo;
  k.hi = rh.always_false ? INT64_MIN : rh.hi;
  k.negated = pred.negated;
  out->push_back(std::move(k));
  return true;
}

bool CompileInList(const Expr& pred, const RowSet& scope,
                   const EngineTable& table,
                   const std::vector<int>& scan_cols,
                   std::vector<ScanKernel>* out) {
  if (pred.children.size() < 2) return false;
  // Only the all-literal form, which expr_eval compiles to a value set
  // (BoundInSet); mixed-expression lists have different NULL semantics.
  for (size_t i = 1; i < pred.children.size(); ++i) {
    if (pred.children[i]->tag != Expr::Tag::kLiteral) return false;
  }
  int col = ResolveStorageCol(*pred.children[0], scope, scan_cols);
  if (col < 0) return false;
  const StorageColumn& c = table.column(static_cast<size_t>(col));
  bool has_null = false;
  ScanKernel k;
  k.col = col;
  k.negated = pred.negated;
  if (c.is_string()) {
    k.kind = ScanKernel::Kind::kStrIn;
    for (size_t i = 1; i < pred.children.size(); ++i) {
      const Value& v = pred.children[i]->literal;
      if (v.is_null()) {
        has_null = true;
        continue;
      }
      if (v.kind() != Value::Kind::kString) return false;
      k.strs.push_back(v.AsString());
    }
    std::sort(k.strs.begin(), k.strs.end());
    k.strs.erase(std::unique(k.strs.begin(), k.strs.end()), k.strs.end());
  } else {
    k.kind = ScanKernel::Kind::kIntIn;
    for (size_t i = 1; i < pred.children.size(); ++i) {
      const Value& v = pred.children[i]->literal;
      if (v.is_null()) {
        has_null = true;
        continue;
      }
      int64_t raw = 0;
      switch (StorageValueForEquality(c.type(), v, &raw)) {
        case StorageEq::kExact:
          k.values.push_back(raw);
          break;
        case StorageEq::kNoMatch:
          break;  // can't equal any stored value; contributes nothing
        case StorageEq::kUnsupported:
          return false;
      }
    }
    std::sort(k.values.begin(), k.values.end());
    k.values.erase(std::unique(k.values.begin(), k.values.end()),
                   k.values.end());
  }
  if (pred.negated && has_null) {
    // x NOT IN (..., NULL) is never true: either x is in the list, or the
    // NULL membership test is unknown.
    PushAlwaysFalse(col, out);
    return true;
  }
  out->push_back(std::move(k));
  return true;
}

bool CompileLike(const Expr& pred, const RowSet& scope,
                 const EngineTable& table, const std::vector<int>& scan_cols,
                 std::vector<ScanKernel>* out) {
  if (pred.children.size() != 2) return false;
  const Expr& pat_e = *pred.children[1];
  if (pat_e.tag != Expr::Tag::kLiteral) return false;
  int col = ResolveStorageCol(*pred.children[0], scope, scan_cols);
  if (col < 0) return false;
  const StorageColumn& c = table.column(static_cast<size_t>(col));
  if (!c.is_string()) return false;
  const Value& pv = pat_e.literal;
  if (pv.is_null()) {
    PushAlwaysFalse(col, out);
    return true;
  }
  if (pv.kind() != Value::Kind::kString) return false;
  const std::string& pattern = pv.AsString();
  size_t wild = pattern.find_first_of("%_");
  if (wild == std::string::npos) {
    // No wildcard: LIKE degrades to equality.
    ScanKernel k;
    k.kind = ScanKernel::Kind::kStrCompare;
    k.col = col;
    k.cmp = pred.negated ? ScanKernel::Cmp::kNe : ScanKernel::Cmp::kEq;
    k.str = pattern;
    out->push_back(std::move(k));
    return true;
  }
  ScanKernel k;
  k.kind = ScanKernel::Kind::kStrLike;
  k.col = col;
  k.negated = pred.negated;
  k.str = pattern;
  k.like_prefix = pattern.substr(0, wild);
  k.prefix_only = wild + 1 == pattern.size() && pattern[wild] == '%';
  out->push_back(std::move(k));
  return true;
}

bool CompileIsNull(const Expr& pred, const RowSet& scope,
                   const std::vector<int>& scan_cols,
                   std::vector<ScanKernel>* out) {
  if (pred.children.size() != 1) return false;
  int col = ResolveStorageCol(*pred.children[0], scope, scan_cols);
  if (col < 0) return false;
  ScanKernel k;
  k.kind = ScanKernel::Kind::kNullTest;
  k.col = col;
  k.negated = pred.negated;
  out->push_back(std::move(k));
  return true;
}

}  // namespace

bool CompileScanKernel(const Expr& pred, const RowSet& scope,
                       const EngineTable& table,
                       const std::vector<int>& scan_cols,
                       std::vector<ScanKernel>* out) {
  switch (pred.tag) {
    case Expr::Tag::kBinary:
      return CompileCompare(pred, scope, table, scan_cols, out);
    case Expr::Tag::kBetween:
      return CompileBetween(pred, scope, table, scan_cols, out);
    case Expr::Tag::kInList:
      return CompileInList(pred, scope, table, scan_cols, out);
    case Expr::Tag::kLike:
      return CompileLike(pred, scope, table, scan_cols, out);
    case Expr::Tag::kIsNull:
      return CompileIsNull(pred, scope, scan_cols, out);
    default:
      return false;
  }
}

void ApplyScanKernel(const ScanKernel& kernel, const StorageColumn& column,
                     SelectionVector* sel) {
  SelectionVector& s = *sel;
  size_t w = 0;
  // Encoded numeric columns expose no raw array; decode row-at-a-time
  // through the accessor. (The string kinds below already go through
  // Str(), which handles dictionary columns.) The encoded *fast* paths
  // live in PrepareScanKernel / ApplyPreparedScanKernel.
  const bool decode = column.encoding() != ColEncoding::kPlain;
  switch (kernel.kind) {
    case ScanKernel::Kind::kAlwaysFalse:
      s.clear();
      return;
    case ScanKernel::Kind::kIntRange: {
      const uint8_t* nulls = column.nulls().data();
      const int64_t lo = kernel.lo, hi = kernel.hi;
      if (decode) {
        for (uint32_t r : s) {
          if (nulls[r]) continue;
          int64_t v = column.Num(r);
          bool in = v >= lo && v <= hi;
          if (in != kernel.negated) s[w++] = r;
        }
        break;
      }
      const int64_t* nums = column.nums().data();
      if (!kernel.negated) {
        for (uint32_t r : s) {
          if (!nulls[r] && nums[r] >= lo && nums[r] <= hi) s[w++] = r;
        }
      } else {
        for (uint32_t r : s) {
          if (!nulls[r] && (nums[r] < lo || nums[r] > hi)) s[w++] = r;
        }
      }
      break;
    }
    case ScanKernel::Kind::kIntIn: {
      const int64_t* nums = decode ? nullptr : column.nums().data();
      const uint8_t* nulls = column.nulls().data();
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        int64_t v = decode ? column.Num(r) : nums[r];
        bool in = std::binary_search(kernel.values.begin(),
                                     kernel.values.end(), v);
        if (in != kernel.negated) s[w++] = r;
      }
      break;
    }
    case ScanKernel::Kind::kStrCompare: {
      const uint8_t* nulls = column.nulls().data();
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        int cmp = column.Str(r).compare(kernel.str);
        bool keep = false;
        switch (kernel.cmp) {
          case ScanKernel::Cmp::kEq: keep = cmp == 0; break;
          case ScanKernel::Cmp::kNe: keep = cmp != 0; break;
          case ScanKernel::Cmp::kLt: keep = cmp < 0; break;
          case ScanKernel::Cmp::kLe: keep = cmp <= 0; break;
          case ScanKernel::Cmp::kGt: keep = cmp > 0; break;
          case ScanKernel::Cmp::kGe: keep = cmp >= 0; break;
        }
        if (keep) s[w++] = r;
      }
      break;
    }
    case ScanKernel::Kind::kStrIn: {
      const uint8_t* nulls = column.nulls().data();
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        bool in = std::binary_search(kernel.strs.begin(), kernel.strs.end(),
                                     column.Str(r));
        if (in != kernel.negated) s[w++] = r;
      }
      break;
    }
    case ScanKernel::Kind::kStrLike: {
      const uint8_t* nulls = column.nulls().data();
      const std::string& prefix = kernel.like_prefix;
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        std::string_view text = column.Str(r);
        bool match = text.size() >= prefix.size() &&
                     text.compare(0, prefix.size(), prefix) == 0;
        if (match && !kernel.prefix_only) {
          match = SqlLikeMatch(text, kernel.str);
        }
        if (match != kernel.negated) s[w++] = r;
      }
      break;
    }
    case ScanKernel::Kind::kNullTest: {
      const uint8_t* nulls = column.nulls().data();
      for (uint32_t r : s) {
        if ((nulls[r] != 0) != kernel.negated) s[w++] = r;
      }
      break;
    }
  }
  s.resize(w);
}

namespace {

// True when the non-null raw value `v` passes an int-backed kernel.
// Used per RLE *run*, so each run value is tested exactly once.
bool IntKernelPasses(const ScanKernel& k, int64_t v) {
  bool in = k.kind == ScanKernel::Kind::kIntRange
                ? v >= k.lo && v <= k.hi
                : std::binary_search(k.values.begin(), k.values.end(), v);
  return in != k.negated;
}

// True when the dictionary entry `text` passes a string kernel (kStrIn /
// kStrLike), negation included. Evaluated once per dictionary code.
bool StrKernelPasses(const ScanKernel& k, std::string_view text) {
  bool match;
  if (k.kind == ScanKernel::Kind::kStrIn) {
    match = std::binary_search(k.strs.begin(), k.strs.end(), text);
  } else {
    match = text.size() >= k.like_prefix.size() &&
            text.compare(0, k.like_prefix.size(), k.like_prefix) == 0;
    if (match && !k.prefix_only) match = SqlLikeMatch(text, k.str);
  }
  return match != k.negated;
}

}  // namespace

PreparedScanKernel PrepareScanKernel(const ScanKernel& kernel,
                                     const StorageColumn& column) {
  PreparedScanKernel p;
  p.kernel = &kernel;
  switch (column.encoding()) {
    case ColEncoding::kPlain:
      return p;
    case ColEncoding::kDict: {
      const uint32_t ndv = column.DictNdv();
      if (kernel.kind == ScanKernel::Kind::kStrCompare) {
        // The dictionary is sorted, so code order is string order and the
        // comparison becomes an integer code range. Find the literal's
        // insertion point with one binary search over the dictionary.
        uint32_t lb = 0, hb = ndv;
        while (lb < hb) {
          uint32_t mid = lb + (hb - lb) / 2;
          if (column.DictEntry(mid) < kernel.str) {
            lb = mid + 1;
          } else {
            hb = mid;
          }
        }
        const bool exact = lb < ndv && column.DictEntry(lb) == kernel.str;
        p.mode = PreparedScanKernel::Mode::kCodeRange;
        p.lo = 0;
        p.hi = static_cast<int64_t>(ndv) - 1;
        switch (kernel.cmp) {
          case ScanKernel::Cmp::kEq:
            p.lo = lb;
            p.hi = exact ? lb : int64_t{lb} - 1;  // empty when absent
            break;
          case ScanKernel::Cmp::kNe:
            if (exact) {
              p.lo = p.hi = lb;
              p.negated = true;
            }  // absent literal: every non-null row differs
            break;
          case ScanKernel::Cmp::kLt:
            p.hi = int64_t{lb} - 1;
            break;
          case ScanKernel::Cmp::kLe:
            p.hi = exact ? lb : int64_t{lb} - 1;
            break;
          case ScanKernel::Cmp::kGt:
            p.lo = exact ? int64_t{lb} + 1 : lb;
            break;
          case ScanKernel::Cmp::kGe:
            p.lo = lb;
            break;
        }
        return p;
      }
      if (kernel.kind == ScanKernel::Kind::kStrIn ||
          kernel.kind == ScanKernel::Kind::kStrLike) {
        // Evaluate the predicate once per dictionary entry; rows then test
        // one mask byte instead of matching strings.
        p.mode = PreparedScanKernel::Mode::kCodeMask;
        p.mask.resize(ndv);
        for (uint32_t c = 0; c < ndv; ++c) {
          p.mask[c] = StrKernelPasses(kernel, column.DictEntry(c)) ? 1 : 0;
        }
        return p;
      }
      return p;
    }
    case ColEncoding::kRle:
      if (kernel.kind == ScanKernel::Kind::kIntRange ||
          kernel.kind == ScanKernel::Kind::kIntIn) {
        p.mode = PreparedScanKernel::Mode::kRleRuns;
      }
      return p;
    case ColEncoding::kFor: {
      if (kernel.kind != ScanKernel::Kind::kIntRange) return p;
      // Shift the bounds into the packed (frame-subtracted) domain, so the
      // per-row compare works on the extracted bits without adding the
      // base back. Saturation keeps negated-range semantics exact: packed
      // values live in [0, maxp], so clamping lo into [0, maxp + 1] and hi
      // into [-1, maxp] never moves a boundary across a representable
      // value.
      const uint32_t width = column.ForWidth();
      const int64_t maxp =
          width == 0 ? 0
                     : static_cast<int64_t>((uint64_t{1} << width) - 1);
      auto shift = [&](int64_t bound, int64_t min, int64_t max) {
        __int128 s = static_cast<__int128>(bound) - column.ForBase();
        if (s < min) return min;
        if (s > max) return max;
        return static_cast<int64_t>(s);
      };
      p.mode = PreparedScanKernel::Mode::kForRange;
      p.negated = kernel.negated;
      p.lo = shift(kernel.lo, 0, maxp + 1);
      p.hi = shift(kernel.hi, -1, maxp);
      return p;
    }
  }
  return p;
}

void ApplyPreparedScanKernel(const PreparedScanKernel& prepared,
                             const StorageColumn& column,
                             SelectionVector* sel) {
  SelectionVector& s = *sel;
  size_t w = 0;
  const uint8_t* nulls = column.nulls().data();
  switch (prepared.mode) {
    case PreparedScanKernel::Mode::kGeneric:
      ApplyScanKernel(*prepared.kernel, column, sel);
      return;
    case PreparedScanKernel::Mode::kCodeRange: {
      const uint32_t* codes = column.DictCodes();
      const int64_t lo = prepared.lo, hi = prepared.hi;
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        const int64_t c = codes[r];
        const bool in = c >= lo && c <= hi;
        if (in != prepared.negated) s[w++] = r;
      }
      break;
    }
    case PreparedScanKernel::Mode::kCodeMask: {
      const uint32_t* codes = column.DictCodes();
      for (uint32_t r : s) {
        if (!nulls[r] && prepared.mask[codes[r]]) s[w++] = r;
      }
      break;
    }
    case PreparedScanKernel::Mode::kRleRuns: {
      // Two-pointer walk over the selection and the runs: each run value
      // is tested once, and a failing run's remaining selected rows are
      // skipped with one binary search instead of per-row compares.
      const int64_t* values = column.RleValues();
      const uint32_t* ends = column.RleEnds();
      size_t run = 0;
      size_t i = 0;
      while (i < s.size()) {
        const uint32_t r = s[i];
        while (ends[run] <= r) ++run;
        const uint32_t run_end = ends[run];
        if (IntKernelPasses(*prepared.kernel, values[run])) {
          for (; i < s.size() && s[i] < run_end; ++i) {
            if (!nulls[s[i]]) s[w++] = s[i];
          }
        } else {
          i = static_cast<size_t>(
              std::lower_bound(s.begin() + static_cast<ptrdiff_t>(i),
                               s.end(), run_end) -
              s.begin());
        }
      }
      break;
    }
    case PreparedScanKernel::Mode::kForRange: {
      const int64_t lo = prepared.lo, hi = prepared.hi;
      for (uint32_t r : s) {
        if (nulls[r]) continue;
        const int64_t p = static_cast<int64_t>(column.ForPacked(r));
        const bool in = p >= lo && p <= hi;
        if (in != prepared.negated) s[w++] = r;
      }
      break;
    }
  }
  s.resize(w);
}

void GatherRows(const EngineTable& table, const std::vector<int>& cols,
                const SelectionVector& sel,
                std::vector<std::vector<Value>>* out) {
  size_t base = out->size();
  out->resize(base + sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    (*out)[base + i].reserve(cols.size());
  }
  for (int col : cols) {
    const StorageColumn& c = table.column(static_cast<size_t>(col));
    const uint8_t* nulls = c.nulls().data();
    if (c.encoding() != ColEncoding::kPlain) {
      // Encoded columns have no raw typed array; decode only the selected
      // rows through the accessor (Get() reproduces the typed Value kinds).
      for (size_t i = 0; i < sel.size(); ++i) {
        (*out)[base + i].push_back(c.Get(sel[i]));
      }
      continue;
    }
    switch (c.type()) {
      case ColumnType::kIdentifier:
      case ColumnType::kInteger: {
        const int64_t* nums = c.nums().data();
        for (size_t i = 0; i < sel.size(); ++i) {
          uint32_t r = sel[i];
          (*out)[base + i].push_back(nulls[r] ? Value::Null()
                                              : Value::Int(nums[r]));
        }
        break;
      }
      case ColumnType::kDecimal: {
        const int64_t* nums = c.nums().data();
        for (size_t i = 0; i < sel.size(); ++i) {
          uint32_t r = sel[i];
          (*out)[base + i].push_back(
              nulls[r] ? Value::Null()
                       : Value::Dec(Decimal::FromCents(nums[r])));
        }
        break;
      }
      case ColumnType::kDate: {
        const int64_t* nums = c.nums().data();
        for (size_t i = 0; i < sel.size(); ++i) {
          uint32_t r = sel[i];
          (*out)[base + i].push_back(
              nulls[r] ? Value::Null()
                       : Value::Dt(Date(static_cast<int32_t>(nums[r]))));
        }
        break;
      }
      case ColumnType::kChar:
      case ColumnType::kVarchar:
        for (size_t i = 0; i < sel.size(); ++i) {
          uint32_t r = sel[i];
          (*out)[base + i].push_back(
              nulls[r] ? Value::Null()
                       : Value::Str(std::string(c.Str(r))));
        }
        break;
    }
  }
}

ZoneMap BuildZoneMap(const StorageColumn& column, size_t num_rows) {
  ZoneMap zm;
  zm.blocks.resize((num_rows + kBatchRows - 1) / kBatchRows);
  const bool decode = column.encoding() != ColEncoding::kPlain;
  const int64_t* nums = decode ? nullptr : column.nums().data();
  const uint8_t* nulls = column.nulls().data();
  for (size_t b = 0; b < zm.blocks.size(); ++b) {
    ZoneEntry& z = zm.blocks[b];
    size_t end = std::min(num_rows, (b + 1) * kBatchRows);
    for (size_t r = b * kBatchRows; r < end; ++r) {
      if (nulls[r]) {
        z.has_null = true;
        continue;
      }
      const int64_t v = decode ? column.Num(r) : nums[r];
      if (!z.has_nonnull) {
        z.min = z.max = v;
        z.has_nonnull = true;
      } else {
        z.min = std::min(z.min, v);
        z.max = std::max(z.max, v);
      }
    }
  }
  return zm;
}

bool KernelPrunesBlock(const ScanKernel& kernel, const ZoneEntry& zone) {
  switch (kernel.kind) {
    case ScanKernel::Kind::kAlwaysFalse:
      return true;
    case ScanKernel::Kind::kIntRange:
      if (!zone.has_nonnull) return true;
      if (!kernel.negated) {
        return zone.max < kernel.lo || zone.min > kernel.hi;
      }
      // Negated: prune when every value sits inside [lo, hi].
      return zone.min >= kernel.lo && zone.max <= kernel.hi;
    case ScanKernel::Kind::kIntIn:
      if (!zone.has_nonnull) return true;
      if (kernel.negated) return false;
      return kernel.values.empty() || zone.max < kernel.values.front() ||
             zone.min > kernel.values.back();
    case ScanKernel::Kind::kNullTest:
      return kernel.negated ? !zone.has_nonnull : !zone.has_null;
    default:
      return false;
  }
}

bool RangePrunesBlock(const ZoneEntry& zone, int64_t lo, int64_t hi) {
  return !zone.has_nonnull || zone.max < lo || zone.min > hi;
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys) {
  size_t bits = 64;
  while (bits < expected_keys * 10) bits <<= 1;
  words_.assign(bits / 64, 0);
  bit_mask_ = bits - 1;
}

void BloomFilter::Add(size_t hash) {
  uint64_t h1 = hash;
  uint64_t h2 = SplitMix64(hash) | 1;
  size_t b1 = h1 & bit_mask_;
  size_t b2 = (h1 + h2) & bit_mask_;
  words_[b1 >> 6] |= uint64_t{1} << (b1 & 63);
  words_[b2 >> 6] |= uint64_t{1} << (b2 & 63);
}

bool BloomFilter::MayContain(size_t hash) const {
  uint64_t h1 = hash;
  uint64_t h2 = SplitMix64(hash) | 1;
  size_t b1 = h1 & bit_mask_;
  size_t b2 = (h1 + h2) & bit_mask_;
  return (words_[b1 >> 6] & (uint64_t{1} << (b1 & 63))) != 0 &&
         (words_[b2 >> 6] & (uint64_t{1} << (b2 & 63))) != 0;
}

size_t HashStorageValue(ColumnType type, int64_t raw) {
  switch (type) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
    case ColumnType::kDate:
      return std::hash<int64_t>()(raw * 10007);
    case ColumnType::kDecimal:
      // Mirrors Value::Hash's integral-cents collapse.
      if (raw % Decimal::kScale == 0) {
        return std::hash<int64_t>()(raw / Decimal::kScale * 10007);
      }
      return std::hash<double>()(static_cast<double>(raw) / Decimal::kScale);
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      break;  // string columns hash the std::string payload directly
  }
  return 0;
}

StorageEq StorageValueForEquality(ColumnType type, const Value& key,
                                  int64_t* out) {
  if (key.is_null()) return StorageEq::kNoMatch;
  switch (type) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      switch (key.kind()) {
        case Value::Kind::kInt:
          *out = key.AsInt();
          return StorageEq::kExact;
        case Value::Kind::kDate:
          *out = key.AsDate().jdn();
          return StorageEq::kExact;
        case Value::Kind::kDecimal: {
          int64_t cents = key.AsDecimal().cents();
          if (std::abs(cents) > kMaxExactLiteral) {
            return StorageEq::kUnsupported;
          }
          if (cents % Decimal::kScale != 0) return StorageEq::kNoMatch;
          *out = cents / Decimal::kScale;
          return StorageEq::kExact;
        }
        default:
          return StorageEq::kUnsupported;
      }
    case ColumnType::kDecimal:
      switch (key.kind()) {
        case Value::Kind::kDecimal:
          *out = key.AsDecimal().cents();
          return StorageEq::kExact;
        case Value::Kind::kInt: {
          int64_t v = key.AsInt();
          if (std::abs(v) > kMaxExactLiteral) return StorageEq::kUnsupported;
          *out = v * Decimal::kScale;
          return StorageEq::kExact;
        }
        case Value::Kind::kDate:
          *out = int64_t{key.AsDate().jdn()} * Decimal::kScale;
          return StorageEq::kExact;
        default:
          return StorageEq::kUnsupported;
      }
    case ColumnType::kDate:
      switch (key.kind()) {
        case Value::Kind::kDate:
          *out = key.AsDate().jdn();
          return StorageEq::kExact;
        case Value::Kind::kInt: {
          int64_t v = key.AsInt();
          if (std::abs(v) > kMaxExactLiteral) return StorageEq::kUnsupported;
          *out = v;
          return StorageEq::kExact;
        }
        case Value::Kind::kDecimal: {
          int64_t cents = key.AsDecimal().cents();
          if (std::abs(cents) > kMaxExactLiteral) {
            return StorageEq::kUnsupported;
          }
          if (cents % Decimal::kScale != 0) return StorageEq::kNoMatch;
          *out = cents / Decimal::kScale;
          return StorageEq::kExact;
        }
        case Value::Kind::kString: {
          Result<Date> d = Date::Parse(key.AsString());
          if (!d.ok()) return StorageEq::kNoMatch;
          *out = (*d).jdn();
          return StorageEq::kExact;
        }
        default:
          return StorageEq::kUnsupported;
      }
    default:
      return StorageEq::kUnsupported;
  }
}

}  // namespace tpcds
