#ifndef TPCDS_ENGINE_AST_H_
#define TPCDS_ENGINE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/value.h"

namespace tpcds {

struct SelectStmt;

/// Expression AST produced by the SQL parser. One node type with a tag
/// keeps the tree walkable without a visitor hierarchy.
struct Expr {
  enum class Tag {
    kLiteral,       // value
    kColumnRef,     // qualifier (optional) + name
    kStar,          // COUNT(*)
    kBinary,        // op, children[0], children[1]
    kUnary,         // op ("-", "NOT"), children[0]
    kFunction,      // name, children = args, distinct flag
    kAggregate,     // name (SUM/MIN/MAX/AVG/COUNT), children[0] or Star
    kWindow,        // name, children[0] = arg, partition_by, order_by
    kCase,          // children = [when1, then1, when2, then2, ..., else?]
    kBetween,       // children = [expr, lo, hi]
    kInList,        // children = [expr, v1, v2, ...]; `negated`
    kInSubquery,    // children = [expr]; subquery; `negated`
    kScalarSubquery,  // subquery
    kExistsSubquery,  // subquery; `negated`
    kIsNull,        // children = [expr]; `negated`
    kLike,          // children = [expr, pattern]; `negated`
    kCast,          // children = [expr]; cast_type
  };

  Tag tag = Tag::kLiteral;
  Value literal;
  std::string qualifier;  // kColumnRef: table alias, may be empty
  std::string name;       // kColumnRef column / function / operator
  bool distinct = false;  // aggregate DISTINCT
  bool negated = false;   // NOT IN / NOT LIKE / IS NOT NULL / NOT EXISTS
  bool case_has_else = false;
  std::string cast_type;  // kCast: "date", "integer", "decimal", "char"
  std::vector<std::unique_ptr<Expr>> children;
  std::vector<std::unique_ptr<Expr>> partition_by;  // kWindow
  std::vector<std::unique_ptr<Expr>> order_by;      // kWindow (exprs only)
  std::vector<bool> order_desc;                     // kWindow
  std::shared_ptr<SelectStmt> subquery;  // kInSubquery/kScalarSubquery/kExists

  /// Deep copy (templates instantiate per stream; plans rewrite trees).
  std::unique_ptr<Expr> Clone() const;
};

/// One item of a SELECT list.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // empty -> derived from the expression
  bool is_star = false;
};

/// A FROM-clause item: base table or derived table, with optional alias,
/// plus the join that attaches it to the preceding items (for items after
/// the first when explicit JOIN syntax is used).
struct FromItem {
  std::string table_name;                 // base table when non-empty
  std::shared_ptr<SelectStmt> derived;    // derived table when set
  std::string alias;
  enum class JoinKind { kComma, kInner, kLeft } join_kind = JoinKind::kComma;
  std::unique_ptr<Expr> join_condition;   // ON ... for kInner/kLeft
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// A parsed SELECT statement (possibly a UNION ALL chain, possibly with
/// WITH-CTEs at the top level).
struct SelectStmt {
  // WITH name AS (select), ... — only on the outermost statement.
  std::vector<std::pair<std::string, std::shared_ptr<SelectStmt>>> ctes;

  std::vector<SelectItem> select_items;
  bool select_distinct = false;
  std::vector<FromItem> from_items;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  /// GROUP BY ROLLUP(...): emit all grouping-prefix subtotal levels with
  /// NULLs in the rolled-up key columns (SQL-99 OLAP amendment).
  bool group_rollup = false;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  /// Set-operation branches appended after this select, left-associative.
  struct SetOpBranch {
    enum class Kind { kUnionAll, kUnion, kIntersect, kExcept };
    Kind kind = Kind::kUnionAll;
    std::shared_ptr<SelectStmt> stmt;
  };
  std::vector<SetOpBranch> set_ops;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_AST_H_
