#include "engine/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "engine/table.h"

namespace tpcds {
namespace {

/// Equi-depth bucket target. 64 buckets keep the per-column footprint
/// around 1 KiB while bounding the interpolation error of a range
/// estimate to ~1/64 of the non-null rows per partial bucket.
constexpr size_t kHistogramBuckets = 64;

/// At most this many values feed a histogram; larger columns sample on a
/// deterministic stride so analysis stays one bounded pass.
constexpr size_t kHistogramSampleCap = 1 << 16;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Histogram BuildHistogram(std::vector<int64_t> sample) {
  Histogram h;
  if (sample.empty()) return h;
  std::sort(sample.begin(), sample.end());
  h.sample_rows = static_cast<int64_t>(sample.size());
  size_t buckets = std::min(kHistogramBuckets, sample.size());
  h.bounds.push_back(sample.front());
  size_t start = 0;
  for (size_t b = 0; b < buckets; ++b) {
    size_t end = (sample.size() * (b + 1)) / buckets;
    if (end <= start) continue;
    int64_t upper = sample[end - 1];
    // A slice ending inside the run of the minimum value (the only way
    // `upper` can equal the last bound: emitted buckets merge their
    // boundary run below) has no bucket yet — extend the slice into the
    // next bucket instead of dropping the rows, keeping bounds strictly
    // increasing and counts summing to the sample size.
    if (upper <= h.bounds.back()) continue;
    // Merge the run the boundary value continues into this bucket.
    while (end < sample.size() && sample[end] == upper) ++end;
    h.bounds.push_back(upper);
    h.counts.push_back(static_cast<int64_t>(end - start));
    start = end;
  }
  if (h.counts.empty()) {
    // Single distinct value: one degenerate bucket holding everything.
    h.bounds.assign({sample.front(), sample.back()});
    h.counts.assign({h.sample_rows});
  }
  return h;
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

}  // namespace

void HyperLogLog::AddHash(uint64_t hash) {
  size_t idx = static_cast<size_t>(hash >> (64 - kPrecision));
  uint64_t rest = hash << kPrecision;
  // Rank of the leftmost 1-bit in the remaining 52 bits, in [1, 53].
  uint8_t rank = rest == 0
                     ? static_cast<uint8_t>(64 - kPrecision + 1)
                     : static_cast<uint8_t>(std::countl_zero(rest) + 1);
  if (rank > registers_[idx]) registers_[idx] = rank;
}

int64_t HyperLogLog::Estimate() const {
  const double m = static_cast<double>(kRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / inv_sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting is more accurate while most registers are empty.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<int64_t>(std::llround(estimate));
}

uint64_t HashStatsInt(int64_t v) {
  return SplitMix64(static_cast<uint64_t>(v));
}

uint64_t HashStatsBytes(const char* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

double Histogram::SelectivityRange(int64_t lo, int64_t hi) const {
  if (empty() || lo > hi) return 0.0;
  if (hi < bounds.front() || lo > bounds.back()) return 0.0;
  double covered = 0.0;
  for (size_t b = 0; b + 1 < bounds.size(); ++b) {
    // Bucket b covers (bounds[b], bounds[b+1]]; treat the first bucket as
    // closed on the left by widening its lower edge by one.
    double blo = static_cast<double>(bounds[b]) + (b == 0 ? -1.0 : 0.0);
    double bhi = static_cast<double>(bounds[b + 1]);
    double qlo = std::max(blo, static_cast<double>(lo) - 1.0);
    double qhi = std::min(bhi, static_cast<double>(hi));
    if (qhi <= qlo) continue;
    covered +=
        static_cast<double>(counts[b]) * (qhi - qlo) / (bhi - blo);
  }
  return std::min(1.0, covered / static_cast<double>(sample_rows));
}

TableStats AnalyzeTable(const EngineTable& table) {
  TableStats stats;
  stats.row_count = table.num_rows();
  const size_t rows = static_cast<size_t>(table.num_rows());
  stats.columns.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const StorageColumn& col = table.column(c);
    ColumnStats& cs = stats.columns[c];
    cs.row_count = stats.row_count;
    const bool is_string = col.is_string();
    const size_t stride = std::max<size_t>(1, rows / kHistogramSampleCap);
    HyperLogLog hll;
    std::vector<int64_t> sample;
    if (!is_string) sample.reserve(std::min(rows, kHistogramSampleCap));
    for (size_t r = 0; r < rows; ++r) {
      if (col.IsNull(r)) {
        ++cs.null_count;
        continue;
      }
      if (is_string) {
        std::string_view s = col.Str(r);
        hll.AddHash(HashStatsBytes(s.data(), s.size()));
        continue;
      }
      int64_t v = col.Num(r);
      hll.AddHash(HashStatsInt(v));
      if (!cs.has_minmax) {
        cs.has_minmax = true;
        cs.min = cs.max = v;
      } else {
        cs.min = std::min(cs.min, v);
        cs.max = std::max(cs.max, v);
      }
      if (r % stride == 0) sample.push_back(v);
    }
    if (col.encoding() == ColEncoding::kDict) {
      cs.ndv = static_cast<int64_t>(col.DictNdv());
      cs.ndv_exact = true;
    } else {
      cs.ndv = std::clamp<int64_t>(hll.Estimate(),
                                   cs.NonNullRows() > 0 ? 1 : 0,
                                   cs.NonNullRows());
    }
    cs.histogram = BuildHistogram(std::move(sample));
  }
  return stats;
}

void SerializeTableStats(const TableStats& stats, std::string* out) {
  PutI64(out, stats.row_count);
  PutU32(out, static_cast<uint32_t>(stats.columns.size()));
  for (const ColumnStats& cs : stats.columns) {
    PutI64(out, cs.row_count);
    PutI64(out, cs.null_count);
    PutI64(out, cs.ndv);
    uint8_t flags = static_cast<uint8_t>((cs.ndv_exact ? 1 : 0) |
                                         (cs.has_minmax ? 2 : 0));
    out->push_back(static_cast<char>(flags));
    PutI64(out, cs.min);
    PutI64(out, cs.max);
    PutU32(out, static_cast<uint32_t>(cs.histogram.bounds.size()));
    for (int64_t b : cs.histogram.bounds) PutI64(out, b);
    for (int64_t n : cs.histogram.counts) PutI64(out, n);
    PutI64(out, cs.histogram.sample_rows);
  }
}

Result<TableStats> DeserializeTableStats(ByteReader* reader) {
  TableStats stats;
  TPCDS_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
  stats.row_count = static_cast<int64_t>(rows);
  TPCDS_ASSIGN_OR_RETURN(uint32_t cols, reader->ReadU32());
  stats.columns.resize(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnStats& cs = stats.columns[c];
    TPCDS_ASSIGN_OR_RETURN(uint64_t rc, reader->ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint64_t nc, reader->ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint64_t ndv, reader->ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint8_t flags, reader->ReadU8());
    TPCDS_ASSIGN_OR_RETURN(uint64_t mn, reader->ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint64_t mx, reader->ReadU64());
    cs.row_count = static_cast<int64_t>(rc);
    cs.null_count = static_cast<int64_t>(nc);
    cs.ndv = static_cast<int64_t>(ndv);
    cs.ndv_exact = (flags & 1) != 0;
    cs.has_minmax = (flags & 2) != 0;
    cs.min = static_cast<int64_t>(mn);
    cs.max = static_cast<int64_t>(mx);
    TPCDS_ASSIGN_OR_RETURN(uint32_t nbounds, reader->ReadU32());
    if (nbounds == 1) {
      return Status::DataLoss("column stats: malformed histogram");
    }
    cs.histogram.bounds.resize(nbounds);
    for (uint32_t i = 0; i < nbounds; ++i) {
      TPCDS_ASSIGN_OR_RETURN(uint64_t b, reader->ReadU64());
      cs.histogram.bounds[i] = static_cast<int64_t>(b);
    }
    if (nbounds > 1) {
      cs.histogram.counts.resize(nbounds - 1);
      for (uint32_t i = 0; i + 1 < nbounds; ++i) {
        TPCDS_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
        cs.histogram.counts[i] = static_cast<int64_t>(n);
      }
    }
    TPCDS_ASSIGN_OR_RETURN(uint64_t sr, reader->ReadU64());
    cs.histogram.sample_rows = static_cast<int64_t>(sr);
  }
  return stats;
}

}  // namespace tpcds
