#include "engine/parser.h"

#include <cstdlib>
#include <set>

#include "engine/lexer.h"

namespace tpcds {
namespace {

/// Keywords that terminate an implicit alias.
const std::set<std::string>& ClauseKeywords() {
  static const std::set<std::string>& kw = *new std::set<std::string>{
      "FROM",  "WHERE",  "GROUP", "HAVING", "ORDER", "LIMIT", "UNION",
      "JOIN",  "INNER",  "LEFT",  "RIGHT",  "FULL",  "ON",    "AS",
      "AND",   "OR",     "NOT",   "BETWEEN", "IN",   "LIKE",  "IS",
      "SELECT", "DISTINCT", "CASE", "WHEN", "THEN", "ELSE",  "END",
      "OVER",  "PARTITION", "BY",  "ASC",   "DESC",  "WITH",  "EXISTS",
      "CAST",  "INTERVAL", "DAY", "DAYS", "INTERSECT", "EXCEPT",
      "ROLLUP"};
  return kw;
}

bool IsAggregateName(const std::string& upper) {
  return upper == "SUM" || upper == "MIN" || upper == "MAX" ||
         upper == "AVG" || upper == "COUNT" || upper == "STDDEV_SAMP";
}

bool IsWindowOnlyName(const std::string& upper) {
  return upper == "RANK" || upper == "ROW_NUMBER" || upper == "DENSE_RANK";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<SelectStmt>> ParseStatement() {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> stmt,
                           ParseWithSelect());
    // Allow a trailing semicolon.
    if (PeekOp(";")) Advance();
    if (!AtEnd()) {
      return Status::ParseError("trailing tokens after statement near '" +
                                Peek().text + "'");
    }
    return stmt;
  }

 private:
  // ----------------------------------------------------------- utilities
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == Token::Type::kEnd; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == Token::Type::kIdentifier && t.upper == kw;
  }
  bool PeekOp(const char* op, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == Token::Type::kOperator && t.text == op;
  }
  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeOp(const char* op) {
    if (PeekOp(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!ConsumeOp(op)) {
      return Status::ParseError(std::string("expected '") + op +
                                "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }

  // --------------------------------------------------------- statements
  Result<std::shared_ptr<SelectStmt>> ParseWithSelect() {
    std::vector<std::pair<std::string, std::shared_ptr<SelectStmt>>> ctes;
    if (ConsumeKeyword("WITH")) {
      while (true) {
        if (Peek().type != Token::Type::kIdentifier) {
          return Status::ParseError("expected CTE name");
        }
        std::string name = Advance().text;
        TPCDS_RETURN_NOT_OK(ExpectKeyword("AS"));
        TPCDS_RETURN_NOT_OK(ExpectOp("("));
        TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> cte,
                               ParseSelectCore());
        TPCDS_RETURN_NOT_OK(ExpectOp(")"));
        ctes.emplace_back(std::move(name), std::move(cte));
        if (!ConsumeOp(",")) break;
      }
    }
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> stmt,
                           ParseSelectCore());
    stmt->ctes = std::move(ctes);
    return stmt;
  }

  /// SELECT ... [UNION ALL SELECT ...]* [ORDER BY ...] [LIMIT n]
  Result<std::shared_ptr<SelectStmt>> ParseSelectCore() {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<SelectStmt> stmt,
                           ParseBareSelect());
    while (PeekKeyword("UNION") || PeekKeyword("INTERSECT") ||
           PeekKeyword("EXCEPT")) {
      SelectStmt::SetOpBranch branch;
      if (ConsumeKeyword("UNION")) {
        branch.kind = ConsumeKeyword("ALL")
                          ? SelectStmt::SetOpBranch::Kind::kUnionAll
                          : SelectStmt::SetOpBranch::Kind::kUnion;
      } else if (ConsumeKeyword("INTERSECT")) {
        branch.kind = SelectStmt::SetOpBranch::Kind::kIntersect;
      } else {
        Advance();  // EXCEPT
        branch.kind = SelectStmt::SetOpBranch::Kind::kExcept;
      }
      TPCDS_ASSIGN_OR_RETURN(branch.stmt, ParseBareSelect());
      stmt->set_ops.push_back(std::move(branch));
    }
    if (ConsumeKeyword("ORDER")) {
      TPCDS_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        TPCDS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.desc = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != Token::Type::kNumber) {
        return Status::ParseError("expected number after LIMIT");
      }
      stmt->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  Result<std::shared_ptr<SelectStmt>> ParseBareSelect() {
    TPCDS_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_shared<SelectStmt>();
    stmt->select_distinct = ConsumeKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      if (PeekOp("*")) {
        Advance();
        item.is_star = true;
      } else {
        TPCDS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          if (Peek().type != Token::Type::kIdentifier) {
            return Status::ParseError("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == Token::Type::kIdentifier &&
                   ClauseKeywords().count(Peek().upper) == 0) {
          item.alias = Advance().text;
        }
      }
      stmt->select_items.push_back(std::move(item));
      if (!ConsumeOp(",")) break;
    }
    // FROM
    TPCDS_RETURN_NOT_OK(ExpectKeyword("FROM"));
    TPCDS_RETURN_NOT_OK(ParseFromList(stmt.get()));
    if (ConsumeKeyword("WHERE")) {
      TPCDS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      TPCDS_RETURN_NOT_OK(ExpectKeyword("BY"));
      bool rollup = ConsumeKeyword("ROLLUP");
      if (rollup) TPCDS_RETURN_NOT_OK(ExpectOp("("));
      while (true) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!ConsumeOp(",")) break;
      }
      if (rollup) TPCDS_RETURN_NOT_OK(ExpectOp(")"));
      stmt->group_rollup = rollup;
    }
    if (ConsumeKeyword("HAVING")) {
      TPCDS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  Status ParseFromList(SelectStmt* stmt) {
    TPCDS_ASSIGN_OR_RETURN(FromItem first, ParseFromItem());
    stmt->from_items.push_back(std::move(first));
    while (true) {
      if (ConsumeOp(",")) {
        TPCDS_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
        item.join_kind = FromItem::JoinKind::kComma;
        stmt->from_items.push_back(std::move(item));
        continue;
      }
      FromItem::JoinKind kind;
      if (PeekKeyword("JOIN") || PeekKeyword("INNER")) {
        ConsumeKeyword("INNER");
        TPCDS_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        kind = FromItem::JoinKind::kInner;
      } else if (PeekKeyword("LEFT")) {
        Advance();
        ConsumeKeyword("OUTER");
        TPCDS_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        kind = FromItem::JoinKind::kLeft;
      } else {
        break;
      }
      TPCDS_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      item.join_kind = kind;
      TPCDS_RETURN_NOT_OK(ExpectKeyword("ON"));
      TPCDS_ASSIGN_OR_RETURN(item.join_condition, ParseExpr());
      stmt->from_items.push_back(std::move(item));
    }
    return Status::OK();
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    if (ConsumeOp("(")) {
      TPCDS_ASSIGN_OR_RETURN(item.derived, ParseSelectCore());
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
    } else {
      if (Peek().type != Token::Type::kIdentifier) {
        return Status::ParseError("expected table name near '" +
                                  Peek().text + "'");
      }
      item.table_name = Advance().text;
    }
    if (ConsumeKeyword("AS")) {
      if (Peek().type != Token::Type::kIdentifier) {
        return Status::ParseError("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == Token::Type::kIdentifier &&
               ClauseKeywords().count(Peek().upper) == 0) {
      item.alias = Advance().text;
    }
    if (item.derived != nullptr && item.alias.empty()) {
      return Status::ParseError("derived table requires an alias");
    }
    return item;
  }

  // -------------------------------------------------------- expressions
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseNot());
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kUnary;
      e->name = "NOT";
      e->children.push_back(std::move(inner));
      return e;
    }
    return ParsePredicate();
  }

  Result<std::unique_ptr<Expr>> ParsePredicate() {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAdditive());
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("IN", 1) || PeekKeyword("LIKE", 1) ||
         PeekKeyword("BETWEEN", 1))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(left));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
      TPCDS_RETURN_NOT_OK(ExpectKeyword("AND"));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      return e;
    }
    if (ConsumeKeyword("IN")) {
      TPCDS_RETURN_NOT_OK(ExpectOp("("));
      if (PeekKeyword("SELECT") || PeekKeyword("WITH")) {
        auto e = std::make_unique<Expr>();
        e->tag = Expr::Tag::kInSubquery;
        e->negated = negated;
        e->children.push_back(std::move(left));
        TPCDS_ASSIGN_OR_RETURN(e->subquery, ParseSelectCore());
        TPCDS_RETURN_NOT_OK(ExpectOp(")"));
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kInList;
      e->negated = negated;
      e->children.push_back(std::move(left));
      while (true) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> v, ParseAdditive());
        e->children.push_back(std::move(v));
        if (!ConsumeOp(",")) break;
      }
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (ConsumeKeyword("LIKE")) {
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kLike;
      e->negated = negated;
      e->children.push_back(std::move(left));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pat, ParseAdditive());
      e->children.push_back(std::move(pat));
      return e;
    }
    if (PeekKeyword("IS")) {
      Advance();
      bool is_not = ConsumeKeyword("NOT");
      TPCDS_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kIsNull;
      e->negated = is_not;
      e->children.push_back(std::move(left));
      return e;
    }
    // Comparison operators.
    static const char* kComparisons[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kComparisons) {
      if (PeekOp(op)) {
        Advance();
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left,
                           ParseMultiplicative());
    while (PeekOp("+") || PeekOp("-") || PeekOp("||")) {
      std::string op = Advance().text;
      // Date arithmetic with INTERVAL: expr + INTERVAL 'n' DAY.
      if (PeekKeyword("INTERVAL")) {
        Advance();
        int64_t days = 0;
        if (Peek().type == Token::Type::kNumber ||
            Peek().type == Token::Type::kString) {
          days = std::strtoll(Advance().text.c_str(), nullptr, 10);
        } else {
          return Status::ParseError("expected interval quantity");
        }
        if (!ConsumeKeyword("DAY") && !ConsumeKeyword("DAYS")) {
          return Status::ParseError("only DAY intervals are supported");
        }
        auto lit = std::make_unique<Expr>();
        lit->tag = Expr::Tag::kLiteral;
        lit->literal = Value::Int(days);
        left = MakeBinary(op, std::move(left), std::move(lit));
        continue;
      }
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right,
                             ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseUnary());
    while (PeekOp("*") || PeekOp("/")) {
      std::string op = Advance().text;
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (ConsumeOp("-")) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kUnary;
      e->name = "-";
      e->children.push_back(std::move(inner));
      return e;
    }
    ConsumeOp("+");
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == Token::Type::kNumber) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kLiteral;
      if (t.text.find('.') != std::string::npos) {
        TPCDS_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(t.text));
        e->literal = Value::Dec(d);
      } else {
        e->literal = Value::Int(std::strtoll(t.text.c_str(), nullptr, 10));
      }
      return e;
    }
    if (t.type == Token::Type::kString) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kLiteral;
      e->literal = Value::Str(t.text);
      return e;
    }
    if (PeekOp("(")) {
      Advance();
      if (PeekKeyword("SELECT") || PeekKeyword("WITH")) {
        auto e = std::make_unique<Expr>();
        e->tag = Expr::Tag::kScalarSubquery;
        TPCDS_ASSIGN_OR_RETURN(e->subquery, ParseSelectCore());
        TPCDS_RETURN_NOT_OK(ExpectOp(")"));
        return e;
      }
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
      return inner;
    }
    if (t.type != Token::Type::kIdentifier) {
      return Status::ParseError("unexpected token '" + t.text + "'");
    }
    // DATE 'YYYY-MM-DD' literal.
    if (t.upper == "DATE" && Peek(1).type == Token::Type::kString) {
      Advance();
      const Token& lit = Advance();
      TPCDS_ASSIGN_OR_RETURN(Date d, Date::Parse(lit.text));
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kLiteral;
      e->literal = Value::Dt(d);
      return e;
    }
    if (t.upper == "NULL") {
      Advance();
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kLiteral;
      e->literal = Value::Null();
      return e;
    }
    if (t.upper == "CASE") return ParseCase();
    if (t.upper == "CAST") return ParseCast();
    if (t.upper == "EXISTS" && PeekOp("(", 1)) {
      Advance();
      Advance();
      auto e = std::make_unique<Expr>();
      e->tag = Expr::Tag::kExistsSubquery;
      TPCDS_ASSIGN_OR_RETURN(e->subquery, ParseSelectCore());
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    // Function call?
    if (PeekOp("(", 1)) return ParseFunction();
    // Column reference: name or qualifier.name.
    Advance();
    auto e = std::make_unique<Expr>();
    e->tag = Expr::Tag::kColumnRef;
    if (ConsumeOp(".")) {
      if (Peek().type != Token::Type::kIdentifier) {
        return Status::ParseError("expected column after '.'");
      }
      e->qualifier = t.text;
      e->name = Advance().text;
    } else {
      e->name = t.text;
    }
    return e;
  }

  Result<std::unique_ptr<Expr>> ParseCase() {
    TPCDS_RETURN_NOT_OK(ExpectKeyword("CASE"));
    auto e = std::make_unique<Expr>();
    e->tag = Expr::Tag::kCase;
    while (ConsumeKeyword("WHEN")) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseExpr());
      TPCDS_RETURN_NOT_OK(ExpectKeyword("THEN"));
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> then, ParseExpr());
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(then));
    }
    if (e->children.empty()) {
      return Status::ParseError("CASE requires at least one WHEN");
    }
    if (ConsumeKeyword("ELSE")) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> other, ParseExpr());
      e->children.push_back(std::move(other));
      e->case_has_else = true;
    }
    TPCDS_RETURN_NOT_OK(ExpectKeyword("END"));
    return e;
  }

  Result<std::unique_ptr<Expr>> ParseCast() {
    TPCDS_RETURN_NOT_OK(ExpectKeyword("CAST"));
    TPCDS_RETURN_NOT_OK(ExpectOp("("));
    auto e = std::make_unique<Expr>();
    e->tag = Expr::Tag::kCast;
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
    e->children.push_back(std::move(inner));
    TPCDS_RETURN_NOT_OK(ExpectKeyword("AS"));
    if (Peek().type != Token::Type::kIdentifier) {
      return Status::ParseError("expected type name in CAST");
    }
    e->cast_type = Advance().upper;
    // Optional (p[,s]) on DECIMAL/CHAR.
    if (ConsumeOp("(")) {
      while (!PeekOp(")") && !AtEnd()) Advance();
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
    }
    TPCDS_RETURN_NOT_OK(ExpectOp(")"));
    return e;
  }

  Result<std::unique_ptr<Expr>> ParseFunction() {
    const Token& name_tok = Advance();
    std::string fname = name_tok.upper;
    TPCDS_RETURN_NOT_OK(ExpectOp("("));
    auto e = std::make_unique<Expr>();
    e->name = fname;
    bool is_agg = IsAggregateName(fname);
    bool window_only = IsWindowOnlyName(fname);
    e->tag = is_agg ? Expr::Tag::kAggregate : Expr::Tag::kFunction;
    if (is_agg) e->distinct = ConsumeKeyword("DISTINCT");
    if (PeekOp("*")) {
      Advance();
      auto star = std::make_unique<Expr>();
      star->tag = Expr::Tag::kStar;
      e->children.push_back(std::move(star));
    } else if (!PeekOp(")")) {
      while (true) {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
        e->children.push_back(std::move(arg));
        if (!ConsumeOp(",")) break;
      }
    }
    TPCDS_RETURN_NOT_OK(ExpectOp(")"));
    // OVER clause turns an aggregate (or rank-like) into a window function.
    if (PeekKeyword("OVER")) {
      Advance();
      TPCDS_RETURN_NOT_OK(ExpectOp("("));
      e->tag = Expr::Tag::kWindow;
      if (ConsumeKeyword("PARTITION")) {
        TPCDS_RETURN_NOT_OK(ExpectKeyword("BY"));
        while (true) {
          TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> p, ParseExpr());
          e->partition_by.push_back(std::move(p));
          if (!ConsumeOp(",")) break;
        }
      }
      if (ConsumeKeyword("ORDER")) {
        TPCDS_RETURN_NOT_OK(ExpectKeyword("BY"));
        while (true) {
          TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> o, ParseExpr());
          e->order_by.push_back(std::move(o));
          bool desc = false;
          if (ConsumeKeyword("DESC")) {
            desc = true;
          } else {
            ConsumeKeyword("ASC");
          }
          e->order_desc.push_back(desc);
          if (!ConsumeOp(",")) break;
        }
      }
      TPCDS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (window_only) {
      return Status::ParseError(fname + " requires an OVER clause");
    }
    return e;
  }

  static std::unique_ptr<Expr> MakeBinary(const std::string& op,
                                          std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r) {
    auto e = std::make_unique<Expr>();
    e->tag = Expr::Tag::kBinary;
    e->name = op;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->tag = tag;
  out->literal = literal;
  out->qualifier = qualifier;
  out->name = name;
  out->distinct = distinct;
  out->negated = negated;
  out->case_has_else = case_has_else;
  out->cast_type = cast_type;
  out->subquery = subquery;  // subqueries are shared, not deep-copied
  for (const auto& c : children) out->children.push_back(c->Clone());
  for (const auto& c : partition_by) out->partition_by.push_back(c->Clone());
  for (const auto& c : order_by) out->order_by.push_back(c->Clone());
  out->order_desc = order_desc;
  return out;
}

Result<std::shared_ptr<SelectStmt>> ParseSql(const std::string& sql) {
  TPCDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace tpcds
