#ifndef TPCDS_ENGINE_GOVERNOR_H_
#define TPCDS_ENGINE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/value.h"
#include "util/status.h"

namespace tpcds {

/// Per-query resource limits. Zero means unlimited. Carried on
/// PlannerOptions (so every entry point — shell, driver, tests — can set
/// them) and enforced by a QueryGovernor inside the executor.
struct GovernorLimits {
  /// Wall-clock deadline for the whole statement, measured from governor
  /// construction (i.e. query start).
  double timeout_ms = 0.0;
  /// Budget on bytes of intermediate results materialised over the query's
  /// lifetime (a conservative proxy for peak memory: operators charge what
  /// they build and nothing is credited back mid-query).
  int64_t memory_budget_bytes = 0;
  /// Budget on rows materialised across all operators — the guard against
  /// runaway cross joins from pathological parameterizations.
  int64_t row_budget = 0;

  bool any() const {
    return timeout_ms > 0.0 || memory_budget_bytes > 0 || row_budget > 0;
  }
};

/// A shared byte pool that several QueryGovernors charge concurrently —
/// the global admission-control memory pool of a QueryService. Capacity 0
/// means unlimited: reservations always succeed but usage and peak are
/// still tracked, so tests and the overload drills can assert the pool
/// drains back to exactly zero after a storm of queries.
///
/// Thread-safe; TryReserve never leaves a failed reservation charged.
class ResourcePool {
 public:
  explicit ResourcePool(int64_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  ResourcePool(const ResourcePool&) = delete;
  ResourcePool& operator=(const ResourcePool&) = delete;

  /// Charges `bytes` against the pool. Returns false (charging nothing)
  /// when the reservation would push usage over a finite capacity.
  bool TryReserve(int64_t bytes);

  /// Credits `bytes` back to the pool.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t capacity() const { return capacity_; }

 private:
  int64_t capacity_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// Execution governor for one query: deadline, memory budget, row budget,
/// and an external cancellation token, all checked at morsel boundaries by
/// the executor. Thread-safe — morsel workers race against Cancel() and
/// against each other; the first violation wins and is the status every
/// caller sees.
///
/// The cancellation token is a single atomic: once tripped, workers stop
/// picking up morsels, partially-built operator state unwinds through the
/// normal Result<> error path, and the query returns a clean error (one of
/// kDeadlineExceeded / kResourceExhausted / kCancelled) instead of
/// crashing the process or burning the rest of the stream's time slot.
class QueryGovernor {
 public:
  /// Unlimited governor (still usable as a cancellation token).
  QueryGovernor();
  explicit QueryGovernor(const GovernorLimits& limits);
  /// Credits any bytes still charged to the parent pool back to it, so a
  /// shared pool always returns to zero no matter how the query ended
  /// (success, cancellation, budget trip, or shed before teardown).
  ~QueryGovernor();

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// Attaches a shared parent pool (admission control's global memory
  /// pool). Every Reserve charges the pool too — a failed pool charge
  /// trips this governor with kResourceExhausted — and Release (plus the
  /// destructor, for whatever is still outstanding) credits it back.
  /// Call before execution starts; the pool must outlive the governor.
  void set_parent_pool(ResourcePool* pool) { parent_pool_ = pool; }
  ResourcePool* parent_pool() const { return parent_pool_; }

  /// External cancellation (another thread). Idempotent; the first trip —
  /// whether a limit or a cancel — wins.
  void Cancel(const std::string& reason);

  /// True once any limit tripped or Cancel() was called.
  bool cancelled() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// OK while running; the first violation's status afterwards.
  Status status() const;

  /// Morsel-boundary check: fires the "morsel" fault site, then the
  /// deadline. Returns false when the morsel must not run.
  bool BeginMorsel();

  /// Lightweight per-row check for non-morselised inner loops (the
  /// nested-loop join): cancellation flag plus deadline.
  bool Tick();

  /// Tracking-allocator entry: charges `bytes` against the memory budget
  /// (and fires the "alloc" fault site). Returns false once over budget.
  bool Reserve(int64_t bytes);
  /// Returns bytes to the tracker (final teardown; mid-query intermediate
  /// results are deliberately not credited back, see GovernorLimits).
  void Release(int64_t bytes);

  /// Charges materialised rows against the row budget.
  bool ChargeRows(int64_t rows);

  const GovernorLimits& limits() const { return limits_; }
  bool has_limits() const { return limits_.any(); }
  int64_t bytes_reserved() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t rows_charged() const {
    return rows_.load(std::memory_order_relaxed);
  }

 private:
  /// Records the first violation and flips the cancellation token.
  void Trip(Status status);
  bool CheckDeadline();

  GovernorLimits limits_;
  double deadline_seconds_ = 0.0;  // absolute steady-clock; 0 = none
  ResourcePool* parent_pool_ = nullptr;
  std::atomic<int64_t> parent_bytes_{0};  // charged to parent, not yet credited
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;  // guards trip_status_
  Status trip_status_;
};

/// Approximate heap footprint of one materialised row (values plus string
/// payloads); the unit the executor charges against the memory budget.
int64_t ApproxRowBytes(const std::vector<Value>& row);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_GOVERNOR_H_
