#include "engine/audit.h"

#include <map>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

struct VecValueHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 1469598103u;
    for (const Value& v : key) h = h * 1099511628211ULL ^ v.Hash();
    return h;
  }
};
struct VecValueEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && Value::Compare(a[i], b[i]) != 0) return false;
    }
    return true;
  }
};
using KeySet =
    std::unordered_set<std::vector<Value>, VecValueHash, VecValueEq>;

Result<std::vector<int>> ResolveColumns(
    const EngineTable& table, const std::vector<std::string>& names) {
  std::vector<int> cols;
  cols.reserve(names.size());
  for (const std::string& name : names) {
    int idx = table.ColumnIndex(name);
    if (idx < 0) {
      return Status::Internal("audit: missing column " + table.name() +
                              "." + name);
    }
    cols.push_back(idx);
  }
  return cols;
}

std::vector<Value> KeyAt(const EngineTable& table,
                         const std::vector<int>& cols, int64_t row) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(table.GetValue(row, c));
  return key;
}

bool AnyNull(const std::vector<Value>& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

/// FNV-1a over raw bytes, seedable for chaining sections.
uint64_t Fnv64(const void* data, size_t len,
               uint64_t seed = 1469598103934665603ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t FnvStr(const std::string& s, uint64_t seed) {
  seed = Fnv64(s.data(), s.size(), seed);
  uint64_t len = s.size();  // length-prefix defeats concatenation aliasing
  return Fnv64(&len, sizeof(len), seed);
}

}  // namespace

uint64_t HashTableContent(const EngineTable& table) {
  uint64_t h = FnvStr(table.name(), 1469598103934665603ULL);
  uint64_t cols = table.num_columns();
  h = Fnv64(&cols, sizeof(cols), h);
  int64_t rows = table.num_rows();
  h = Fnv64(&rows, sizeof(rows), h);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const EngineTable::ColumnMeta& meta = table.column_meta(c);
    h = FnvStr(meta.name, h);
    uint8_t type = static_cast<uint8_t>(meta.type);
    h = Fnv64(&type, sizeof(type), h);
    const StorageColumn& col = table.column(c);
    h = Fnv64(col.nulls().data(), col.nulls().size(), h);
    if (col.is_string()) {
      // Row-wise so heap and mmap-attached columns hash identically; the
      // length suffix matches FnvStr (defeats concatenation aliasing).
      for (size_t r = 0; r < col.size(); ++r) {
        std::string_view s = col.Str(r);
        h = Fnv64(s.data(), s.size(), h);
        uint64_t len = s.size();
        h = Fnv64(&len, sizeof(len), h);
      }
    } else if (col.encoding() != ColEncoding::kPlain) {
      // Encoded columns have no raw array; decode row-wise. Byte-identical
      // to hashing the plain int64 vector, so the hash is independent of
      // the column's physical representation.
      for (size_t r = 0; r < col.size(); ++r) {
        int64_t v = col.Num(r);
        h = Fnv64(&v, sizeof(v), h);
      }
    } else {
      h = Fnv64(col.nums().data(), col.nums().size() * sizeof(int64_t), h);
    }
  }
  return Mix64(h);
}

uint64_t HashFacadeContent(const DataFacade& facade) {
  uint64_t h = 0x5D5D1E5D5C0FFEE5ULL;
  // TableNames() is sorted (map-backed), so the fingerprint is stable
  // regardless of creation order.
  for (const std::string& name : facade.TableNames()) {
    const EngineTable* table = facade.FindTable(name);
    uint64_t th = HashTableContent(*table);
    h = Mix64(h ^ th);
  }
  return h;
}

uint64_t HashDatabaseContent(const Database& db) {
  return HashFacadeContent(*db.Snapshot());
}

std::string AuditReport::ToString() const {
  std::string out;
  for (const ConstraintCheck& c : checks) {
    out += StringPrintf("%-64s %12lld rows %8lld violations\n",
                        c.constraint.c_str(),
                        static_cast<long long>(c.rows_checked),
                        static_cast<long long>(c.violations));
  }
  out += StringPrintf("total violations: %lld\n",
                      static_cast<long long>(TotalViolations()));
  return out;
}

Result<AuditReport> ValidateConstraints(Database* db, const Schema& schema) {
  return ValidateConstraints(*db->Snapshot(), schema);
}

Result<AuditReport> ValidateConstraints(const DataFacade& facade,
                                        const Schema& schema) {
  AuditReport report;
  // Primary-key key sets double as FK targets; build each once.
  std::map<std::string, KeySet> pk_sets;
  for (const TableDef& def : schema.tables()) {
    EngineTable* table = facade.FindTable(def.name);
    if (table == nullptr) {
      return Status::NotFound("audit: table not loaded: " + def.name);
    }
    TPCDS_ASSIGN_OR_RETURN(std::vector<int> cols,
                           ResolveColumns(*table, def.primary_key));
    ConstraintCheck check;
    check.constraint =
        def.name + " PK(" + Join(def.primary_key, ",") + ") unique";
    KeySet keys;
    keys.reserve(static_cast<size_t>(table->num_rows()));
    for (int64_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Value> key = KeyAt(*table, cols, r);
      ++check.rows_checked;
      if (AnyNull(key) || !keys.insert(std::move(key)).second) {
        ++check.violations;
      }
    }
    pk_sets[def.name] = std::move(keys);
    report.checks.push_back(std::move(check));
  }
  // Foreign keys: every non-NULL key must exist in the referenced PK set.
  for (const TableDef& def : schema.tables()) {
    EngineTable* table = facade.FindTable(def.name);
    for (const ForeignKeyDef& fk : def.foreign_keys) {
      TPCDS_ASSIGN_OR_RETURN(std::vector<int> cols,
                             ResolveColumns(*table, fk.columns));
      const KeySet& target = pk_sets.at(fk.referenced_table);
      ConstraintCheck check;
      check.constraint = def.name + "(" + Join(fk.columns, ",") + ") -> " +
                         fk.referenced_table;
      for (int64_t r = 0; r < table->num_rows(); ++r) {
        std::vector<Value> key = KeyAt(*table, cols, r);
        ++check.rows_checked;
        if (AnyNull(key)) continue;  // SQL FK semantics: NULLs pass
        if (target.find(key) == target.end()) ++check.violations;
      }
      report.checks.push_back(std::move(check));
    }
  }
  return report;
}

}  // namespace tpcds
