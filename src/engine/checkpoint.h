#ifndef TPCDS_ENGINE_CHECKPOINT_H_
#define TPCDS_ENGINE_CHECKPOINT_H_

#include <string>

#include "engine/database.h"
#include "util/status.h"

namespace tpcds {

/// Binary columnar checkpoint of a whole database.
///
/// Layout of a checkpoint directory:
///
///   <table>.col   one file per table:
///                   "TPCDSTB1" | u32 col_count | u64 row_count |
///                   col_count sections of
///                     u8 type | u32 payload_len | u32 crc | payload
///                 where payload = row_count null bytes followed by either
///                 row_count little-endian int64s (numeric columns) or
///                 row_count u32-length-prefixed strings. The crc covers
///                 the payload bytes.
///   MANIFEST      "TPCDSCK1" | body | u32 crc(body); the body lists every
///                 table (name, row count, column names + types, whole-file
///                 crc of its .col file). Written last via tmp + rename:
///                 a directory without a MANIFEST is not a checkpoint.
///
/// Fault sites: "ckpt-write" fires once per table file, "ckpt-manifest"
/// before the manifest is published.
Status SaveCheckpointTo(const Database& db, const std::string& dir);

/// Loads a checkpoint into `db`, which must be empty. Tables are created
/// from the manifest schema; indexes and zone maps rebuild lazily.
Status LoadCheckpointFrom(Database* db, const std::string& dir);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_CHECKPOINT_H_
