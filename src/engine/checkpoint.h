#ifndef TPCDS_ENGINE_CHECKPOINT_H_
#define TPCDS_ENGINE_CHECKPOINT_H_

#include <string>

#include "engine/database.h"
#include "util/status.h"

namespace tpcds {

/// Binary columnar checkpoint of a whole database, format v2: column
/// payloads are laid out so the files can be mmap'd and used in place.
///
/// Layout of a checkpoint directory:
///
///   <table>.col   one file per table:
///                   "TPCDSTB2" | u32 col_count | u64 row_count |
///                   u32 dir_crc | directory | payload sections
///                 The directory has one fixed-width entry per column:
///                   u8 type | u64 nulls_off | u64 data_off |
///                   u64 arena_off | u64 arena_len | u32 section_crc
///                 Every section offset is 64-byte aligned (absolute file
///                 offsets; zero padding between sections, none after the
///                 last). Per column the sections are: null bytes (one per
///                 row), then data — row_count little-endian int64s for
///                 numeric columns, or row_count+1 little-endian u64 string
///                 offsets — and, for string columns, the arena holding all
///                 string bytes back to back. Row r's string is
///                 arena[offsets[r] .. offsets[r+1]), so a mapped column
///                 serves zero-copy string_views. section_crc covers the
///                 column's null + data + arena bytes (padding excluded);
///                 dir_crc covers the directory bytes.
///   MANIFEST      "TPCDSCK2" | body | u32 crc(body); the body carries the
///                 dataset generation id and lists every table (name, row
///                 count, column names + types, whole-file crc of its .col
///                 file). Written last via tmp + rename: a directory
///                 without a MANIFEST is not a checkpoint.
///
/// Two read paths share the format:
///   - LoadCheckpointFrom: deep load. Reads each file fully, verifies the
///     whole-file CRC against the manifest plus every section CRC, and
///     materialises heap columns. Crash recovery uses this path — any
///     corruption anywhere in the checkpoint yields kDataLoss.
///   - AttachCheckpointFrom: O(1) cold start. mmaps each file, verifies
///     header + directory CRC only, and points columns at the mapped
///     sections without materialising payloads (strings stay zero-copy).
///
/// Fault sites: "ckpt-write" fires once per table file, "ckpt-manifest"
/// before the manifest is published.
Status SaveCheckpointTo(const Database& db, const std::string& dir);

/// Loads a checkpoint into `db`, which must be empty (deep, fully
/// CRC-verified path). Tables are created from the manifest schema; the
/// database adopts the manifest's generation id; indexes and zone maps
/// rebuild lazily.
Status LoadCheckpointFrom(Database* db, const std::string& dir);

/// Attaches a checkpoint into `db` (empty) via mmap — column payloads are
/// not materialised. See Database::AttachCheckpoint for the verification
/// contract.
Status AttachCheckpointFrom(Database* db, const std::string& dir);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_CHECKPOINT_H_
