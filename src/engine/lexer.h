#ifndef TPCDS_ENGINE_LEXER_H_
#define TPCDS_ENGINE_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace tpcds {

struct Token {
  enum class Type {
    kIdentifier,  // unquoted word (keywords decided by the parser)
    kNumber,      // integer or decimal literal
    kString,      // '...' with '' escaping
    kOperator,    // = <> != < <= > >= + - * / ( ) , . ;
    kEnd,
  };

  Type type = Type::kEnd;
  std::string text;  // identifiers are upper-cased copies in `upper`
  std::string upper;
  size_t position = 0;  // byte offset, for error messages
};

/// Tokenises a SQL string. SQL comments (-- to end of line) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_LEXER_H_
