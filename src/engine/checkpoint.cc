#include "engine/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/bytes.h"
#include "util/fault.h"
#include "util/wal.h"

namespace tpcds {
namespace {

constexpr char kTableMagic[8] = {'T', 'P', 'C', 'D', 'S', 'T', 'B', '1'};
constexpr char kManifestMagic[8] = {'T', 'P', 'C', 'D', 'S', 'C', 'K', '1'};
constexpr const char* kManifestName = "MANIFEST";

Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("checkpoint: cannot create " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("checkpoint: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint: rename " + tmp + " -> " + path +
                           ": " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("checkpoint: cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("checkpoint: read failed: " + path);
  return data;
}

std::string EncodeTableFile(const EngineTable& table) {
  std::string out(kTableMagic, sizeof(kTableMagic));
  PutU32(&out, static_cast<uint32_t>(table.num_columns()));
  PutU64(&out, static_cast<uint64_t>(table.num_rows()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const StorageColumn& col = table.column(c);
    std::string payload;
    payload.append(reinterpret_cast<const char*>(col.nulls().data()),
                   col.nulls().size());
    if (col.is_string()) {
      for (const std::string& s : col.strings()) PutLenString(&payload, s);
    } else {
      for (int64_t v : col.nums()) PutU64(&payload, static_cast<uint64_t>(v));
    }
    out.push_back(static_cast<char>(table.column_meta(c).type));
    PutU32(&out, static_cast<uint32_t>(payload.size()));
    PutU32(&out, Crc32(payload.data(), payload.size()));
    out.append(payload);
  }
  return out;
}

Status WriteTableFile(const EngineTable& table, const std::string& path,
                      uint32_t* file_crc) {
  TPCDS_FAULT_POINT("ckpt-write");
  std::string encoded = EncodeTableFile(table);
  *file_crc = Crc32(encoded.data(), encoded.size());
  return WriteFileAtomically(path, encoded);
}

Result<ColumnType> DecodeColumnType(uint8_t raw, const std::string& ctx) {
  if (raw > static_cast<uint8_t>(ColumnType::kVarchar)) {
    return Status::DataLoss(ctx + ": invalid column type " +
                            std::to_string(raw));
  }
  return static_cast<ColumnType>(raw);
}

/// One table's manifest entry.
struct ManifestTable {
  std::string name;
  uint64_t rows = 0;
  std::vector<EngineTable::ColumnMeta> columns;
  uint32_t file_crc = 0;
};

Status LoadTableFile(EngineTable* table, const ManifestTable& entry,
                     const std::string& path) {
  TPCDS_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (Crc32(data.data(), data.size()) != entry.file_crc) {
    return Status::DataLoss("checkpoint table " + entry.name +
                            ": file CRC mismatch with manifest");
  }
  const std::string ctx = "checkpoint table " + entry.name;
  ByteReader reader(data, ctx);
  TPCDS_RETURN_NOT_OK(reader.ReadMagic(kTableMagic));
  TPCDS_ASSIGN_OR_RETURN(uint32_t cols, reader.ReadU32());
  TPCDS_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadU64());
  if (cols != entry.columns.size() || rows != entry.rows) {
    return Status::DataLoss(ctx + ": header disagrees with manifest");
  }
  for (uint32_t c = 0; c < cols; ++c) {
    TPCDS_ASSIGN_OR_RETURN(uint8_t raw_type, reader.ReadU8());
    TPCDS_ASSIGN_OR_RETURN(ColumnType type, DecodeColumnType(raw_type, ctx));
    if (type != entry.columns[c].type) {
      return Status::DataLoss(ctx + ": column " + std::to_string(c) +
                              " type disagrees with manifest");
    }
    TPCDS_ASSIGN_OR_RETURN(uint32_t payload_len, reader.ReadU32());
    TPCDS_ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
    TPCDS_ASSIGN_OR_RETURN(std::string payload, reader.ReadBytes(payload_len));
    if (Crc32(payload.data(), payload.size()) != stored_crc) {
      return Status::DataLoss(ctx + ": column " + std::to_string(c) +
                              " section CRC mismatch");
    }
    ByteReader section(payload, ctx + " column " + std::to_string(c));
    TPCDS_ASSIGN_OR_RETURN(std::string null_bytes,
                           section.ReadBytes(static_cast<size_t>(rows)));
    std::vector<uint8_t> nulls(null_bytes.begin(), null_bytes.end());
    std::vector<int64_t> nums;
    std::vector<std::string> strings;
    const bool is_string =
        type == ColumnType::kChar || type == ColumnType::kVarchar;
    if (is_string) {
      strings.reserve(static_cast<size_t>(rows));
      for (uint64_t r = 0; r < rows; ++r) {
        TPCDS_ASSIGN_OR_RETURN(std::string s, section.ReadLenString());
        strings.push_back(std::move(s));
      }
    } else {
      nums.reserve(static_cast<size_t>(rows));
      for (uint64_t r = 0; r < rows; ++r) {
        TPCDS_ASSIGN_OR_RETURN(uint64_t v, section.ReadU64());
        nums.push_back(static_cast<int64_t>(v));
      }
    }
    if (section.remaining() != 0) {
      return Status::DataLoss(ctx + ": column " + std::to_string(c) +
                              " has trailing bytes");
    }
    TPCDS_RETURN_NOT_OK(table->LoadColumnStorage(
        c, std::move(nums), std::move(strings), std::move(nulls)));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss(ctx + ": trailing bytes after last column");
  }
  return table->FinishRawLoad(static_cast<int64_t>(rows));
}

}  // namespace

Status SaveCheckpointTo(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("checkpoint: cannot create directory " + dir +
                           ": " + ec.message());
  }
  std::string body;
  std::vector<std::string> names = db.TableNames();
  PutU32(&body, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const EngineTable* table = db.FindTable(name);
    uint32_t file_crc = 0;
    TPCDS_RETURN_NOT_OK(
        WriteTableFile(*table, dir + "/" + name + ".col", &file_crc));
    PutLenString(&body, name);
    PutU64(&body, static_cast<uint64_t>(table->num_rows()));
    PutU32(&body, static_cast<uint32_t>(table->num_columns()));
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const EngineTable::ColumnMeta& meta = table->column_meta(c);
      PutLenString(&body, meta.name);
      body.push_back(static_cast<char>(meta.type));
    }
    PutU32(&body, file_crc);
  }
  TPCDS_FAULT_POINT("ckpt-manifest");
  std::string manifest(kManifestMagic, sizeof(kManifestMagic));
  manifest.append(body);
  PutU32(&manifest, Crc32(body.data(), body.size()));
  return WriteFileAtomically(dir + "/" + kManifestName, manifest);
}

Status LoadCheckpointFrom(Database* db, const std::string& dir) {
  if (!db->TableNames().empty()) {
    return Status::InvalidArgument(
        "checkpoint: target database is not empty");
  }
  TPCDS_ASSIGN_OR_RETURN(std::string manifest,
                         ReadWholeFile(dir + "/" + kManifestName));
  if (manifest.size() < 12 ||
      manifest.compare(0, 8, kManifestMagic, 8) != 0) {
    return Status::DataLoss("checkpoint manifest: truncated or bad magic");
  }
  const std::string body = manifest.substr(8, manifest.size() - 12);
  {
    const auto* p = reinterpret_cast<const uint8_t*>(
        manifest.data() + manifest.size() - 4);
    uint32_t stored = static_cast<uint32_t>(p[0]) |
                      (static_cast<uint32_t>(p[1]) << 8) |
                      (static_cast<uint32_t>(p[2]) << 16) |
                      (static_cast<uint32_t>(p[3]) << 24);
    if (Crc32(body.data(), body.size()) != stored) {
      return Status::DataLoss("checkpoint manifest: CRC mismatch");
    }
  }
  ByteReader reader(body, "checkpoint manifest");
  TPCDS_ASSIGN_OR_RETURN(uint32_t table_count, reader.ReadU32());
  std::vector<ManifestTable> entries;
  entries.reserve(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    ManifestTable entry;
    TPCDS_ASSIGN_OR_RETURN(entry.name, reader.ReadLenString());
    TPCDS_ASSIGN_OR_RETURN(entry.rows, reader.ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint32_t cols, reader.ReadU32());
    entry.columns.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      EngineTable::ColumnMeta meta;
      TPCDS_ASSIGN_OR_RETURN(meta.name, reader.ReadLenString());
      TPCDS_ASSIGN_OR_RETURN(uint8_t raw_type, reader.ReadU8());
      TPCDS_ASSIGN_OR_RETURN(
          meta.type, DecodeColumnType(raw_type, "checkpoint manifest"));
      entry.columns.push_back(std::move(meta));
    }
    TPCDS_ASSIGN_OR_RETURN(entry.file_crc, reader.ReadU32());
    entries.push_back(std::move(entry));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("checkpoint manifest: trailing bytes");
  }
  for (const ManifestTable& entry : entries) {
    TPCDS_RETURN_NOT_OK(db->CreateTable(entry.name, entry.columns));
    EngineTable* table = db->FindTable(entry.name);
    TPCDS_RETURN_NOT_OK(
        LoadTableFile(table, entry, dir + "/" + entry.name + ".col"));
  }
  return Status::OK();
}

Status Database::SaveCheckpoint(const std::string& dir) const {
  return SaveCheckpointTo(*this, dir);
}

Status Database::LoadCheckpoint(const std::string& dir) {
  return LoadCheckpointFrom(this, dir);
}

}  // namespace tpcds
