#include "engine/checkpoint.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "engine/stats.h"
#include "util/bytes.h"
#include "util/fault.h"
#include "util/mmap_file.h"
#include "util/wal.h"

namespace tpcds {
namespace {

// Mapped columns read int64/u64 payloads in place, so the on-disk byte
// order must be the host's.
static_assert(std::endian::native == std::endian::little,
              "checkpoint v2 assumes a little-endian host");

constexpr char kTableMagic[8] = {'T', 'P', 'C', 'D', 'S', 'T', 'B', '2'};
constexpr char kManifestMagic[8] = {'T', 'P', 'C', 'D', 'S', 'C', 'K', '2'};
constexpr const char* kManifestName = "MANIFEST";
// Optional statistics sidecar (engine/stats.h): per-table NDV sketches,
// histograms and min/max, so a restored or attached checkpoint starts with
// warm optimizer statistics instead of re-scanning every table.
constexpr char kStatsMagic[8] = {'T', 'P', 'C', 'D', 'S', 'S', 'T', '1'};
constexpr const char* kStatsName = "STATS";

constexpr size_t kSectionAlign = 64;
constexpr size_t kHeaderSize = 8 + 4 + 8 + 4;  // magic, cols, rows, dir crc
// type, encoding, nulls_off, data_off, aux_off, arena_off, arena_len,
// param0, param1, crc. Widened from the pre-encoding 37-byte entry; old
// files fail the directory CRC and load as clean kDataLoss.
constexpr size_t kDirEntrySize = 1 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4;

Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("checkpoint: cannot create " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("checkpoint: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint: rename " + tmp + " -> " + path +
                           ": " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("checkpoint: cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("checkpoint: read failed: " + path);
  return data;
}

size_t AlignUp(size_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

void PatchU32(std::string* out, size_t pos, uint32_t v) {
  std::string bytes;
  PutU32(&bytes, v);
  out->replace(pos, 4, bytes);
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Per-column section placement, shared by the writer and both readers.
/// Section meaning depends on the encoding:
///   plain numeric  data = int64 × rows
///   plain string   data = u64 offsets × (rows+1), arena = string bytes
///   dict (string)  data = u32 codes × rows, aux = u64 dict offsets ×
///                  (param0+1), arena = dictionary bytes, param0 = ndv
///   rle (numeric)  data = int64 run values × param0, aux = u32 cumulative
///                  run ends × param0, param0 = runs
///   for (numeric)  data = u64 packed words (incl. one padding word),
///                  param0 = bit-cast base, param1 = bit width
struct ColumnLayout {
  ColumnType type = ColumnType::kInteger;
  ColEncoding encoding = ColEncoding::kPlain;
  uint64_t nulls_off = 0;
  uint64_t data_off = 0;
  uint64_t aux_off = 0;    // dict offsets / rle ends, else 0
  uint64_t arena_off = 0;  // plain-string / dict arena, else 0
  uint64_t arena_len = 0;
  uint64_t param0 = 0;
  uint64_t param1 = 0;
  uint32_t section_crc = 0;

  bool is_string() const {
    return type == ColumnType::kChar || type == ColumnType::kVarchar;
  }
  /// Byte length of the data section (per the table above).
  uint64_t data_len(uint64_t rows) const {
    switch (encoding) {
      case ColEncoding::kPlain:
        return is_string() ? (rows + 1) * sizeof(uint64_t)
                           : rows * sizeof(int64_t);
      case ColEncoding::kDict:
        return rows * sizeof(uint32_t);
      case ColEncoding::kRle:
        return param0 * sizeof(int64_t);
      case ColEncoding::kFor:
        return ((rows * param1 + 63) / 64 + 1) * sizeof(uint64_t);
    }
    return 0;
  }
  /// Byte length of the aux section (0 when the encoding has none).
  uint64_t aux_len() const {
    switch (encoding) {
      case ColEncoding::kDict:
        return (param0 + 1) * sizeof(uint64_t);
      case ColEncoding::kRle:
        return param0 * sizeof(uint32_t);
      default:
        return 0;
    }
  }
};

uint64_t ArenaLength(const StorageColumn& col) {
  if (col.encoding() == ColEncoding::kDict) {
    return col.DictOffsets()[col.DictNdv()];
  }
  uint64_t total = 0;
  for (size_t r = 0; r < col.size(); ++r) total += col.Str(r).size();
  return total;
}

std::string EncodeTableFile(const EngineTable& table) {
  const size_t rows = static_cast<size_t>(table.num_rows());
  const size_t cols = table.num_columns();

  // Pass 1: place the sections. The file persists each column's *current*
  // representation — encoded columns write their encoded sections.
  std::vector<ColumnLayout> layout(cols);
  size_t off = kHeaderSize + cols * kDirEntrySize;
  for (size_t c = 0; c < cols; ++c) {
    const StorageColumn& col = table.column(c);
    ColumnLayout& l = layout[c];
    l.type = col.type();
    l.encoding = col.encoding();
    switch (l.encoding) {
      case ColEncoding::kPlain:
        break;
      case ColEncoding::kDict:
        l.param0 = col.DictNdv();
        break;
      case ColEncoding::kRle:
        l.param0 = col.RleRuns();
        break;
      case ColEncoding::kFor:
        l.param0 = static_cast<uint64_t>(col.ForBase());
        l.param1 = col.ForWidth();
        break;
    }
    l.nulls_off = off = AlignUp(off);
    off += rows;
    l.data_off = off = AlignUp(off);
    off += l.data_len(rows);
    if (l.aux_len() > 0) {
      l.aux_off = off = AlignUp(off);
      off += l.aux_len();
    }
    if (l.encoding == ColEncoding::kDict ||
        (l.encoding == ColEncoding::kPlain && col.is_string())) {
      l.arena_len = ArenaLength(col);
      l.arena_off = off = AlignUp(off);
      off += l.arena_len;
    }
  }

  // Pass 2: header, directory (CRCs back-patched), then the sections.
  std::string out;
  out.reserve(off);
  out.append(kTableMagic, sizeof(kTableMagic));
  PutU32(&out, static_cast<uint32_t>(cols));
  PutU64(&out, static_cast<uint64_t>(rows));
  const size_t dir_crc_pos = out.size();
  PutU32(&out, 0);
  const size_t dir_pos = out.size();
  std::vector<size_t> crc_pos(cols);
  for (size_t c = 0; c < cols; ++c) {
    out.push_back(static_cast<char>(layout[c].type));
    out.push_back(static_cast<char>(layout[c].encoding));
    PutU64(&out, layout[c].nulls_off);
    PutU64(&out, layout[c].data_off);
    PutU64(&out, layout[c].aux_off);
    PutU64(&out, layout[c].arena_off);
    PutU64(&out, layout[c].arena_len);
    PutU64(&out, layout[c].param0);
    PutU64(&out, layout[c].param1);
    crc_pos[c] = out.size();
    PutU32(&out, 0);
  }
  for (size_t c = 0; c < cols; ++c) {
    const StorageColumn& col = table.column(c);
    const ColumnLayout& l = layout[c];
    uint32_t crc = 0;
    out.resize(l.nulls_off, '\0');
    out.append(reinterpret_cast<const char*>(col.nulls().data()), rows);
    crc = Crc32(out.data() + l.nulls_off, rows, crc);
    out.resize(l.data_off, '\0');
    switch (l.encoding) {
      case ColEncoding::kPlain:
        if (col.is_string()) {
          uint64_t run = 0;
          PutU64(&out, run);
          for (size_t r = 0; r < rows; ++r) {
            run += col.Str(r).size();
            PutU64(&out, run);
          }
        } else {
          out.append(reinterpret_cast<const char*>(col.nums().data()),
                     rows * sizeof(int64_t));
        }
        break;
      case ColEncoding::kDict:
        out.append(reinterpret_cast<const char*>(col.DictCodes()),
                   rows * sizeof(uint32_t));
        break;
      case ColEncoding::kRle:
        out.append(reinterpret_cast<const char*>(col.RleValues()),
                   l.param0 * sizeof(int64_t));
        break;
      case ColEncoding::kFor:
        out.append(reinterpret_cast<const char*>(col.ForWords()),
                   l.data_len(rows));
        break;
    }
    crc = Crc32(out.data() + l.data_off, l.data_len(rows), crc);
    if (l.aux_len() > 0) {
      out.resize(l.aux_off, '\0');
      if (l.encoding == ColEncoding::kDict) {
        out.append(reinterpret_cast<const char*>(col.DictOffsets()),
                   l.aux_len());
      } else {
        out.append(reinterpret_cast<const char*>(col.RleEnds()),
                   l.aux_len());
      }
      crc = Crc32(out.data() + l.aux_off, l.aux_len(), crc);
    }
    if (l.arena_off != 0 || l.arena_len != 0) {
      out.resize(l.arena_off, '\0');
      if (l.encoding == ColEncoding::kDict) {
        out.append(col.DictArena(), l.arena_len);
      } else {
        for (size_t r = 0; r < rows; ++r) {
          std::string_view s = col.Str(r);
          out.append(s.data(), s.size());
        }
      }
      crc = Crc32(out.data() + l.arena_off, l.arena_len, crc);
    }
    PatchU32(&out, crc_pos[c], crc);
  }
  // Directory CRC covers the final directory bytes, section CRCs included.
  PatchU32(&out, dir_crc_pos,
           Crc32(out.data() + dir_pos, cols * kDirEntrySize));
  return out;
}

Status WriteTableFile(const EngineTable& table, const std::string& path,
                      uint32_t* file_crc) {
  TPCDS_FAULT_POINT("ckpt-write");
  std::string encoded = EncodeTableFile(table);
  *file_crc = Crc32(encoded.data(), encoded.size());
  return WriteFileAtomically(path, encoded);
}

Result<ColumnType> DecodeColumnType(uint8_t raw, const std::string& ctx) {
  if (raw > static_cast<uint8_t>(ColumnType::kVarchar)) {
    return Status::DataLoss(ctx + ": invalid column type " +
                            std::to_string(raw));
  }
  return static_cast<ColumnType>(raw);
}

/// One table's manifest entry.
struct ManifestTable {
  std::string name;
  uint64_t rows = 0;
  std::vector<EngineTable::ColumnMeta> columns;
  uint32_t file_crc = 0;
};

struct Manifest {
  uint64_t generation = 0;
  std::vector<ManifestTable> tables;
};

Result<Manifest> ReadManifest(const std::string& dir) {
  TPCDS_ASSIGN_OR_RETURN(std::string raw,
                         ReadWholeFile(dir + "/" + kManifestName));
  if (raw.size() < 12 || raw.compare(0, 8, kManifestMagic, 8) != 0) {
    return Status::DataLoss("checkpoint manifest: truncated or bad magic");
  }
  const std::string body = raw.substr(8, raw.size() - 12);
  if (Crc32(body.data(), body.size()) != LoadU32(raw.data() + raw.size() - 4)) {
    return Status::DataLoss("checkpoint manifest: CRC mismatch");
  }
  ByteReader reader(body, "checkpoint manifest");
  Manifest manifest;
  TPCDS_ASSIGN_OR_RETURN(manifest.generation, reader.ReadU64());
  TPCDS_ASSIGN_OR_RETURN(uint32_t table_count, reader.ReadU32());
  manifest.tables.reserve(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    ManifestTable entry;
    TPCDS_ASSIGN_OR_RETURN(entry.name, reader.ReadLenString());
    TPCDS_ASSIGN_OR_RETURN(entry.rows, reader.ReadU64());
    TPCDS_ASSIGN_OR_RETURN(uint32_t cols, reader.ReadU32());
    entry.columns.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      EngineTable::ColumnMeta meta;
      TPCDS_ASSIGN_OR_RETURN(meta.name, reader.ReadLenString());
      TPCDS_ASSIGN_OR_RETURN(uint8_t raw_type, reader.ReadU8());
      TPCDS_ASSIGN_OR_RETURN(
          meta.type, DecodeColumnType(raw_type, "checkpoint manifest"));
      entry.columns.push_back(std::move(meta));
    }
    TPCDS_ASSIGN_OR_RETURN(entry.file_crc, reader.ReadU32());
    manifest.tables.push_back(std::move(entry));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("checkpoint manifest: trailing bytes");
  }
  return manifest;
}

/// Parses and validates one table file's header + directory against its
/// manifest entry. `data`/`size` may come from a heap read or an mmap;
/// only header and directory bytes are touched. Fills `layout`.
Status ParseTableHeader(const char* data, size_t size,
                        const ManifestTable& entry,
                        std::vector<ColumnLayout>* layout) {
  const std::string ctx = "checkpoint table " + entry.name;
  if (size < kHeaderSize ||
      std::memcmp(data, kTableMagic, sizeof(kTableMagic)) != 0) {
    return Status::DataLoss(ctx + ": truncated or bad magic");
  }
  const uint32_t cols = LoadU32(data + 8);
  const uint64_t rows = LoadU64(data + 12);
  if (cols != entry.columns.size() || rows != entry.rows) {
    return Status::DataLoss(ctx + ": header disagrees with manifest");
  }
  const uint32_t dir_crc = LoadU32(data + 20);
  const size_t dir_len = static_cast<size_t>(cols) * kDirEntrySize;
  if (size < kHeaderSize + dir_len) {
    return Status::DataLoss(ctx + ": truncated directory");
  }
  if (Crc32(data + kHeaderSize, dir_len) != dir_crc) {
    return Status::DataLoss(ctx + ": directory CRC mismatch");
  }
  layout->resize(cols);
  const char* p = data + kHeaderSize;
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnLayout& l = (*layout)[c];
    const std::string col_ctx = ctx + ": column " + std::to_string(c);
    TPCDS_ASSIGN_OR_RETURN(
        l.type, DecodeColumnType(static_cast<uint8_t>(*p), ctx));
    const uint8_t raw_enc = static_cast<uint8_t>(p[1]);
    if (raw_enc > static_cast<uint8_t>(ColEncoding::kFor)) {
      return Status::DataLoss(col_ctx + ": invalid encoding " +
                              std::to_string(raw_enc));
    }
    l.encoding = static_cast<ColEncoding>(raw_enc);
    l.nulls_off = LoadU64(p + 2);
    l.data_off = LoadU64(p + 10);
    l.aux_off = LoadU64(p + 18);
    l.arena_off = LoadU64(p + 26);
    l.arena_len = LoadU64(p + 34);
    l.param0 = LoadU64(p + 42);
    l.param1 = LoadU64(p + 50);
    l.section_crc = LoadU32(p + 58);
    p += kDirEntrySize;
    if (l.type != entry.columns[c].type) {
      return Status::DataLoss(col_ctx + " type disagrees with manifest");
    }
    // Encoding / type compatibility plus parameter sanity — the section
    // lengths below are computed from these parameters, so reject
    // nonsense before using them.
    switch (l.encoding) {
      case ColEncoding::kPlain:
        break;
      case ColEncoding::kDict:
        if (!l.is_string()) {
          return Status::DataLoss(col_ctx + ": dict on non-string column");
        }
        if (l.param0 > UINT32_MAX || (rows > 0 && l.param0 == 0)) {
          return Status::DataLoss(col_ctx + ": invalid dictionary size");
        }
        break;
      case ColEncoding::kRle:
        if (l.is_string()) {
          return Status::DataLoss(col_ctx + ": rle on string column");
        }
        if (rows > UINT32_MAX || l.param0 > rows || (rows > 0 && l.param0 == 0)) {
          return Status::DataLoss(col_ctx + ": invalid run count");
        }
        break;
      case ColEncoding::kFor:
        if (l.is_string()) {
          return Status::DataLoss(col_ctx + ": for on string column");
        }
        if (l.param1 > 64) {
          return Status::DataLoss(col_ctx + ": invalid bit width");
        }
        break;
    }
    const uint64_t data_len = l.data_len(rows);
    const uint64_t aux_len = l.aux_len();
    const bool has_arena =
        l.encoding == ColEncoding::kDict ||
        (l.encoding == ColEncoding::kPlain && l.is_string());
    // Bounds + alignment: mapped readers dereference these offsets
    // directly, so reject anything that escapes the file or would
    // misalign an int64 load.
    if (l.nulls_off % kSectionAlign != 0 || l.data_off % kSectionAlign != 0 ||
        l.nulls_off + rows > size || l.data_off + data_len > size ||
        (aux_len > 0 &&
         (l.aux_off % kSectionAlign != 0 || l.aux_off + aux_len > size)) ||
        (has_arena &&
         (l.arena_off % kSectionAlign != 0 ||
          l.arena_off + l.arena_len > size))) {
      return Status::DataLoss(col_ctx + " sections out of bounds");
    }
    if (l.encoding == ColEncoding::kPlain && l.is_string()) {
      // O(1) consistency probe: the offsets array must end exactly at the
      // arena length, or mapped string_views could run past the arena.
      if (LoadU64(data + l.data_off + rows * sizeof(uint64_t)) !=
          l.arena_len) {
        return Status::DataLoss(col_ctx + " offsets/arena length mismatch");
      }
    }
    if (l.encoding == ColEncoding::kDict) {
      // Same probe on the dictionary: last offset == arena length.
      if (LoadU64(data + l.aux_off + l.param0 * sizeof(uint64_t)) !=
          l.arena_len) {
        return Status::DataLoss(col_ctx + " dict offsets/arena mismatch");
      }
    }
    if (l.encoding == ColEncoding::kRle && rows > 0) {
      // O(1) probe: the cumulative run ends must finish exactly at rows.
      if (LoadU32(data + l.aux_off + (l.param0 - 1) * sizeof(uint32_t)) !=
          rows) {
        return Status::DataLoss(col_ctx + " run ends do not cover rows");
      }
    }
  }
  return Status::OK();
}

/// Deep load of one table file: whole-file CRC (from the manifest), every
/// section CRC, then heap materialisation.
Status LoadTableFile(EngineTable* table, const ManifestTable& entry,
                     const std::string& path) {
  TPCDS_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (Crc32(data.data(), data.size()) != entry.file_crc) {
    return Status::DataLoss("checkpoint table " + entry.name +
                            ": file CRC mismatch with manifest");
  }
  const std::string ctx = "checkpoint table " + entry.name;
  std::vector<ColumnLayout> layout;
  TPCDS_RETURN_NOT_OK(
      ParseTableHeader(data.data(), data.size(), entry, &layout));
  const size_t rows = static_cast<size_t>(entry.rows);
  for (size_t c = 0; c < layout.size(); ++c) {
    const ColumnLayout& l = layout[c];
    const std::string col_ctx = ctx + " column " + std::to_string(c);
    uint32_t crc = Crc32(data.data() + l.nulls_off, rows);
    crc = Crc32(data.data() + l.data_off, l.data_len(rows), crc);
    if (l.aux_len() > 0) {
      crc = Crc32(data.data() + l.aux_off, l.aux_len(), crc);
    }
    if (l.encoding == ColEncoding::kDict ||
        (l.encoding == ColEncoding::kPlain && l.is_string())) {
      crc = Crc32(data.data() + l.arena_off, l.arena_len, crc);
    }
    if (crc != l.section_crc) {
      return Status::DataLoss(col_ctx + ": section CRC mismatch");
    }
    const auto* null_bytes =
        reinterpret_cast<const uint8_t*>(data.data() + l.nulls_off);
    std::vector<uint8_t> nulls(null_bytes, null_bytes + rows);
    std::vector<int64_t> nums;
    std::vector<std::string> strings;
    // The deep path materialises *plain* storage regardless of the
    // on-disk encoding — it is the fully-validated recovery path, and the
    // decode doubles as an end-to-end check of the encoded sections.
    // Content hashes are representation-independent, so recovery
    // verification against the WAL is unaffected.
    switch (l.encoding) {
      case ColEncoding::kPlain:
        if (l.is_string()) {
          const char* offsets_base = data.data() + l.data_off;
          const char* arena = data.data() + l.arena_off;
          strings.reserve(rows);
          uint64_t prev = LoadU64(offsets_base);
          if (prev != 0) {
            return Status::DataLoss(col_ctx + ": offsets do not start at 0");
          }
          for (size_t r = 0; r < rows; ++r) {
            uint64_t next =
                LoadU64(offsets_base + (r + 1) * sizeof(uint64_t));
            if (next < prev || next > l.arena_len) {
              return Status::DataLoss(col_ctx + ": non-monotonic offsets");
            }
            strings.emplace_back(arena + prev, next - prev);
            prev = next;
          }
        } else {
          nums.resize(rows);
          std::memcpy(nums.data(), data.data() + l.data_off,
                      rows * sizeof(int64_t));
        }
        break;
      case ColEncoding::kDict: {
        const char* codes_base = data.data() + l.data_off;
        const char* offsets_base = data.data() + l.aux_off;
        const char* arena = data.data() + l.arena_off;
        const uint64_t ndv = l.param0;
        uint64_t prev = ndv > 0 ? LoadU64(offsets_base) : 0;
        if (ndv > 0 && prev != 0) {
          return Status::DataLoss(col_ctx +
                                  ": dict offsets do not start at 0");
        }
        for (uint64_t d = 0; d < ndv; ++d) {
          uint64_t next = LoadU64(offsets_base + (d + 1) * sizeof(uint64_t));
          if (next < prev || next > l.arena_len) {
            return Status::DataLoss(col_ctx + ": non-monotonic dict offsets");
          }
          prev = next;
        }
        strings.reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          const uint32_t code = LoadU32(codes_base + r * sizeof(uint32_t));
          if (code >= ndv) {
            return Status::DataLoss(col_ctx + ": dict code out of range");
          }
          const uint64_t lo = LoadU64(offsets_base + code * sizeof(uint64_t));
          const uint64_t hi =
              LoadU64(offsets_base + (code + 1) * sizeof(uint64_t));
          strings.emplace_back(arena + lo, hi - lo);
        }
        break;
      }
      case ColEncoding::kRle: {
        const char* values_base = data.data() + l.data_off;
        const char* ends_base = data.data() + l.aux_off;
        nums.reserve(rows);
        uint32_t prev_end = 0;
        for (uint64_t run = 0; run < l.param0; ++run) {
          const uint32_t end = LoadU32(ends_base + run * sizeof(uint32_t));
          if (end <= prev_end || end > rows) {
            return Status::DataLoss(col_ctx + ": non-increasing run ends");
          }
          int64_t v;
          std::memcpy(&v, values_base + run * sizeof(int64_t), sizeof(v));
          nums.insert(nums.end(), end - prev_end, v);
          prev_end = end;
        }
        if (prev_end != rows) {
          return Status::DataLoss(col_ctx + ": run ends do not cover rows");
        }
        break;
      }
      case ColEncoding::kFor: {
        const char* words_base = data.data() + l.data_off;
        const int64_t base = static_cast<int64_t>(l.param0);
        const uint32_t width = static_cast<uint32_t>(l.param1);
        const uint64_t mask =
            width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
        nums.resize(rows);
        for (size_t r = 0; r < rows; ++r) {
          uint64_t v = 0;
          if (width > 0) {
            const uint64_t bit = static_cast<uint64_t>(r) * width;
            uint64_t w0;
            std::memcpy(&w0, words_base + (bit >> 6) * 8, 8);
            const unsigned shift = static_cast<unsigned>(bit & 63);
            v = w0 >> shift;
            if (shift + width > 64) {
              // The padding word keeps this read in-bounds for the last
              // packed value.
              uint64_t w1;
              std::memcpy(&w1, words_base + ((bit >> 6) + 1) * 8, 8);
              v |= w1 << (64 - shift);
            }
          }
          nums[r] = base + static_cast<int64_t>(v & mask);
        }
        break;
      }
    }
    TPCDS_RETURN_NOT_OK(table->LoadColumnStorage(
        c, std::move(nums), std::move(strings), std::move(nulls)));
  }
  return table->FinishRawLoad(static_cast<int64_t>(rows));
}

/// O(1) attach of one table file: header + directory verification, then
/// every column points into the mapped pages.
Status AttachTableFile(EngineTable* table, const ManifestTable& entry,
                       const std::string& path) {
  TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                         MappedFile::Open(path));
  std::vector<ColumnLayout> layout;
  TPCDS_RETURN_NOT_OK(
      ParseTableHeader(file->data(), file->size(), entry, &layout));
  const size_t rows = static_cast<size_t>(entry.rows);
  for (size_t c = 0; c < layout.size(); ++c) {
    const ColumnLayout& l = layout[c];
    const char* base = file->data();
    const auto* nulls = reinterpret_cast<const uint8_t*>(base + l.nulls_off);
    StorageColumn* col = table->mutable_column(c);
    switch (l.encoding) {
      case ColEncoding::kPlain:
        if (l.is_string()) {
          col->AttachStorage(
              file, nulls, nullptr, base + l.arena_off,
              reinterpret_cast<const uint64_t*>(base + l.data_off), rows);
        } else {
          col->AttachStorage(
              file, nulls,
              reinterpret_cast<const int64_t*>(base + l.data_off), nullptr,
              nullptr, rows);
        }
        break;
      case ColEncoding::kDict:
        col->AttachDictStorage(
            file, nulls,
            reinterpret_cast<const uint32_t*>(base + l.data_off),
            reinterpret_cast<const uint64_t*>(base + l.aux_off),
            base + l.arena_off, static_cast<uint32_t>(l.param0), rows);
        break;
      case ColEncoding::kRle:
        col->AttachRleStorage(
            file, nulls,
            reinterpret_cast<const int64_t*>(base + l.data_off),
            reinterpret_cast<const uint32_t*>(base + l.aux_off),
            static_cast<uint32_t>(l.param0), rows);
        break;
      case ColEncoding::kFor:
        col->AttachForStorage(
            file, nulls,
            reinterpret_cast<const uint64_t*>(base + l.data_off),
            static_cast<int64_t>(l.param0), static_cast<uint32_t>(l.param1),
            rows);
        break;
    }
  }
  return table->FinishRawLoad(static_cast<int64_t>(rows));
}

using TableFileLoader = Status (*)(EngineTable*, const ManifestTable&,
                                   const std::string&);

/// Writes the statistics sidecar: every table whose stats are currently
/// computed (Database::AnalyzeStorage computes all of them) serialises
/// under its name. Always written — an empty sidecar overwrites any stale
/// one left in a reused directory.
Status WriteStatsFile(const Database& db, const std::string& dir) {
  std::string body;
  std::vector<std::pair<std::string, std::shared_ptr<const TableStats>>>
      entries;
  for (const std::string& name : db.TableNames()) {
    std::shared_ptr<const TableStats> stats =
        db.FindTable(name)->ComputedStats();
    if (stats != nullptr) entries.emplace_back(name, std::move(stats));
  }
  PutU32(&body, static_cast<uint32_t>(entries.size()));
  for (const auto& [name, stats] : entries) {
    PutLenString(&body, name);
    SerializeTableStats(*stats, &body);
  }
  std::string file(kStatsMagic, sizeof(kStatsMagic));
  file.append(body);
  PutU32(&file, Crc32(body.data(), body.size()));
  return WriteFileAtomically(dir + "/" + kStatsName, file);
}

/// Restores the statistics sidecar when present. The sidecar is a cache:
/// a missing file is fine (stats recompute lazily) and entries whose
/// table, row count or column count no longer match are skipped; but a
/// present-yet-corrupt file is data loss, like every other durable file.
Status LoadStatsFile(Database* db, const std::string& dir) {
  Result<std::string> data = ReadWholeFile(dir + "/" + kStatsName);
  if (!data.ok()) {
    return data.status().code() == StatusCode::kNotFound ? Status::OK()
                                                         : data.status();
  }
  const std::string& s = *data;
  if (s.size() < sizeof(kStatsMagic) + 4) {
    return Status::DataLoss("checkpoint stats: truncated");
  }
  const uint32_t crc = LoadU32(s.data() + s.size() - 4);
  if (Crc32(s.data() + sizeof(kStatsMagic),
            s.size() - sizeof(kStatsMagic) - 4) != crc) {
    return Status::DataLoss("checkpoint stats: body crc mismatch");
  }
  ByteReader reader(s, "checkpoint stats");
  TPCDS_RETURN_NOT_OK(reader.ReadMagic(kStatsMagic));
  TPCDS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    TPCDS_ASSIGN_OR_RETURN(std::string name, reader.ReadLenString());
    TPCDS_ASSIGN_OR_RETURN(TableStats stats,
                           DeserializeTableStats(&reader));
    EngineTable* table = db->FindTable(name);
    if (table == nullptr || stats.row_count != table->num_rows() ||
        stats.columns.size() != table->num_columns()) {
      continue;
    }
    table->InstallStats(std::make_shared<TableStats>(std::move(stats)));
  }
  return Status::OK();
}

Status RestoreCheckpoint(Database* db, const std::string& dir,
                         TableFileLoader load_table) {
  if (!db->TableNames().empty()) {
    return Status::InvalidArgument(
        "checkpoint: target database is not empty");
  }
  TPCDS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));
  for (const ManifestTable& entry : manifest.tables) {
    TPCDS_RETURN_NOT_OK(db->CreateTable(entry.name, entry.columns));
    EngineTable* table = db->FindTable(entry.name);
    TPCDS_RETURN_NOT_OK(
        load_table(table, entry, dir + "/" + entry.name + ".col"));
  }
  db->set_generation(manifest.generation);
  return LoadStatsFile(db, dir);
}

}  // namespace

Status SaveCheckpointTo(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("checkpoint: cannot create directory " + dir +
                           ": " + ec.message());
  }
  std::string body;
  PutU64(&body, db.generation());
  std::vector<std::string> names = db.TableNames();
  PutU32(&body, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const EngineTable* table = db.FindTable(name);
    uint32_t file_crc = 0;
    TPCDS_RETURN_NOT_OK(
        WriteTableFile(*table, dir + "/" + name + ".col", &file_crc));
    PutLenString(&body, name);
    PutU64(&body, static_cast<uint64_t>(table->num_rows()));
    PutU32(&body, static_cast<uint32_t>(table->num_columns()));
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const EngineTable::ColumnMeta& meta = table->column_meta(c);
      PutLenString(&body, meta.name);
      body.push_back(static_cast<char>(meta.type));
    }
    PutU32(&body, file_crc);
  }
  TPCDS_RETURN_NOT_OK(WriteStatsFile(db, dir));
  TPCDS_FAULT_POINT("ckpt-manifest");
  std::string manifest(kManifestMagic, sizeof(kManifestMagic));
  manifest.append(body);
  PutU32(&manifest, Crc32(body.data(), body.size()));
  return WriteFileAtomically(dir + "/" + kManifestName, manifest);
}

Status LoadCheckpointFrom(Database* db, const std::string& dir) {
  return RestoreCheckpoint(db, dir, &LoadTableFile);
}

Status AttachCheckpointFrom(Database* db, const std::string& dir) {
  return RestoreCheckpoint(db, dir, &AttachTableFile);
}

Status Database::SaveCheckpoint(const std::string& dir) const {
  return SaveCheckpointTo(*this, dir);
}

Status Database::LoadCheckpoint(const std::string& dir) {
  return LoadCheckpointFrom(this, dir);
}

Status Database::AttachCheckpoint(const std::string& dir) {
  return AttachCheckpointFrom(this, dir);
}

}  // namespace tpcds
