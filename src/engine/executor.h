#ifndef TPCDS_ENGINE_EXECUTOR_H_
#define TPCDS_ENGINE_EXECUTOR_H_

#include <memory>

#include "engine/governor.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/rowset.h"
#include "util/result.h"

namespace tpcds {

class DataFacade;

/// Runs a physical plan against a pinned facade generation. With
/// `options.parallelism` > 1 the
/// executor runs morsel-style intra-query parallelism on a per-query
/// thread pool (0 = one worker per hardware core): partition-parallel
/// scans and filters, partitioned hash-join build + probe, and parallel
/// partial aggregation with deterministic merge. Morsels have a fixed row
/// count independent of the worker count and partial results are always
/// combined in morsel order, so results are byte-identical across
/// parallelism levels. Fills `stats` (row counters, legacy plan trace,
/// per-operator timings) when non-null.
///
/// Governance: the executor enforces the options' GovernorLimits (deadline,
/// memory budget, row budget) at morsel boundaries. Callers that need to
/// cancel the query from another thread pass their own `governor`, which
/// then takes precedence over the options' limits.
Result<std::shared_ptr<RowSet>> ExecutePlan(const DataFacade* facade,
                                            const PhysicalPlan& plan,
                                            const PlannerOptions& options,
                                            ExecStats* stats = nullptr,
                                            QueryGovernor* governor =
                                                nullptr);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_EXECUTOR_H_
