#include "engine/cost.h"

#include <algorithm>
#include <cmath>

#include "engine/data_facade.h"
#include "engine/rowset.h"
#include "engine/table.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

void CollectRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.tag == Expr::Tag::kColumnRef) out->push_back(&e);
  for (const auto& c : e.children) CollectRefs(*c, out);
  for (const auto& c : e.partition_by) CollectRefs(*c, out);
  for (const auto& c : e.order_by) CollectRefs(*c, out);
}

bool ResolvesIn(const Expr& e, const PlanNode& node) {
  RowSet scope;
  scope.cols = node.schema;
  std::vector<const Expr*> refs;
  CollectRefs(e, &refs);
  if (refs.empty()) return false;
  for (const Expr* r : refs) {
    if (!scope.Resolve(r->qualifier, r->name).ok()) return false;
  }
  return true;
}

double Clamp01(double s) { return std::clamp(s, 0.0, 1.0); }

}  // namespace

void CostModel::SetCteEstimate(const std::string& name, double rows) {
  cte_rows_[name] = rows;
}

double CostModel::CombineSelectivities(std::vector<double> sels) {
  if (sels.empty()) return 1.0;
  for (double& s : sels) s = Clamp01(s);
  std::sort(sels.begin(), sels.end());
  double combined = 1.0;
  double exponent = 1.0;
  for (size_t i = 0; i < sels.size(); ++i) {
    combined *= std::pow(sels[i], exponent);
    if (exponent > 1.0 / 16.0) exponent /= 2.0;
  }
  return combined;
}

double CostModel::JoinCardinality(double l, double r, double lndv,
                                  double rndv) {
  double divisor = std::max(1.0, std::max(lndv, rndv));
  double est = l * r / divisor;
  return l > 0 && r > 0 ? std::max(1.0, est) : 0.0;
}

double CostModel::KernelSelectivity(const ScanKernel& kernel,
                                    const ColumnStats* cs) {
  using Kind = ScanKernel::Kind;
  if (kernel.kind == Kind::kAlwaysFalse) return 0.0;
  const double non_null =
      cs == nullptr ? 1.0 : Clamp01(1.0 - cs->NullFraction());
  const double ndv =
      cs != nullptr && cs->ndv > 0 ? static_cast<double>(cs->ndv) : 0.0;
  double sel;  // fraction of *non-null* rows the un-negated test passes
  switch (kernel.kind) {
    case Kind::kAlwaysFalse:
      return 0.0;
    case Kind::kIntRange: {
      if (cs != nullptr && !cs->histogram.empty()) {
        sel = cs->histogram.SelectivityRange(kernel.lo, kernel.hi);
      } else if (cs != nullptr && cs->has_minmax && cs->max > cs->min) {
        double lo = std::max<double>(kernel.lo, cs->min);
        double hi = std::min<double>(kernel.hi, cs->max);
        sel = hi < lo ? 0.0
                      : Clamp01((hi - lo + 1.0) /
                                (static_cast<double>(cs->max) -
                                 static_cast<double>(cs->min) + 1.0));
      } else {
        sel = kernel.lo == kernel.hi ? (ndv > 0 ? 1.0 / ndv : 0.1) : 1.0 / 3;
      }
      // A point range is an equality: never claim more than one distinct
      // value's share of the rows.
      if (kernel.lo == kernel.hi && ndv > 0) sel = std::min(sel, 1.0 / ndv);
      break;
    }
    case Kind::kIntIn:
      sel = ndv > 0 ? Clamp01(static_cast<double>(kernel.values.size()) / ndv)
                    : 0.5;
      break;
    case Kind::kStrCompare:
      if (kernel.cmp == ScanKernel::Cmp::kEq) {
        sel = ndv > 0 ? 1.0 / ndv : 0.1;
      } else if (kernel.cmp == ScanKernel::Cmp::kNe) {
        sel = ndv > 0 ? 1.0 - 1.0 / ndv : 0.9;
      } else {
        sel = 1.0 / 3;
      }
      break;
    case Kind::kStrIn:
      sel = ndv > 0 ? Clamp01(static_cast<double>(kernel.strs.size()) / ndv)
                    : 0.5;
      break;
    case Kind::kStrLike:
      // LIKE has no histogram support; a literal prefix is assumed far
      // more selective than an infix pattern.
      sel = kernel.prefix_only ? 0.05
                               : (kernel.like_prefix.empty() ? 0.25 : 0.1);
      break;
    case Kind::kNullTest:
      // Selectivity over all rows, not non-null ones.
      return Clamp01(kernel.negated ? non_null
                                    : (cs != nullptr ? cs->NullFraction()
                                                     : 0.05));
  }
  if (kernel.negated) sel = 1.0 - sel;
  // NULL rows fail every value predicate (and its negation).
  return Clamp01(sel) * non_null;
}

double CostModel::EstimateScan(const PlanNode& node) const {
  EngineTable* table = facade_->FindTable(node.table_name);
  if (table == nullptr) return 0.0;
  const double rows = static_cast<double>(table->num_rows());
  std::shared_ptr<const TableStats> stats = table->GetOrComputeStats();
  std::vector<double> sels;
  sels.reserve(node.kernels.size() + node.residual_predicates.size());
  for (const ScanKernel& k : node.kernels) {
    const ColumnStats* cs =
        k.col >= 0 && static_cast<size_t>(k.col) < stats->columns.size()
            ? &stats->columns[static_cast<size_t>(k.col)]
            : nullptr;
    sels.push_back(KernelSelectivity(k, cs));
  }
  for (size_t i = 0; i < node.residual_predicates.size(); ++i) {
    sels.push_back(kDefaultPredicateSelectivity);
  }
  return rows * CombineSelectivities(std::move(sels));
}

double CostModel::BaseKeyNdv(const PlanNode& input, const Expr& key) const {
  switch (input.kind) {
    case PlanKind::kScan: {
      if (key.tag != Expr::Tag::kColumnRef) return -1.0;
      RowSet scope;
      scope.cols = input.schema;
      Result<int> slot = scope.Resolve(key.qualifier, key.name);
      if (!slot.ok() || static_cast<size_t>(*slot) >= input.scan_cols.size()) {
        return -1.0;
      }
      EngineTable* table = facade_->FindTable(input.table_name);
      if (table == nullptr) return -1.0;
      std::shared_ptr<const TableStats> stats = table->GetOrComputeStats();
      size_t col = static_cast<size_t>(
          input.scan_cols[static_cast<size_t>(*slot)]);
      if (col >= stats->columns.size()) return -1.0;
      return static_cast<double>(stats->columns[col].ndv);
    }
    // Operators that preserve their child's scan schema.
    case PlanKind::kSemiJoinReduce:
    case PlanKind::kFilter:
      return BaseKeyNdv(*input.children[0], key);
    // Joins: the key resolves in exactly one side's schema.
    case PlanKind::kHashJoin:
      for (const auto& child : input.children) {
        if (ResolvesIn(key, *child)) return BaseKeyNdv(*child, key);
      }
      return -1.0;
    default:
      return -1.0;
  }
}

double CostModel::KeyNdv(const PlanNode& input, const Expr& key) const {
  double cap = std::max(1.0, input.stats.est_rows);
  double base = BaseKeyNdv(input, key);
  return base <= 0 ? cap : std::min(base, cap);
}

double CostModel::SemiJoinSelectivity(const PlanNode& dim,
                                      const Expr& dim_key) const {
  double keys = KeyNdv(dim, dim_key);
  double domain = BaseKeyNdv(dim, dim_key);
  return domain > 0 ? Clamp01(keys / domain) : 1.0;
}

double CostModel::EstimateRows(const PlanNode& node) const {
  double est = 0.0;
  switch (node.kind) {
    case PlanKind::kScan:
      est = EstimateScan(node);
      break;
    case PlanKind::kCteRef: {
      auto it = cte_rows_.find(node.cte_name);
      est = it != cte_rows_.end() ? it->second : kUnknownInputRows;
      break;
    }
    case PlanKind::kDerived:
      est = EstimateRows(*node.children[0]);
      break;
    case PlanKind::kIndexJoin: {
      double l = EstimateRows(*node.children[0]);
      EngineTable* table = facade_->FindTable(node.table_name);
      double rows = table != nullptr
                        ? static_cast<double>(table->num_rows())
                        : kUnknownInputRows;
      double ndv = rows;
      if (table != nullptr && node.index_col >= 0) {
        std::shared_ptr<const TableStats> stats = table->GetOrComputeStats();
        if (static_cast<size_t>(node.index_col) < stats->columns.size()) {
          ndv = std::max<double>(
              1.0, static_cast<double>(
                       stats->columns[static_cast<size_t>(node.index_col)]
                           .ndv));
        }
      }
      est = l * rows / std::max(1.0, ndv);
      break;
    }
    case PlanKind::kSemiJoinReduce: {
      double fact = EstimateRows(*node.children[0]);
      EstimateRows(*node.children[1]);
      est = fact *
            SemiJoinSelectivity(*node.children[1], *node.dim_key);
      break;
    }
    case PlanKind::kHashJoin: {
      double l = EstimateRows(*node.children[0]);
      double r = EstimateRows(*node.children[1]);
      if (node.equi.empty()) {
        est = l * r;
      } else {
        est = l > 0 && r > 0 ? std::max(1.0, l * r) : 0.0;
        for (const PlanEquiKey& pair : node.equi) {
          double lndv = KeyNdv(*node.children[0], *pair.left);
          double rndv = KeyNdv(*node.children[1], *pair.right);
          est /= std::max(1.0, std::max(lndv, rndv));
        }
        if (l > 0 && r > 0) est = std::max(1.0, est);
      }
      if (!node.residual.empty()) {
        est *= CombineSelectivities(std::vector<double>(
            node.residual.size(), kDefaultPredicateSelectivity));
      }
      if (node.left_outer) est = std::max(est, l);
      break;
    }
    case PlanKind::kFilter:
      est = EstimateRows(*node.children[0]) *
            CombineSelectivities(std::vector<double>(
                node.predicates.size(), kDefaultPredicateSelectivity));
      break;
    case PlanKind::kAggregate: {
      double child = EstimateRows(*node.children[0]);
      if (node.group_by.empty()) {
        est = 1.0;
      } else {
        double groups = 1.0;
        for (const Expr* g : node.group_by) {
          groups *= KeyNdv(*node.children[0], *g);
          if (groups > child) break;  // capped below anyway
        }
        est = std::min(child, groups);
        // ROLLUP appends one subtotal level per key prefix plus the grand
        // total; bounded by doubling.
        if (node.rollup) est = std::min(child, est * 2.0);
      }
      break;
    }
    case PlanKind::kWindow:
    case PlanKind::kProject:
    case PlanKind::kTruncate:
    case PlanKind::kSort:
      est = EstimateRows(*node.children[0]);
      break;
    case PlanKind::kDistinct:
      // Upper bound; distinct-key NDV over projected expressions is not
      // modelled.
      est = EstimateRows(*node.children[0]);
      break;
    case PlanKind::kTopK:
    case PlanKind::kLimit: {
      double child = EstimateRows(*node.children[0]);
      est = node.limit >= 0
                ? std::min(child, static_cast<double>(node.limit))
                : child;
      break;
    }
    case PlanKind::kSetOp: {
      for (const auto& child : node.children) est += EstimateRows(*child);
      break;
    }
  }
  node.stats.est_rows = est;
  return est;
}

}  // namespace tpcds
