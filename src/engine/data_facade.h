#ifndef TPCDS_ENGINE_DATA_FACADE_H_
#define TPCDS_ENGINE_DATA_FACADE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/table.h"

namespace tpcds {

/// One immutable generation of the dataset: a named snapshot of tables a
/// query pins for its whole lifetime.
///
/// Tables are held by shared_ptr, so facades are cheap table-granularity
/// copy-on-write snapshots: generation N+1 shares every table data
/// maintenance did not touch and owns private clones of the ones it did.
/// Row data reachable through a facade never changes; the lazily built
/// derived state (hash indexes, zone maps) inside each EngineTable is
/// internally synchronized, so concurrent readers may share a facade
/// freely. The backing storage may be heap vectors or mmap'd checkpoint
/// sections — readers cannot tell the difference.
class DataFacade {
 public:
  DataFacade(uint64_t generation,
             std::map<std::string, std::shared_ptr<EngineTable>> tables)
      : generation_(generation), tables_(std::move(tables)) {}

  DataFacade(const DataFacade&) = delete;
  DataFacade& operator=(const DataFacade&) = delete;

  /// Monotonic id of the dataset generation this snapshot describes.
  uint64_t generation() const { return generation_; }

  /// Looks up a table; nullptr when absent. The pointer stays valid for
  /// the facade's lifetime (readers hold the facade via shared_ptr, which
  /// is what pins the generation). The table is non-const only so readers
  /// can trigger lazy index/zone-map builds; row data is immutable.
  EngineTable* FindTable(const std::string& name) const;

  /// Sorted table names (map-backed, deterministic).
  std::vector<std::string> TableNames() const;

  size_t TableCount() const { return tables_.size(); }
  int64_t TotalRows() const;

  /// Number of columns currently backed by an mmap'd checkpoint section
  /// rather than heap vectors (attach-path observability).
  size_t MappedColumnCount() const;

 private:
  uint64_t generation_;
  std::map<std::string, std::shared_ptr<EngineTable>> tables_;
};

/// Hands readers the current generation and atomically swaps in new ones.
///
/// Reader protocol: Acquire() once per query, use only that facade for the
/// query's lifetime, drop the shared_ptr when done. A generation is
/// retired automatically when the provider has swapped past it AND its
/// last reader drops out — shared_ptr refcounting is the drain barrier, no
/// epoch bookkeeping needed.
class DataFacadeProvider {
 public:
  DataFacadeProvider() = default;

  DataFacadeProvider(const DataFacadeProvider&) = delete;
  DataFacadeProvider& operator=(const DataFacadeProvider&) = delete;

  /// The current generation; nullptr before the first Publish.
  std::shared_ptr<const DataFacade> Acquire() const;

  /// Atomically replaces the current generation. Readers that acquired
  /// earlier keep their generation alive; new readers see `next`.
  void Publish(std::shared_ptr<const DataFacade> next);

  /// Number of Publish calls (generation-swap counter for the metric
  /// report).
  uint64_t PublishCount() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const DataFacade> current_;
  uint64_t published_ = 0;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_DATA_FACADE_H_
