#include "engine/data_facade.h"

namespace tpcds {

EngineTable* DataFacade::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DataFacade::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

int64_t DataFacade::TotalRows() const {
  int64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->num_rows();
  return total;
}

size_t DataFacade::MappedColumnCount() const {
  size_t mapped = 0;
  for (const auto& [name, table] : tables_) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      if (table->column(c).is_mapped()) ++mapped;
    }
  }
  return mapped;
}

std::shared_ptr<const DataFacade> DataFacadeProvider::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void DataFacadeProvider::Publish(std::shared_ptr<const DataFacade> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
  ++published_;
}

uint64_t DataFacadeProvider::PublishCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace tpcds
