#ifndef TPCDS_ENGINE_TABLE_H_
#define TPCDS_ENGINE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/batch.h"
#include "engine/stats.h"
#include "engine/value.h"
#include "schema/column.h"
#include "util/mmap_file.h"
#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// Column-oriented storage for one engine table.
///
/// Physical layout: identifiers/integers as int64, decimals as int64
/// cents, dates as int32 JDN widened to int64, strings as bytes, plus a
/// null byte per row. Values materialise on access; scans read the typed
/// storage directly.
///
/// Two backings share one accessor surface:
///   - owned: std::vectors (load path, mutated tables);
///   - mapped: pointers into an mmap'd v2 checkpoint section — numeric
///     payloads and null bytes are read in place, strings resolve as
///     string_views into the file's arena via an offsets array. A
///     shared_ptr to the MappedFile keeps the pages alive.
/// Mapped columns are immutable; the first mutation copies the column to
/// heap storage (copy-on-write), so data maintenance on an attached
/// generation never touches the checkpoint pages.
///
/// Orthogonally to the backing, the payload may be *encoded* (see
/// ColEncoding): dictionary for low-NDV strings, RLE for clustered ints,
/// frame-of-reference bit-packing for dense keys. Encodings are logical
/// no-ops — every accessor decodes on the fly and EnsureOwned() decodes
/// back to plain vectors before any mutation — so the WAL/undo and
/// maintenance paths never see an encoded column. The vectorized kernels
/// in engine/batch.cc evaluate predicates directly on the encoded form.
class StorageColumn {
 public:
  explicit StorageColumn(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  bool is_string() const {
    return type_ == ColumnType::kChar || type_ == ColumnType::kVarchar;
  }
  bool is_mapped() const { return mapped_; }
  ColEncoding encoding() const { return encoding_; }

  size_t size() const {
    if (mapped_) return mapped_rows_;
    if (encoding_ != ColEncoding::kPlain) return nulls_.size();
    return is_string() ? strings_.size() : nums_.size();
  }

  /// Parses a flat-file field ("" = NULL) and appends it.
  Status AppendParsed(const std::string& field);
  /// Appends a typed value (NULL allowed).
  Status AppendValue(const Value& v);

  bool IsNull(size_t row) const { return NullsData()[row] != 0; }
  int64_t Num(size_t row) const {
    if (encoding_ == ColEncoding::kPlain) return NumsData()[row];
    return DecodeNum(row);
  }
  /// The stored string bytes. A view into the owned vector, the dictionary
  /// arena, or the mmap'd arena; valid as long as the column (and its
  /// backing file) lives and the column is not mutated.
  std::string_view Str(size_t row) const {
    if (encoding_ == ColEncoding::kDict) {
      uint32_t code = DictCodes()[row];
      const uint64_t* offs = DictOffsets();
      return std::string_view(DictArena() + offs[code],
                              offs[code + 1] - offs[code]);
    }
    if (mapped_) {
      return std::string_view(map_arena_ + map_offsets_[row],
                              map_offsets_[row + 1] - map_offsets_[row]);
    }
    return strings_[row];
  }

  /// Raw typed storage, for the vectorized kernels in engine/batch.cc and
  /// the checkpoint writer. Empty span of `nums` for string columns *and*
  /// for encoded numeric columns — callers that read the raw array must
  /// check encoding() first and fall back to the Num() accessor (or the
  /// encoded views below).
  std::span<const int64_t> nums() const {
    if (encoding_ != ColEncoding::kPlain) return {};
    if (mapped_) {
      return {map_nums_, is_string() ? 0 : mapped_rows_};
    }
    return {nums_.data(), nums_.size()};
  }
  std::span<const uint8_t> nulls() const {
    if (mapped_) return {map_nulls_, mapped_rows_};
    return {nulls_.data(), nulls_.size()};
  }

  // Encoded views, uniform over owned and mapped backings. Only valid for
  // the matching encoding().
  const uint32_t* DictCodes() const {
    return mapped_ ? map_dict_codes_ : dict_codes_.data();
  }
  /// ndv + 1 cumulative byte offsets into the dictionary arena. The
  /// dictionary is sorted and unique, so code order is string order.
  const uint64_t* DictOffsets() const {
    return mapped_ ? map_dict_offsets_ : dict_offsets_.data();
  }
  const char* DictArena() const {
    return mapped_ ? map_dict_arena_ : dict_arena_.data();
  }
  uint32_t DictNdv() const { return enc_card_; }
  std::string_view DictEntry(uint32_t code) const {
    const uint64_t* offs = DictOffsets();
    return std::string_view(DictArena() + offs[code],
                            offs[code + 1] - offs[code]);
  }

  const int64_t* RleValues() const {
    return mapped_ ? map_rle_values_ : rle_values_.data();
  }
  /// Cumulative exclusive run ends, strictly increasing, last == rows.
  const uint32_t* RleEnds() const {
    return mapped_ ? map_rle_ends_ : rle_ends_.data();
  }
  uint32_t RleRuns() const { return enc_card_; }

  const uint64_t* ForWords() const {
    return mapped_ ? map_for_words_ : for_words_.data();
  }
  int64_t ForBase() const { return for_base_; }
  uint32_t ForWidth() const { return for_width_; }
  /// Packed (unshifted) value at `row`; Num() == ForBase() + this.
  uint64_t ForPacked(size_t row) const {
    if (for_width_ == 0) return 0;
    size_t bit = row * for_width_;
    const uint64_t* words = ForWords();
    size_t off = bit & 63;
    uint64_t v = words[bit >> 6] >> off;
    if (off + for_width_ > 64) v |= words[(bit >> 6) + 1] << (64 - off);
    return v & (for_width_ == 64 ? ~uint64_t{0}
                                 : (uint64_t{1} << for_width_) - 1);
  }

  /// Stats pass: picks and applies the cheapest eligible encoding for this
  /// column's current payload — dictionary for low-NDV strings, RLE when
  /// runs are long, frame-of-reference bit-packing for narrow int ranges —
  /// and returns true when the column was encoded. A column whose payload
  /// would not shrink (e.g. dictionary overflow past the NDV cap) stays
  /// plain and returns false. No-op on mapped or already-encoded columns.
  bool Encode();

  /// Bytes a full sequential read of the current representation touches
  /// (payload + encoding side tables; the per-row null bytes excluded).
  uint64_t PayloadByteSize() const;
  /// Bytes the plain representation of the same rows would touch — the
  /// numerator of the compression ratio. O(rows) for string columns.
  uint64_t PlainByteSize() const;

  Value Get(size_t row) const;
  void Set(size_t row, const Value& v);

  /// Keeps only rows whose index appears in `keep` (sorted ascending).
  void Retain(const std::vector<int64_t>& keep);

  /// Drops every row at index >= `rows` (WAL undo of appended rows).
  void Truncate(size_t rows);

  /// Replaces the raw storage wholesale (checkpoint load). Vectors must be
  /// mutually consistent for this column's type; the caller validates row
  /// counts across columns via EngineTable::FinishRawLoad.
  void ReplaceStorage(std::vector<int64_t> nums,
                      std::vector<std::string> strings,
                      std::vector<uint8_t> nulls);

  /// Points the column at an mmap'd checkpoint section (zero-copy attach).
  /// `nums` is null for string columns; `arena`/`offsets` are null for
  /// numeric ones (`offsets` carries rows + 1 entries). `backing` keeps
  /// the mapped pages alive. Replaces any owned storage.
  void AttachStorage(std::shared_ptr<const MappedFile> backing,
                     const uint8_t* nulls, const int64_t* nums,
                     const char* arena, const uint64_t* offsets,
                     size_t rows);

  /// Zero-copy attach of an encoded checkpoint section (string column).
  /// `offsets` carries ndv + 1 entries into `arena`.
  void AttachDictStorage(std::shared_ptr<const MappedFile> backing,
                         const uint8_t* nulls, const uint32_t* codes,
                         const uint64_t* offsets, const char* arena,
                         uint32_t ndv, size_t rows);
  /// Zero-copy attach of an RLE section (numeric column).
  void AttachRleStorage(std::shared_ptr<const MappedFile> backing,
                        const uint8_t* nulls, const int64_t* values,
                        const uint32_t* ends, uint32_t runs, size_t rows);
  /// Zero-copy attach of a frame-of-reference section (numeric column).
  /// `words` must carry one padding word past the packed bits.
  void AttachForStorage(std::shared_ptr<const MappedFile> backing,
                        const uint8_t* nulls, const uint64_t* words,
                        int64_t base, uint32_t width, size_t rows);

 private:
  const uint8_t* NullsData() const {
    return mapped_ ? map_nulls_ : nulls_.data();
  }
  const int64_t* NumsData() const {
    return mapped_ ? map_nums_ : nums_.data();
  }
  /// Out-of-line numeric decode for encoded columns (RLE / FOR).
  int64_t DecodeNum(size_t row) const;
  /// Copy-on-write *and* decode: materialises a mapped and/or encoded
  /// column into plain owned vectors so a mutator can run. A mutation on a
  /// mapped encoded column decodes first — the mutator never patches an
  /// encoded payload in place. No-op for owned plain columns.
  void EnsureOwned();
  /// Resets all encoded state (owned vectors and mapped views) to plain.
  void ClearEncoding();

  ColumnType type_;
  std::vector<int64_t> nums_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> nulls_;

  // Encoded payload. `encoding_` selects which set is live; owned columns
  // use the vectors, mapped ones the pointers below. `enc_card_` is the
  // dictionary NDV (kDict) or run count (kRle).
  ColEncoding encoding_ = ColEncoding::kPlain;
  uint32_t enc_card_ = 0;
  int64_t for_base_ = 0;
  uint32_t for_width_ = 0;
  std::vector<uint32_t> dict_codes_;
  std::vector<uint64_t> dict_offsets_;
  std::string dict_arena_;
  std::vector<int64_t> rle_values_;
  std::vector<uint32_t> rle_ends_;
  std::vector<uint64_t> for_words_;

  // Mapped view (valid when mapped_ is true).
  bool mapped_ = false;
  size_t mapped_rows_ = 0;
  const uint8_t* map_nulls_ = nullptr;
  const int64_t* map_nums_ = nullptr;
  const char* map_arena_ = nullptr;
  const uint64_t* map_offsets_ = nullptr;
  const uint32_t* map_dict_codes_ = nullptr;
  const uint64_t* map_dict_offsets_ = nullptr;
  const char* map_dict_arena_ = nullptr;
  const int64_t* map_rle_values_ = nullptr;
  const uint32_t* map_rle_ends_ = nullptr;
  const uint64_t* map_for_words_ = nullptr;
  std::shared_ptr<const MappedFile> backing_;
};

/// A loaded table: named, typed columns plus lazily built hash indexes.
/// Mutation (append / update / range delete) invalidates the indexes —
/// exactly the auxiliary-structure maintenance cost the benchmark's second
/// query run is designed to expose (paper §5.2).
class EngineTable {
 public:
  struct ColumnMeta {
    std::string name;
    ColumnType type;
  };

  /// Multi-valued hash index over one column.
  using HashIndex = std::unordered_map<int64_t, std::vector<int64_t>>;

  /// Transparent hasher so StringIndex lookups accept std::string_view
  /// without materialising a std::string key (maintenance probes business
  /// keys straight out of column storage).
  struct StringIndexHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
    size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>()(std::string_view(s));
    }
  };
  using StringIndex =
      std::unordered_map<std::string, std::vector<int64_t>, StringIndexHash,
                         std::equal_to<>>;

  EngineTable(std::string name, std::vector<ColumnMeta> columns);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return meta_.size(); }
  const ColumnMeta& column_meta(size_t i) const { return meta_[i]; }
  int ColumnIndex(const std::string& column_name) const;

  const StorageColumn& column(size_t i) const { return columns_[i]; }
  /// Mutable column access for the checkpoint attach path only.
  StorageColumn* mutable_column(size_t i) { return &columns_[i]; }

  Status AppendRowStrings(const std::vector<std::string>& fields);
  Status AppendRowValues(const std::vector<Value>& values);

  Value GetValue(int64_t row, int col) const {
    return columns_[static_cast<size_t>(col)].Get(static_cast<size_t>(row));
  }
  void SetValue(int64_t row, int col, const Value& v);

  /// Rows whose int-typed column `col` lies in [lo, hi]; used by the
  /// clustered fact delete (paper Fig. 10 environment).
  std::vector<int64_t> FindRowsIntBetween(int col, int64_t lo,
                                          int64_t hi) const;

  /// Deletes the given rows (sorted ascending). Returns rows removed.
  int64_t DeleteRows(const std::vector<int64_t>& sorted_rows);

  /// Drops the trailing rows so `rows` remain (undo of appends).
  Status TruncateRows(int64_t rows);

  /// Reverses DeleteRows: reinserts `images[i]` so it lands at row index
  /// `sorted_rows[i]` of the restored table (the indexes recorded before
  /// the delete). Surviving rows keep their relative order.
  Status ReinsertRows(const std::vector<int64_t>& sorted_rows,
                      const std::vector<std::vector<Value>>& images);

  /// Runs the per-column encoding stats pass (StorageColumn::Encode) over
  /// every column and returns how many columns ended up encoded. Logical
  /// content is unchanged, so existing derived state stays valid.
  size_t EncodeColumns();

  /// Bulk-installs one column's raw storage (checkpoint load path); pair
  /// with FinishRawLoad, which validates sizes and sets the row count.
  Status LoadColumnStorage(size_t col, std::vector<int64_t> nums,
                           std::vector<std::string> strings,
                           std::vector<uint8_t> nulls);
  /// Completes a raw load after every LoadColumnStorage (or
  /// StorageColumn::AttachStorage) call: verifies each column holds
  /// exactly `rows` entries, then installs the row count.
  Status FinishRawLoad(int64_t rows);

  /// Lazily builds and returns a hash index over an int-typed column.
  /// Thread-safe against concurrent builders (query streams share tables);
  /// the returned reference stays valid for the table's lifetime even if
  /// the table is later mutated — invalidation retires the derived-state
  /// generation instead of destroying it (see InvalidateIndexes).
  const HashIndex& GetOrBuildIntIndex(int col);
  /// Lazily builds and returns a hash index over a string-typed column
  /// (business-key lookups during data maintenance).
  const StringIndex& GetOrBuildStringIndex(int col);

  /// Lazily builds and returns the per-block min/max zone map over an
  /// int-backed column; nullptr for string columns. Same thread-safety and
  /// lifetime contract as the hash indexes.
  const ZoneMap* GetOrBuildZoneMap(int col);

  /// Lazily collects (one pass, see AnalyzeTable) and returns the table's
  /// optimizer statistics. Lives in the derived-state bundle, so mutation
  /// invalidates stats exactly like indexes and zone maps; the returned
  /// shared_ptr stays valid (describing the pre-mutation rows) regardless.
  std::shared_ptr<const TableStats> GetOrComputeStats();

  /// The current generation's stats if already collected, else nullptr —
  /// never triggers a collection pass (checkpoint save peeks with this).
  std::shared_ptr<const TableStats> ComputedStats() const;

  /// Installs externally sourced stats (checkpoint STATS section on
  /// load/attach) as the current generation's, replacing any collected.
  void InstallStats(std::shared_ptr<const TableStats> stats);

  /// Count of auxiliary index structures in the current derived-state
  /// generation.
  size_t IndexCount() const {
    std::lock_guard<std::mutex> lock(index_mu_);
    return derived_ == nullptr
               ? 0
               : derived_->int_indexes.size() +
                     derived_->string_indexes.size();
  }

  /// Generation-scoped invalidation: the current derived-state bundle
  /// (indexes + zone maps) is *retired*, not destroyed — any reader still
  /// holding a reference from GetOrBuild* keeps dereferencing valid,
  /// fully built structures that simply describe the pre-mutation rows.
  /// The next GetOrBuild* starts a fresh bundle for the new table state.
  /// Retired bundles are freed when the table is destroyed (with dataset
  /// generations, a mutated table is a private copy-on-write clone, so
  /// the retired list stays short-lived and bounded).
  void InvalidateIndexes();

  /// Derived-state bundles retired by mutations since construction; test
  /// hook for the generation-scoped invalidation contract.
  size_t RetiredDerivedCount() const {
    std::lock_guard<std::mutex> lock(index_mu_);
    return retired_.size();
  }

  /// Deep copy of the table's storage for maintenance snapshot/rollback
  /// and copy-on-write generation builds. Mapped columns copy their view
  /// (still zero-copy; they materialise only if the clone is mutated).
  /// Indexes are not copied — they rebuild lazily on first use.
  std::unique_ptr<EngineTable> Clone() const;

  /// Replaces this table's rows with `snapshot`'s and invalidates indexes;
  /// the schemas must match column-for-column (count, names and types).
  /// Restoring from a Clone() taken earlier rolls the table back.
  Status RestoreFrom(const EngineTable& snapshot);

 private:
  /// One generation of lazily built derived state. Lives behind a
  /// shared_ptr so invalidation can retire the whole bundle atomically
  /// while outstanding readers keep their references.
  struct DerivedState {
    std::unordered_map<int, HashIndex> int_indexes;
    std::unordered_map<int, StringIndex> string_indexes;
    std::unordered_map<int, ZoneMap> zone_maps;
    std::shared_ptr<const TableStats> stats;
  };

  std::string name_;
  std::vector<ColumnMeta> meta_;
  std::vector<StorageColumn> columns_;
  std::unordered_map<std::string, int> name_to_index_;
  int64_t num_rows_ = 0;
  mutable std::mutex index_mu_;
  std::shared_ptr<DerivedState> derived_;
  std::vector<std::shared_ptr<DerivedState>> retired_;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_TABLE_H_
