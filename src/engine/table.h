#ifndef TPCDS_ENGINE_TABLE_H_
#define TPCDS_ENGINE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/batch.h"
#include "engine/value.h"
#include "schema/column.h"
#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// Column-oriented storage for one engine table.
///
/// Physical layout: identifiers/integers as int64, decimals as int64
/// cents, dates as int32 JDN widened to int64, strings as std::string, plus
/// a null vector. Values materialise on access; scans read the typed
/// vectors directly.
class StorageColumn {
 public:
  explicit StorageColumn(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  bool is_string() const {
    return type_ == ColumnType::kChar || type_ == ColumnType::kVarchar;
  }

  size_t size() const {
    return is_string() ? strings_.size() : nums_.size();
  }

  /// Parses a flat-file field ("" = NULL) and appends it.
  Status AppendParsed(const std::string& field);
  /// Appends a typed value (NULL allowed).
  Status AppendValue(const Value& v);

  bool IsNull(size_t row) const { return nulls_[row] != 0; }
  int64_t Num(size_t row) const { return nums_[row]; }
  const std::string& Str(size_t row) const { return strings_[row]; }

  /// Raw typed storage, for the vectorized kernels in engine/batch.cc.
  /// Empty for string columns (`nums`) / non-string columns (`strings`).
  const std::vector<int64_t>& nums() const { return nums_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  Value Get(size_t row) const;
  void Set(size_t row, const Value& v);

  /// Keeps only rows whose index appears in `keep` (sorted ascending).
  void Retain(const std::vector<int64_t>& keep);

  /// Drops every row at index >= `rows` (WAL undo of appended rows).
  void Truncate(size_t rows);

  /// Replaces the raw storage wholesale (checkpoint load). Vectors must be
  /// mutually consistent for this column's type; the caller validates row
  /// counts across columns via EngineTable::FinishRawLoad.
  void ReplaceStorage(std::vector<int64_t> nums,
                      std::vector<std::string> strings,
                      std::vector<uint8_t> nulls);

 private:
  ColumnType type_;
  std::vector<int64_t> nums_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> nulls_;
};

/// A loaded table: named, typed columns plus lazily built hash indexes.
/// Mutation (append / update / range delete) invalidates the indexes —
/// exactly the auxiliary-structure maintenance cost the benchmark's second
/// query run is designed to expose (paper §5.2).
class EngineTable {
 public:
  struct ColumnMeta {
    std::string name;
    ColumnType type;
  };

  /// Multi-valued hash index over one column.
  using HashIndex = std::unordered_map<int64_t, std::vector<int64_t>>;

  /// Transparent hasher so StringIndex lookups accept std::string_view
  /// without materialising a std::string key (maintenance probes business
  /// keys straight out of column storage).
  struct StringIndexHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
    size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>()(std::string_view(s));
    }
  };
  using StringIndex =
      std::unordered_map<std::string, std::vector<int64_t>, StringIndexHash,
                         std::equal_to<>>;

  EngineTable(std::string name, std::vector<ColumnMeta> columns);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return meta_.size(); }
  const ColumnMeta& column_meta(size_t i) const { return meta_[i]; }
  int ColumnIndex(const std::string& column_name) const;

  const StorageColumn& column(size_t i) const { return columns_[i]; }

  Status AppendRowStrings(const std::vector<std::string>& fields);
  Status AppendRowValues(const std::vector<Value>& values);

  Value GetValue(int64_t row, int col) const {
    return columns_[static_cast<size_t>(col)].Get(static_cast<size_t>(row));
  }
  void SetValue(int64_t row, int col, const Value& v);

  /// Rows whose int-typed column `col` lies in [lo, hi]; used by the
  /// clustered fact delete (paper Fig. 10 environment).
  std::vector<int64_t> FindRowsIntBetween(int col, int64_t lo,
                                          int64_t hi) const;

  /// Deletes the given rows (sorted ascending). Returns rows removed.
  int64_t DeleteRows(const std::vector<int64_t>& sorted_rows);

  /// Drops the trailing rows so `rows` remain (undo of appends).
  Status TruncateRows(int64_t rows);

  /// Reverses DeleteRows: reinserts `images[i]` so it lands at row index
  /// `sorted_rows[i]` of the restored table (the indexes recorded before
  /// the delete). Surviving rows keep their relative order.
  Status ReinsertRows(const std::vector<int64_t>& sorted_rows,
                      const std::vector<std::vector<Value>>& images);

  /// Bulk-installs one column's raw storage (checkpoint load path); pair
  /// with FinishRawLoad, which validates sizes and sets the row count.
  Status LoadColumnStorage(size_t col, std::vector<int64_t> nums,
                           std::vector<std::string> strings,
                           std::vector<uint8_t> nulls);
  /// Completes a raw load after every LoadColumnStorage call: verifies each
  /// column holds exactly `rows` entries, then installs the row count.
  Status FinishRawLoad(int64_t rows);

  /// Lazily builds and returns a hash index over an int-typed column.
  /// Thread-safe against concurrent builders (query streams share tables);
  /// concurrent *mutation* requires external coordination, matching the
  /// benchmark's serialised load / query-run / maintenance phases.
  const HashIndex& GetOrBuildIntIndex(int col);
  /// Lazily builds and returns a hash index over a string-typed column
  /// (business-key lookups during data maintenance).
  const StringIndex& GetOrBuildStringIndex(int col);

  /// Lazily builds and returns the per-block min/max zone map over an
  /// int-backed column; nullptr for string columns. Same thread-safety
  /// contract as the hash indexes; invalidated together with them.
  const ZoneMap* GetOrBuildZoneMap(int col);

  /// Bytes of auxiliary index structures currently materialised.
  size_t IndexCount() const {
    return int_indexes_.size() + string_indexes_.size();
  }

  void InvalidateIndexes();

  /// Deep copy of the table's storage for maintenance snapshot/rollback.
  /// Indexes are not copied — they rebuild lazily on first use.
  std::unique_ptr<EngineTable> Clone() const;

  /// Replaces this table's rows with `snapshot`'s and invalidates indexes;
  /// the schemas must match column-for-column (count, names and types).
  /// Restoring from a Clone() taken earlier rolls the table back.
  Status RestoreFrom(const EngineTable& snapshot);

 private:
  std::string name_;
  std::vector<ColumnMeta> meta_;
  std::vector<StorageColumn> columns_;
  std::unordered_map<std::string, int> name_to_index_;
  int64_t num_rows_ = 0;
  std::mutex index_mu_;
  std::unordered_map<int, HashIndex> int_indexes_;
  std::unordered_map<int, StringIndex> string_indexes_;
  std::unordered_map<int, ZoneMap> zone_maps_;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_TABLE_H_
