#ifndef TPCDS_ENGINE_VALUE_H_
#define TPCDS_ENGINE_VALUE_H_

#include <cstdint>
#include <string>

#include "util/date.h"
#include "util/decimal.h"

namespace tpcds {

/// A runtime SQL value. Numeric kinds (int, decimal, double) compare and
/// combine with the usual SQL coercions; dates compare with date-literal
/// strings by parsing. NULL is a distinct kind with SQL semantics
/// (comparisons involving NULL are unknown; aggregates skip NULLs).
class Value {
 public:
  enum class Kind { kNull, kInt, kDecimal, kDouble, kString, kDate };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.num_ = v;
    return out;
  }
  static Value Dec(Decimal v) {
    Value out;
    out.kind_ = Kind::kDecimal;
    out.num_ = v.cents();
    return out;
  }
  static Value Dbl(double v) {
    Value out;
    out.kind_ = Kind::kDouble;
    out.dbl_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::move(v);
    return out;
  }
  static Value Dt(Date v) {
    Value out;
    out.kind_ = Kind::kDate;
    out.num_ = v.jdn();
    return out;
  }
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDecimal ||
           kind_ == Kind::kDouble;
  }

  int64_t AsInt() const { return num_; }
  Decimal AsDecimal() const { return Decimal::FromCents(num_); }
  Date AsDate() const { return Date(static_cast<int32_t>(num_)); }
  const std::string& AsString() const { return str_; }
  /// Numeric coercion to double (0 for non-numerics).
  double AsDouble() const;
  /// Truthiness for filters: non-null, non-zero numeric.
  bool IsTruthy() const;

  /// Three-way comparison with SQL coercions. Callers must handle NULLs
  /// first (Compare treats NULL as less-than for sorting purposes).
  static int Compare(const Value& a, const Value& b);

  /// SQL equality (after coercion); NULL never equals anything.
  static bool SqlEquals(const Value& a, const Value& b);

  /// Hash consistent with SqlEquals for group-by/join keys (numerics of
  /// equal value hash equally).
  size_t Hash() const;

  /// Rendering for result display and CSV output; NULL renders as "NULL".
  std::string ToDisplayString() const;

 private:
  Kind kind_;
  int64_t num_ = 0;  // int / decimal cents / date jdn
  double dbl_ = 0.0;
  std::string str_;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_VALUE_H_
