#ifndef TPCDS_ENGINE_AUDIT_H_
#define TPCDS_ENGINE_AUDIT_H_

#include <string>
#include <vector>

#include "engine/database.h"
#include "schema/schema.h"
#include "util/result.h"

namespace tpcds {

/// Result of validating one declared constraint.
struct ConstraintCheck {
  std::string constraint;   // e.g. "store_sales(ss_item_sk) -> item"
  int64_t rows_checked = 0;
  int64_t violations = 0;
};

struct AuditReport {
  std::vector<ConstraintCheck> checks;

  int64_t TotalViolations() const {
    int64_t total = 0;
    for (const ConstraintCheck& c : checks) total += c.violations;
    return total;
  }
  std::string ToString() const;
};

/// Validates a pinned dataset generation against the schema's declared
/// constraints — primary-key uniqueness and every foreign key (NULL FK
/// values pass, as in SQL). This is the "define and validate constraints"
/// step of the paper's timed load test (§5.2).
Result<AuditReport> ValidateConstraints(const DataFacade& facade,
                                        const Schema& schema);

/// Convenience overload: validates a snapshot of `db`'s current tables.
Result<AuditReport> ValidateConstraints(Database* db, const Schema& schema);

/// Order-sensitive hash of a table's raw columnar storage: schema (names,
/// types), row count, null bytes, int64 payloads and string payloads all
/// feed in. Two tables hash equally iff their storage is byte-identical —
/// the equivalence the checkpoint/WAL recovery invariant is stated in.
uint64_t HashTableContent(const EngineTable& table);

/// Combines every table's content hash, keyed by table name, into one
/// dataset fingerprint (derived state — indexes, zone maps — excluded).
/// Heap-loaded and mmap-attached storage of the same data hash equally.
uint64_t HashFacadeContent(const DataFacade& facade);

/// Convenience overload over a snapshot of `db`'s current tables.
uint64_t HashDatabaseContent(const Database& db);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_AUDIT_H_
