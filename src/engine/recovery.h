#ifndef TPCDS_ENGINE_RECOVERY_H_
#define TPCDS_ENGINE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/table.h"
#include "util/result.h"
#include "util/wal.h"

namespace tpcds {

/// Logs data-maintenance mutations through a WalWriter while applying them,
/// and remembers enough (in memory) to undo any suffix.
///
/// Protocol per mutation: capture the before-image, apply to the table,
/// append the logical record to the WAL, and only then add it to the
/// in-memory undo list. If the WAL append fails, the just-applied mutation
/// is reverted on the spot, so table state and durable log never disagree
/// by more than the record being written.
///
/// Rollback is WAL-based undo: UndoToMark reverts records newest-first from
/// the in-memory list — O(rows actually changed), unlike the whole-table
/// Clone snapshots it replaces. The writer may be null, which turns the
/// session into a pure in-memory undo log (used when data maintenance runs
/// without durability).
class WalSession {
 public:
  /// `writer` may be null; the session does not take ownership.
  explicit WalSession(WalWriter* writer) : writer_(writer) {}

  WalSession(const WalSession&) = delete;
  WalSession& operator=(const WalSession&) = delete;

  /// Marks the start of one refresh operation in the log.
  Status BeginOp(const std::string& op_name);
  /// Writes the commit marker and flushes; the operation is now durable.
  Status CommitOp(const std::string& op_name, int64_t rows_affected);

  /// Logged equivalent of EngineTable::SetValue.
  Status SetCell(EngineTable* table, int64_t row, int col, const Value& v);
  /// Logged equivalent of EngineTable::AppendRowValues.
  Status AppendRowValues(EngineTable* table, const std::vector<Value>& row);
  /// Logged equivalent of EngineTable::AppendRowStrings; the after-image
  /// is read back from storage so the log is exact even after parsing.
  Status AppendRowStrings(EngineTable* table,
                          const std::vector<std::string>& fields);
  /// Logged equivalent of EngineTable::DeleteRows (sorted ascending).
  /// Returns the number of rows removed.
  Result<int64_t> DeleteRows(EngineTable* table,
                             const std::vector<int64_t>& sorted_rows);

  /// Position in the undo list; pass to UndoToMark to revert a suffix.
  size_t Mark() const { return applied_.size(); }

  /// Reverts every mutation applied after `mark`, newest-first.
  Status UndoToMark(size_t mark);

  WalWriter* writer() const { return writer_; }

 private:
  struct AppliedRecord {
    WalRecordType type = WalRecordType::kUpdateCell;
    EngineTable* table = nullptr;
    // kUpdateCell: the overwritten cell.
    int64_t row = 0;
    int col = 0;
    Value before;
    // kDeleteRows: original row indexes and full before-images.
    std::vector<int64_t> deleted_rows;
    std::vector<std::vector<Value>> deleted_images;
  };

  /// Appends to the WAL when a writer is attached; no-op otherwise.
  Status Log(WalRecordType type, const std::string& payload);

  /// Logs the row appended last (shared by both append shims).
  Status LogAppendedRow(EngineTable* table);

  WalWriter* writer_;
  std::vector<AppliedRecord> applied_;
};

/// What a recovery pass did, for the driver's report and for tests.
struct RecoveryReport {
  int64_t tables_restored = 0;   // tables loaded from the checkpoint
  int64_t records_scanned = 0;   // well-formed WAL records read
  int64_t records_replayed = 0;  // mutation records applied
  int64_t ops_replayed = 0;      // operations with a commit marker
  int64_t ops_discarded = 0;     // uncommitted trailing operations dropped
  uint64_t torn_bytes = 0;       // physical bytes truncated as a torn tail
  double seconds = 0.0;
  std::vector<std::string> replayed_ops;    // op names, commit order
  std::vector<std::string> tables_touched;  // sorted unique table names

  std::string ToString() const;
};

/// Rebuilds a database from durable state: loads the checkpoint in
/// `checkpoint_dir`, then replays every *committed* operation from the WAL
/// at `wal_path` in LSN order. Uncommitted trailing records (no commit
/// marker — including a torn tail) are discarded. A missing WAL file is
/// fine (recovery to the checkpoint); a CRC failure inside the committed
/// region is kDataLoss.
///
/// `db` must be empty. Postcondition (the recovery invariant): the restored
/// database hashes identically — HashDatabaseContent — to an in-memory
/// database that applied exactly the committed operations.
Result<RecoveryReport> Recover(Database* db, const std::string& checkpoint_dir,
                               const std::string& wal_path);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_RECOVERY_H_
