#include "engine/table.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace tpcds {

namespace {

// Encoding guard rails. A dictionary past the NDV cap falls back to plain
// (the overflow path); RLE must average at least kRleMinRunLength rows per
// run to beat the 12 bytes a run costs; FOR widths past 32 bits save too
// little over the plain 64-bit payload to justify the decode.
constexpr uint32_t kDictMaxNdv = uint32_t{1} << 16;
constexpr size_t kRleMinRunLength = 4;
constexpr uint32_t kForMaxWidth = 32;

// Packed words for `rows` values of `width` bits, plus one padding word so
// the straddling two-word read in ForPacked never runs off the end.
size_t ForWordCount(size_t rows, uint32_t width) {
  return (rows * width + 63) / 64 + 1;
}

}  // namespace

int64_t StorageColumn::DecodeNum(size_t row) const {
  switch (encoding_) {
    case ColEncoding::kRle: {
      const uint32_t* ends = RleEnds();
      const uint32_t* run = std::upper_bound(
          ends, ends + enc_card_, static_cast<uint32_t>(row));
      return RleValues()[run - ends];
    }
    case ColEncoding::kFor:
      return for_base_ + static_cast<int64_t>(ForPacked(row));
    default:
      return NumsData()[row];
  }
}

void StorageColumn::ClearEncoding() {
  encoding_ = ColEncoding::kPlain;
  enc_card_ = 0;
  for_base_ = 0;
  for_width_ = 0;
  dict_codes_.clear();
  dict_offsets_.clear();
  dict_arena_.clear();
  rle_values_.clear();
  rle_ends_.clear();
  for_words_.clear();
  map_dict_codes_ = nullptr;
  map_dict_offsets_ = nullptr;
  map_dict_arena_ = nullptr;
  map_rle_values_ = nullptr;
  map_rle_ends_ = nullptr;
  map_for_words_ = nullptr;
}

void StorageColumn::EnsureOwned() {
  if (!mapped_ && encoding_ == ColEncoding::kPlain) return;
  // Copy-on-write + decode: materialise the mapped and/or encoded payload
  // into plain owned vectors. The mapped checkpoint pages are never
  // written, and mutators never patch an encoded payload in place — a
  // mutation on a mapped encoded column lands here and decodes first, so
  // the WAL/undo byte-identity contract sees only plain storage.
  const size_t rows = size();
  std::vector<uint8_t> plain_nulls(NullsData(), NullsData() + rows);
  std::vector<int64_t> plain_nums;
  std::vector<std::string> plain_strings;
  if (is_string()) {
    plain_strings.reserve(rows);
    for (size_t r = 0; r < rows; ++r) plain_strings.emplace_back(Str(r));
  } else {
    plain_nums.resize(rows);
    for (size_t r = 0; r < rows; ++r) plain_nums[r] = Num(r);
  }
  ReplaceStorage(std::move(plain_nums), std::move(plain_strings),
                 std::move(plain_nulls));
}

bool StorageColumn::Encode() {
  if (mapped_ || encoding_ != ColEncoding::kPlain) return false;
  const size_t rows = size();
  if (rows == 0) return false;
  if (is_string()) {
    // Dictionary: sorted unique set over *all* row payloads (NULL cells
    // store "", which therefore gets a code too — the payload array
    // round-trips byte-exactly). Sorted order makes code order equal
    // string order, so string compares become integer code ranges.
    std::vector<std::string_view> sorted;
    sorted.reserve(rows);
    for (const std::string& s : strings_) sorted.emplace_back(s);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (sorted.size() > kDictMaxNdv) return false;  // overflow: stay plain
    const uint32_t ndv = static_cast<uint32_t>(sorted.size());
    uint64_t dict_bytes = 0;
    for (std::string_view s : sorted) dict_bytes += s.size();
    const uint64_t encoded = rows * sizeof(uint32_t) +
                             (ndv + 1) * sizeof(uint64_t) + dict_bytes;
    if (encoded >= PlainByteSize()) return false;
    dict_offsets_.reserve(ndv + 1);
    dict_offsets_.push_back(0);
    dict_arena_.reserve(dict_bytes);
    for (std::string_view s : sorted) {
      dict_arena_.append(s.data(), s.size());
      dict_offsets_.push_back(dict_arena_.size());
    }
    dict_codes_.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      dict_codes_[r] = static_cast<uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(),
                           std::string_view(strings_[r])) -
          sorted.begin());
    }
    enc_card_ = ndv;
    encoding_ = ColEncoding::kDict;
    strings_.clear();
    strings_.shrink_to_fit();
    return true;
  }
  if (rows > UINT32_MAX) return false;  // RLE ends / codes are u32
  // One stats pass over the numeric payload: run count and min/max
  // (NULL-slot zeros included — they are part of the payload array).
  size_t runs = 1;
  int64_t min = nums_[0], max = nums_[0];
  for (size_t r = 1; r < rows; ++r) {
    if (nums_[r] != nums_[r - 1]) ++runs;
    min = std::min(min, nums_[r]);
    max = std::max(max, nums_[r]);
  }
  if (rows / runs >= kRleMinRunLength) {
    rle_values_.reserve(runs);
    rle_ends_.reserve(runs);
    for (size_t r = 0; r < rows; ++r) {
      if (r + 1 == rows || nums_[r + 1] != nums_[r]) {
        rle_values_.push_back(nums_[r]);
        rle_ends_.push_back(static_cast<uint32_t>(r + 1));
      }
    }
    enc_card_ = static_cast<uint32_t>(runs);
    encoding_ = ColEncoding::kRle;
    nums_.clear();
    nums_.shrink_to_fit();
    return true;
  }
  // Frame of reference: values become width-bit offsets from the minimum.
  const uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  const uint32_t width =
      range == 0 ? 0 : static_cast<uint32_t>(std::bit_width(range));
  if (width > kForMaxWidth) return false;
  for_words_.assign(ForWordCount(rows, width), 0);
  for (size_t r = 0; r < rows && width > 0; ++r) {
    const uint64_t v = static_cast<uint64_t>(nums_[r]) -
                       static_cast<uint64_t>(min);
    const size_t bit = r * width;
    const size_t off = bit & 63;
    for_words_[bit >> 6] |= v << off;
    if (off + width > 64) for_words_[(bit >> 6) + 1] |= v >> (64 - off);
  }
  for_base_ = min;
  for_width_ = width;
  encoding_ = ColEncoding::kFor;
  nums_.clear();
  nums_.shrink_to_fit();
  return true;
}

uint64_t StorageColumn::PayloadByteSize() const {
  const size_t rows = size();
  switch (encoding_) {
    case ColEncoding::kDict:
      return rows * sizeof(uint32_t) +
             (static_cast<uint64_t>(enc_card_) + 1) * sizeof(uint64_t) +
             DictOffsets()[enc_card_];
    case ColEncoding::kRle:
      return static_cast<uint64_t>(enc_card_) *
             (sizeof(int64_t) + sizeof(uint32_t));
    case ColEncoding::kFor:
      return ForWordCount(rows, for_width_) * sizeof(uint64_t);
    case ColEncoding::kPlain:
      break;
  }
  if (!is_string()) return rows * sizeof(int64_t);
  if (mapped_) return (rows + 1) * sizeof(uint64_t) + map_offsets_[rows];
  uint64_t arena = 0;
  for (const std::string& s : strings_) arena += s.size();
  return (rows + 1) * sizeof(uint64_t) + arena;
}

uint64_t StorageColumn::PlainByteSize() const {
  const size_t rows = size();
  if (!is_string()) return rows * sizeof(int64_t);
  if (encoding_ == ColEncoding::kDict) {
    // Logical arena length: each row contributes its dictionary entry.
    const uint64_t* offs = DictOffsets();
    const uint32_t* codes = DictCodes();
    uint64_t arena = 0;
    for (size_t r = 0; r < rows; ++r) {
      arena += offs[codes[r] + 1] - offs[codes[r]];
    }
    return (rows + 1) * sizeof(uint64_t) + arena;
  }
  return PayloadByteSize();
}

void StorageColumn::AttachStorage(std::shared_ptr<const MappedFile> backing,
                                  const uint8_t* nulls, const int64_t* nums,
                                  const char* arena, const uint64_t* offsets,
                                  size_t rows) {
  nums_.clear();
  strings_.clear();
  nulls_.clear();
  ClearEncoding();
  mapped_ = true;
  mapped_rows_ = rows;
  map_nulls_ = nulls;
  map_nums_ = nums;
  map_arena_ = arena;
  map_offsets_ = offsets;
  backing_ = std::move(backing);
}

void StorageColumn::AttachDictStorage(
    std::shared_ptr<const MappedFile> backing, const uint8_t* nulls,
    const uint32_t* codes, const uint64_t* offsets, const char* arena,
    uint32_t ndv, size_t rows) {
  AttachStorage(std::move(backing), nulls, nullptr, nullptr, nullptr, rows);
  encoding_ = ColEncoding::kDict;
  enc_card_ = ndv;
  map_dict_codes_ = codes;
  map_dict_offsets_ = offsets;
  map_dict_arena_ = arena;
}

void StorageColumn::AttachRleStorage(
    std::shared_ptr<const MappedFile> backing, const uint8_t* nulls,
    const int64_t* values, const uint32_t* ends, uint32_t runs,
    size_t rows) {
  AttachStorage(std::move(backing), nulls, nullptr, nullptr, nullptr, rows);
  encoding_ = ColEncoding::kRle;
  enc_card_ = runs;
  map_rle_values_ = values;
  map_rle_ends_ = ends;
}

void StorageColumn::AttachForStorage(
    std::shared_ptr<const MappedFile> backing, const uint8_t* nulls,
    const uint64_t* words, int64_t base, uint32_t width, size_t rows) {
  AttachStorage(std::move(backing), nulls, nullptr, nullptr, nullptr, rows);
  encoding_ = ColEncoding::kFor;
  for_base_ = base;
  for_width_ = width;
  map_for_words_ = words;
}

Status StorageColumn::AppendParsed(const std::string& field) {
  EnsureOwned();
  if (field.empty()) {
    nulls_.push_back(1);
    if (is_string()) {
      strings_.emplace_back();
    } else {
      nums_.push_back(0);
    }
    return Status::OK();
  }
  nulls_.push_back(0);
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger: {
      char* end = nullptr;
      int64_t v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str()) {
        return Status::ParseError("bad integer field: '" + field + "'");
      }
      nums_.push_back(v);
      return Status::OK();
    }
    case ColumnType::kDecimal: {
      TPCDS_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(field));
      nums_.push_back(d.cents());
      return Status::OK();
    }
    case ColumnType::kDate: {
      TPCDS_ASSIGN_OR_RETURN(Date d, Date::Parse(field));
      nums_.push_back(d.jdn());
      return Status::OK();
    }
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_.push_back(field);
      return Status::OK();
  }
  return Status::Internal("unhandled column type");
}

Status StorageColumn::AppendValue(const Value& v) {
  EnsureOwned();
  if (v.is_null()) {
    nulls_.push_back(1);
    if (is_string()) {
      strings_.emplace_back();
    } else {
      nums_.push_back(0);
    }
    return Status::OK();
  }
  nulls_.push_back(0);
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      nums_.push_back(v.kind() == Value::Kind::kDecimal
                          ? v.AsDecimal().cents() / Decimal::kScale
                          : v.AsInt());
      return Status::OK();
    case ColumnType::kDecimal:
      if (v.kind() == Value::Kind::kDecimal) {
        nums_.push_back(v.AsDecimal().cents());
      } else {
        nums_.push_back(Decimal::FromDouble(v.AsDouble()).cents());
      }
      return Status::OK();
    case ColumnType::kDate:
      if (v.kind() == Value::Kind::kDate) {
        nums_.push_back(v.AsDate().jdn());
        return Status::OK();
      }
      if (v.kind() == Value::Kind::kString) {
        TPCDS_ASSIGN_OR_RETURN(Date d, Date::Parse(v.AsString()));
        nums_.push_back(d.jdn());
        return Status::OK();
      }
      nums_.push_back(v.AsInt());
      return Status::OK();
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_.push_back(v.ToDisplayString());
      return Status::OK();
  }
  return Status::Internal("unhandled column type");
}

Value StorageColumn::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      return Value::Int(Num(row));
    case ColumnType::kDecimal:
      return Value::Dec(Decimal::FromCents(Num(row)));
    case ColumnType::kDate:
      return Value::Dt(Date(static_cast<int32_t>(Num(row))));
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      return Value::Str(std::string(Str(row)));
  }
  return Value::Null();
}

void StorageColumn::Set(size_t row, const Value& v) {
  EnsureOwned();
  if (v.is_null()) {
    nulls_[row] = 1;
    // Null cells store a normalized payload (0 / empty), same as
    // AppendValue: content hashes and checkpoints cover the raw storage,
    // so the slot must not remember the cell's former value.
    if (is_string()) {
      strings_[row].clear();
    } else {
      nums_[row] = 0;
    }
    return;
  }
  nulls_[row] = 0;
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      nums_[row] = v.AsInt();
      break;
    case ColumnType::kDecimal:
      nums_[row] = v.kind() == Value::Kind::kDecimal
                       ? v.AsDecimal().cents()
                       : Decimal::FromDouble(v.AsDouble()).cents();
      break;
    case ColumnType::kDate:
      nums_[row] = v.kind() == Value::Kind::kDate
                       ? v.AsDate().jdn()
                       : v.AsInt();
      break;
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_[row] = v.ToDisplayString();
      break;
  }
}

void StorageColumn::Retain(const std::vector<int64_t>& keep) {
  EnsureOwned();
  std::vector<uint8_t> new_nulls;
  new_nulls.reserve(keep.size());
  if (is_string()) {
    std::vector<std::string> new_strings;
    new_strings.reserve(keep.size());
    for (int64_t r : keep) {
      new_strings.push_back(std::move(strings_[static_cast<size_t>(r)]));
      new_nulls.push_back(nulls_[static_cast<size_t>(r)]);
    }
    strings_ = std::move(new_strings);
  } else {
    std::vector<int64_t> new_nums;
    new_nums.reserve(keep.size());
    for (int64_t r : keep) {
      new_nums.push_back(nums_[static_cast<size_t>(r)]);
      new_nulls.push_back(nulls_[static_cast<size_t>(r)]);
    }
    nums_ = std::move(new_nums);
  }
  nulls_ = std::move(new_nulls);
}

void StorageColumn::Truncate(size_t rows) {
  EnsureOwned();
  if (is_string()) {
    if (strings_.size() > rows) strings_.resize(rows);
  } else {
    if (nums_.size() > rows) nums_.resize(rows);
  }
  if (nulls_.size() > rows) nulls_.resize(rows);
}

void StorageColumn::ReplaceStorage(std::vector<int64_t> nums,
                                   std::vector<std::string> strings,
                                   std::vector<uint8_t> nulls) {
  nums_ = std::move(nums);
  strings_ = std::move(strings);
  nulls_ = std::move(nulls);
  ClearEncoding();
  mapped_ = false;
  mapped_rows_ = 0;
  map_nulls_ = nullptr;
  map_nums_ = nullptr;
  map_arena_ = nullptr;
  map_offsets_ = nullptr;
  backing_.reset();
}

EngineTable::EngineTable(std::string name, std::vector<ColumnMeta> columns)
    : name_(std::move(name)), meta_(std::move(columns)) {
  columns_.reserve(meta_.size());
  for (size_t i = 0; i < meta_.size(); ++i) {
    columns_.emplace_back(meta_[i].type);
    name_to_index_[meta_[i].name] = static_cast<int>(i);
  }
}

int EngineTable::ColumnIndex(const std::string& column_name) const {
  auto it = name_to_index_.find(column_name);
  return it == name_to_index_.end() ? -1 : it->second;
}

Status EngineTable::AppendRowStrings(
    const std::vector<std::string>& fields) {
  if (fields.size() != meta_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch for " + name_ + ": got " +
        std::to_string(fields.size()) + ", want " +
        std::to_string(meta_.size()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    TPCDS_RETURN_NOT_OK(columns_[i].AppendParsed(fields[i]));
  }
  ++num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

Status EngineTable::AppendRowValues(const std::vector<Value>& values) {
  if (values.size() != meta_.size()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    TPCDS_RETURN_NOT_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

void EngineTable::SetValue(int64_t row, int col, const Value& v) {
  columns_[static_cast<size_t>(col)].Set(static_cast<size_t>(row), v);
  InvalidateIndexes();
}

std::vector<int64_t> EngineTable::FindRowsIntBetween(int col, int64_t lo,
                                                     int64_t hi) const {
  std::vector<int64_t> rows;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(static_cast<size_t>(r))) continue;
    int64_t v = c.Num(static_cast<size_t>(r));
    if (v >= lo && v <= hi) rows.push_back(r);
  }
  return rows;
}

int64_t EngineTable::DeleteRows(const std::vector<int64_t>& sorted_rows) {
  if (sorted_rows.empty()) return 0;
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(num_rows_) - sorted_rows.size());
  size_t di = 0;
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (di < sorted_rows.size() && sorted_rows[di] == r) {
      ++di;
      continue;
    }
    keep.push_back(r);
  }
  for (StorageColumn& c : columns_) c.Retain(keep);
  int64_t deleted = num_rows_ - static_cast<int64_t>(keep.size());
  num_rows_ = static_cast<int64_t>(keep.size());
  InvalidateIndexes();
  return deleted;
}

Status EngineTable::TruncateRows(int64_t rows) {
  if (rows < 0 || rows > num_rows_) {
    return Status::InvalidArgument(
        "cannot truncate " + name_ + " to " + std::to_string(rows) +
        " rows (has " + std::to_string(num_rows_) + ")");
  }
  if (rows == num_rows_) return Status::OK();
  for (StorageColumn& c : columns_) c.Truncate(static_cast<size_t>(rows));
  num_rows_ = rows;
  InvalidateIndexes();
  return Status::OK();
}

Status EngineTable::ReinsertRows(
    const std::vector<int64_t>& sorted_rows,
    const std::vector<std::vector<Value>>& images) {
  if (sorted_rows.size() != images.size()) {
    return Status::InvalidArgument("reinsert rows/images size mismatch on " +
                                   name_);
  }
  if (sorted_rows.empty()) return Status::OK();
  int64_t new_rows = num_rows_ + static_cast<int64_t>(sorted_rows.size());
  if (sorted_rows.back() >= new_rows || sorted_rows.front() < 0) {
    return Status::InvalidArgument("reinsert index out of range on " + name_);
  }
  // Rebuild each column by interleaving survivors with the before-images
  // at their recorded positions. AppendValue(Get()) round-trips the raw
  // storage exactly (same int64 payload / string / null byte), so the
  // result is byte-identical to the pre-delete column.
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    StorageColumn rebuilt(meta_[ci].type);
    size_t survivor = 0;
    size_t k = 0;
    for (int64_t j = 0; j < new_rows; ++j) {
      if (k < sorted_rows.size() && sorted_rows[k] == j) {
        if (images[k].size() != columns_.size()) {
          return Status::InvalidArgument("reinsert image arity mismatch on " +
                                         name_);
        }
        TPCDS_RETURN_NOT_OK(rebuilt.AppendValue(images[k][ci]));
        ++k;
      } else {
        TPCDS_RETURN_NOT_OK(
            rebuilt.AppendValue(columns_[ci].Get(survivor++)));
      }
    }
    columns_[ci] = std::move(rebuilt);
  }
  num_rows_ = new_rows;
  InvalidateIndexes();
  return Status::OK();
}

size_t EngineTable::EncodeColumns() {
  size_t encoded = 0;
  for (StorageColumn& c : columns_) {
    if (c.Encode()) ++encoded;
  }
  return encoded;
}

Status EngineTable::LoadColumnStorage(size_t col, std::vector<int64_t> nums,
                                      std::vector<std::string> strings,
                                      std::vector<uint8_t> nulls) {
  if (col >= columns_.size()) {
    return Status::InvalidArgument("raw load column out of range on " + name_);
  }
  columns_[col].ReplaceStorage(std::move(nums), std::move(strings),
                               std::move(nulls));
  return Status::OK();
}

Status EngineTable::FinishRawLoad(int64_t rows) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size() != static_cast<size_t>(rows) ||
        columns_[i].nulls().size() != static_cast<size_t>(rows)) {
      return Status::DataLoss(
          "raw load of " + name_ + "." + meta_[i].name + " holds " +
          std::to_string(columns_[i].size()) + " rows, manifest says " +
          std::to_string(rows));
    }
  }
  num_rows_ = rows;
  InvalidateIndexes();
  return Status::OK();
}

const EngineTable::HashIndex& EngineTable::GetOrBuildIntIndex(int col) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->int_indexes.find(col);
  if (it != derived_->int_indexes.end()) return it->second;
  HashIndex index;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  index.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(static_cast<size_t>(r))) continue;
    index[c.Num(static_cast<size_t>(r))].push_back(r);
  }
  return derived_->int_indexes.emplace(col, std::move(index)).first->second;
}

const EngineTable::StringIndex& EngineTable::GetOrBuildStringIndex(int col) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->string_indexes.find(col);
  if (it != derived_->string_indexes.end()) return it->second;
  StringIndex index;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  if (c.encoding() == ColEncoding::kDict) {
    // Key on dictionary codes: group rows by u32 code first (no string
    // materialisation or hashing per row), then emit one index entry per
    // referenced dictionary string.
    std::vector<std::vector<int64_t>> by_code(c.DictNdv());
    for (int64_t r = 0; r < num_rows_; ++r) {
      if (c.IsNull(static_cast<size_t>(r))) continue;
      by_code[c.DictCodes()[static_cast<size_t>(r)]].push_back(r);
    }
    for (uint32_t code = 0; code < c.DictNdv(); ++code) {
      if (!by_code[code].empty()) {
        index.emplace(std::string(c.DictEntry(code)),
                      std::move(by_code[code]));
      }
    }
  } else {
    for (int64_t r = 0; r < num_rows_; ++r) {
      if (c.IsNull(static_cast<size_t>(r))) continue;
      index[std::string(c.Str(static_cast<size_t>(r)))].push_back(r);
    }
  }
  return derived_->string_indexes.emplace(col, std::move(index))
      .first->second;
}

const ZoneMap* EngineTable::GetOrBuildZoneMap(int col) {
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  if (c.is_string()) return nullptr;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->zone_maps.find(col);
  if (it != derived_->zone_maps.end()) return &it->second;
  ZoneMap zm = BuildZoneMap(c, static_cast<size_t>(num_rows_));
  return &derived_->zone_maps.emplace(col, std::move(zm)).first->second;
}

std::shared_ptr<const TableStats> EngineTable::GetOrComputeStats() {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  if (derived_->stats == nullptr) {
    derived_->stats = std::make_shared<TableStats>(AnalyzeTable(*this));
  }
  return derived_->stats;
}

std::shared_ptr<const TableStats> EngineTable::ComputedStats() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return derived_ == nullptr ? nullptr : derived_->stats;
}

void EngineTable::InstallStats(std::shared_ptr<const TableStats> stats) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  derived_->stats = std::move(stats);
}

void EngineTable::InvalidateIndexes() {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) return;
  // Generation-scoped: retire the bundle so outstanding references from
  // GetOrBuild* stay valid; the next builder starts fresh.
  retired_.push_back(std::move(derived_));
  derived_ = nullptr;
}

std::unique_ptr<EngineTable> EngineTable::Clone() const {
  auto copy = std::make_unique<EngineTable>(name_, meta_);
  copy->columns_ = columns_;
  copy->num_rows_ = num_rows_;
  return copy;
}

Status EngineTable::RestoreFrom(const EngineTable& snapshot) {
  if (snapshot.meta_.size() != meta_.size()) {
    return Status::InvalidArgument(
        "snapshot schema does not match table " + name_ + ": " +
        std::to_string(snapshot.meta_.size()) + " columns vs " +
        std::to_string(meta_.size()));
  }
  for (size_t i = 0; i < meta_.size(); ++i) {
    if (snapshot.meta_[i].name != meta_[i].name ||
        snapshot.meta_[i].type != meta_[i].type) {
      return Status::InvalidArgument(
          "snapshot schema does not match table " + name_ + ": column " +
          std::to_string(i) + " is " + snapshot.meta_[i].name + ", want " +
          meta_[i].name);
    }
  }
  columns_ = snapshot.columns_;
  num_rows_ = snapshot.num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

}  // namespace tpcds
