#include "engine/table.h"

#include <algorithm>
#include <cstdlib>

namespace tpcds {

void StorageColumn::EnsureOwned() {
  if (!mapped_) return;
  // Copy-on-write: materialise the mapped view into owned vectors. The
  // mapped checkpoint pages are never written; only this column's private
  // heap copy changes from here on.
  nulls_.assign(map_nulls_, map_nulls_ + mapped_rows_);
  if (is_string()) {
    strings_.clear();
    strings_.reserve(mapped_rows_);
    for (size_t r = 0; r < mapped_rows_; ++r) {
      strings_.emplace_back(map_arena_ + map_offsets_[r],
                            map_offsets_[r + 1] - map_offsets_[r]);
    }
  } else {
    nums_.assign(map_nums_, map_nums_ + mapped_rows_);
  }
  mapped_ = false;
  mapped_rows_ = 0;
  map_nulls_ = nullptr;
  map_nums_ = nullptr;
  map_arena_ = nullptr;
  map_offsets_ = nullptr;
  backing_.reset();
}

void StorageColumn::AttachStorage(std::shared_ptr<const MappedFile> backing,
                                  const uint8_t* nulls, const int64_t* nums,
                                  const char* arena, const uint64_t* offsets,
                                  size_t rows) {
  nums_.clear();
  strings_.clear();
  nulls_.clear();
  mapped_ = true;
  mapped_rows_ = rows;
  map_nulls_ = nulls;
  map_nums_ = nums;
  map_arena_ = arena;
  map_offsets_ = offsets;
  backing_ = std::move(backing);
}

Status StorageColumn::AppendParsed(const std::string& field) {
  EnsureOwned();
  if (field.empty()) {
    nulls_.push_back(1);
    if (is_string()) {
      strings_.emplace_back();
    } else {
      nums_.push_back(0);
    }
    return Status::OK();
  }
  nulls_.push_back(0);
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger: {
      char* end = nullptr;
      int64_t v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str()) {
        return Status::ParseError("bad integer field: '" + field + "'");
      }
      nums_.push_back(v);
      return Status::OK();
    }
    case ColumnType::kDecimal: {
      TPCDS_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(field));
      nums_.push_back(d.cents());
      return Status::OK();
    }
    case ColumnType::kDate: {
      TPCDS_ASSIGN_OR_RETURN(Date d, Date::Parse(field));
      nums_.push_back(d.jdn());
      return Status::OK();
    }
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_.push_back(field);
      return Status::OK();
  }
  return Status::Internal("unhandled column type");
}

Status StorageColumn::AppendValue(const Value& v) {
  EnsureOwned();
  if (v.is_null()) {
    nulls_.push_back(1);
    if (is_string()) {
      strings_.emplace_back();
    } else {
      nums_.push_back(0);
    }
    return Status::OK();
  }
  nulls_.push_back(0);
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      nums_.push_back(v.kind() == Value::Kind::kDecimal
                          ? v.AsDecimal().cents() / Decimal::kScale
                          : v.AsInt());
      return Status::OK();
    case ColumnType::kDecimal:
      if (v.kind() == Value::Kind::kDecimal) {
        nums_.push_back(v.AsDecimal().cents());
      } else {
        nums_.push_back(Decimal::FromDouble(v.AsDouble()).cents());
      }
      return Status::OK();
    case ColumnType::kDate:
      if (v.kind() == Value::Kind::kDate) {
        nums_.push_back(v.AsDate().jdn());
        return Status::OK();
      }
      if (v.kind() == Value::Kind::kString) {
        TPCDS_ASSIGN_OR_RETURN(Date d, Date::Parse(v.AsString()));
        nums_.push_back(d.jdn());
        return Status::OK();
      }
      nums_.push_back(v.AsInt());
      return Status::OK();
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_.push_back(v.ToDisplayString());
      return Status::OK();
  }
  return Status::Internal("unhandled column type");
}

Value StorageColumn::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      return Value::Int(Num(row));
    case ColumnType::kDecimal:
      return Value::Dec(Decimal::FromCents(Num(row)));
    case ColumnType::kDate:
      return Value::Dt(Date(static_cast<int32_t>(Num(row))));
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      return Value::Str(std::string(Str(row)));
  }
  return Value::Null();
}

void StorageColumn::Set(size_t row, const Value& v) {
  EnsureOwned();
  if (v.is_null()) {
    nulls_[row] = 1;
    // Null cells store a normalized payload (0 / empty), same as
    // AppendValue: content hashes and checkpoints cover the raw storage,
    // so the slot must not remember the cell's former value.
    if (is_string()) {
      strings_[row].clear();
    } else {
      nums_[row] = 0;
    }
    return;
  }
  nulls_[row] = 0;
  switch (type_) {
    case ColumnType::kIdentifier:
    case ColumnType::kInteger:
      nums_[row] = v.AsInt();
      break;
    case ColumnType::kDecimal:
      nums_[row] = v.kind() == Value::Kind::kDecimal
                       ? v.AsDecimal().cents()
                       : Decimal::FromDouble(v.AsDouble()).cents();
      break;
    case ColumnType::kDate:
      nums_[row] = v.kind() == Value::Kind::kDate
                       ? v.AsDate().jdn()
                       : v.AsInt();
      break;
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      strings_[row] = v.ToDisplayString();
      break;
  }
}

void StorageColumn::Retain(const std::vector<int64_t>& keep) {
  EnsureOwned();
  std::vector<uint8_t> new_nulls;
  new_nulls.reserve(keep.size());
  if (is_string()) {
    std::vector<std::string> new_strings;
    new_strings.reserve(keep.size());
    for (int64_t r : keep) {
      new_strings.push_back(std::move(strings_[static_cast<size_t>(r)]));
      new_nulls.push_back(nulls_[static_cast<size_t>(r)]);
    }
    strings_ = std::move(new_strings);
  } else {
    std::vector<int64_t> new_nums;
    new_nums.reserve(keep.size());
    for (int64_t r : keep) {
      new_nums.push_back(nums_[static_cast<size_t>(r)]);
      new_nulls.push_back(nulls_[static_cast<size_t>(r)]);
    }
    nums_ = std::move(new_nums);
  }
  nulls_ = std::move(new_nulls);
}

void StorageColumn::Truncate(size_t rows) {
  EnsureOwned();
  if (is_string()) {
    if (strings_.size() > rows) strings_.resize(rows);
  } else {
    if (nums_.size() > rows) nums_.resize(rows);
  }
  if (nulls_.size() > rows) nulls_.resize(rows);
}

void StorageColumn::ReplaceStorage(std::vector<int64_t> nums,
                                   std::vector<std::string> strings,
                                   std::vector<uint8_t> nulls) {
  nums_ = std::move(nums);
  strings_ = std::move(strings);
  nulls_ = std::move(nulls);
  mapped_ = false;
  mapped_rows_ = 0;
  map_nulls_ = nullptr;
  map_nums_ = nullptr;
  map_arena_ = nullptr;
  map_offsets_ = nullptr;
  backing_.reset();
}

EngineTable::EngineTable(std::string name, std::vector<ColumnMeta> columns)
    : name_(std::move(name)), meta_(std::move(columns)) {
  columns_.reserve(meta_.size());
  for (size_t i = 0; i < meta_.size(); ++i) {
    columns_.emplace_back(meta_[i].type);
    name_to_index_[meta_[i].name] = static_cast<int>(i);
  }
}

int EngineTable::ColumnIndex(const std::string& column_name) const {
  auto it = name_to_index_.find(column_name);
  return it == name_to_index_.end() ? -1 : it->second;
}

Status EngineTable::AppendRowStrings(
    const std::vector<std::string>& fields) {
  if (fields.size() != meta_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch for " + name_ + ": got " +
        std::to_string(fields.size()) + ", want " +
        std::to_string(meta_.size()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    TPCDS_RETURN_NOT_OK(columns_[i].AppendParsed(fields[i]));
  }
  ++num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

Status EngineTable::AppendRowValues(const std::vector<Value>& values) {
  if (values.size() != meta_.size()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    TPCDS_RETURN_NOT_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

void EngineTable::SetValue(int64_t row, int col, const Value& v) {
  columns_[static_cast<size_t>(col)].Set(static_cast<size_t>(row), v);
  InvalidateIndexes();
}

std::vector<int64_t> EngineTable::FindRowsIntBetween(int col, int64_t lo,
                                                     int64_t hi) const {
  std::vector<int64_t> rows;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(static_cast<size_t>(r))) continue;
    int64_t v = c.Num(static_cast<size_t>(r));
    if (v >= lo && v <= hi) rows.push_back(r);
  }
  return rows;
}

int64_t EngineTable::DeleteRows(const std::vector<int64_t>& sorted_rows) {
  if (sorted_rows.empty()) return 0;
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(num_rows_) - sorted_rows.size());
  size_t di = 0;
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (di < sorted_rows.size() && sorted_rows[di] == r) {
      ++di;
      continue;
    }
    keep.push_back(r);
  }
  for (StorageColumn& c : columns_) c.Retain(keep);
  int64_t deleted = num_rows_ - static_cast<int64_t>(keep.size());
  num_rows_ = static_cast<int64_t>(keep.size());
  InvalidateIndexes();
  return deleted;
}

Status EngineTable::TruncateRows(int64_t rows) {
  if (rows < 0 || rows > num_rows_) {
    return Status::InvalidArgument(
        "cannot truncate " + name_ + " to " + std::to_string(rows) +
        " rows (has " + std::to_string(num_rows_) + ")");
  }
  if (rows == num_rows_) return Status::OK();
  for (StorageColumn& c : columns_) c.Truncate(static_cast<size_t>(rows));
  num_rows_ = rows;
  InvalidateIndexes();
  return Status::OK();
}

Status EngineTable::ReinsertRows(
    const std::vector<int64_t>& sorted_rows,
    const std::vector<std::vector<Value>>& images) {
  if (sorted_rows.size() != images.size()) {
    return Status::InvalidArgument("reinsert rows/images size mismatch on " +
                                   name_);
  }
  if (sorted_rows.empty()) return Status::OK();
  int64_t new_rows = num_rows_ + static_cast<int64_t>(sorted_rows.size());
  if (sorted_rows.back() >= new_rows || sorted_rows.front() < 0) {
    return Status::InvalidArgument("reinsert index out of range on " + name_);
  }
  // Rebuild each column by interleaving survivors with the before-images
  // at their recorded positions. AppendValue(Get()) round-trips the raw
  // storage exactly (same int64 payload / string / null byte), so the
  // result is byte-identical to the pre-delete column.
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    StorageColumn rebuilt(meta_[ci].type);
    size_t survivor = 0;
    size_t k = 0;
    for (int64_t j = 0; j < new_rows; ++j) {
      if (k < sorted_rows.size() && sorted_rows[k] == j) {
        if (images[k].size() != columns_.size()) {
          return Status::InvalidArgument("reinsert image arity mismatch on " +
                                         name_);
        }
        TPCDS_RETURN_NOT_OK(rebuilt.AppendValue(images[k][ci]));
        ++k;
      } else {
        TPCDS_RETURN_NOT_OK(
            rebuilt.AppendValue(columns_[ci].Get(survivor++)));
      }
    }
    columns_[ci] = std::move(rebuilt);
  }
  num_rows_ = new_rows;
  InvalidateIndexes();
  return Status::OK();
}

Status EngineTable::LoadColumnStorage(size_t col, std::vector<int64_t> nums,
                                      std::vector<std::string> strings,
                                      std::vector<uint8_t> nulls) {
  if (col >= columns_.size()) {
    return Status::InvalidArgument("raw load column out of range on " + name_);
  }
  columns_[col].ReplaceStorage(std::move(nums), std::move(strings),
                               std::move(nulls));
  return Status::OK();
}

Status EngineTable::FinishRawLoad(int64_t rows) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size() != static_cast<size_t>(rows) ||
        columns_[i].nulls().size() != static_cast<size_t>(rows)) {
      return Status::DataLoss(
          "raw load of " + name_ + "." + meta_[i].name + " holds " +
          std::to_string(columns_[i].size()) + " rows, manifest says " +
          std::to_string(rows));
    }
  }
  num_rows_ = rows;
  InvalidateIndexes();
  return Status::OK();
}

const EngineTable::HashIndex& EngineTable::GetOrBuildIntIndex(int col) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->int_indexes.find(col);
  if (it != derived_->int_indexes.end()) return it->second;
  HashIndex index;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  index.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(static_cast<size_t>(r))) continue;
    index[c.Num(static_cast<size_t>(r))].push_back(r);
  }
  return derived_->int_indexes.emplace(col, std::move(index)).first->second;
}

const EngineTable::StringIndex& EngineTable::GetOrBuildStringIndex(int col) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->string_indexes.find(col);
  if (it != derived_->string_indexes.end()) return it->second;
  StringIndex index;
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (c.IsNull(static_cast<size_t>(r))) continue;
    index[std::string(c.Str(static_cast<size_t>(r)))].push_back(r);
  }
  return derived_->string_indexes.emplace(col, std::move(index))
      .first->second;
}

const ZoneMap* EngineTable::GetOrBuildZoneMap(int col) {
  const StorageColumn& c = columns_[static_cast<size_t>(col)];
  if (c.is_string()) return nullptr;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) derived_ = std::make_shared<DerivedState>();
  auto it = derived_->zone_maps.find(col);
  if (it != derived_->zone_maps.end()) return &it->second;
  ZoneMap zm = BuildZoneMap(c, static_cast<size_t>(num_rows_));
  return &derived_->zone_maps.emplace(col, std::move(zm)).first->second;
}

void EngineTable::InvalidateIndexes() {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (derived_ == nullptr) return;
  // Generation-scoped: retire the bundle so outstanding references from
  // GetOrBuild* stay valid; the next builder starts fresh.
  retired_.push_back(std::move(derived_));
  derived_ = nullptr;
}

std::unique_ptr<EngineTable> EngineTable::Clone() const {
  auto copy = std::make_unique<EngineTable>(name_, meta_);
  copy->columns_ = columns_;
  copy->num_rows_ = num_rows_;
  return copy;
}

Status EngineTable::RestoreFrom(const EngineTable& snapshot) {
  if (snapshot.meta_.size() != meta_.size()) {
    return Status::InvalidArgument(
        "snapshot schema does not match table " + name_ + ": " +
        std::to_string(snapshot.meta_.size()) + " columns vs " +
        std::to_string(meta_.size()));
  }
  for (size_t i = 0; i < meta_.size(); ++i) {
    if (snapshot.meta_[i].name != meta_[i].name ||
        snapshot.meta_[i].type != meta_[i].type) {
      return Status::InvalidArgument(
          "snapshot schema does not match table " + name_ + ": column " +
          std::to_string(i) + " is " + snapshot.meta_[i].name + ", want " +
          meta_[i].name);
    }
  }
  columns_ = snapshot.columns_;
  num_rows_ = snapshot.num_rows_;
  InvalidateIndexes();
  return Status::OK();
}

}  // namespace tpcds
