#include "engine/plan.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "engine/cost.h"
#include "engine/data_facade.h"
#include "engine/expr_eval.h"
#include "engine/table.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

// --------------------------------------------------------- AST utilities

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->tag == Expr::Tag::kBinary && e->name == "AND") {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.tag == Expr::Tag::kColumnRef) out->push_back(&e);
  for (const auto& c : e.children) CollectColumnRefs(*c, out);
  for (const auto& c : e.partition_by) CollectColumnRefs(*c, out);
  for (const auto& c : e.order_by) CollectColumnRefs(*c, out);
  // Subquery bodies bind their own scopes (uncorrelated only).
}

void CollectStmtColumnRefs(const SelectStmt& stmt,
                           std::vector<const Expr*>* out) {
  for (const SelectItem& item : stmt.select_items) {
    if (item.expr != nullptr) CollectColumnRefs(*item.expr, out);
  }
  for (const FromItem& f : stmt.from_items) {
    if (f.join_condition != nullptr) CollectColumnRefs(*f.join_condition, out);
  }
  if (stmt.where != nullptr) CollectColumnRefs(*stmt.where, out);
  for (const auto& g : stmt.group_by) CollectColumnRefs(*g, out);
  if (stmt.having != nullptr) CollectColumnRefs(*stmt.having, out);
  for (const OrderItem& o : stmt.order_by) CollectColumnRefs(*o.expr, out);
}

bool ResolvableIn(const Expr& e, const RowSet& scope) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    if (!scope.Resolve(r->qualifier, r->name).ok()) return false;
  }
  return true;
}

bool ExprHasSubquery(const Expr& e) {
  if (e.tag == Expr::Tag::kInSubquery || e.tag == Expr::Tag::kScalarSubquery ||
      e.tag == Expr::Tag::kExistsSubquery) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ExprHasSubquery(*c)) return true;
  }
  return false;
}

void CollectAggregates(const Expr& e, std::vector<PlanAggSpec>* specs) {
  if (e.tag == Expr::Tag::kAggregate) {
    PlanAggSpec spec;
    spec.key = ExprToString(e);
    spec.function = e.name;
    spec.distinct = e.distinct;
    spec.star = !e.children.empty() && e.children[0]->tag == Expr::Tag::kStar;
    spec.arg =
        spec.star || e.children.empty() ? nullptr : e.children[0].get();
    for (const PlanAggSpec& s : *specs) {
      if (s.key == spec.key) return;  // dedup; aggregates don't nest
    }
    specs->push_back(spec);
    return;
  }
  for (const auto& c : e.children) CollectAggregates(*c, specs);
  for (const auto& c : e.partition_by) CollectAggregates(*c, specs);
  for (const auto& c : e.order_by) CollectAggregates(*c, specs);
}

void CollectWindows(const Expr& e, std::vector<const Expr*>* out) {
  if (e.tag == Expr::Tag::kWindow) {
    std::string key = ExprToString(e);
    for (const Expr* w : *out) {
      if (ExprToString(*w) == key) return;
    }
    out->push_back(&e);
    return;
  }
  for (const auto& c : e.children) CollectWindows(*c, out);
}

/// Rewrites an expression tree, replacing sub-expressions whose canonical
/// text appears in `replacements` with bare column references.
std::unique_ptr<Expr> RewriteExpr(
    const Expr& e, const std::map<std::string, std::string>& replacements) {
  auto it = replacements.find(ExprToString(e));
  if (it != replacements.end()) {
    auto ref = std::make_unique<Expr>();
    ref->tag = Expr::Tag::kColumnRef;
    // Replacement targets are spelled "name" or "qualifier.name".
    size_t dot = it->second.find('.');
    if (dot == std::string::npos) {
      ref->name = it->second;
    } else {
      ref->qualifier = it->second.substr(0, dot);
      ref->name = it->second.substr(dot + 1);
    }
    return ref;
  }
  std::unique_ptr<Expr> out = e.Clone();
  out->children.clear();
  out->partition_by.clear();
  out->order_by.clear();
  for (const auto& c : e.children) {
    out->children.push_back(RewriteExpr(*c, replacements));
  }
  for (const auto& c : e.partition_by) {
    out->partition_by.push_back(RewriteExpr(*c, replacements));
  }
  for (const auto& c : e.order_by) {
    out->order_by.push_back(RewriteExpr(*c, replacements));
  }
  return out;
}

// ---------------------------------------------------------------- planner

/// Builds a PlanNode tree from the AST. Mirrors the decisions the old
/// monolithic executor made (filter pushdown, index-join deferral, star
/// transformation, left-deep join order, aggregate/window rewrites) but
/// computes them statically over schemas; no table data is read.
class Planner {
 public:
  Planner(const DataFacade* facade, const PlannerOptions& options,
          PhysicalPlan* plan)
      : facade_(facade), options_(options), plan_(plan) {
    if (options_.cost_based) cost_ = std::make_unique<CostModel>(facade);
  }

  Status PlanStatement(const SelectStmt& stmt) {
    for (const auto& [name, cte] : stmt.ctes) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> node,
                             PlanSelectCore(*cte));
      if (cost_ != nullptr) {
        cost_->SetCteEstimate(ToLower(name), cost_->EstimateRows(*node));
      }
      plan_->cte_schemas[ToLower(name)] = node->schema;
      plan_->ctes.emplace_back(ToLower(name), std::move(node));
    }
    TPCDS_ASSIGN_OR_RETURN(plan_->root, PlanSelectCore(stmt));
    Annotate(*plan_->root);
    return Status::OK();
  }

  /// Final cost-annotation pass: fills stats.est_rows over the whole tree
  /// (EXPLAIN's estimated column). No-op unless cost_based.
  void Annotate(const PlanNode& root) const {
    if (cost_ != nullptr) cost_->EstimateRows(root);
  }

  Result<std::shared_ptr<PlanNode>> PlanSelectCore(const SelectStmt& stmt) {
    if (stmt.set_ops.empty()) {
      TPCDS_ASSIGN_OR_RETURN(
          std::shared_ptr<PlanNode> node,
          PlanBareSelect(stmt, &stmt.order_by, stmt.limit));
      return MakeTruncate(std::move(node));
    }
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> first,
                           PlanBareSelect(stmt, nullptr, -1));
    first = MakeTruncate(std::move(first));
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kSetOp;
    node->schema = first->schema;
    node->num_visible = 0;
    node->children.push_back(std::move(first));
    for (const auto& branch : stmt.set_ops) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> b,
                             PlanBareSelect(*branch.stmt, nullptr, -1));
      b = MakeTruncate(std::move(b));
      if (b->schema.size() != node->schema.size()) {
        return Status::InvalidArgument("set operation arity mismatch");
      }
      node->children.push_back(std::move(b));
      node->set_kinds.push_back(branch.kind);
    }
    std::shared_ptr<PlanNode> out = std::move(node);
    if (!stmt.order_by.empty()) {
      std::vector<std::pair<const Expr*, bool>> keys;
      for (const OrderItem& o : stmt.order_by) {
        keys.emplace_back(o.expr.get(), o.desc);
      }
      TPCDS_ASSIGN_OR_RETURN(out, MakeSort(std::move(out), keys));
    }
    if (stmt.limit >= 0) out = MakeLimit(std::move(out), stmt.limit);
    return out;
  }

 private:
  /// Takes ownership of a rewritten expression; plan nodes hold raw
  /// pointers either into the statement AST or into this pool.
  const Expr* Own(std::unique_ptr<Expr> e) {
    plan_->owned_exprs.push_back(std::move(e));
    return plan_->owned_exprs.back().get();
  }

  static RowSet ScopeOf(const PlanNode& n) {
    RowSet rs;
    rs.cols = n.schema;
    rs.num_visible = n.num_visible;
    return rs;
  }

  std::shared_ptr<PlanNode> MakeFilter(std::shared_ptr<PlanNode> child,
                                       std::vector<const Expr*> preds) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kFilter;
    node->schema = child->schema;
    node->num_visible = child->num_visible;
    node->predicates = std::move(preds);
    node->children.push_back(std::move(child));
    return node;
  }

  std::shared_ptr<PlanNode> MakeLimit(std::shared_ptr<PlanNode> child,
                                      int64_t limit) {
    // ORDER BY + LIMIT fuses into a Top-K operator: per-worker bounded
    // heaps keep the best `limit` rows instead of materialising a full
    // sort. The heaps compute the exact top-k of their chunk under a
    // total order (sort keys, then original row index), so the merged
    // result is byte-identical to sort-then-limit.
    if (limit >= 0 && options_.topk_pushdown &&
        child->kind == PlanKind::kSort) {
      auto node = std::make_shared<PlanNode>();
      node->kind = PlanKind::kTopK;
      node->schema = child->schema;
      node->num_visible = child->num_visible;
      node->sort_keys = child->sort_keys;
      node->limit = limit;
      node->children.push_back(child->children[0]);
      return node;
    }
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kLimit;
    node->schema = child->schema;
    node->num_visible = child->num_visible;
    node->limit = limit;
    node->children.push_back(std::move(child));
    return node;
  }

  /// Drops hidden passthrough columns at select-core boundaries. No-op
  /// (elided) when everything is already visible.
  std::shared_ptr<PlanNode> MakeTruncate(std::shared_ptr<PlanNode> child) {
    if (child->num_visible == 0 ||
        child->num_visible == child->schema.size()) {
      child->num_visible = 0;
      return child;
    }
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kTruncate;
    node->schema.assign(child->schema.begin(),
                        child->schema.begin() +
                            static_cast<long>(child->num_visible));
    node->num_visible = 0;
    node->children.push_back(std::move(child));
    return node;
  }

  Result<std::shared_ptr<PlanNode>> MakeSort(
      std::shared_ptr<PlanNode> child,
      const std::vector<std::pair<const Expr*, bool>>& keys) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kSort;
    node->schema = child->schema;
    node->num_visible = child->num_visible;
    size_t visible = node->num_visible == 0 ? node->schema.size()
                                            : node->num_visible;
    for (const auto& [expr, desc] : keys) {
      PlanSortKey key;
      key.desc = desc;
      if (expr->tag == Expr::Tag::kLiteral &&
          expr->literal.kind() == Value::Kind::kInt) {
        int64_t ordinal = expr->literal.AsInt();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(visible)) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        key.ordinal = static_cast<int>(ordinal - 1);
      } else {
        key.expr = expr;
      }
      node->sort_keys.push_back(key);
    }
    node->children.push_back(std::move(child));
    return node;
  }

  Result<std::shared_ptr<PlanNode>> PlanBareSelect(
      const SelectStmt& stmt, const std::vector<OrderItem>* order_by,
      int64_t limit) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> node, PlanFrom(stmt));

    // ---- aggregation --------------------------------------------------
    std::map<std::string, std::string> rewrites;
    std::vector<PlanAggSpec> agg_specs;
    for (const SelectItem& item : stmt.select_items) {
      if (item.expr != nullptr) CollectAggregates(*item.expr, &agg_specs);
    }
    if (stmt.having != nullptr) CollectAggregates(*stmt.having, &agg_specs);
    for (const OrderItem& o : stmt.order_by) {
      CollectAggregates(*o.expr, &agg_specs);
    }
    bool has_aggregates = !stmt.group_by.empty() || !agg_specs.empty();

    if (has_aggregates) {
      node = MakeAggregate(stmt, std::move(node), agg_specs, &rewrites);
      if (stmt.having != nullptr) {
        node = MakeFilter(std::move(node),
                          {Own(RewriteExpr(*stmt.having, rewrites))});
      }
    }

    // ---- window functions --------------------------------------------
    std::vector<const Expr*> window_nodes;
    for (const SelectItem& item : stmt.select_items) {
      if (item.expr != nullptr) CollectWindows(*item.expr, &window_nodes);
    }
    if (order_by != nullptr) {
      for (const OrderItem& o : *order_by) {
        CollectWindows(*o.expr, &window_nodes);
      }
    }
    if (!window_nodes.empty()) {
      node = MakeWindow(window_nodes, std::move(node), &rewrites);
    }

    // ---- projection ---------------------------------------------------
    auto proj = std::make_shared<PlanNode>();
    proj->kind = PlanKind::kProject;
    for (const SelectItem& item : stmt.select_items) {
      if (item.is_star) {
        for (size_t i = 0; i < node->schema.size(); ++i) {
          proj->schema.push_back(node->schema[i]);
          PlanProjection p;
          p.slot = static_cast<int>(i);
          proj->projections.push_back(p);
        }
        continue;
      }
      PlanProjection p;
      p.expr = Own(RewriteExpr(*item.expr, rewrites));
      proj->projections.push_back(p);
      RowSet::Col col;
      if (!item.alias.empty()) {
        col.name = item.alias;
      } else if (item.expr->tag == Expr::Tag::kColumnRef) {
        col.qualifier = item.expr->qualifier;
        col.name = item.expr->name;
      } else {
        col.name = ExprToString(*item.expr);
      }
      proj->schema.push_back(std::move(col));
    }
    proj->num_visible = proj->schema.size();
    for (const RowSet::Col& c : node->schema) proj->schema.push_back(c);
    proj->children.push_back(std::move(node));
    node = std::move(proj);

    if (stmt.select_distinct) {
      auto distinct = std::make_shared<PlanNode>();
      distinct->kind = PlanKind::kDistinct;
      distinct->schema = node->schema;
      distinct->num_visible = node->num_visible;
      distinct->children.push_back(std::move(node));
      node = std::move(distinct);
    }

    if (order_by != nullptr && !order_by->empty()) {
      // Rewrite aggregates/windows in ORDER BY before binding.
      std::vector<std::pair<const Expr*, bool>> keys;
      for (const OrderItem& o : *order_by) {
        keys.emplace_back(Own(RewriteExpr(*o.expr, rewrites)), o.desc);
      }
      TPCDS_ASSIGN_OR_RETURN(node, MakeSort(std::move(node), keys));
    }
    if (limit >= 0) node = MakeLimit(std::move(node), limit);
    return node;
  }

  std::shared_ptr<PlanNode> MakeAggregate(
      const SelectStmt& stmt, std::shared_ptr<PlanNode> child,
      std::vector<PlanAggSpec> specs,
      std::map<std::string, std::string>* rewrites) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kAggregate;
    node->rollup = stmt.group_rollup;
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      const Expr& e = *stmt.group_by[g];
      node->group_by.push_back(&e);
      RowSet::Col col;
      if (e.tag == Expr::Tag::kColumnRef) {
        col.qualifier = e.qualifier;
        col.name = e.name;
      } else {
        col.name = "#gb" + std::to_string(g);
      }
      (*rewrites)[ExprToString(e)] =
          col.qualifier.empty() ? col.name : col.qualifier + "." + col.name;
      node->schema.push_back(std::move(col));
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      RowSet::Col col;
      col.name = "#agg" + std::to_string(i);
      (*rewrites)[specs[i].key] = col.name;
      node->schema.push_back(std::move(col));
    }
    node->aggs = std::move(specs);
    node->num_visible = 0;
    node->children.push_back(std::move(child));
    return node;
  }

  std::shared_ptr<PlanNode> MakeWindow(
      const std::vector<const Expr*>& window_nodes,
      std::shared_ptr<PlanNode> child,
      std::map<std::string, std::string>* rewrites) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kWindow;
    node->schema = child->schema;
    node->num_visible = child->num_visible;
    for (size_t w = 0; w < window_nodes.size(); ++w) {
      const Expr& e = *window_nodes[w];
      PlanWindowFn fn;
      fn.function = e.name;
      fn.star =
          !e.children.empty() && e.children[0]->tag == Expr::Tag::kStar;
      if (!fn.star && !e.children.empty()) {
        fn.arg = Own(RewriteExpr(*e.children[0], *rewrites));
      }
      for (const auto& p : e.partition_by) {
        fn.partition_by.push_back(Own(RewriteExpr(*p, *rewrites)));
      }
      for (const auto& o : e.order_by) {
        fn.order_by.push_back(Own(RewriteExpr(*o, *rewrites)));
      }
      fn.order_desc = e.order_desc;
      fn.out_col = "#win" + std::to_string(w);
      (*rewrites)[ExprToString(e)] = fn.out_col;
      RowSet::Col col;
      col.name = fn.out_col;
      node->schema.push_back(std::move(col));
      node->windows.push_back(std::move(fn));
    }
    node->children.push_back(std::move(child));
    return node;
  }

  void PruneColumns(const SelectStmt& stmt, const std::string& qualifier,
                    EngineTable* table, std::vector<int>* needed,
                    std::vector<RowSet::Col>* out_cols) {
    // Column pruning: a column is needed if any reference in the statement
    // can resolve to it through this alias.
    std::vector<const Expr*> refs;
    CollectStmtColumnRefs(stmt, &refs);
    std::unordered_set<std::string> added;
    for (const Expr* ref : refs) {
      if (!ref->qualifier.empty() &&
          !EqualsIgnoreCase(ref->qualifier, qualifier)) {
        continue;
      }
      int idx = table->ColumnIndex(ToLower(ref->name));
      if (idx < 0) continue;
      std::string key = ToLower(ref->name);
      if (!added.insert(key).second) continue;
      needed->push_back(idx);
      out_cols->push_back(
          RowSet::Col{qualifier,
                      table->column_meta(static_cast<size_t>(idx)).name});
    }
  }

  Result<std::shared_ptr<PlanNode>> MakeScan(
      const SelectStmt& stmt, const FromItem& item,
      const std::vector<const Expr*>& conjuncts,
      std::vector<bool>* consumed) {
    EngineTable* table = facade_->FindTable(ToLower(item.table_name));
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + item.table_name);
    }
    std::string qualifier =
        item.alias.empty() ? item.table_name : item.alias;
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kScan;
    node->table_name = ToLower(item.table_name);
    node->alias = item.alias;
    PruneColumns(stmt, qualifier, table, &node->scan_cols, &node->schema);

    // Local filter pushdown: conjuncts fully resolvable against this scan
    // (and without subqueries, which the scan scope can't evaluate lazily).
    RowSet scope = ScopeOf(*node);
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if ((*consumed)[i]) continue;
      if (ExprHasSubquery(*conjuncts[i])) continue;
      if (ContainsAggregate(*conjuncts[i]) ||
          ContainsWindow(*conjuncts[i])) {
        continue;
      }
      if (!ResolvableIn(*conjuncts[i], scope)) continue;
      node->predicates.push_back(conjuncts[i]);
      (*consumed)[i] = true;
    }

    // Split the pushed filters into typed kernels (evaluated on the raw
    // storage vectors when vectorized execution is on) and residuals that
    // keep the generic expr_eval path. `predicates` stays intact as the
    // fallback and for EXPLAIN labels.
    for (const Expr* pred : node->predicates) {
      if (!CompileScanKernel(*pred, scope, *table, node->scan_cols,
                             &node->kernels)) {
        node->residual_predicates.push_back(pred);
      }
    }
    return node;
  }

  Result<std::shared_ptr<PlanNode>> BuildFromItem(
      const SelectStmt& stmt, const FromItem& item,
      const std::vector<const Expr*>& conjuncts,
      std::vector<bool>* consumed) {
    std::string qualifier =
        item.alias.empty() ? item.table_name : item.alias;
    std::shared_ptr<PlanNode> node;
    if (item.derived != nullptr) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<PlanNode> child,
                             PlanSelectCore(*item.derived));
      node = std::make_shared<PlanNode>();
      node->kind = PlanKind::kDerived;
      node->qualifier = qualifier;
      node->schema = child->schema;
      node->num_visible = child->num_visible;
      node->children.push_back(std::move(child));
    } else {
      auto cte = plan_->cte_schemas.find(ToLower(item.table_name));
      if (cte != plan_->cte_schemas.end()) {
        node = std::make_shared<PlanNode>();
        node->kind = PlanKind::kCteRef;
        node->cte_name = ToLower(item.table_name);
        node->qualifier = qualifier;
        node->schema = cte->second;
        node->num_visible = 0;
      } else {
        return MakeScan(stmt, item, conjuncts, consumed);
      }
    }
    // Re-qualify derived/CTE output under the FROM alias.
    for (RowSet::Col& c : node->schema) c.qualifier = qualifier;
    // Push applicable filters (post-materialisation).
    RowSet scope = ScopeOf(*node);
    std::vector<const Expr*> post;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if ((*consumed)[i]) continue;
      if (ExprHasSubquery(*conjuncts[i])) continue;
      if (!ResolvableIn(*conjuncts[i], scope)) continue;
      post.push_back(conjuncts[i]);
      (*consumed)[i] = true;
    }
    if (!post.empty()) node = MakeFilter(std::move(node), std::move(post));
    return node;
  }

  std::shared_ptr<PlanNode> MakeHashJoin(
      std::shared_ptr<PlanNode> left, std::shared_ptr<PlanNode> right,
      const std::vector<const Expr*>& join_conjuncts, bool left_outer) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanKind::kHashJoin;
    node->left_outer = left_outer;
    RowSet lscope = ScopeOf(*left);
    RowSet rscope = ScopeOf(*right);
    for (const Expr* c : join_conjuncts) {
      if (c->tag == Expr::Tag::kBinary && c->name == "=") {
        const Expr& a = *c->children[0];
        const Expr& b = *c->children[1];
        if (ResolvableIn(a, lscope) && ResolvableIn(b, rscope)) {
          node->equi.push_back(PlanEquiKey{&a, &b});
          continue;
        }
        if (ResolvableIn(b, lscope) && ResolvableIn(a, rscope)) {
          node->equi.push_back(PlanEquiKey{&b, &a});
          continue;
        }
      }
      node->residual.push_back(c);
    }
    node->schema = left->schema;
    node->schema.insert(node->schema.end(), right->schema.begin(),
                        right->schema.end());
    node->num_visible = 0;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    return node;
  }

  Result<std::shared_ptr<PlanNode>> PlanFrom(const SelectStmt& stmt);

  const DataFacade* facade_;
  PlannerOptions options_;
  PhysicalPlan* plan_;
  /// Present iff options_.cost_based: cardinality estimates for join
  /// ordering and star-transform dimension ordering.
  std::unique_ptr<CostModel> cost_;
};

Result<std::shared_ptr<PlanNode>> Planner::PlanFrom(const SelectStmt& stmt) {
  if (stmt.from_items.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::vector<bool> consumed(conjuncts.size(), false);

  // Index-join deferral (options_.index_joins): a comma-joined base table
  // with no local filters, joined to the preceding scope by exactly one
  // equi conjunct on one of its integer columns, is never scanned — its
  // hash index is probed at join time instead. Decide eligibility on
  // column *metadata* before any scanning.
  struct Deferred {
    EngineTable* table = nullptr;
    std::string qualifier;
    const Expr* left_key = nullptr;  // expression over the earlier scope
    int index_col = -1;
  };
  std::vector<Deferred> deferred(stmt.from_items.size());
  if (options_.index_joins) {
    // Metadata scope of items 0..t-1 (alias-qualified column names only).
    RowSet earlier_meta;
    for (size_t t = 0; t < stmt.from_items.size(); ++t) {
      const FromItem& item = stmt.from_items[t];
      std::string qualifier =
          item.alias.empty() ? item.table_name : item.alias;
      EngineTable* base =
          item.derived == nullptr &&
                  plan_->cte_schemas.count(ToLower(item.table_name)) == 0
              ? facade_->FindTable(ToLower(item.table_name))
              : nullptr;
      RowSet my_meta;
      if (base != nullptr) {
        for (size_t c = 0; c < base->num_columns(); ++c) {
          my_meta.cols.push_back(
              RowSet::Col{qualifier, base->column_meta(c).name});
        }
      }
      // Derived/CTE columns are unknown pre-execution; they simply stay
      // hash-join candidates (my_meta empty disables matching on them).
      if (t > 0 && base != nullptr &&
          item.join_kind == FromItem::JoinKind::kComma) {
        bool has_local_filter = false;
        const Expr* equi = nullptr;
        const Expr* left_side = nullptr;
        const Expr* right_side = nullptr;
        int spanning = 0;
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          if (consumed[ci]) continue;
          const Expr* c = conjuncts[ci];
          if (ExprHasSubquery(*c)) continue;
          if (ResolvableIn(*c, my_meta)) {
            has_local_filter = true;
            break;
          }
          // Does this conjunct span earlier scope + this table?
          if (c->tag == Expr::Tag::kBinary && c->name == "=") {
            const Expr& a = *c->children[0];
            const Expr& b = *c->children[1];
            if (ResolvableIn(a, earlier_meta) && ResolvableIn(b, my_meta)) {
              ++spanning;
              equi = c;
              left_side = &a;
              right_side = &b;
              continue;
            }
            if (ResolvableIn(b, earlier_meta) && ResolvableIn(a, my_meta)) {
              ++spanning;
              equi = c;
              left_side = &b;
              right_side = &a;
              continue;
            }
          }
          // Any other conjunct touching this table forces a scan.
          RowSet combined = earlier_meta;
          combined.cols.insert(combined.cols.end(), my_meta.cols.begin(),
                               my_meta.cols.end());
          if (!ResolvableIn(*c, earlier_meta) && ResolvableIn(*c, combined)) {
            spanning += 2;  // disqualify
          }
        }
        if (!has_local_filter && spanning == 1 && equi != nullptr &&
            right_side->tag == Expr::Tag::kColumnRef) {
          int col = base->ColumnIndex(ToLower(right_side->name));
          if (col >= 0) {
            ColumnType type =
                base->column_meta(static_cast<size_t>(col)).type;
            if (type == ColumnType::kIdentifier ||
                type == ColumnType::kInteger) {
              deferred[t].table = base;
              deferred[t].qualifier = qualifier;
              deferred[t].left_key = left_side;
              deferred[t].index_col = col;
              // Consume the equi conjunct: the index join implements it.
              for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
                if (conjuncts[ci] == equi) consumed[ci] = true;
              }
            }
          }
        }
      }
      earlier_meta.cols.insert(earlier_meta.cols.end(), my_meta.cols.begin(),
                               my_meta.cols.end());
    }
  }

  // Plan every non-deferred FROM item (filters pushed down per table).
  std::vector<std::shared_ptr<PlanNode>> inputs;
  inputs.reserve(stmt.from_items.size());
  for (size_t t = 0; t < stmt.from_items.size(); ++t) {
    if (deferred[t].table != nullptr) {
      inputs.push_back(nullptr);
      continue;
    }
    TPCDS_ASSIGN_OR_RETURN(
        std::shared_ptr<PlanNode> node,
        BuildFromItem(stmt, stmt.from_items[t], conjuncts, &consumed));
    inputs.push_back(std::move(node));
  }

  // Star transformation (semi-join reduction): restrict the first table by
  // every later comma-joined input that equi-joins it on a single key
  // pair. The dimension node is shared between the semi-join and the
  // final hash join, so it is marked for memoisation and scanned once.
  if (options_.star_transformation && inputs.size() > 2) {
    RowSet fact_scope = ScopeOf(*inputs[0]);
    // Collect one candidate per dimension: a single unconsumed equi
    // conjunct fact.col = dim.col.
    struct StarCandidate {
      size_t t = 0;
      const Expr* fact_side = nullptr;
      const Expr* dim_side = nullptr;
      double selectivity = 1.0;
    };
    std::vector<StarCandidate> candidates;
    for (size_t t = 1; t < stmt.from_items.size(); ++t) {
      if (inputs[t] == nullptr) continue;  // deferred to an index join
      if (stmt.from_items[t].join_kind != FromItem::JoinKind::kComma) {
        continue;
      }
      RowSet dim_scope = ScopeOf(*inputs[t]);
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (consumed[ci]) continue;
        const Expr* c = conjuncts[ci];
        if (c->tag != Expr::Tag::kBinary || c->name != "=") continue;
        const Expr& a = *c->children[0];
        const Expr& b = *c->children[1];
        const Expr* fact_side = nullptr;
        const Expr* dim_side = nullptr;
        if (ResolvableIn(a, fact_scope) && ResolvableIn(b, dim_scope)) {
          fact_side = &a;
          dim_side = &b;
        } else if (ResolvableIn(b, fact_scope) &&
                   ResolvableIn(a, dim_scope)) {
          fact_side = &b;
          dim_side = &a;
        } else {
          continue;
        }
        StarCandidate cand;
        cand.t = t;
        cand.fact_side = fact_side;
        cand.dim_side = dim_side;
        if (cost_ != nullptr) {
          cost_->EstimateRows(*inputs[t]);
          cand.selectivity =
              cost_->SemiJoinSelectivity(*inputs[t], *dim_side);
        }
        candidates.push_back(cand);
        break;
      }
    }
    // Cost-based: apply the most selective reduction innermost (first),
    // so the exact key checks that follow each see the smallest fact.
    // Structural planning keeps FROM order (stable sort + equal keys).
    if (cost_ != nullptr) {
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const StarCandidate& a, const StarCandidate& b) {
                         return a.selectivity < b.selectivity;
                       });
    }
    std::shared_ptr<PlanNode> fact = inputs[0];
    for (const StarCandidate& cand : candidates) {
      inputs[cand.t]->memoize = true;
      auto semi = std::make_shared<PlanNode>();
      semi->kind = PlanKind::kSemiJoinReduce;
      semi->fact_key = cand.fact_side;
      semi->dim_key = cand.dim_side;
      semi->schema = fact->schema;
      semi->num_visible = fact->num_visible;
      semi->children.push_back(std::move(fact));
      semi->children.push_back(inputs[cand.t]);
      fact = std::move(semi);
      // The conjunct stays unconsumed: the hash join still needs it to
      // pair fact rows with the right dimension rows.
    }
    inputs[0] = std::move(fact);
  }

  // Left-deep join pipeline. Structural planning keeps FROM order;
  // cost-based planning greedily picks the join producing the smallest
  // estimated intermediate next (keyed joins before cross products).
  std::vector<size_t> order;
  order.reserve(stmt.from_items.size());
  for (size_t t = 1; t < stmt.from_items.size(); ++t) order.push_back(t);
  bool reorder = cost_ != nullptr && order.size() > 1;
  if (reorder) {
    // Only pure comma-join lists reorder: explicit JOIN ... ON syntax and
    // index-join deferral pin their FROM positions, and SELECT * output
    // column order follows the join order, so a star select keeps the
    // structural shape.
    for (size_t t = 1; t < stmt.from_items.size(); ++t) {
      if (stmt.from_items[t].join_kind != FromItem::JoinKind::kComma ||
          deferred[t].table != nullptr) {
        reorder = false;
        break;
      }
    }
    for (const SelectItem& item : stmt.select_items) {
      if (item.is_star) reorder = false;
    }
  }
  if (reorder) {
    // Greedy smallest-estimated-intermediate-first. `parts` tracks the
    // chosen inputs so join-key NDVs attribute to the input that owns the
    // column; conjuncts are only inspected here, never consumed.
    std::vector<const PlanNode*> parts{inputs[0].get()};
    double cur_rows = cost_->EstimateRows(*inputs[0]);
    RowSet cur_scope = ScopeOf(*inputs[0]);
    auto side_ndv = [&](const Expr& side) -> double {
      for (const PlanNode* p : parts) {
        if (ResolvableIn(side, ScopeOf(*p))) {
          return cost_->KeyNdv(*p, side);
        }
      }
      return std::max(1.0, cur_rows);
    };
    std::vector<size_t> remaining = std::move(order);
    order.clear();
    while (!remaining.empty()) {
      size_t best_pos = 0;
      double best_out = 0.0;
      bool best_keyed = false;
      bool have_best = false;
      for (size_t i = 0; i < remaining.size(); ++i) {
        size_t t = remaining[i];
        double t_rows = cost_->EstimateRows(*inputs[t]);
        RowSet t_scope = ScopeOf(*inputs[t]);
        double out = cur_rows * std::max(1.0, t_rows);
        bool keyed = false;
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          if (consumed[ci]) continue;
          const Expr* c = conjuncts[ci];
          if (ExprHasSubquery(*c)) continue;
          if (c->tag != Expr::Tag::kBinary || c->name != "=") continue;
          const Expr& a = *c->children[0];
          const Expr& b = *c->children[1];
          const Expr* cur_side = nullptr;
          const Expr* new_side = nullptr;
          if (ResolvableIn(a, cur_scope) && ResolvableIn(b, t_scope)) {
            cur_side = &a;
            new_side = &b;
          } else if (ResolvableIn(b, cur_scope) &&
                     ResolvableIn(a, t_scope)) {
            cur_side = &b;
            new_side = &a;
          } else {
            continue;
          }
          keyed = true;
          out /= std::max(1.0, std::max(side_ndv(*cur_side),
                                        cost_->KeyNdv(*inputs[t],
                                                      *new_side)));
        }
        if (keyed) out = std::max(1.0, out);
        // Keyed joins beat cross products; ties keep FROM order (strict
        // less over ascending candidate positions).
        bool better = !have_best || (keyed && !best_keyed) ||
                      (keyed == best_keyed && out < best_out);
        if (better) {
          have_best = true;
          best_pos = i;
          best_out = out;
          best_keyed = keyed;
        }
      }
      size_t chosen = remaining[best_pos];
      remaining.erase(remaining.begin() +
                      static_cast<ptrdiff_t>(best_pos));
      order.push_back(chosen);
      parts.push_back(inputs[chosen].get());
      cur_scope.cols.insert(cur_scope.cols.end(),
                            inputs[chosen]->schema.begin(),
                            inputs[chosen]->schema.end());
      cur_rows = best_out;
    }
  }

  std::shared_ptr<PlanNode> current = inputs[0];
  for (size_t t : order) {
    const FromItem& item = stmt.from_items[t];
    if (deferred[t].table != nullptr) {
      auto node = std::make_shared<PlanNode>();
      node->kind = PlanKind::kIndexJoin;
      node->table_name = ToLower(item.table_name);
      node->qualifier = deferred[t].qualifier;
      node->index_col = deferred[t].index_col;
      node->probe_key = deferred[t].left_key;
      node->schema = current->schema;
      PruneColumns(stmt, deferred[t].qualifier, deferred[t].table,
                   &node->scan_cols, &node->schema);
      node->num_visible = 0;
      node->children.push_back(std::move(current));
      current = std::move(node);
      continue;
    }
    std::vector<const Expr*> join_conjuncts;
    if (item.join_kind == FromItem::JoinKind::kComma) {
      // WHERE conjuncts that span exactly the current scope + this table.
      RowSet combined_scope;
      combined_scope.cols = current->schema;
      combined_scope.cols.insert(combined_scope.cols.end(),
                                 inputs[t]->schema.begin(),
                                 inputs[t]->schema.end());
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (consumed[ci]) continue;
        if (ExprHasSubquery(*conjuncts[ci])) continue;
        if (ResolvableIn(*conjuncts[ci], combined_scope)) {
          join_conjuncts.push_back(conjuncts[ci]);
          consumed[ci] = true;
        }
      }
      current = MakeHashJoin(std::move(current), inputs[t], join_conjuncts,
                             false);
    } else {
      std::vector<const Expr*> on_conjuncts;
      FlattenConjuncts(item.join_condition.get(), &on_conjuncts);
      current = MakeHashJoin(std::move(current), inputs[t], on_conjuncts,
                             item.join_kind == FromItem::JoinKind::kLeft);
    }
  }

  // Residual WHERE conjuncts (subqueries, cross-scope ORs, ...).
  std::vector<const Expr*> residual;
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    if (!consumed[ci]) residual.push_back(conjuncts[ci]);
  }
  if (!residual.empty()) {
    current = MakeFilter(std::move(current), std::move(residual));
  }
  return current;
}

}  // namespace

std::string PlanNodeLabel(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan: {
      std::string label =
          StringPrintf("scan %s%s%s: %zu cols, %zu pushed filters",
                       node.table_name.c_str(),
                       node.alias.empty() ? "" : " as ", node.alias.c_str(),
                       node.scan_cols.size(), node.predicates.size());
      if (!node.kernels.empty()) {
        label += StringPrintf(" (%zu kernels, %zu residual)",
                              node.kernels.size(),
                              node.residual_predicates.size());
      }
      return label;
    }
    case PlanKind::kCteRef:
      return StringPrintf("cte %s as %s", node.cte_name.c_str(),
                          node.qualifier.c_str());
    case PlanKind::kDerived:
      return StringPrintf("derived %s", node.qualifier.c_str());
    case PlanKind::kIndexJoin:
      return StringPrintf("index join %s (no scan)",
                          node.table_name.c_str());
    case PlanKind::kSemiJoinReduce:
      return StringPrintf("star semi-join on %s",
                          ExprToString(*node.fact_key).c_str());
    case PlanKind::kHashJoin:
      return StringPrintf(
          "%s%s: %zu equi keys, %zu residual",
          node.equi.empty() ? "nested-loop join" : "hash join",
          node.left_outer ? " (left outer)" : "", node.equi.size(),
          node.residual.size());
    case PlanKind::kFilter:
      return StringPrintf("filter: %zu predicates",
                          node.predicates.size());
    case PlanKind::kAggregate:
      return StringPrintf("aggregate%s: %zu keys, %zu aggregates",
                          node.rollup ? " (rollup)" : "",
                          node.group_by.size(), node.aggs.size());
    case PlanKind::kWindow:
      return StringPrintf("window: %zu functions", node.windows.size());
    case PlanKind::kProject:
      return StringPrintf("project: %zu columns", node.projections.size());
    case PlanKind::kDistinct:
      return "distinct";
    case PlanKind::kSort:
      return StringPrintf("sort: %zu keys", node.sort_keys.size());
    case PlanKind::kTopK:
      return StringPrintf("top-k: %zu keys, limit %lld",
                          node.sort_keys.size(),
                          static_cast<long long>(node.limit));
    case PlanKind::kLimit:
      return StringPrintf("limit %lld",
                          static_cast<long long>(node.limit));
    case PlanKind::kTruncate:
      return "truncate";
    case PlanKind::kSetOp:
      return StringPrintf("set op: %zu branches", node.set_kinds.size());
  }
  return "?";
}

Result<PhysicalPlan> BuildPlan(const DataFacade* facade,
                               const SelectStmt& stmt,
                               const PlannerOptions& options) {
  PhysicalPlan plan;
  Planner planner(facade, options, &plan);
  TPCDS_RETURN_NOT_OK(planner.PlanStatement(stmt));
  return plan;
}

Result<PhysicalPlan> BuildSubqueryPlan(
    const DataFacade* facade, const SelectStmt& stmt,
    const PlannerOptions& options,
    const std::map<std::string, std::vector<RowSet::Col>>& cte_schemas) {
  PhysicalPlan plan;
  plan.cte_schemas = cte_schemas;
  Planner planner(facade, options, &plan);
  TPCDS_ASSIGN_OR_RETURN(plan.root, planner.PlanSelectCore(stmt));
  planner.Annotate(*plan.root);
  return plan;
}

}  // namespace tpcds
