#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "engine/database.h"
#include "engine/expr_eval.h"
#include "engine/table.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

// ------------------------------------------------------------ value keys

struct VecValueHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 1469598103u;
    for (const Value& v : key) h = h * 1099511628211ULL ^ v.Hash();
    return h;
  }
};
struct VecValueEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      bool an = a[i].is_null();
      bool bn = b[i].is_null();
      if (an != bn) return false;
      if (!an && Value::Compare(a[i], b[i]) != 0) return false;
    }
    return true;
  }
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    if (a.is_null() && b.is_null()) return true;
    if (a.is_null() || b.is_null()) return false;
    return Value::Compare(a, b) == 0;
  }
};
using ValueSet = std::unordered_set<Value, ValueHasher, ValueEq>;

// --------------------------------------------------------- AST utilities

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->tag == Expr::Tag::kBinary && e->name == "AND") {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

void CollectColumnRefs(const Expr& e,
                       std::vector<const Expr*>* out) {
  if (e.tag == Expr::Tag::kColumnRef) out->push_back(&e);
  for (const auto& c : e.children) CollectColumnRefs(*c, out);
  for (const auto& c : e.partition_by) CollectColumnRefs(*c, out);
  for (const auto& c : e.order_by) CollectColumnRefs(*c, out);
  // Subquery bodies bind their own scopes (uncorrelated only).
}

void CollectStmtColumnRefs(const SelectStmt& stmt,
                           std::vector<const Expr*>* out) {
  for (const SelectItem& item : stmt.select_items) {
    if (item.expr != nullptr) CollectColumnRefs(*item.expr, out);
  }
  for (const FromItem& f : stmt.from_items) {
    if (f.join_condition != nullptr) CollectColumnRefs(*f.join_condition, out);
  }
  if (stmt.where != nullptr) CollectColumnRefs(*stmt.where, out);
  for (const auto& g : stmt.group_by) CollectColumnRefs(*g, out);
  if (stmt.having != nullptr) CollectColumnRefs(*stmt.having, out);
  for (const OrderItem& o : stmt.order_by) CollectColumnRefs(*o.expr, out);
}

bool ResolvableIn(const Expr& e, const RowSet& scope) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    if (!scope.Resolve(r->qualifier, r->name).ok()) return false;
  }
  return true;
}

bool ExprHasSubquery(const Expr& e) {
  if (e.tag == Expr::Tag::kInSubquery ||
      e.tag == Expr::Tag::kScalarSubquery ||
      e.tag == Expr::Tag::kExistsSubquery) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ExprHasSubquery(*c)) return true;
  }
  return false;
}

// ------------------------------------------------------------- aggregates

struct AggSpec {
  std::string key;       // canonical text (dedup)
  std::string function;  // SUM/MIN/MAX/AVG/COUNT/STDDEV_SAMP
  bool distinct = false;
  bool star = false;     // COUNT(*)
  const Expr* arg = nullptr;
};

class Accumulator {
 public:
  explicit Accumulator(const AggSpec* spec) : spec_(spec) {}

  void Add(const Value& v) {
    if (spec_->star) {
      ++count_;
      return;
    }
    if (v.is_null()) return;
    if (spec_->distinct) {
      distinct_.insert(v);
      return;
    }
    Accept(v);
  }

  Value Finalize() const {
    if (spec_->distinct && !spec_->star) {
      Accumulator plain(&plain_spec());
      for (const Value& v : distinct_) plain.Accept(v);
      plain.count_ = static_cast<int64_t>(distinct_.size());
      return plain.FinalizePlain(spec_->function);
    }
    return FinalizePlain(spec_->function);
  }

 private:
  static const AggSpec& plain_spec() {
    static const AggSpec& s = *new AggSpec{};
    return s;
  }

  void Accept(const Value& v) {
    ++count_;
    double d = v.AsDouble();
    sum_double_ += d;
    sum_squares_ += d * d;
    if (v.kind() == Value::Kind::kDecimal) {
      sum_cents_ += v.AsDecimal().cents();
      saw_decimal_ = true;
    } else if (v.kind() == Value::Kind::kInt) {
      sum_int_ += v.AsInt();
    } else {
      saw_double_ = true;
    }
    if (min_.is_null() || Value::Compare(v, min_) < 0) min_ = v;
    if (max_.is_null() || Value::Compare(v, max_) > 0) max_ = v;
  }

  Value FinalizePlain(const std::string& function) const {
    if (function == "COUNT") return Value::Int(count_);
    if (count_ == 0) return Value::Null();
    if (function == "SUM") {
      if (saw_double_) return Value::Dbl(sum_double_);
      if (saw_decimal_) {
        return Value::Dec(Decimal::FromCents(
            sum_cents_ + sum_int_ * Decimal::kScale));
      }
      return Value::Int(sum_int_);
    }
    if (function == "AVG") {
      return Value::Dbl(sum_double_ / static_cast<double>(count_));
    }
    if (function == "MIN") return min_;
    if (function == "MAX") return max_;
    if (function == "STDDEV_SAMP") {
      if (count_ < 2) return Value::Null();
      double n = static_cast<double>(count_);
      double var = (sum_squares_ - sum_double_ * sum_double_ / n) / (n - 1);
      return Value::Dbl(var < 0 ? 0.0 : std::sqrt(var));
    }
    return Value::Null();
  }

  const AggSpec* spec_;
  int64_t count_ = 0;
  int64_t sum_int_ = 0;
  int64_t sum_cents_ = 0;
  double sum_double_ = 0.0;
  double sum_squares_ = 0.0;
  bool saw_decimal_ = false;
  bool saw_double_ = false;
  Value min_;
  Value max_;
  ValueSet distinct_;
};

void CollectAggregates(const Expr& e, std::vector<AggSpec>* specs) {
  if (e.tag == Expr::Tag::kAggregate) {
    AggSpec spec;
    spec.key = ExprToString(e);
    spec.function = e.name;
    spec.distinct = e.distinct;
    spec.star = !e.children.empty() && e.children[0]->tag == Expr::Tag::kStar;
    spec.arg = spec.star || e.children.empty() ? nullptr
                                               : e.children[0].get();
    for (const AggSpec& s : *specs) {
      if (s.key == spec.key) return;  // dedup; aggregates don't nest
    }
    specs->push_back(spec);
    return;
  }
  for (const auto& c : e.children) CollectAggregates(*c, specs);
  for (const auto& c : e.partition_by) CollectAggregates(*c, specs);
  for (const auto& c : e.order_by) CollectAggregates(*c, specs);
}

// --------------------------------------------------------------- windows

struct WindowSpec {
  std::string key;
  const Expr* node = nullptr;
};

void CollectWindows(const Expr& e, std::vector<WindowSpec>* specs) {
  if (e.tag == Expr::Tag::kWindow) {
    WindowSpec spec{ExprToString(e), &e};
    for (const WindowSpec& s : *specs) {
      if (s.key == spec.key) return;
    }
    specs->push_back(spec);
    return;
  }
  for (const auto& c : e.children) CollectWindows(*c, specs);
}

/// Rewrites an expression tree, replacing sub-expressions whose canonical
/// text appears in `replacements` with bare column references.
std::unique_ptr<Expr> RewriteExpr(
    const Expr& e, const std::map<std::string, std::string>& replacements) {
  auto it = replacements.find(ExprToString(e));
  if (it != replacements.end()) {
    auto ref = std::make_unique<Expr>();
    ref->tag = Expr::Tag::kColumnRef;
    // Replacement targets are spelled "name" or "qualifier.name".
    size_t dot = it->second.find('.');
    if (dot == std::string::npos) {
      ref->name = it->second;
    } else {
      ref->qualifier = it->second.substr(0, dot);
      ref->name = it->second.substr(dot + 1);
    }
    return ref;
  }
  std::unique_ptr<Expr> out = e.Clone();
  out->children.clear();
  out->partition_by.clear();
  out->order_by.clear();
  for (const auto& c : e.children) {
    out->children.push_back(RewriteExpr(*c, replacements));
  }
  for (const auto& c : e.partition_by) {
    out->partition_by.push_back(RewriteExpr(*c, replacements));
  }
  for (const auto& c : e.order_by) {
    out->order_by.push_back(RewriteExpr(*c, replacements));
  }
  return out;
}

// -------------------------------------------------------------- executor

class Executor : public SubqueryEvaluator {
 public:
  Executor(Database* db, const PlannerOptions& options, ExecStats* stats)
      : db_(db), options_(options), stats_(stats) {}

  Result<std::shared_ptr<RowSet>> Run(const SelectStmt& stmt) {
    for (const auto& [name, cte] : stmt.ctes) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                             RunSelectCore(*cte));
      ctes_[ToLower(name)] = std::move(rs);
    }
    return RunSelectCore(stmt);
  }

  // SubqueryEvaluator: first visible column of the subquery result.
  Result<std::vector<Value>> EvaluateColumn(const SelectStmt& stmt) override {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs, RunSelectCore(stmt));
    std::vector<Value> out;
    out.reserve(rs->rows.size());
    for (const auto& row : rs->rows) {
      if (!row.empty()) out.push_back(row[0]);
    }
    return out;
  }

 private:
  // select core = bare select (+ unions) + order/limit; returns a rowset
  // truncated to visible columns.
  Result<std::shared_ptr<RowSet>> RunSelectCore(const SelectStmt& stmt) {
    if (stmt.set_ops.empty()) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                             RunBareSelect(stmt, &stmt.order_by, stmt.limit));
      Truncate(rs.get());
      return rs;
    }
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> acc,
                           RunBareSelect(stmt, nullptr, -1));
    Truncate(acc.get());
    for (const auto& branch : stmt.set_ops) {
      TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> rs,
                             RunBareSelect(*branch.stmt, nullptr, -1));
      Truncate(rs.get());
      if (rs->cols.size() != acc->cols.size()) {
        return Status::InvalidArgument("set operation arity mismatch");
      }
      using Kind = SelectStmt::SetOpBranch::Kind;
      switch (branch.kind) {
        case Kind::kUnionAll:
          for (auto& row : rs->rows) acc->rows.push_back(std::move(row));
          break;
        case Kind::kUnion: {
          for (auto& row : rs->rows) acc->rows.push_back(std::move(row));
          Distinct(acc.get());
          break;
        }
        case Kind::kIntersect:
        case Kind::kExcept: {
          std::unordered_set<std::vector<Value>, VecValueHash, VecValueEq>
              other(rs->rows.begin(), rs->rows.end());
          bool keep_present = branch.kind == Kind::kIntersect;
          std::vector<std::vector<Value>> kept;
          for (auto& row : acc->rows) {
            if ((other.count(row) != 0) == keep_present) {
              kept.push_back(std::move(row));
            }
          }
          acc->rows = std::move(kept);
          Distinct(acc.get());  // set semantics
          break;
        }
      }
    }
    // ORDER BY over the combined output: aliases / ordinals / names.
    if (!stmt.order_by.empty()) {
      TPCDS_RETURN_NOT_OK(SortRowSet(acc.get(), stmt.order_by));
    }
    ApplyLimit(acc.get(), stmt.limit);
    return acc;
  }

  static void Truncate(RowSet* rs) {
    size_t visible = rs->VisibleCols();
    if (visible == rs->cols.size()) {
      rs->num_visible = 0;
      return;
    }
    rs->cols.resize(visible);
    for (auto& row : rs->rows) row.resize(visible);
    rs->num_visible = 0;
  }

  static void ApplyLimit(RowSet* rs, int64_t limit) {
    if (limit >= 0 && rs->rows.size() > static_cast<size_t>(limit)) {
      rs->rows.resize(static_cast<size_t>(limit));
    }
  }

  /// Sorts on order items resolved against the rowset (visible first).
  Status SortRowSet(RowSet* rs, const std::vector<OrderItem>& order_by) {
    struct SortKey {
      std::vector<Value> values;
    };
    std::vector<std::unique_ptr<BoundExpr>> bound;
    std::vector<bool> desc;
    for (const OrderItem& item : order_by) {
      desc.push_back(item.desc);
      // Ordinal reference.
      if (item.expr->tag == Expr::Tag::kLiteral &&
          item.expr->literal.kind() == Value::Kind::kInt) {
        int64_t ordinal = item.expr->literal.AsInt();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(rs->VisibleCols())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        bound.push_back(std::make_unique<OrdinalExpr>(
            static_cast<int>(ordinal - 1)));
        continue;
      }
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                             BindExpr(*item.expr, *rs, this));
      bound.push_back(std::move(b));
    }
    std::vector<size_t> order(rs->rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<SortKey> keys(rs->rows.size());
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      keys[i].values.reserve(bound.size());
      for (const auto& b : bound) keys[i].values.push_back(b->Eval(rs->rows[i]));
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < bound.size(); ++k) {
                         int c = Value::Compare(keys[a].values[k],
                                                keys[b].values[k]);
                         if (c != 0) return desc[k] ? c > 0 : c < 0;
                       }
                       return false;
                     });
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(rs->rows.size());
    for (size_t idx : order) sorted.push_back(std::move(rs->rows[idx]));
    rs->rows = std::move(sorted);
    return Status::OK();
  }

  class OrdinalExpr : public BoundExpr {
   public:
    explicit OrdinalExpr(int idx) : idx_(idx) {}
    Value Eval(const std::vector<Value>& row) const override {
      return row[static_cast<size_t>(idx_)];
    }

   private:
    int idx_;
  };

  /// One SELECT block without unions. Returns an *extended* rowset: the
  /// projected items first (visible), then the full input scope (hidden).
  /// Applies ORDER BY/LIMIT when `order_by` is provided.
  Result<std::shared_ptr<RowSet>> RunBareSelect(
      const SelectStmt& stmt, const std::vector<OrderItem>* order_by,
      int64_t limit) {
    TPCDS_ASSIGN_OR_RETURN(std::shared_ptr<RowSet> scope, PlanFrom(stmt));

    // ---- aggregation --------------------------------------------------
    std::map<std::string, std::string> rewrites;
    bool has_aggregates = !stmt.group_by.empty();
    std::vector<AggSpec> agg_specs;
    auto scan_exprs = [&](const SelectStmt& s) {
      for (const SelectItem& item : s.select_items) {
        if (item.expr != nullptr) CollectAggregates(*item.expr, &agg_specs);
      }
      if (s.having != nullptr) CollectAggregates(*s.having, &agg_specs);
      for (const OrderItem& o : s.order_by) {
        CollectAggregates(*o.expr, &agg_specs);
      }
    };
    scan_exprs(stmt);
    has_aggregates = has_aggregates || !agg_specs.empty();

    if (has_aggregates) {
      TPCDS_ASSIGN_OR_RETURN(
          scope, Aggregate(stmt, *scope, agg_specs, &rewrites));
      if (stmt.having != nullptr) {
        std::unique_ptr<Expr> having = RewriteExpr(*stmt.having, rewrites);
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                               BindExpr(*having, *scope, this));
        FilterRows(scope.get(), *bound);
      }
    }

    // ---- window functions --------------------------------------------
    std::vector<WindowSpec> window_specs;
    for (const SelectItem& item : stmt.select_items) {
      if (item.expr != nullptr) CollectWindows(*item.expr, &window_specs);
    }
    if (order_by != nullptr) {
      for (const OrderItem& o : *order_by) {
        CollectWindows(*o.expr, &window_specs);
      }
    }
    if (!window_specs.empty()) {
      TPCDS_RETURN_NOT_OK(
          ComputeWindows(window_specs, rewrites, scope.get(), &rewrites));
    }

    // ---- projection ----------------------------------------------------
    auto out = std::make_shared<RowSet>();
    std::vector<std::unique_ptr<BoundExpr>> projections;
    for (const SelectItem& item : stmt.select_items) {
      if (item.is_star) {
        for (size_t i = 0; i < scope->cols.size(); ++i) {
          out->cols.push_back(scope->cols[i]);
          projections.push_back(std::make_unique<OrdinalExpr>(
              static_cast<int>(i)));
        }
        continue;
      }
      std::unique_ptr<Expr> rewritten = RewriteExpr(*item.expr, rewrites);
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                             BindExpr(*rewritten, *scope, this));
      projections.push_back(std::move(bound));
      RowSet::Col col;
      if (!item.alias.empty()) {
        col.name = item.alias;
      } else if (item.expr->tag == Expr::Tag::kColumnRef) {
        col.qualifier = item.expr->qualifier;
        col.name = item.expr->name;
      } else {
        col.name = ExprToString(*item.expr);
      }
      out->cols.push_back(std::move(col));
    }
    size_t visible = out->cols.size();
    for (const RowSet::Col& c : scope->cols) out->cols.push_back(c);
    out->num_visible = visible;

    out->rows.reserve(scope->rows.size());
    for (const auto& row : scope->rows) {
      std::vector<Value> projected;
      projected.reserve(out->cols.size());
      for (const auto& p : projections) projected.push_back(p->Eval(row));
      for (const Value& v : row) projected.push_back(v);
      out->rows.push_back(std::move(projected));
    }

    if (stmt.select_distinct) Distinct(out.get());

    if (order_by != nullptr && !order_by->empty()) {
      // Rewrite aggregates/windows in ORDER BY before binding.
      std::vector<OrderItem> rewritten_order;
      for (const OrderItem& o : *order_by) {
        OrderItem item;
        item.desc = o.desc;
        item.expr = RewriteExpr(*o.expr, rewrites);
        rewritten_order.push_back(std::move(item));
      }
      TPCDS_RETURN_NOT_OK(SortRowSet(out.get(), rewritten_order));
    }
    ApplyLimit(out.get(), limit);
    return out;
  }

  void Distinct(RowSet* rs) {
    std::unordered_set<std::vector<Value>, VecValueHash, VecValueEq> seen;
    std::vector<std::vector<Value>> unique_rows;
    size_t visible = rs->VisibleCols();
    for (auto& row : rs->rows) {
      std::vector<Value> key(row.begin(),
                             row.begin() + static_cast<long>(visible));
      if (seen.insert(std::move(key)).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    rs->rows = std::move(unique_rows);
  }

  static void FilterRows(RowSet* rs, const BoundExpr& predicate) {
    std::vector<std::vector<Value>> kept;
    kept.reserve(rs->rows.size());
    for (auto& row : rs->rows) {
      Value v = predicate.Eval(row);
      if (!v.is_null() && v.IsTruthy()) kept.push_back(std::move(row));
    }
    rs->rows = std::move(kept);
  }

  // ---- aggregation ----------------------------------------------------
  Result<std::shared_ptr<RowSet>> Aggregate(
      const SelectStmt& stmt, const RowSet& input,
      const std::vector<AggSpec>& specs,
      std::map<std::string, std::string>* rewrites) {
    // Bind group-by keys and aggregate arguments against the input.
    std::vector<std::unique_ptr<BoundExpr>> key_exprs;
    for (const auto& g : stmt.group_by) {
      TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                             BindExpr(*g, input, this));
      key_exprs.push_back(std::move(b));
    }
    std::vector<std::unique_ptr<BoundExpr>> arg_exprs;
    for (const AggSpec& spec : specs) {
      if (spec.arg == nullptr) {
        arg_exprs.push_back(nullptr);
      } else {
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*spec.arg, input, this));
        arg_exprs.push_back(std::move(b));
      }
    }

    std::unordered_map<std::vector<Value>, std::vector<Accumulator>,
                       VecValueHash, VecValueEq>
        groups;
    std::vector<std::vector<Value>> group_order;
    // Key depths: n for plain GROUP BY; n, n-1, ..., 0 for ROLLUP (the
    // SQL-99 subtotal levels). Rolled-up key slots hold NULL.
    std::vector<size_t> depths;
    depths.push_back(key_exprs.size());
    if (stmt.group_rollup) {
      for (size_t d = key_exprs.size(); d-- > 0;) depths.push_back(d);
    }
    for (size_t depth : depths) {
      for (const auto& row : input.rows) {
        std::vector<Value> key(key_exprs.size());
        for (size_t k = 0; k < depth; ++k) key[k] = key_exprs[k]->Eval(row);
        auto it = groups.find(key);
        if (it == groups.end()) {
          std::vector<Accumulator> accs;
          accs.reserve(specs.size());
          for (const AggSpec& spec : specs) accs.emplace_back(&spec);
          it = groups.emplace(key, std::move(accs)).first;
          group_order.push_back(key);
        }
        for (size_t i = 0; i < specs.size(); ++i) {
          if (specs[i].star) {
            it->second[i].Add(Value::Int(1));
          } else {
            it->second[i].Add(arg_exprs[i]->Eval(row));
          }
        }
      }
    }
    // No GROUP BY and no input rows still yields one (empty) group.
    if (stmt.group_by.empty() && groups.empty()) {
      std::vector<Accumulator> accs;
      for (const AggSpec& spec : specs) accs.emplace_back(&spec);
      groups.emplace(std::vector<Value>{}, std::move(accs));
      group_order.emplace_back();
    }

    auto out = std::make_shared<RowSet>();
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      RowSet::Col col;
      const Expr& e = *stmt.group_by[g];
      if (e.tag == Expr::Tag::kColumnRef) {
        col.qualifier = e.qualifier;
        col.name = e.name;
      } else {
        col.name = "#gb" + std::to_string(g);
      }
      (*rewrites)[ExprToString(e)] =
          col.qualifier.empty() ? col.name : col.qualifier + "." + col.name;
      out->cols.push_back(std::move(col));
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      RowSet::Col col;
      col.name = "#agg" + std::to_string(i);
      (*rewrites)[specs[i].key] = col.name;
      out->cols.push_back(std::move(col));
    }
    out->rows.reserve(groups.size());
    for (const auto& key : group_order) {
      const std::vector<Accumulator>& accs = groups.at(key);
      std::vector<Value> row = key;
      for (const Accumulator& acc : accs) row.push_back(acc.Finalize());
      out->rows.push_back(std::move(row));
    }
    if (stats_ != nullptr) {
      stats_->plan.push_back(StringPrintf(
          "aggregate%s: %zu keys, %zu aggregates, %zu -> %zu groups",
          stmt.group_rollup ? " (rollup)" : "", stmt.group_by.size(),
          specs.size(), input.rows.size(), out->rows.size()));
    }
    return out;
  }

  // ---- window functions -----------------------------------------------
  Status ComputeWindows(const std::vector<WindowSpec>& specs,
                        const std::map<std::string, std::string>& rewrites,
                        RowSet* scope,
                        std::map<std::string, std::string>* out_rewrites) {
    for (size_t w = 0; w < specs.size(); ++w) {
      const Expr& node = *specs[w].node;
      // Partition keys.
      std::vector<std::unique_ptr<BoundExpr>> part_exprs;
      for (const auto& p : node.partition_by) {
        std::unique_ptr<Expr> rewritten = RewriteExpr(*p, rewrites);
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                               BindExpr(*rewritten, *scope, this));
        part_exprs.push_back(std::move(b));
      }
      std::unordered_map<std::vector<Value>, std::vector<size_t>,
                         VecValueHash, VecValueEq>
          partitions;
      std::vector<std::vector<Value>> keys(scope->rows.size());
      for (size_t r = 0; r < scope->rows.size(); ++r) {
        std::vector<Value> key;
        key.reserve(part_exprs.size());
        for (const auto& p : part_exprs) {
          key.push_back(p->Eval(scope->rows[r]));
        }
        partitions[key].push_back(r);
        keys[r] = std::move(key);
      }

      std::vector<Value> results(scope->rows.size());
      const std::string fname = node.name;
      if (fname == "RANK" || fname == "ROW_NUMBER" || fname == "DENSE_RANK") {
        std::vector<std::unique_ptr<BoundExpr>> order_exprs;
        for (const auto& o : node.order_by) {
          std::unique_ptr<Expr> rewritten = RewriteExpr(*o, rewrites);
          TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                                 BindExpr(*rewritten, *scope, this));
          order_exprs.push_back(std::move(b));
        }
        for (auto& [key, rows] : partitions) {
          std::vector<std::vector<Value>> sort_keys(rows.size());
          for (size_t i = 0; i < rows.size(); ++i) {
            for (const auto& o : order_exprs) {
              sort_keys[i].push_back(o->Eval(scope->rows[rows[i]]));
            }
          }
          std::vector<size_t> idx(rows.size());
          for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
          std::stable_sort(idx.begin(), idx.end(),
                           [&](size_t a, size_t b) {
                             for (size_t k = 0; k < order_exprs.size(); ++k) {
                               int c = Value::Compare(sort_keys[a][k],
                                                      sort_keys[b][k]);
                               if (c != 0) {
                                 return node.order_desc[k] ? c > 0 : c < 0;
                               }
                             }
                             return false;
                           });
          int64_t rank = 0;
          int64_t dense = 0;
          for (size_t i = 0; i < idx.size(); ++i) {
            bool tie = i > 0 &&
                       VecValueEq()(sort_keys[idx[i]], sort_keys[idx[i - 1]]);
            if (fname == "ROW_NUMBER") {
              rank = static_cast<int64_t>(i) + 1;
            } else if (fname == "RANK") {
              if (!tie) rank = static_cast<int64_t>(i) + 1;
            } else {  // DENSE_RANK
              if (!tie) ++dense;
              rank = dense;
            }
            results[rows[idx[i]]] = Value::Int(rank);
          }
        }
      } else {
        // Aggregate over the whole partition.
        AggSpec spec;
        spec.function = fname;
        spec.star =
            !node.children.empty() && node.children[0]->tag == Expr::Tag::kStar;
        std::unique_ptr<BoundExpr> arg;
        if (!spec.star && !node.children.empty()) {
          std::unique_ptr<Expr> rewritten =
              RewriteExpr(*node.children[0], rewrites);
          TPCDS_ASSIGN_OR_RETURN(arg, BindExpr(*rewritten, *scope, this));
        }
        for (auto& [key, rows] : partitions) {
          Accumulator acc(&spec);
          for (size_t r : rows) {
            acc.Add(spec.star ? Value::Int(1) : arg->Eval(scope->rows[r]));
          }
          Value v = acc.Finalize();
          for (size_t r : rows) results[r] = v;
        }
      }

      std::string col_name = "#win" + std::to_string(w);
      (*out_rewrites)[specs[w].key] = col_name;
      RowSet::Col col;
      col.name = col_name;
      scope->cols.push_back(std::move(col));
      for (size_t r = 0; r < scope->rows.size(); ++r) {
        scope->rows[r].push_back(results[r]);
      }
    }
    return Status::OK();
  }

  // ---- FROM planning ---------------------------------------------------
  Result<std::shared_ptr<RowSet>> PlanFrom(const SelectStmt& stmt);
  Result<std::shared_ptr<RowSet>> BuildFromItem(
      const SelectStmt& stmt, const FromItem& item,
      const std::vector<const Expr*>& conjuncts,
      std::vector<bool>* consumed);
  void PruneColumns(const SelectStmt& stmt, const std::string& qualifier,
                    EngineTable* table, std::vector<int>* needed,
                    std::vector<RowSet::Col>* out_cols);
  Result<std::shared_ptr<RowSet>> ScanTable(
      const SelectStmt& stmt, const std::string& table_name,
      const std::string& alias, const std::vector<const Expr*>& conjuncts,
      std::vector<bool>* consumed);
  Result<std::shared_ptr<RowSet>> HashJoin(std::shared_ptr<RowSet> left,
                                           std::shared_ptr<RowSet> right,
                                           const std::vector<const Expr*>&
                                               join_conjuncts,
                                           bool left_outer);
  Result<std::shared_ptr<RowSet>> IndexJoin(const SelectStmt& stmt,
                                            std::shared_ptr<RowSet> left,
                                            EngineTable* table,
                                            const std::string& qualifier,
                                            const Expr& left_key_expr,
                                            int index_col);

  Database* db_;
  PlannerOptions options_;
  ExecStats* stats_;
  std::map<std::string, std::shared_ptr<RowSet>> ctes_;
};

}  // namespace

// ---------------------------------------------------------------- scans

void Executor::PruneColumns(const SelectStmt& stmt,
                            const std::string& qualifier,
                            EngineTable* table, std::vector<int>* needed,
                            std::vector<RowSet::Col>* out_cols) {
  // Column pruning: a column is needed if any reference in the statement
  // can resolve to it through this alias.
  std::vector<const Expr*> refs;
  CollectStmtColumnRefs(stmt, &refs);
  std::unordered_set<std::string> added;
  for (const Expr* ref : refs) {
    if (!ref->qualifier.empty() &&
        !EqualsIgnoreCase(ref->qualifier, qualifier)) {
      continue;
    }
    int idx = table->ColumnIndex(ToLower(ref->name));
    if (idx < 0) continue;
    std::string key = ToLower(ref->name);
    if (!added.insert(key).second) continue;
    needed->push_back(idx);
    out_cols->push_back(RowSet::Col{qualifier, table->column_meta(
                                                   static_cast<size_t>(idx))
                                                   .name});
  }
}

Result<std::shared_ptr<RowSet>> Executor::ScanTable(
    const SelectStmt& stmt, const std::string& table_name,
    const std::string& alias, const std::vector<const Expr*>& conjuncts,
    std::vector<bool>* consumed) {
  EngineTable* table = db_->FindTable(ToLower(table_name));
  if (table == nullptr) {
    return Status::NotFound("unknown table: " + table_name);
  }
  std::string qualifier = alias.empty() ? table_name : alias;
  std::vector<int> needed;
  std::vector<RowSet::Col> out_cols;
  PruneColumns(stmt, qualifier, table, &needed, &out_cols);

  auto rs = std::make_shared<RowSet>();
  rs->cols = std::move(out_cols);

  // Local filter pushdown: conjuncts fully resolvable against this scan
  // (and without subqueries, which the scan scope can't evaluate lazily).
  std::vector<std::unique_ptr<BoundExpr>> filters;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if ((*consumed)[i]) continue;
    if (ExprHasSubquery(*conjuncts[i])) continue;
    if (ContainsAggregate(*conjuncts[i]) || ContainsWindow(*conjuncts[i])) {
      continue;
    }
    if (!ResolvableIn(*conjuncts[i], *rs)) continue;
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindExpr(*conjuncts[i], *rs, this));
    filters.push_back(std::move(bound));
    (*consumed)[i] = true;
  }

  int64_t n = table->num_rows();
  if (stats_ != nullptr) stats_->rows_scanned += n;
  std::vector<Value> row;
  for (int64_t r = 0; r < n; ++r) {
    row.clear();
    row.reserve(needed.size());
    for (int c : needed) row.push_back(table->GetValue(r, c));
    bool pass = true;
    for (const auto& f : filters) {
      Value v = f->Eval(row);
      if (v.is_null() || !v.IsTruthy()) {
        pass = false;
        break;
      }
    }
    if (pass) rs->rows.push_back(row);
  }
  if (stats_ != nullptr) {
    stats_->plan.push_back(StringPrintf(
        "scan %s%s%s: %zu cols, %zu pushed filters, %lld -> %zu rows",
        table->name().c_str(), alias.empty() ? "" : " as ",
        alias.c_str(), needed.size(), filters.size(),
        static_cast<long long>(n), rs->rows.size()));
  }
  return rs;
}

Result<std::shared_ptr<RowSet>> Executor::BuildFromItem(
    const SelectStmt& stmt, const FromItem& item,
    const std::vector<const Expr*>& conjuncts, std::vector<bool>* consumed) {
  std::string qualifier =
      item.alias.empty() ? item.table_name : item.alias;
  std::shared_ptr<RowSet> rs;
  if (item.derived != nullptr) {
    TPCDS_ASSIGN_OR_RETURN(rs, RunSelectCore(*item.derived));
  } else {
    auto cte = ctes_.find(ToLower(item.table_name));
    if (cte != ctes_.end()) {
      rs = std::make_shared<RowSet>(*cte->second);  // copy: may re-qualify
    } else {
      return ScanTable(stmt, item.table_name, item.alias, conjuncts,
                       consumed);
    }
  }
  // Re-qualify derived/CTE output under the FROM alias.
  for (RowSet::Col& c : rs->cols) c.qualifier = qualifier;
  // Push applicable filters (post-materialisation).
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if ((*consumed)[i]) continue;
    if (ExprHasSubquery(*conjuncts[i])) continue;
    if (!ResolvableIn(*conjuncts[i], *rs)) continue;
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindExpr(*conjuncts[i], *rs, this));
    FilterRows(rs.get(), *bound);
    (*consumed)[i] = true;
  }
  return rs;
}

Result<std::shared_ptr<RowSet>> Executor::HashJoin(
    std::shared_ptr<RowSet> left, std::shared_ptr<RowSet> right,
    const std::vector<const Expr*>& join_conjuncts, bool left_outer) {
  // Split into equi pairs and residual predicates.
  struct EquiPair {
    std::unique_ptr<BoundExpr> left_key;
    std::unique_ptr<BoundExpr> right_key;
  };
  std::vector<EquiPair> equi;
  std::vector<const Expr*> residual;
  for (const Expr* c : join_conjuncts) {
    if (c->tag == Expr::Tag::kBinary && c->name == "=") {
      const Expr& a = *c->children[0];
      const Expr& b = *c->children[1];
      if (ResolvableIn(a, *left) && ResolvableIn(b, *right)) {
        EquiPair pair;
        TPCDS_ASSIGN_OR_RETURN(pair.left_key, BindExpr(a, *left, this));
        TPCDS_ASSIGN_OR_RETURN(pair.right_key, BindExpr(b, *right, this));
        equi.push_back(std::move(pair));
        continue;
      }
      if (ResolvableIn(b, *left) && ResolvableIn(a, *right)) {
        EquiPair pair;
        TPCDS_ASSIGN_OR_RETURN(pair.left_key, BindExpr(b, *left, this));
        TPCDS_ASSIGN_OR_RETURN(pair.right_key, BindExpr(a, *right, this));
        equi.push_back(std::move(pair));
        continue;
      }
    }
    residual.push_back(c);
  }

  auto out = std::make_shared<RowSet>();
  out->cols = left->cols;
  out->cols.insert(out->cols.end(), right->cols.begin(), right->cols.end());

  std::vector<std::unique_ptr<BoundExpr>> residual_bound;
  for (const Expr* c : residual) {
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> b,
                           BindExpr(*c, *out, this));
    residual_bound.push_back(std::move(b));
  }

  auto emit = [&](const std::vector<Value>& l, const std::vector<Value>& r) {
    std::vector<Value> combined;
    combined.reserve(l.size() + r.size());
    combined.insert(combined.end(), l.begin(), l.end());
    combined.insert(combined.end(), r.begin(), r.end());
    for (const auto& rb : residual_bound) {
      Value v = rb->Eval(combined);
      if (v.is_null() || !v.IsTruthy()) return false;
    }
    out->rows.push_back(std::move(combined));
    return true;
  };

  if (equi.empty()) {
    // Nested-loop (cross product with residual filter).
    for (const auto& lrow : left->rows) {
      bool matched = false;
      for (const auto& rrow : right->rows) {
        matched |= emit(lrow, rrow);
      }
      if (left_outer && !matched) {
        std::vector<Value> combined = lrow;
        combined.resize(out->cols.size());
        out->rows.push_back(std::move(combined));
      }
    }
  } else {
    // Build on the right (the newly joined table, usually the dimension).
    std::unordered_map<std::vector<Value>, std::vector<size_t>, VecValueHash,
                       VecValueEq>
        hash_table;
    for (size_t r = 0; r < right->rows.size(); ++r) {
      std::vector<Value> key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& pair : equi) {
        Value v = pair.right_key->Eval(right->rows[r]);
        has_null |= v.is_null();
        key.push_back(std::move(v));
      }
      if (has_null) continue;  // NULL keys never match
      hash_table[std::move(key)].push_back(r);
    }
    for (const auto& lrow : left->rows) {
      std::vector<Value> key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& pair : equi) {
        Value v = pair.left_key->Eval(lrow);
        has_null |= v.is_null();
        key.push_back(std::move(v));
      }
      bool matched = false;
      if (!has_null) {
        auto it = hash_table.find(key);
        if (it != hash_table.end()) {
          for (size_t r : it->second) {
            matched |= emit(lrow, right->rows[r]);
          }
        }
      }
      if (left_outer && !matched) {
        std::vector<Value> combined = lrow;
        combined.resize(out->cols.size());
        out->rows.push_back(std::move(combined));
      }
    }
  }
  if (stats_ != nullptr) {
    stats_->rows_joined += static_cast<int64_t>(out->rows.size());
    stats_->plan.push_back(StringPrintf(
        "%s%s: %zu equi keys, %zu residual, %zu x %zu -> %zu rows",
        equi.empty() ? "nested-loop join" : "hash join",
        left_outer ? " (left outer)" : "", equi.size(), residual.size(),
        left->rows.size(), right->rows.size(), out->rows.size()));
  }
  return out;
}

Result<std::shared_ptr<RowSet>> Executor::IndexJoin(
    const SelectStmt& stmt, std::shared_ptr<RowSet> left,
    EngineTable* table, const std::string& qualifier,
    const Expr& left_key_expr, int index_col) {
  std::vector<int> needed;
  std::vector<RowSet::Col> out_cols;
  PruneColumns(stmt, qualifier, table, &needed, &out_cols);

  auto out = std::make_shared<RowSet>();
  out->cols = left->cols;
  out->cols.insert(out->cols.end(), out_cols.begin(), out_cols.end());

  TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> probe,
                         BindExpr(left_key_expr, *left, this));
  const EngineTable::HashIndex& index = table->GetOrBuildIntIndex(index_col);
  for (const auto& lrow : left->rows) {
    Value v = probe->Eval(lrow);
    if (v.is_null()) continue;
    auto it = index.find(v.AsInt());
    if (it == index.end()) continue;
    for (int64_t r : it->second) {
      std::vector<Value> combined;
      combined.reserve(out->cols.size());
      combined.insert(combined.end(), lrow.begin(), lrow.end());
      for (int c : needed) combined.push_back(table->GetValue(r, c));
      out->rows.push_back(std::move(combined));
    }
  }
  if (stats_ != nullptr) {
    stats_->rows_joined += static_cast<int64_t>(out->rows.size());
    stats_->plan.push_back(StringPrintf(
        "index join %s on %s: %zu probes -> %zu rows (no scan)",
        table->name().c_str(),
        table->column_meta(static_cast<size_t>(index_col)).name.c_str(),
        left->rows.size(), out->rows.size()));
  }
  return out;
}

Result<std::shared_ptr<RowSet>> Executor::PlanFrom(const SelectStmt& stmt) {
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::vector<bool> consumed(conjuncts.size(), false);

  // Index-join deferral (options_.index_joins): a comma-joined base table
  // with no local filters, joined to the preceding scope by exactly one
  // equi conjunct on one of its integer columns, is never scanned — its
  // hash index is probed at join time instead. Decide eligibility on
  // column *metadata* before any scanning.
  struct Deferred {
    EngineTable* table = nullptr;
    std::string qualifier;
    const Expr* left_key = nullptr;  // expression over the earlier scope
    int index_col = -1;
  };
  std::vector<Deferred> deferred(stmt.from_items.size());
  if (options_.index_joins) {
    // Metadata scope of items 0..t-1 (alias-qualified column names only).
    RowSet earlier_meta;
    for (size_t t = 0; t < stmt.from_items.size(); ++t) {
      const FromItem& item = stmt.from_items[t];
      std::string qualifier =
          item.alias.empty() ? item.table_name : item.alias;
      EngineTable* base = item.derived == nullptr &&
                                  ctes_.count(ToLower(item.table_name)) == 0
                              ? db_->FindTable(ToLower(item.table_name))
                              : nullptr;
      RowSet my_meta;
      if (base != nullptr) {
        for (size_t c = 0; c < base->num_columns(); ++c) {
          my_meta.cols.push_back(
              RowSet::Col{qualifier, base->column_meta(c).name});
        }
      }
      // Derived/CTE columns are unknown pre-execution; they simply stay
      // hash-join candidates (my_meta empty disables matching on them).
      if (t > 0 && base != nullptr &&
          item.join_kind == FromItem::JoinKind::kComma) {
        bool has_local_filter = false;
        const Expr* equi = nullptr;
        const Expr* left_side = nullptr;
        const Expr* right_side = nullptr;
        int spanning = 0;
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          if (consumed[ci]) continue;
          const Expr* c = conjuncts[ci];
          if (ExprHasSubquery(*c)) continue;
          if (ResolvableIn(*c, my_meta)) {
            has_local_filter = true;
            break;
          }
          // Does this conjunct span earlier scope + this table?
          if (c->tag == Expr::Tag::kBinary && c->name == "=") {
            const Expr& a = *c->children[0];
            const Expr& b = *c->children[1];
            if (ResolvableIn(a, earlier_meta) && ResolvableIn(b, my_meta)) {
              ++spanning;
              equi = c;
              left_side = &a;
              right_side = &b;
              continue;
            }
            if (ResolvableIn(b, earlier_meta) && ResolvableIn(a, my_meta)) {
              ++spanning;
              equi = c;
              left_side = &b;
              right_side = &a;
              continue;
            }
          }
          // Any other conjunct touching this table forces a scan.
          RowSet combined = earlier_meta;
          combined.cols.insert(combined.cols.end(), my_meta.cols.begin(),
                               my_meta.cols.end());
          if (!ResolvableIn(*c, earlier_meta) && ResolvableIn(*c, combined)) {
            spanning += 2;  // disqualify
          }
        }
        if (!has_local_filter && spanning == 1 && equi != nullptr &&
            right_side->tag == Expr::Tag::kColumnRef) {
          int col = base->ColumnIndex(ToLower(right_side->name));
          if (col >= 0) {
            ColumnType type = base->column_meta(
                                      static_cast<size_t>(col)).type;
            if (type == ColumnType::kIdentifier ||
                type == ColumnType::kInteger) {
              deferred[t].table = base;
              deferred[t].qualifier = qualifier;
              deferred[t].left_key = left_side;
              deferred[t].index_col = col;
              // Consume the equi conjunct: the index join implements it.
              for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
                if (conjuncts[ci] == equi) consumed[ci] = true;
              }
            }
          }
        }
      }
      earlier_meta.cols.insert(earlier_meta.cols.end(),
                               my_meta.cols.begin(), my_meta.cols.end());
    }
  }

  // Scan every non-deferred FROM item (filters pushed down per table).
  std::vector<std::shared_ptr<RowSet>> inputs;
  inputs.reserve(stmt.from_items.size());
  for (size_t t = 0; t < stmt.from_items.size(); ++t) {
    if (deferred[t].table != nullptr) {
      inputs.push_back(nullptr);
      continue;
    }
    TPCDS_ASSIGN_OR_RETURN(
        std::shared_ptr<RowSet> rs,
        BuildFromItem(stmt, stmt.from_items[t], conjuncts, &consumed));
    inputs.push_back(std::move(rs));
  }

  // Star transformation (semi-join reduction): restrict the first table by
  // every later comma-joined input that (a) was filtered below its full
  // table size is unknowable here, so: (b) equi-joins the first table on a
  // single key pair. Using the qualifying key set is always correct; it
  // pays off when dimensions carry selective predicates.
  if (options_.star_transformation && inputs.size() > 2 &&
      !inputs.empty()) {
    RowSet& fact = *inputs[0];
    for (size_t t = 1; t < stmt.from_items.size(); ++t) {
      if (inputs[t] == nullptr) continue;  // deferred to an index join
      if (stmt.from_items[t].join_kind != FromItem::JoinKind::kComma) {
        continue;
      }
      // Find a single unconsumed equi conjunct fact.col = dim.col.
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (consumed[ci]) continue;
        const Expr* c = conjuncts[ci];
        if (c->tag != Expr::Tag::kBinary || c->name != "=") continue;
        const Expr& a = *c->children[0];
        const Expr& b = *c->children[1];
        const Expr* fact_side = nullptr;
        const Expr* dim_side = nullptr;
        if (ResolvableIn(a, fact) && ResolvableIn(b, *inputs[t])) {
          fact_side = &a;
          dim_side = &b;
        } else if (ResolvableIn(b, fact) && ResolvableIn(a, *inputs[t])) {
          fact_side = &b;
          dim_side = &a;
        } else {
          continue;
        }
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> dim_key,
                               BindExpr(*dim_side, *inputs[t], this));
        ValueSet keys;
        for (const auto& row : inputs[t]->rows) {
          Value v = dim_key->Eval(row);
          if (!v.is_null()) keys.insert(std::move(v));
        }
        TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> fact_key,
                               BindExpr(*fact_side, fact, this));
        size_t before = fact.rows.size();
        std::vector<std::vector<Value>> kept;
        kept.reserve(fact.rows.size());
        for (auto& row : fact.rows) {
          Value v = fact_key->Eval(row);
          if (!v.is_null() && keys.find(v) != keys.end()) {
            kept.push_back(std::move(row));
          }
        }
        fact.rows = std::move(kept);
        if (stats_ != nullptr) {
          stats_->star_filtered_rows +=
              static_cast<int64_t>(before - fact.rows.size());
          stats_->plan.push_back(StringPrintf(
              "star semi-join on %s (%zu dim keys): %zu -> %zu fact rows",
              ExprToString(*fact_side).c_str(), keys.size(), before,
              fact.rows.size()));
        }
        // The conjunct stays unconsumed: the hash join still needs it to
        // pair fact rows with the right dimension rows.
        break;
      }
    }
  }

  // Left-deep join pipeline in FROM order.
  std::shared_ptr<RowSet> current = inputs[0];
  for (size_t t = 1; t < stmt.from_items.size(); ++t) {
    const FromItem& item = stmt.from_items[t];
    if (deferred[t].table != nullptr) {
      TPCDS_ASSIGN_OR_RETURN(
          current,
          IndexJoin(stmt, current, deferred[t].table,
                    deferred[t].qualifier, *deferred[t].left_key,
                    deferred[t].index_col));
      continue;
    }
    std::vector<const Expr*> join_conjuncts;
    if (item.join_kind == FromItem::JoinKind::kComma) {
      // WHERE conjuncts that span exactly the current scope + this table.
      RowSet combined_scope;
      combined_scope.cols = current->cols;
      combined_scope.cols.insert(combined_scope.cols.end(),
                                 inputs[t]->cols.begin(),
                                 inputs[t]->cols.end());
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (consumed[ci]) continue;
        if (ExprHasSubquery(*conjuncts[ci])) continue;
        if (ResolvableIn(*conjuncts[ci], combined_scope)) {
          join_conjuncts.push_back(conjuncts[ci]);
          consumed[ci] = true;
        }
      }
      TPCDS_ASSIGN_OR_RETURN(
          current, HashJoin(current, inputs[t], join_conjuncts, false));
    } else {
      std::vector<const Expr*> on_conjuncts;
      FlattenConjuncts(item.join_condition.get(), &on_conjuncts);
      TPCDS_ASSIGN_OR_RETURN(
          current,
          HashJoin(current, inputs[t], on_conjuncts,
                   item.join_kind == FromItem::JoinKind::kLeft));
    }
  }

  // Residual WHERE conjuncts (subqueries, cross-scope ORs, ...).
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    if (consumed[ci]) continue;
    TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindExpr(*conjuncts[ci], *current, this));
    FilterRows(current.get(), *bound);
  }
  return current;
}

Result<std::shared_ptr<RowSet>> ExecuteSelect(Database* db,
                                              const SelectStmt& stmt,
                                              const PlannerOptions& options,
                                              ExecStats* stats) {
  Executor executor(db, options, stats);
  return executor.Run(stmt);
}

}  // namespace tpcds
