#include "engine/planner.h"

#include "engine/executor.h"
#include "engine/plan.h"

namespace tpcds {

// Execution is split into two phases (see docs/EXECUTOR.md): BuildPlan
// turns the AST into a physical operator tree — resolving tables, pruning
// columns, splitting equi-join keys, applying the star transformation —
// without touching table data, and ExecutePlan runs the tree, binding
// expressions to column slots once per operator and parallelising row
// work across morsels when options.parallelism allows.
Result<std::shared_ptr<RowSet>> ExecuteSelect(const DataFacade* facade,
                                              const SelectStmt& stmt,
                                              const PlannerOptions& options,
                                              ExecStats* stats,
                                              QueryGovernor* governor) {
  TPCDS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                         BuildPlan(facade, stmt, options));
  return ExecutePlan(facade, plan, options, stats, governor);
}

}  // namespace tpcds
