#ifndef TPCDS_ENGINE_EXPR_EVAL_H_
#define TPCDS_ENGINE_EXPR_EVAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/ast.h"
#include "engine/rowset.h"
#include "util/result.h"

namespace tpcds {

/// A compiled (name-resolved) expression evaluable against rows of one
/// RowSet shape. Binding happens once per operator; evaluation is
/// index-based, no string lookups on the per-row path.
class BoundExpr {
 public:
  virtual ~BoundExpr() = default;
  virtual Value Eval(const std::vector<Value>& row) const = 0;
};

/// Hook the planner provides so the binder can evaluate uncorrelated
/// subqueries (IN (SELECT ...), scalar subqueries, EXISTS) at bind time.
class SubqueryEvaluator {
 public:
  virtual ~SubqueryEvaluator() = default;
  /// Executes the subquery and returns its first column's values.
  virtual Result<std::vector<Value>> EvaluateColumn(
      const SelectStmt& stmt) = 0;
};

/// Binds `expr` against `scope`. Aggregate and window nodes must already
/// have been rewritten away by the planner; encountering one is an error.
/// `subqueries` may be nullptr when the expression contains none.
Result<std::unique_ptr<BoundExpr>> BindExpr(const Expr& expr,
                                            const RowSet& scope,
                                            SubqueryEvaluator* subqueries);

/// Canonical text of an expression; used for structural equality when the
/// planner rewrites aggregate / group-by expressions into column
/// references, and to derive display names for unaliased select items.
std::string ExprToString(const Expr& expr);

/// SQL LIKE semantics (% = any run, _ = one character) on raw strings; the
/// same matcher BoundLike uses, exposed for the vectorized string kernels.
bool SqlLikeMatch(std::string_view text, const std::string& pattern);

/// True if the expression (deeply) contains an aggregate node.
bool ContainsAggregate(const Expr& expr);
/// True if the expression (deeply) contains a window node.
bool ContainsWindow(const Expr& expr);

/// SQL arithmetic with type coercion (used by the evaluator and by
/// aggregate accumulators): +, -, *, / over int/decimal/double/date.
Value EvalArithmetic(const std::string& op, const Value& a, const Value& b);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_EXPR_EVAL_H_
