#include "engine/agg_parallel.h"

namespace tpcds {

size_t GroupKeyHash::Hash(const Value* values, size_t n) {
  // Same FNV-style combination the executor's join keys use; partition
  // assignment (hash % kHashPartitions) and hash-table lookup must agree
  // on the hash of a key, whether it is viewed or materialised.
  size_t h = 1469598103u;
  for (size_t i = 0; i < n; ++i) h = h * 1099511628211ULL ^ values[i].Hash();
  return h;
}

bool GroupKeyEq::Eq(const Value* a, size_t an, const Value* b, size_t bn) {
  if (an != bn) return false;
  for (size_t i = 0; i < an; ++i) {
    bool a_null = a[i].is_null();
    bool b_null = b[i].is_null();
    if (a_null != b_null) return false;
    if (!a_null && Value::Compare(a[i], b[i]) != 0) return false;
  }
  return true;
}

std::vector<uint32_t> MergeAscendingIndexLists(
    const std::vector<std::vector<uint32_t>>& lists) {
  size_t total = 0;
  for (const auto& l : lists) total += l.size();
  std::vector<uint32_t> merged;
  merged.reserve(total);
  // P-way merge by repeatedly taking the smallest head. P is small (the
  // partition count), so a linear scan over the cursors beats a heap.
  std::vector<size_t> cursor(lists.size(), 0);
  while (merged.size() < total) {
    size_t best = lists.size();
    uint32_t best_row = 0;
    for (size_t p = 0; p < lists.size(); ++p) {
      if (cursor[p] >= lists[p].size()) continue;
      uint32_t row = lists[p][cursor[p]];
      if (best == lists.size() || row < best_row) {
        best = p;
        best_row = row;
      }
    }
    merged.push_back(best_row);
    ++cursor[best];
  }
  return merged;
}

}  // namespace tpcds
