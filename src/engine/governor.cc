#include "engine/governor.h"

#include <chrono>

#include "util/fault.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool ResourcePool::TryReserve(int64_t bytes) {
  int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (capacity_ > 0 && now > capacity_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void ResourcePool::Release(int64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

QueryGovernor::QueryGovernor() = default;

QueryGovernor::~QueryGovernor() {
  int64_t outstanding = parent_bytes_.load(std::memory_order_relaxed);
  if (parent_pool_ != nullptr && outstanding > 0) {
    parent_pool_->Release(outstanding);
  }
}

QueryGovernor::QueryGovernor(const GovernorLimits& limits) : limits_(limits) {
  if (limits_.timeout_ms > 0.0) {
    deadline_seconds_ = SteadyNowSeconds() + limits_.timeout_ms / 1e3;
  }
}

void QueryGovernor::Trip(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tripped_.load(std::memory_order_relaxed)) return;  // first trip wins
  trip_status_ = std::move(status);
  tripped_.store(true, std::memory_order_release);
}

void QueryGovernor::Cancel(const std::string& reason) {
  Trip(Status::Cancelled(reason.empty() ? "query cancelled" : reason));
}

Status QueryGovernor::status() const {
  if (!cancelled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return trip_status_;
}

bool QueryGovernor::CheckDeadline() {
  if (deadline_seconds_ == 0.0) return true;
  if (SteadyNowSeconds() <= deadline_seconds_) return true;
  Trip(Status::DeadlineExceeded(StringPrintf(
      "query exceeded its %.3f ms deadline", limits_.timeout_ms)));
  return false;
}

bool QueryGovernor::BeginMorsel() {
  if (cancelled()) return false;
  if (FaultInjector::Global().enabled()) {
    Status st = FaultInjector::Global().Maybe("morsel");
    if (!st.ok()) {
      Trip(std::move(st));
      return false;
    }
  }
  return CheckDeadline();
}

bool QueryGovernor::Tick() {
  if (cancelled()) return false;
  return CheckDeadline();
}

bool QueryGovernor::Reserve(int64_t bytes) {
  if (cancelled()) return false;
  if (FaultInjector::Global().enabled()) {
    Status st = FaultInjector::Global().Maybe("alloc");
    if (!st.ok()) {
      Trip(std::move(st));
      return false;
    }
  }
  // Charge the shared parent pool first: a failed pool reservation charges
  // nothing anywhere, so accounting stays exact under concurrent trips.
  if (parent_pool_ != nullptr) {
    if (!parent_pool_->TryReserve(bytes)) {
      Trip(Status::ResourceExhausted(StringPrintf(
          "global memory pool exhausted: %lld bytes in use of %lld capacity "
          "(query asked for %lld more)",
          static_cast<long long>(parent_pool_->used()),
          static_cast<long long>(parent_pool_->capacity()),
          static_cast<long long>(bytes))));
      return false;
    }
    parent_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  int64_t now = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
  if (limits_.memory_budget_bytes > 0 && now > limits_.memory_budget_bytes) {
    Trip(Status::ResourceExhausted(StringPrintf(
        "query memory budget exceeded: %lld of %lld bytes reserved",
        static_cast<long long>(now),
        static_cast<long long>(limits_.memory_budget_bytes))));
    return false;
  }
  return true;
}

void QueryGovernor::Release(int64_t bytes) {
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_pool_ != nullptr) {
    parent_pool_->Release(bytes);
    parent_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

bool QueryGovernor::ChargeRows(int64_t rows) {
  if (cancelled()) return false;
  int64_t now = rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
  if (limits_.row_budget > 0 && now > limits_.row_budget) {
    Trip(Status::ResourceExhausted(StringPrintf(
        "query row budget exceeded: %lld of %lld rows materialised",
        static_cast<long long>(now),
        static_cast<long long>(limits_.row_budget))));
    return false;
  }
  return true;
}

int64_t ApproxRowBytes(const std::vector<Value>& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(std::vector<Value>)) +
                  static_cast<int64_t>(row.size() * sizeof(Value));
  for (const Value& v : row) {
    if (v.kind() == Value::Kind::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

}  // namespace tpcds
