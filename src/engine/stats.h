#ifndef TPCDS_ENGINE_STATS_H_
#define TPCDS_ENGINE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace tpcds {

class EngineTable;

/// Dense HyperLogLog sketch with p = 12 (4096 one-byte registers,
/// ~1.6% standard error). Values are fed as pre-mixed 64-bit hashes —
/// see HashStatsInt / HashStatsBytes — so the sketch itself is
/// hash-agnostic. Used transiently by AnalyzeTable; only the resulting
/// estimate is stored (and persisted) in ColumnStats.
class HyperLogLog {
 public:
  static constexpr int kPrecision = 12;
  static constexpr size_t kRegisters = size_t{1} << kPrecision;

  HyperLogLog() : registers_(kRegisters, 0) {}

  void AddHash(uint64_t hash);
  /// Bias-corrected cardinality estimate with the linear-counting
  /// correction for small ranges.
  int64_t Estimate() const;

 private:
  std::vector<uint8_t> registers_;
};

/// Deterministic 64-bit mixers feeding the sketch; splitmix64 finalizer
/// over the raw int / an FNV-1a pass over the bytes. Stable across runs
/// and platforms (unlike std::hash), so persisted estimates reproduce.
uint64_t HashStatsInt(int64_t v);
uint64_t HashStatsBytes(const char* data, size_t size);

/// Equi-depth histogram over an int-backed column's non-null values,
/// built from a (possibly strided) sample. `bounds` carries k + 1 bucket
/// boundaries (bounds[0] = sample min … bounds[k] = sample max); bucket i
/// covers (bounds[i], bounds[i+1]] — the first bucket is closed on the
/// left — and holds `counts[i]` sampled rows.
struct Histogram {
  std::vector<int64_t> bounds;
  std::vector<int64_t> counts;
  int64_t sample_rows = 0;

  bool empty() const { return sample_rows == 0 || bounds.size() < 2; }
  /// Estimated fraction of the (non-null) rows in inclusive [lo, hi],
  /// interpolating linearly inside partially covered buckets.
  double SelectivityRange(int64_t lo, int64_t hi) const;
};

/// One column's collected statistics. `ndv` counts distinct non-null
/// values — exact (from the dictionary) for dict-encoded columns, a
/// HyperLogLog estimate otherwise. min/max/histogram only exist for
/// int-backed (numeric / date / decimal-cents) columns.
struct ColumnStats {
  int64_t row_count = 0;
  int64_t null_count = 0;
  int64_t ndv = 0;
  bool ndv_exact = false;
  bool has_minmax = false;
  int64_t min = 0;
  int64_t max = 0;
  Histogram histogram;

  double NullFraction() const {
    return row_count == 0
               ? 0.0
               : static_cast<double>(null_count) /
                     static_cast<double>(row_count);
  }
  int64_t NonNullRows() const { return row_count - null_count; }
};

/// Per-table statistics, one ColumnStats per storage column (same index
/// space as EngineTable::column).
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// Collects TableStats in one pass over every column: null counts,
/// min/max, NDV sketches, and equi-depth histograms from a deterministic
/// strided sample (at most kHistogramSampleCap values per column).
TableStats AnalyzeTable(const EngineTable& table);

/// Serialization for the checkpoint STATS aux file (util/bytes.h wire
/// format; the caller frames the body with magic + CRC).
void SerializeTableStats(const TableStats& stats, std::string* out);
Result<TableStats> DeserializeTableStats(ByteReader* reader);

}  // namespace tpcds

#endif  // TPCDS_ENGINE_STATS_H_
