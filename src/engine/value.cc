#include "engine/value.h"

#include <cmath>
#include <functional>

namespace tpcds {

double Value::AsDouble() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(num_);
    case Kind::kDecimal:
      return static_cast<double>(num_) / Decimal::kScale;
    case Kind::kDouble:
      return dbl_;
    case Kind::kDate:
      return static_cast<double>(num_);
    default:
      return 0.0;
  }
}

bool Value::IsTruthy() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kInt:
    case Kind::kDecimal:
    case Kind::kDate:
      return num_ != 0;
    case Kind::kDouble:
      return dbl_ != 0.0;
    case Kind::kString:
      return !str_.empty();
  }
  return false;
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  // NULL sorts first (only relevant for ORDER BY; filters never see it).
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;

  if (a.kind_ == Kind::kString && b.kind_ == Kind::kString) {
    return a.str_.compare(b.str_) < 0 ? -1 : (a.str_ == b.str_ ? 0 : 1);
  }
  // Date vs string: parse the string as a date literal.
  if (a.kind_ == Kind::kDate && b.kind_ == Kind::kString) {
    Result<Date> d = Date::Parse(b.str_);
    if (d.ok()) return CompareDoubles(a.AsDouble(), d.ValueOrDie().jdn());
    return -1;
  }
  if (a.kind_ == Kind::kString && b.kind_ == Kind::kDate) {
    return -Compare(b, a);
  }
  if (a.kind_ == Kind::kInt && b.kind_ == Kind::kInt) {
    return a.num_ < b.num_ ? -1 : (a.num_ == b.num_ ? 0 : 1);
  }
  if (a.kind_ == Kind::kDecimal && b.kind_ == Kind::kDecimal) {
    return a.num_ < b.num_ ? -1 : (a.num_ == b.num_ ? 0 : 1);
  }
  if (a.kind_ == Kind::kDate && b.kind_ == Kind::kDate) {
    return a.num_ < b.num_ ? -1 : (a.num_ == b.num_ ? 0 : 1);
  }
  // String vs numeric: compare textually-parsed doubles when possible.
  return CompareDoubles(a.AsDouble(), b.AsDouble());
}

bool Value::SqlEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  return Compare(a, b) == 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x9e3779b9;
    case Kind::kString:
      return std::hash<std::string>()(str_);
    case Kind::kDouble: {
      // Hash integral doubles like the equal-valued int.
      double d = dbl_;
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::hash<int64_t>()(static_cast<int64_t>(d) * 10007);
      }
      return std::hash<double>()(d);
    }
    case Kind::kDecimal: {
      // cents -> units when integral so Dec(5.00) matches Int(5).
      if (num_ % Decimal::kScale == 0) {
        return std::hash<int64_t>()(num_ / Decimal::kScale * 10007);
      }
      return std::hash<double>()(AsDouble());
    }
    case Kind::kInt:
    case Kind::kDate:
      return std::hash<int64_t>()(num_ * 10007);
  }
  return 0;
}

std::string Value::ToDisplayString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(num_);
    case Kind::kDecimal:
      return AsDecimal().ToString();
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", dbl_);
      return buf;
    }
    case Kind::kString:
      return str_;
    case Kind::kDate:
      return AsDate().ToString();
  }
  return "";
}

}  // namespace tpcds
