#include "engine/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace tpcds {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      t.type = Token::Type::kIdentifier;
      t.text = sql.substr(start, i - start);
      t.upper = ToUpper(t.text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool saw_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !saw_dot))) {
        if (sql[i] == '.') saw_dot = true;
        ++i;
      }
      t.type = Token::Type::kNumber;
      t.text = sql.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(t.position));
      }
      t.type = Token::Type::kString;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "||") {
      t.type = Token::Type::kOperator;
      t.text = two == "!=" ? "<>" : two;
      tokens.push_back(std::move(t));
      i += 2;
      continue;
    }
    if (std::string("=<>+-*/(),.;").find(c) != std::string::npos) {
      t.type = Token::Type::kOperator;
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = Token::Type::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace tpcds
