#ifndef TPCDS_ENGINE_COST_H_
#define TPCDS_ENGINE_COST_H_

#include <map>
#include <string>
#include <vector>

#include "engine/batch.h"
#include "engine/plan.h"
#include "engine/stats.h"

namespace tpcds {

class DataFacade;

/// Selectivity assumed for a predicate the model cannot classify (residual
/// scan filters, join residuals, generic kFilter conjuncts).
constexpr double kDefaultPredicateSelectivity = 0.75;

/// Rows assumed for an input whose cardinality is unknowable at plan time
/// (CTE refs planned outside this statement).
constexpr double kUnknownInputRows = 1000.0;

/// Cardinality estimation over physical plan subtrees, backed by the
/// per-table statistics in engine/stats.h. One instance lives for the
/// duration of a Planner run (PlannerOptions::cost_based); estimates are
/// written into PlanOpStats::est_rows as a side effect so EXPLAIN can
/// report estimated vs. actual rows.
class CostModel {
 public:
  explicit CostModel(const DataFacade* facade) : facade_(facade) {}

  /// Records a planned CTE's estimated cardinality so later kCteRef
  /// estimates resolve (keyed by lower-cased name).
  void SetCteEstimate(const std::string& name, double rows);

  /// Estimates `node`'s output rows, recursing over the subtree and
  /// annotating every visited node's stats.est_rows. Idempotent.
  double EstimateRows(const PlanNode& node) const;

  /// Distinct values `key` takes in `input`'s output: the base column NDV
  /// (when the key traces to a scanned column with stats) capped by the
  /// input's estimated rows, else the estimated rows themselves.
  /// `input` must already have been estimated via EstimateRows.
  double KeyNdv(const PlanNode& input, const Expr& key) const;

  /// Fraction of a star fact's rows expected to survive a semi-join
  /// against `dim` on `dim_key`: qualifying-key NDV over the key domain's
  /// NDV (containment assumption). 1.0 when the domain is unknown.
  double SemiJoinSelectivity(const PlanNode& dim, const Expr& dim_key) const;

  /// Selectivity of one compiled scan kernel against its column's stats
  /// (histogram for ranges, 1/NDV for equality, null fraction for NULL
  /// tests). `cs` may be null (no stats for that column).
  static double KernelSelectivity(const ScanKernel& kernel,
                                  const ColumnStats* cs);

  /// Conjunction selectivity with exponential backoff instead of naive
  /// independence: sorted ascending, s0 * s1^(1/2) * s2^(1/4) * ... — the
  /// cap keeps correlated predicate stacks from collapsing the estimate
  /// to zero.
  static double CombineSelectivities(std::vector<double> sels);

  /// |L ⋈ R| under NDV containment: l * r / max(lndv, rndv).
  static double JoinCardinality(double l, double r, double lndv,
                                double rndv);

 private:
  double EstimateScan(const PlanNode& node) const;
  /// Uncapped NDV of the base column `key` traces to through
  /// schema-preserving operators; -1 when unknown.
  double BaseKeyNdv(const PlanNode& input, const Expr& key) const;

  const DataFacade* facade_;
  std::map<std::string, double> cte_rows_;
};

}  // namespace tpcds

#endif  // TPCDS_ENGINE_COST_H_
