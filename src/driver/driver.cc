#include "driver/driver.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "engine/audit.h"
#include "schema/schema.h"

#include "qgen/qgen.h"
#include "scaling/scaling.h"
#include "templates/templates.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace tpcds {

Result<double> RunLoadTest(const BenchmarkConfig& config, Database* db) {
  // Untimed preparation would live here (creating the database instance);
  // the timed portion covers table creation, load and auxiliary
  // structures, per the execution rules.
  Stopwatch timer;
  TPCDS_RETURN_NOT_OK(db->CreateTpcdsTables());
  GeneratorOptions gen;
  gen.scale_factor = config.scale_factor;
  gen.master_seed = config.seed;
  TPCDS_RETURN_NOT_OK(db->LoadTpcdsData(gen));
  // Auxiliary data structures are allowed for the reporting part of the
  // schema (catalog channel, paper §2.2): build join indexes there. Their
  // cost lands in T_Load, which the metric charges at 0.01*S.
  for (const char* table_name : {"catalog_sales", "catalog_returns"}) {
    EngineTable* t = db->FindTable(table_name);
    if (t == nullptr) continue;
    for (size_t c = 0; c < t->num_columns(); ++c) {
      const std::string& name = t->column_meta(c).name;
      if (name.ends_with("_item_sk") || name.ends_with("_date_sk")) {
        t->GetOrBuildIntIndex(static_cast<int>(c));
      }
    }
  }
  // "Define and validate constraints" is part of the timed load (§5.2).
  TPCDS_ASSIGN_OR_RETURN(AuditReport audit,
                         ValidateConstraints(db, TpcdsSchema()));
  if (audit.TotalViolations() != 0) {
    return Status::Internal(
        "constraint validation failed during load:\n" + audit.ToString());
  }
  return timer.ElapsedSeconds();
}

Result<double> RunQueryRun(const BenchmarkConfig& config, Database* db,
                           int stream_base,
                           std::vector<QueryExecution>* executions) {
  const std::vector<QueryTemplate>& templates = AllTemplates();
  QueryGenerator qgen(config.seed);
  int streams = config.streams > 0
                    ? config.streams
                    : ScalingModel::MinimumStreams(config.scale_factor);

  std::mutex mu;
  Status first_error;
  Stopwatch timer;
  {
    ThreadPool pool(static_cast<size_t>(streams));
    for (int s = 0; s < streams; ++s) {
      int stream_id = stream_base + s;
      pool.Submit([&, stream_id] {
        // Family-aware order: iterative-OLAP drill sequences run as
        // contiguous sessions inside the stream (paper §4.1).
        std::vector<int> order =
            qgen.StreamPermutation(stream_id, templates);
        int to_run = std::min<int>(config.queries_per_stream,
                                   static_cast<int>(order.size()));
        for (int k = 0; k < to_run; ++k) {
          const QueryTemplate& tmpl =
              templates[static_cast<size_t>(order[static_cast<size_t>(k)])];
          Result<std::string> sql = qgen.Instantiate(tmpl, stream_id);
          if (!sql.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error.ok()) first_error = sql.status();
            return;
          }
          Stopwatch query_timer;
          Result<QueryResult> result = db->Query(*sql, config.planner);
          if (!result.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error.ok()) {
              first_error = Status(
                  result.status().code(),
                  tmpl.name + " (stream " + std::to_string(stream_id) +
                      "): " + result.status().message());
            }
            return;
          }
          QueryExecution exec;
          exec.template_id = tmpl.id;
          exec.stream = stream_id;
          exec.seconds = query_timer.ElapsedSeconds();
          exec.result_rows = static_cast<int64_t>(result->rows.size());
          std::lock_guard<std::mutex> lock(mu);
          executions->push_back(exec);
        }
      });
    }
    pool.WaitIdle();
  }
  TPCDS_RETURN_NOT_OK(first_error);
  return timer.ElapsedSeconds();
}

Result<PowerTestResult> RunPowerTest(const BenchmarkConfig& config,
                                     Database* db) {
  const std::vector<QueryTemplate>& templates = AllTemplates();
  QueryGenerator qgen(config.seed);
  PowerTestResult result;
  int to_run = std::min<int>(config.queries_per_stream,
                             static_cast<int>(templates.size()));
  double log_sum = 0.0;
  Stopwatch total_timer;
  for (int k = 0; k < to_run; ++k) {
    const QueryTemplate& tmpl = templates[static_cast<size_t>(k)];
    TPCDS_ASSIGN_OR_RETURN(std::string sql, qgen.Instantiate(tmpl, 0));
    Stopwatch timer;
    TPCDS_ASSIGN_OR_RETURN(QueryResult qr, db->Query(sql, config.planner));
    QueryExecution exec;
    exec.template_id = tmpl.id;
    exec.stream = 0;
    exec.seconds = timer.ElapsedSeconds();
    exec.result_rows = static_cast<int64_t>(qr.rows.size());
    // Guard the geometric mean against sub-microsecond timings.
    log_sum += std::log(std::max(exec.seconds, 1e-6));
    result.queries.push_back(exec);
  }
  result.total_sec = total_timer.ElapsedSeconds();
  if (to_run > 0) {
    result.arithmetic_mean_sec = result.total_sec / to_run;
    result.geometric_mean_sec = std::exp(log_sum / to_run);
  }
  return result;
}

Result<BenchmarkResult> RunBenchmark(const BenchmarkConfig& config,
                                     Database* db) {
  std::unique_ptr<Database> owned;
  if (db == nullptr) {
    owned = std::make_unique<Database>();
    db = owned.get();
  }
  BenchmarkResult result;
  result.scale_factor = config.scale_factor;
  result.streams = config.streams > 0
                       ? config.streams
                       : ScalingModel::MinimumStreams(config.scale_factor);

  // Fig. 11: Database Load Test.
  TPCDS_ASSIGN_OR_RETURN(result.t_load_sec, RunLoadTest(config, db));

  // Query Run 1: streams 1..S.
  TPCDS_ASSIGN_OR_RETURN(
      result.t_qr1_sec,
      RunQueryRun(config, db, /*stream_base=*/1, &result.qr1_queries));

  // Data Maintenance run.
  {
    MaintenanceOptions dm;
    dm.seed = config.seed;
    dm.scale_factor = config.scale_factor;
    dm.refresh_cycle = 1;
    dm.refresh_fraction = config.refresh_fraction;
    dm.dimension_updates = config.dimension_updates;
    Stopwatch timer;
    TPCDS_RETURN_NOT_OK(RunDataMaintenance(db, dm, &result.dm_report));
    result.t_dm_sec = timer.ElapsedSeconds();
  }

  // Query Run 2: streams S+1..2S — fresh substitutions, same templates,
  // now against the refreshed database (exposing any deferred maintenance
  // of auxiliary structures, paper §5.2).
  TPCDS_ASSIGN_OR_RETURN(
      result.t_qr2_sec,
      RunQueryRun(config, db, /*stream_base=*/result.streams + 1,
                  &result.qr2_queries));
  return result;
}

}  // namespace tpcds
