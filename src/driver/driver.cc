#include "driver/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "engine/audit.h"
#include "schema/schema.h"

#include "qgen/qgen.h"
#include "scaling/scaling.h"
#include "templates/templates.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Jittered exponential backoff before retry `attempt` (1-based count of
/// attempts already made): base * 2^(attempt-1), scaled by a jitter in
/// [0.5, 1.5) drawn from the caller's own seeded stream. Each stream owns
/// one RngStream seeded from (config seed, stream id), so its retry
/// schedule is a pure function of its own retry history — deterministic
/// per stream and independent of how other streams interleave.
void BackoffBeforeRetry(double base_ms, int attempt, RngStream* jitter_rng) {
  if (base_ms <= 0.0) return;
  double factor = static_cast<double>(1u << std::min(attempt - 1, 10));
  double jitter = 0.5 + jitter_rng->NextDouble();
  double sleep_ms = base_ms * factor * jitter;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      sleep_ms));
}

/// Seed tag for per-stream retry-jitter streams (distinct from the
/// 777/778/779 qgen permutation tags).
constexpr uint64_t kRetryJitterTag = 781;

/// Merges one query run's service telemetry into the benchmark-level
/// accumulator: monotonic counters sum, high-water marks take the max.
void MergeServiceCounters(ServiceCounters* into, const ServiceCounters& c) {
  into->submitted += c.submitted;
  into->admitted += c.admitted;
  into->queued += c.queued;
  into->completed += c.completed;
  into->failed += c.failed;
  into->shed += c.shed;
  into->rejected_queue_full += c.rejected_queue_full;
  into->rejected_deadline += c.rejected_deadline;
  into->peak_queue_depth = std::max(into->peak_queue_depth,
                                    c.peak_queue_depth);
  into->peak_running = std::max(into->peak_running, c.peak_running);
  into->pool_bytes_in_use =
      std::max(into->pool_bytes_in_use, c.pool_bytes_in_use);
  into->pool_peak_bytes = std::max(into->pool_peak_bytes, c.pool_peak_bytes);
}

}  // namespace

Result<double> RunLoadTest(const BenchmarkConfig& config, Database* db) {
  // Untimed preparation would live here (creating the database instance);
  // the timed portion covers table creation, load and auxiliary
  // structures, per the execution rules.
  Stopwatch timer;
  TPCDS_RETURN_NOT_OK(db->CreateTpcdsTables());
  GeneratorOptions gen;
  gen.scale_factor = config.scale_factor;
  gen.master_seed = config.seed;
  TPCDS_RETURN_NOT_OK(db->LoadTpcdsData(gen));
  // Auxiliary data structures are allowed for the reporting part of the
  // schema (catalog channel, paper §2.2): build join indexes there. Their
  // cost lands in T_Load, which the metric charges at 0.01*S.
  for (const char* table_name : {"catalog_sales", "catalog_returns"}) {
    EngineTable* t = db->FindTable(table_name);
    if (t == nullptr) continue;
    for (size_t c = 0; c < t->num_columns(); ++c) {
      const std::string& name = t->column_meta(c).name;
      if (name.ends_with("_item_sk") || name.ends_with("_date_sk")) {
        t->GetOrBuildIntIndex(static_cast<int>(c));
      }
    }
  }
  // "Define and validate constraints" is part of the timed load (§5.2).
  TPCDS_ASSIGN_OR_RETURN(AuditReport audit,
                         ValidateConstraints(db, TpcdsSchema()));
  if (audit.TotalViolations() != 0) {
    return Status::Internal(
        "constraint validation failed during load:\n" + audit.ToString());
  }
  return timer.ElapsedSeconds();
}

Result<double> RunQueryRun(const BenchmarkConfig& config, Database* db,
                           int stream_base,
                           std::vector<QueryExecution>* executions,
                           FailureReport* failures,
                           const std::string& phase,
                           const DataFacadeProvider* provider,
                           ServiceCounters* service_counters,
                           std::vector<double>* latencies_ms) {
  const std::vector<QueryTemplate>& templates = AllTemplates();
  QueryGenerator qgen(config.seed);
  int streams = config.streams > 0
                    ? config.streams
                    : ScalingModel::MinimumStreams(config.scale_factor);
  int max_attempts = std::max(1, config.max_query_attempts);
  // A non-classical bind profile switches the stream from the fixed
  // template permutation to the profile-driven sequence (mix weights,
  // session chains) with skewed substitution draws. The default profile
  // keeps this false and the run byte-identical to the classical path.
  const BindProfile& bind = config.profile.bind;
  bool profiled =
      !bind.uniform() || bind.chain_length > 1 ||
      !(bind.adhoc_weight == bind.reporting_weight &&
        bind.hybrid_weight == bind.adhoc_weight);

  // The service the run's streams submit through. Defaults preserve the
  // classical execution rules (every stream always runs: one worker slot
  // per stream, unbounded queue, no pool cap, no deadline); the
  // config.service_* knobs turn on real admission control.
  ServiceConfig svc;
  svc.worker_slots = config.service_worker_slots > 0
                         ? config.service_worker_slots
                         : streams;
  svc.max_queue_depth = config.service_queue_depth;
  svc.global_memory_budget_bytes = config.service_memory_budget_bytes;
  svc.default_deadline_ms = config.service_deadline_ms;
  svc.planner = config.planner;
  svc.default_limits.timeout_ms = config.planner.timeout_ms;
  svc.default_limits.memory_budget_bytes = config.planner.memory_budget_bytes;
  svc.default_limits.row_budget = config.planner.row_budget;

  std::mutex mu;
  Status first_error;
  Stopwatch timer;
  {
    // With a provider, every admitted statement acquires the published
    // facade and pins it for the query's whole lifetime — QR2 can overlap
    // data maintenance's generation swaps. Otherwise the service pins one
    // snapshot of the (read-only during a query run) live database.
    std::unique_ptr<QueryService> service =
        provider != nullptr
            ? std::make_unique<QueryService>(svc, provider)
            : std::make_unique<QueryService>(svc, *db);
    // S real client threads, one session each — a genuine multi-stream
    // run, not a simulated one: every stream is a concurrent client of
    // the shared service.
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(streams));
    for (int s = 0; s < streams; ++s) {
      int stream_id = stream_base + s;
      SessionOptions session_options;
      session_options.tenant = "stream-" + std::to_string(stream_id);
      if (config.service_priority_spread > 0) {
        session_options.priority =
            stream_id % config.service_priority_spread;
      }
      Session session = service->OpenSession(session_options);
      clients.emplace_back([&, stream_id, session] {
        // Classical path: family-aware order — iterative-OLAP drill
        // sequences run as contiguous sessions inside the stream (paper
        // §4.1). Profiled path: the mix-weighted sequence, with session
        // chains expanded in place.
        std::vector<ProfileSlot> slots;
        if (profiled) {
          slots = qgen.ProfileSequence(stream_id, templates, bind,
                                       config.queries_per_stream);
        } else {
          std::vector<int> order =
              qgen.StreamPermutation(stream_id, templates);
          int to_run = std::min<int>(config.queries_per_stream,
                                     static_cast<int>(order.size()));
          for (int k = 0; k < to_run; ++k) {
            slots.push_back(
                ProfileSlot{order[static_cast<size_t>(k)], -1, 0});
          }
        }
        RngStream retry_rng(DeriveSeed(config.seed, kRetryJitterTag,
                                       static_cast<uint64_t>(stream_id)));
        for (const ProfileSlot& slot : slots) {
          const QueryTemplate& tmpl =
              templates[static_cast<size_t>(slot.template_index)];
          Result<std::string> sql =
              qgen.Instantiate(tmpl, stream_id, /*iteration=*/0,
                               profiled ? &bind : nullptr, slot.chain_step);
          if (!sql.ok()) {
            // Instantiation is deterministic — retrying cannot help.
            std::lock_guard<std::mutex> lock(mu);
            if (failures != nullptr) {
              failures->failures.push_back(QueryFailure{
                  tmpl.id, stream_id, 1, phase, sql.status().message()});
              continue;
            }
            if (first_error.ok()) first_error = sql.status();
            return;
          }
          // Stream isolation: transient failures (injected faults, budget
          // trips, a shed or backpressured submission) are retried with
          // backoff — exactly what a client should do on
          // kResourceExhausted; an exhausted retry budget lands in the
          // FailureReport and the stream moves to its next query — no
          // failure stops another stream.
          auto run_query = [&]() -> Result<QueryResult> {
            QueryOutcome out = session.Execute(*sql);
            if (out.disposition == QueryDisposition::kCompleted) {
              return std::move(out.result);
            }
            return out.status;
          };
          Stopwatch query_timer;
          Result<QueryResult> result = run_query();
          int attempts = 1;
          while (!result.ok() && failures != nullptr &&
                 attempts < max_attempts) {
            BackoffBeforeRetry(config.retry_backoff_ms, attempts,
                               &retry_rng);
            result = run_query();
            ++attempts;
          }
          if (!result.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (failures != nullptr) {
              failures->total_retries += attempts - 1;
              failures->failures.push_back(
                  QueryFailure{tmpl.id, stream_id, attempts, phase,
                               result.status().message()});
              continue;
            }
            if (first_error.ok()) {
              first_error = Status(
                  result.status().code(),
                  tmpl.name + " (stream " + std::to_string(stream_id) +
                      "): " + result.status().message());
            }
            return;
          }
          QueryExecution exec;
          exec.template_id = tmpl.id;
          exec.stream = stream_id;
          exec.seconds = query_timer.ElapsedSeconds();
          exec.result_rows = static_cast<int64_t>(result->rows.size());
          exec.attempts = attempts;
          std::lock_guard<std::mutex> lock(mu);
          if (failures != nullptr) failures->total_retries += attempts - 1;
          executions->push_back(exec);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    if (service_counters != nullptr) {
      MergeServiceCounters(service_counters, service->Counters());
    }
    if (latencies_ms != nullptr) {
      std::vector<double> lat = service->CompletedLatenciesMs();
      latencies_ms->insert(latencies_ms->end(), lat.begin(), lat.end());
    }
  }
  TPCDS_RETURN_NOT_OK(first_error);
  return timer.ElapsedSeconds();
}

Result<PowerTestResult> RunPowerTest(const BenchmarkConfig& config,
                                     Database* db) {
  const std::vector<QueryTemplate>& templates = AllTemplates();
  QueryGenerator qgen(config.seed);
  PowerTestResult result;
  int to_run = std::min<int>(config.queries_per_stream,
                             static_cast<int>(templates.size()));
  double log_sum = 0.0;
  Stopwatch total_timer;
  for (int k = 0; k < to_run; ++k) {
    const QueryTemplate& tmpl = templates[static_cast<size_t>(k)];
    TPCDS_ASSIGN_OR_RETURN(std::string sql, qgen.Instantiate(tmpl, 0));
    Stopwatch timer;
    TPCDS_ASSIGN_OR_RETURN(QueryResult qr, db->Query(sql, config.planner));
    QueryExecution exec;
    exec.template_id = tmpl.id;
    exec.stream = 0;
    exec.seconds = timer.ElapsedSeconds();
    exec.result_rows = static_cast<int64_t>(qr.rows.size());
    // Guard the geometric mean against sub-microsecond timings.
    log_sum += std::log(std::max(exec.seconds, 1e-6));
    result.queries.push_back(exec);
  }
  result.total_sec = total_timer.ElapsedSeconds();
  if (to_run > 0) {
    result.arithmetic_mean_sec = result.total_sec / to_run;
    result.geometric_mean_sec = std::exp(log_sum / to_run);
  }
  return result;
}

Result<BenchmarkResult> RunBenchmark(const BenchmarkConfig& config,
                                     Database* db) {
  std::unique_ptr<Database> owned;
  if (db == nullptr) {
    owned = std::make_unique<Database>();
    db = owned.get();
  } else if (!db->TableNames().empty()) {
    // The benchmark owns the timed load (Fig. 11); running it against a
    // pre-loaded database would double-load tables, corrupt T_Load, and
    // desynchronise the refresh bookkeeping. Fail fast instead of
    // producing a silently invalid result.
    return Status::InvalidArgument(StringPrintf(
        "RunBenchmark requires an empty database, but %zu table(s) already "
        "exist; pass a fresh Database (or nullptr to use an internal one)",
        db->TableNames().size()));
  }
  BenchmarkResult result;
  result.scale_factor = config.scale_factor;
  result.streams = config.streams > 0
                       ? config.streams
                       : ScalingModel::MinimumStreams(config.scale_factor);
  result.workload_profile = config.profile.ToString();
  int max_attempts = std::max(1, config.max_query_attempts);

  // Fig. 11: Database Load Test.
  TPCDS_ASSIGN_OR_RETURN(result.t_load_sec, RunLoadTest(config, db));

  // Durability: checkpoint the freshly loaded state. A failed checkpoint
  // is recorded (phase "checkpoint") and recovery is skipped later; the
  // benchmark itself proceeds — durability is an overlay on Fig. 11, not
  // one of its timed intervals.
  if (!config.checkpoint_dir.empty()) {
    Stopwatch ckpt_timer;
    Status saved = db->SaveCheckpoint(config.checkpoint_dir);
    result.t_checkpoint_sec = ckpt_timer.ElapsedSeconds();
    if (saved.ok()) {
      result.checkpoint_taken = true;
    } else {
      result.failures.failures.push_back(
          QueryFailure{0, -1, 1, "checkpoint", saved.message()});
    }
  }

  // Query Run 1: streams 1..S.
  TPCDS_ASSIGN_OR_RETURN(
      result.t_qr1_sec,
      RunQueryRun(config, db, /*stream_base=*/1, &result.qr1_queries,
                  &result.failures, "qr1", /*provider=*/nullptr,
                  &result.service, &result.service_latencies_ms));

  // Data Maintenance run — always via the copy-on-write generation path:
  // the workload mutates a forked build generation and publishes it with
  // one atomic table-map swap. Without a WAL, a failed run discards the
  // fork (the live database never sees partial state), so each retry
  // starts from a clean slate; an exhausted retry budget is recorded
  // (phase "dm") and the benchmark proceeds to Query Run 2 against the
  // un-refreshed data — reported, not metric-valid. With a WAL attached,
  // operations commit individually, the committed prefix IS published,
  // and the run is NOT retried: a retry would re-apply committed
  // operations, and the crash-consistent state (the committed prefix) is
  // exactly what the recovery phase verifies.
  result.generation_before = db->generation();
  MaintenanceOptions dm;
  dm.seed = config.seed;
  dm.scale_factor = config.scale_factor;
  dm.refresh_cycle = 1;
  dm.refresh_fraction = config.refresh_fraction;
  dm.dimension_updates = config.dimension_updates;

  struct DmOutcome {
    double seconds = 0.0;
    std::vector<QueryFailure> failures;
    int64_t retries = 0;
  };
  // Runs the whole DM phase (WAL handling, retries, timing) and returns
  // its outcome by value — callable from a worker thread without touching
  // `result` (RunQueryRun pushes into result.failures concurrently).
  auto run_dm_phase = [&](DataFacadeProvider* provider) -> DmOutcome {
    DmOutcome out;
    WalWriter wal;
    WalWriter* wal_ptr = nullptr;
    if (!config.wal_path.empty()) {
      Status opened = wal.Open(config.wal_path);
      if (opened.ok()) {
        wal_ptr = &wal;
      } else {
        out.failures.push_back(
            QueryFailure{0, -1, 1, "wal", opened.message()});
      }
    }
    Stopwatch timer;
    // Read/refresh duty cycle (overlap mode only): instead of the single
    // DM run, fire maintenance generations on the profile's cadence
    // while the concurrent query streams keep reading through the
    // provider's facade swaps. Cycle failures are recorded, not retried:
    // each firing is its own generation, and the next one proceeds.
    if (provider != nullptr && config.profile.refresh_period_ms > 0.0) {
      int cycles = std::max(1, config.profile.max_refresh_cycles);
      DutyCycleReport duty;
      Status status = RunRefreshDutyCycle(
          db, dm, cycles, config.profile.refresh_period_ms, &duty, wal_ptr,
          provider);
      for (MaintenanceOpResult& op : duty.operations.operations) {
        result.dm_report.operations.push_back(std::move(op));
      }
      for (const std::string& err : duty.errors) {
        out.failures.push_back(QueryFailure{0, -1, 1, "dm", err});
      }
      if (!status.ok()) {
        out.failures.push_back(
            QueryFailure{0, -1, 1, "dm", status.message()});
      }
      if (wal_ptr != nullptr) {
        Status closed = wal.Close();
        if (!closed.ok()) {
          out.failures.push_back(
              QueryFailure{0, -1, 1, "wal", closed.message()});
        }
      }
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
    Status status =
        RunMaintenanceGeneration(db, dm, &result.dm_report, wal_ptr,
                                 provider);
    if (wal_ptr == nullptr) {
      RngStream dm_retry_rng(
          DeriveSeed(config.seed, kRetryJitterTag, 0xD11Dull));
      int attempts = 1;
      while (!status.ok() && attempts < max_attempts) {
        BackoffBeforeRetry(config.retry_backoff_ms, attempts,
                           &dm_retry_rng);
        status = RunMaintenanceGeneration(db, dm, &result.dm_report,
                                          nullptr, provider);
        ++attempts;
      }
      out.retries += attempts - 1;
      if (!status.ok()) {
        out.failures.push_back(
            QueryFailure{0, -1, attempts, "dm", status.message()});
      }
    } else {
      if (!status.ok()) {
        out.failures.push_back(
            QueryFailure{0, -1, 1, "dm", status.message()});
      }
      Status closed = wal.Close();
      if (!closed.ok() && status.ok()) {
        out.failures.push_back(
            QueryFailure{0, -1, 1, "wal", closed.message()});
      }
    }
    out.seconds = timer.ElapsedSeconds();
    return out;
  };

  // Query Run 2: streams S+1..2S — fresh substitutions, same templates,
  // against the refreshed database (exposing any deferred maintenance of
  // auxiliary structures, paper §5.2). In overlap mode, QR2 runs
  // concurrently with data maintenance: every query acquires the current
  // generation from the provider (early queries see the pre-swap data,
  // queries after the atomic publish see the refreshed data — each pins
  // exactly one generation), while the DM thread forks, mutates and
  // publishes. The live Database object is only touched from the DM
  // thread during the overlap.
  if (config.overlap_dm_qr2) {
    DataFacadeProvider provider;
    provider.Publish(db->Snapshot());
    DmOutcome dm_out;
    Result<double> qr2 = 0.0;
    {
      std::thread dm_thread([&] { dm_out = run_dm_phase(&provider); });
      qr2 = RunQueryRun(config, db, /*stream_base=*/result.streams + 1,
                        &result.qr2_queries, &result.failures, "qr2",
                        &provider, &result.service,
                        &result.service_latencies_ms);
      dm_thread.join();
    }
    result.t_dm_sec = dm_out.seconds;
    result.failures.total_retries += dm_out.retries;
    for (QueryFailure& f : dm_out.failures) {
      result.failures.failures.push_back(std::move(f));
    }
    TPCDS_ASSIGN_OR_RETURN(result.t_qr2_sec, qr2);
  } else {
    DmOutcome dm_out = run_dm_phase(nullptr);
    result.t_dm_sec = dm_out.seconds;
    result.failures.total_retries += dm_out.retries;
    for (QueryFailure& f : dm_out.failures) {
      result.failures.failures.push_back(std::move(f));
    }
    TPCDS_ASSIGN_OR_RETURN(
        result.t_qr2_sec,
        RunQueryRun(config, db, /*stream_base=*/result.streams + 1,
                    &result.qr2_queries, &result.failures, "qr2",
                    /*provider=*/nullptr, &result.service,
                    &result.service_latencies_ms));
  }
  result.generation_after = db->generation();
  result.generation_swaps =
      static_cast<int>(result.generation_after - result.generation_before);

  // Recovery phase: rebuild a second database from checkpoint + WAL and
  // verify byte-identity with the live one. This is the paper-adjacent
  // "crash-point recovery" check — the recovered state must equal an
  // in-memory database that applied the same committed operations. Query
  // runs are read-only, so verifying after QR2 checks the same state.
  if (config.recover_verify && result.checkpoint_taken) {
    Database recovered;
    Result<RecoveryReport> rec =
        Recover(&recovered, config.checkpoint_dir, config.wal_path);
    if (!rec.ok()) {
      result.failures.failures.push_back(
          QueryFailure{0, -1, 1, "recovery", rec.status().message()});
    } else {
      result.recovery_ran = true;
      result.recovery = *rec;
      result.recovery_verified =
          HashDatabaseContent(recovered) == HashDatabaseContent(*db);
      if (!result.recovery_verified) {
        result.failures.failures.push_back(QueryFailure{
            0, -1, 1, "recovery",
            "recovered database is not byte-identical to the live one"});
      }
    }
  }
  return result;
}

}  // namespace tpcds
