#include "driver/profile.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace tpcds {
namespace {

const char* kKnownPresets =
    "uniform, hot-skew, reporting, adhoc, chains, refresh-duty";

Status ParseDouble(const std::string& value, const std::string& context,
                   double* out) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric value in profile override: " +
                                   context);
  }
  *out = v;
  return Status::OK();
}

Status ParseInt(const std::string& value, const std::string& context,
                long long* out) {
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer value in profile override: " +
                                   context);
  }
  *out = v;
  return Status::OK();
}

Status ApplyOverride(WorkloadProfile* profile, const std::string& key,
                     const std::string& value, const std::string& context) {
  if (key == "theta") {
    double v = 0.0;
    Status st = ParseDouble(value, context, &v);
    if (!st.ok()) return st;
    if (v < 0.0 || v >= 1.0) {
      return Status::InvalidArgument("theta must be in [0, 1): " + context);
    }
    profile->bind.zipf_theta = v;
    return Status::OK();
  }
  if (key == "hot_dates") {
    if (value == "1" || value == "true") {
      profile->bind.hot_dates = true;
    } else if (value == "0" || value == "false") {
      profile->bind.hot_dates = false;
    } else {
      return Status::InvalidArgument("hot_dates must be 0/1: " + context);
    }
    return Status::OK();
  }
  if (key == "adhoc" || key == "reporting" || key == "hybrid") {
    double v = 0.0;
    Status st = ParseDouble(value, context, &v);
    if (!st.ok()) return st;
    if (v < 0.0) {
      return Status::InvalidArgument("mix weights must be >= 0: " + context);
    }
    if (key == "adhoc") profile->bind.adhoc_weight = v;
    if (key == "reporting") profile->bind.reporting_weight = v;
    if (key == "hybrid") profile->bind.hybrid_weight = v;
    return Status::OK();
  }
  if (key == "chain") {
    long long v = 0;
    Status st = ParseInt(value, context, &v);
    if (!st.ok()) return st;
    if (v < 1) {
      return Status::InvalidArgument("chain must be >= 1: " + context);
    }
    profile->bind.chain_length = static_cast<int>(v);
    return Status::OK();
  }
  if (key == "refresh_ms") {
    double v = 0.0;
    Status st = ParseDouble(value, context, &v);
    if (!st.ok()) return st;
    if (v < 0.0) {
      return Status::InvalidArgument("refresh_ms must be >= 0: " + context);
    }
    profile->refresh_period_ms = v;
    return Status::OK();
  }
  if (key == "refresh_cycles") {
    long long v = 0;
    Status st = ParseInt(value, context, &v);
    if (!st.ok()) return st;
    if (v < 0) {
      return Status::InvalidArgument("refresh_cycles must be >= 0: " +
                                     context);
    }
    profile->max_refresh_cycles = static_cast<int>(v);
    return Status::OK();
  }
  if (key == "salt") {
    char* end = nullptr;
    profile->bind.seed_salt =
        static_cast<uint64_t>(std::strtoull(value.c_str(), &end, 10));
    if (end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad salt value: " + context);
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown profile override '" + key +
      "' (known: theta, hot_dates, adhoc, reporting, hybrid, chain, "
      "refresh_ms, refresh_cycles, salt)");
}

}  // namespace

Result<WorkloadProfile> WorkloadProfile::Preset(const std::string& name) {
  WorkloadProfile p;
  p.name = name;
  if (name == "uniform") return p;
  if (name == "hot-skew") {
    p.bind.zipf_theta = 0.8;
    p.bind.hot_dates = true;
    return p;
  }
  if (name == "reporting") {
    p.bind.reporting_weight = 4.0;
    return p;
  }
  if (name == "adhoc") {
    p.bind.adhoc_weight = 4.0;
    return p;
  }
  if (name == "chains") {
    p.bind.chain_length = 4;
    return p;
  }
  if (name == "refresh-duty") {
    p.refresh_period_ms = 25.0;
    p.max_refresh_cycles = 4;
    return p;
  }
  return Status::InvalidArgument("unknown workload profile '" + name +
                                 "' (known: " + std::string(kKnownPresets) +
                                 ")");
}

Result<WorkloadProfile> WorkloadProfile::Parse(const std::string& spec) {
  std::string text(Trim(spec));
  if (StartsWith(text, "@")) {
    std::ifstream in(text.substr(1));
    if (!in) {
      return Status::NotFound("cannot read profile file: " + text.substr(1));
    }
    std::string joined;
    std::string line;
    while (std::getline(in, line)) {
      std::string_view t = Trim(line);
      if (t.empty() || t[0] == '#') continue;
      if (!joined.empty()) joined += ",";
      joined += std::string(t);
    }
    text = joined;
  }
  std::vector<std::string> parts = Split(text, ',');
  if (parts.empty() || Trim(parts[0]).empty()) {
    return Status::InvalidArgument("empty workload profile spec");
  }
  Result<WorkloadProfile> preset = Preset(std::string(Trim(parts[0])));
  if (!preset.ok()) return preset.status();
  WorkloadProfile profile = *preset;
  for (size_t i = 1; i < parts.size(); ++i) {
    std::string override_text(Trim(parts[i]));
    if (override_text.empty()) continue;
    size_t eq = override_text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("profile override missing '=': " +
                                     override_text);
    }
    Status st = ApplyOverride(&profile,
                              std::string(Trim(override_text.substr(0, eq))),
                              std::string(Trim(override_text.substr(eq + 1))),
                              override_text);
    if (!st.ok()) return st;
  }
  return profile;
}

std::string WorkloadProfile::ToString() const {
  // Canonical form: preset name plus every override off that preset.
  Result<WorkloadProfile> base_result = Preset(name);
  WorkloadProfile base =
      base_result.ok() ? *base_result : WorkloadProfile{};
  std::ostringstream out;
  out << name;
  if (bind.zipf_theta != base.bind.zipf_theta) {
    out << ",theta=" << bind.zipf_theta;
  }
  if (bind.hot_dates != base.bind.hot_dates) {
    out << ",hot_dates=" << (bind.hot_dates ? 1 : 0);
  }
  if (bind.adhoc_weight != base.bind.adhoc_weight) {
    out << ",adhoc=" << bind.adhoc_weight;
  }
  if (bind.reporting_weight != base.bind.reporting_weight) {
    out << ",reporting=" << bind.reporting_weight;
  }
  if (bind.hybrid_weight != base.bind.hybrid_weight) {
    out << ",hybrid=" << bind.hybrid_weight;
  }
  if (bind.chain_length != base.bind.chain_length) {
    out << ",chain=" << bind.chain_length;
  }
  if (refresh_period_ms != base.refresh_period_ms) {
    out << ",refresh_ms=" << refresh_period_ms;
  }
  if (max_refresh_cycles != base.max_refresh_cycles) {
    out << ",refresh_cycles=" << max_refresh_cycles;
  }
  if (bind.seed_salt != base.bind.seed_salt) {
    out << ",salt=" << bind.seed_salt;
  }
  return out.str();
}

}  // namespace tpcds
