#ifndef TPCDS_DRIVER_DRIVER_H_
#define TPCDS_DRIVER_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "driver/profile.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "maintenance/maintenance.h"
#include "metric/metric.h"
#include "service/service.h"
#include "util/result.h"

namespace tpcds {

/// Configuration of a full benchmark execution (paper §5.2, Fig. 11):
/// load test -> Query Run 1 -> Data Maintenance -> Query Run 2.
struct BenchmarkConfig {
  double scale_factor = 0.01;
  /// Concurrent query streams; 0 selects the scale factor's minimum
  /// (paper Fig. 12).
  int streams = 0;
  uint64_t seed = 19620718;
  PlannerOptions planner;
  /// Queries per stream per run; the full benchmark runs all 99, smaller
  /// values give quick development runs (not metric-valid).
  int queries_per_stream = kQueriesPerRun;
  /// Refresh volume of the data-maintenance run.
  double refresh_fraction = 0.01;
  int64_t dimension_updates = 50;
  /// Stream isolation: attempts per work item (query or maintenance run)
  /// before it is recorded in the FailureReport. 1 = no retries.
  int max_query_attempts = 3;
  /// Base of the jittered exponential backoff between attempts
  /// (base * 2^(attempt-1), scaled by a deterministic jitter in [0.5, 1.5)).
  double retry_backoff_ms = 10.0;
  /// Durability mode. With a checkpoint directory, the loaded database is
  /// checkpointed right after the load test. With a WAL path, the data
  /// maintenance run writes through a WAL — each refresh operation commits
  /// individually, and the run is NOT retried on failure (a retry would
  /// re-apply committed operations; the crash-consistent state is what
  /// recovery replays). Empty strings turn both off.
  std::string checkpoint_dir;
  std::string wal_path;
  /// After data maintenance, recover a second database from checkpoint +
  /// WAL and verify it is byte-identical (content hash) to the live one.
  /// Requires checkpoint_dir; the result is recorded in the report.
  bool recover_verify = false;
  /// Overlap Query Run 2 with Data Maintenance. DM builds a copy-on-write
  /// generation off the main thread and publishes it with one atomic swap;
  /// QR2 streams acquire their facade per query from the provider, so each
  /// query reads exactly one generation (pre- or post-swap, never a mix).
  /// T_QR2 and T_DM then measure concurrent wall-clock intervals.
  bool overlap_dm_qr2 = false;
  /// Query-service admission control for the query runs. Every query run
  /// routes its S streams through a QueryService: S real client threads,
  /// each opening its own session and submitting statements that a
  /// bounded worker pool multiplexes onto the executor. The defaults keep
  /// the classical execution-rules behaviour — one worker slot per
  /// stream, an unbounded admission queue, no global memory pool — so
  /// admission only queues/sheds/rejects when these are tightened.
  int service_worker_slots = 0;             // 0 = one slot per stream
  size_t service_queue_depth = 0;           // 0 = unbounded
  int64_t service_memory_budget_bytes = 0;  // 0 = no global pool cap
  double service_deadline_ms = 0.0;  // end-to-end per statement; 0 = none
  /// Spread streams over N priority classes (stream % N); 0 = all equal.
  /// Priorities only matter under overload (a full queue sheds the
  /// newest strictly-lower-priority waiter), so the default changes
  /// nothing in classical runs.
  int service_priority_spread = 0;
  /// Workload profile (see driver/profile.h): bind-variable skew,
  /// template mix ratios, session chains and the read/refresh duty
  /// cycle. The default ("uniform") reproduces the classical benchmark
  /// byte for byte. A refresh duty cycle only takes effect with
  /// overlap_dm_qr2 (the classical serialized DM phase has no live
  /// streams to interleave with).
  WorkloadProfile profile;
};

/// One executed query instance.
struct QueryExecution {
  int template_id = 0;
  int stream = 0;
  double seconds = 0.0;
  int64_t result_rows = 0;
  int attempts = 1;  // attempts needed to succeed, including the first
};

/// Everything measured during one benchmark execution.
struct BenchmarkResult {
  double scale_factor = 0.0;
  int streams = 0;
  double t_load_sec = 0.0;
  double t_qr1_sec = 0.0;
  double t_dm_sec = 0.0;
  double t_qr2_sec = 0.0;
  std::vector<QueryExecution> qr1_queries;
  std::vector<QueryExecution> qr2_queries;
  MaintenanceReport dm_report;
  /// Work items that exhausted their retries, per phase. Failures no
  /// longer abort the run: the failing stream records and proceeds.
  FailureReport failures;
  /// Durability phases (populated only when the config enables them).
  bool checkpoint_taken = false;
  double t_checkpoint_sec = 0.0;
  bool recovery_ran = false;
  bool recovery_verified = false;
  RecoveryReport recovery;
  /// Generation bookkeeping (facade hot-swap): generation ids before and
  /// after data maintenance and the number of atomic swaps published.
  uint64_t generation_before = 0;
  uint64_t generation_after = 0;
  int generation_swaps = 0;
  /// Query-service telemetry merged over both query runs (counters sum;
  /// peaks take the max) plus every completed statement's client-observed
  /// latency, for the report's p50/p95/p99.
  ServiceCounters service;
  std::vector<double> service_latencies_ms;
  /// Canonical spec of the workload profile the run executed under.
  std::string workload_profile;

  MetricInputs ToMetricInputs() const {
    MetricInputs in;
    in.workload_profile = workload_profile;
    in.scale_factor = scale_factor;
    in.streams = streams;
    in.t_load_sec = t_load_sec;
    in.t_qr1_sec = t_qr1_sec;
    in.t_dm_sec = t_dm_sec;
    in.t_qr2_sec = t_qr2_sec;
    in.failed_queries = static_cast<int>(failures.failures.size());
    in.recovery_phases = (checkpoint_taken ? 1 : 0) + (recovery_ran ? 1 : 0);
    in.t_checkpoint_sec = t_checkpoint_sec;
    in.t_recovery_sec = recovery.seconds;
    in.recovery_verified = recovery_verified;
    in.generation_swaps = generation_swaps;
    in.final_generation = generation_after;
    in.service_used = service.submitted > 0;
    in.service_submitted = service.submitted;
    in.service_admitted = service.admitted;
    in.service_queued = service.queued;
    in.service_completed = service.completed;
    in.service_failed = service.failed;
    in.service_shed = service.shed;
    in.service_rejected_queue_full = service.rejected_queue_full;
    in.service_rejected_deadline = service.rejected_deadline;
    LatencySummary lat = SummarizeLatenciesMs(service_latencies_ms);
    in.latency_p50_ms = lat.p50_ms;
    in.latency_p95_ms = lat.p95_ms;
    in.latency_p99_ms = lat.p99_ms;
    in.latency_count = lat.count;
    return in;
  }
};

/// Runs the complete benchmark on a fresh in-process database. When `db`
/// is supplied it must be empty (RunBenchmark owns the timed load;
/// pre-loaded tables would corrupt T_Load and the refresh bookkeeping) —
/// a non-empty database fails fast with InvalidArgument. The caller keeps
/// access to the loaded database afterwards; otherwise an internal one is
/// used and discarded.
Result<BenchmarkResult> RunBenchmark(const BenchmarkConfig& config,
                                     Database* db = nullptr);

/// The timed database-load test alone (paper §5.2): table creation, data
/// generation + load, auxiliary index build for the reporting part.
Result<double> RunLoadTest(const BenchmarkConfig& config, Database* db);

/// One query run: S streams, each executing its own permutation of the 99
/// templates with stream-specific substitutions. `stream_base` offsets the
/// stream ids so Query Run 2 uses different substitutions than Run 1.
///
/// The run routes through a QueryService: S real client threads, one
/// session each, submit their statements to a worker pool behind
/// admission control (config.service_* tunes slots / queue depth / global
/// memory pool / per-tenant deadline). With a non-null
/// `service_counters` / `latencies_ms` the run's admission telemetry and
/// completed-statement latencies are merged into them.
///
/// With a non-null `failures`, failed queries are retried up to
/// config.max_query_attempts times with jittered exponential backoff and
/// then recorded under `phase` while the stream moves on — no failure
/// stops another stream. With a null `failures` the legacy behaviour
/// holds: the first error aborts the run.
///
/// With a non-null `provider`, every query acquires the currently
/// published facade generation from it instead of snapshotting `db` —
/// this is how QR2 runs safely while data maintenance swaps generations
/// underneath it (each query pins exactly one generation for its whole
/// execution).
Result<double> RunQueryRun(const BenchmarkConfig& config, Database* db,
                           int stream_base,
                           std::vector<QueryExecution>* executions,
                           FailureReport* failures = nullptr,
                           const std::string& phase = "qr",
                           const DataFacadeProvider* provider = nullptr,
                           ServiceCounters* service_counters = nullptr,
                           std::vector<double>* latencies_ms = nullptr);

/// Outcome of the historical single-user "power test" that TPC-DS
/// deliberately dropped (paper §5.3): queries run sequentially and the
/// metric is a geometric mean of elapsed times.
struct PowerTestResult {
  double arithmetic_mean_sec = 0.0;
  double geometric_mean_sec = 0.0;
  double total_sec = 0.0;
  std::vector<QueryExecution> queries;
};

/// Runs the legacy TPC-H-style power test on an already loaded database —
/// kept for the §5.3 comparison (geometric vs. arithmetic weighting), not
/// part of the TPC-DS metric.
Result<PowerTestResult> RunPowerTest(const BenchmarkConfig& config,
                                     Database* db);

}  // namespace tpcds

#endif  // TPCDS_DRIVER_DRIVER_H_
