#ifndef TPCDS_DRIVER_PROFILE_H_
#define TPCDS_DRIVER_PROFILE_H_

#include <string>

#include "qgen/qgen.h"
#include "util/result.h"

namespace tpcds {

/// A named, tunable workload profile (the DWEB idea from PAPERS.md applied
/// to TPC-DS): bind-variable skew, template mix ratios, session-chain
/// behaviour, and the read/refresh duty cycle are all parameters instead
/// of the single fixed uniform loop. Profiles are what the chaos drills
/// iterate over — each scenario class gets its own throughput/tail gates.
///
/// Presets (Preset() / the `-profile` flag):
///
///   uniform       the classical benchmark behaviour (all defaults)
///   hot-skew      Zipf theta 0.8 value draws + hot recent date ranges
///   reporting     reporting templates drawn 4x as often as ad-hoc/hybrid
///   adhoc         ad-hoc templates drawn 4x as often
///   chains        iterative-OLAP sessions: every pick becomes a 4-step
///                 chain that tightens its IN-list predicate per step
///   refresh-duty  maintenance generations fire on a 25 ms cadence (up to
///                 4 cycles) while client streams stay live via facade
///                 hot-swaps
///
/// Spec grammar (Parse() / flags / config file):
///
///   spec   := preset ("," override)*  |  "@" path
///   override := key "=" value, key in {theta, hot_dates, adhoc,
///               reporting, hybrid, chain, refresh_ms, refresh_cycles,
///               salt}
///
/// "@path" reads the same spec text from a file ('#' comments and
/// newlines allowed). Example: "hot-skew,theta=0.95,chain=3".
struct WorkloadProfile {
  std::string name = "uniform";
  /// Bind-variable skew / mix / chain parameters, fed to the query
  /// generator (QueryGenerator::Instantiate / ProfileSequence).
  BindProfile bind;
  /// Read/refresh duty cycle: > 0 fires RunMaintenanceGeneration every
  /// period while query streams stay live (drill runner / duty-cycle
  /// loop); 0 keeps the classical serialized DM phase.
  double refresh_period_ms = 0.0;
  /// Upper bound on duty-cycle refresh generations (0 = none).
  int max_refresh_cycles = 0;

  /// True when the profile changes nothing over the classical run.
  bool classical() const {
    return bind.uniform() && bind.adhoc_weight == bind.reporting_weight &&
           bind.hybrid_weight == bind.adhoc_weight && bind.chain_length <= 1 &&
           refresh_period_ms <= 0.0;
  }

  /// The named preset, or InvalidArgument listing the known names.
  static Result<WorkloadProfile> Preset(const std::string& name);

  /// Parses "preset[,key=value...]" or "@file" (see grammar above).
  static Result<WorkloadProfile> Parse(const std::string& spec);

  /// Canonical spec string: name plus every non-default override.
  std::string ToString() const;
};

}  // namespace tpcds

#endif  // TPCDS_DRIVER_PROFILE_H_
