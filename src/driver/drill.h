#ifndef TPCDS_DRIVER_DRILL_H_
#define TPCDS_DRIVER_DRILL_H_

#include <string>
#include <vector>

#include "driver/driver.h"
#include "util/fault.h"

namespace tpcds {

/// One chaos drill: a workload profile executed under a time-phased fault
/// schedule, followed by the standing invariant checks. config.base
/// carries everything the benchmark needs (scale, streams, seed, the
/// profile, service admission knobs); checkpoint_dir and wal_path are
/// both required — the recovery invariant replays the WAL over the
/// checkpoint and demands byte identity with the live state.
struct DrillConfig {
  BenchmarkConfig base;
  ChaosSchedule schedule;
};

/// Everything one drill measured and verified. A drill "passes" when all
/// standing invariants hold — faults firing, queries failing and cycles
/// crashing are all expected; what must never happen is a lost query, a
/// leaked reservation, an unbounded retry storm, or a recovered state
/// that differs from the live one.
struct DrillResult {
  std::string profile;   // canonical profile spec
  std::string schedule;  // canonical schedule spec

  double t_load_sec = 0.0;
  double t_drill_sec = 0.0;  // concurrent query + duty-cycle interval
  int streams = 0;
  int queries_expected = 0;

  std::vector<QueryExecution> executions;
  FailureReport failures;
  ServiceCounters counters;
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  int refresh_cycles_attempted = 0;
  int refresh_cycles_failed = 0;
  int64_t faults_fired = 0;       // across all sites, rules + windows
  std::string schedule_report;    // per-window calls/fired lines

  // Standing invariants.
  bool counters_balanced = false;   // no lost queries in the service
  bool pool_drained = false;        // global memory pool back to zero
  bool no_lost_queries = false;     // every expected query accounted for
  bool retries_bounded = false;     // total retries within the budget
  bool recovery_ran = false;
  bool recovery_verified = false;   // recovered hash == live hash
  bool audit_clean = false;         // FK/PK/SCD constraints on recovered db
  RecoveryReport recovery;

  /// True iff every standing invariant held (recovery invariants only
  /// count when the drill was configured to run them).
  bool Passed() const {
    return counters_balanced && pool_drained && no_lost_queries &&
           retries_bounded && (!recovery_ran || (recovery_verified &&
                                                 audit_clean));
  }

  std::string ToString() const;
};

/// Runs one chaos drill end to end on a fresh database: timed load,
/// checkpoint, then the profile's query streams (through the admission-
/// controlled service, reading via facade snapshots) concurrently with
/// its read/refresh duty cycle, all under the armed fault schedule;
/// afterwards the injector is disarmed and the standing invariants are
/// verified, including crash recovery from checkpoint + WAL with a
/// byte-identity hash check and a full constraint audit.
///
/// Returns an error Status only for harness failures (bad config, load
/// failure); workload-level failures land in the DrillResult — check
/// Passed().
Result<DrillResult> RunChaosDrill(const DrillConfig& config);

/// Executes the profile × schedule matrix: one drill per combination,
/// each against a fresh database and scratch state under
/// `scratch_dir/drill_<i>_<j>`. Stops early on harness errors; drill
/// failures are reported in the results.
Result<std::vector<DrillResult>> RunDrillMatrix(
    const BenchmarkConfig& base,
    const std::vector<WorkloadProfile>& profiles,
    const std::vector<ChaosSchedule>& schedules,
    const std::string& scratch_dir);

}  // namespace tpcds

#endif  // TPCDS_DRIVER_DRILL_H_
