#include "driver/drill.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <thread>

#include "engine/audit.h"
#include "engine/recovery.h"
#include "scaling/scaling.h"
#include "schema/schema.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/wal.h"

namespace tpcds {

Result<DrillResult> RunChaosDrill(const DrillConfig& config) {
  const BenchmarkConfig& base = config.base;
  if (base.checkpoint_dir.empty() || base.wal_path.empty()) {
    return Status::InvalidArgument(
        "chaos drill needs checkpoint_dir and wal_path (the recovery "
        "invariant replays the WAL over the checkpoint)");
  }
  DrillResult result;
  result.profile = base.profile.ToString();
  result.schedule = config.schedule.ToString();
  result.streams = base.streams > 0
                       ? base.streams
                       : ScalingModel::MinimumStreams(base.scale_factor);
  result.queries_expected = result.streams * base.queries_per_stream;

  // Load and checkpoint happen before any fault is armed: the drill
  // attacks the serving phase, and the checkpoint is the trusted base
  // state recovery replays on top of.
  Database db;
  TPCDS_ASSIGN_OR_RETURN(result.t_load_sec, RunLoadTest(base, &db));
  TPCDS_RETURN_NOT_OK(db.SaveCheckpoint(base.checkpoint_dir));

  DataFacadeProvider provider;
  provider.Publish(db.Snapshot());
  WalWriter wal;
  WalWriter* wal_ptr = nullptr;
  if (!base.wal_path.empty()) {
    TPCDS_RETURN_NOT_OK(wal.Open(base.wal_path));
    wal_ptr = &wal;
  }

  FaultInjector& injector = FaultInjector::Global();
  injector.Clear();
  TPCDS_RETURN_NOT_OK(injector.ArmSchedule(config.schedule));

  MaintenanceOptions dm;
  dm.seed = base.seed;
  dm.scale_factor = base.scale_factor;
  dm.refresh_cycle = 1;
  dm.refresh_fraction = base.refresh_fraction;
  dm.dimension_updates = base.dimension_updates;
  int cycles = std::max(1, base.profile.max_refresh_cycles);
  double period_ms = base.profile.refresh_period_ms;

  // The drill interval proper: client streams submit through the
  // admission-controlled service while the duty cycle publishes refresh
  // generations underneath them, all under the armed fault windows.
  DutyCycleReport duty;
  Status duty_status;
  std::vector<double> latencies_ms;
  injector.StartScheduleClock();
  Stopwatch timer;
  std::thread dm_thread([&] {
    duty_status = RunRefreshDutyCycle(&db, dm, cycles, period_ms, &duty,
                                      wal_ptr, &provider);
  });
  Result<double> qr = RunQueryRun(base, &db, /*stream_base=*/1,
                                  &result.executions, &result.failures,
                                  "drill-qr", &provider, &result.counters,
                                  &latencies_ms);
  dm_thread.join();
  result.t_drill_sec = timer.ElapsedSeconds();
  result.schedule_report = injector.ScheduleReport();
  for (const std::string& site : FaultInjector::Sites()) {
    result.faults_fired += injector.FiredAt(site);
  }
  injector.StopSchedule();
  if (!qr.ok()) return qr.status();
  if (!duty_status.ok()) {
    return Status(duty_status.code(),
                  "duty cycle harness error: " + duty_status.message());
  }
  if (wal_ptr != nullptr) {
    Status closed = wal.Close();
    if (!closed.ok()) {
      result.failures.failures.push_back(
          QueryFailure{0, -1, 1, "wal", closed.message()});
    }
  }

  result.refresh_cycles_attempted = duty.cycles_attempted;
  result.refresh_cycles_failed = duty.cycles_failed;
  for (const std::string& err : duty.errors) {
    result.failures.failures.push_back(QueryFailure{0, -1, 1, "dm", err});
  }

  // Throughput and tails of the drill interval.
  if (result.t_drill_sec > 0.0) {
    result.queries_per_sec =
        static_cast<double>(result.executions.size()) / result.t_drill_sec;
  }
  LatencySummary lat = SummarizeLatenciesMs(std::move(latencies_ms));
  result.p50_ms = lat.p50_ms;
  result.p95_ms = lat.p95_ms;
  result.p99_ms = lat.p99_ms;

  // --- standing invariants -----------------------------------------------
  result.counters_balanced = result.counters.Balanced();
  result.pool_drained = result.counters.PoolDrained();
  // Every expected query is accounted for: it either completed or sits in
  // the failure report under the drill phase.
  int64_t failed_queries = 0;
  for (const QueryFailure& f : result.failures.failures) {
    if (f.phase == "drill-qr") ++failed_queries;
  }
  result.no_lost_queries =
      static_cast<int64_t>(result.executions.size()) + failed_queries ==
      result.queries_expected;
  // Retry budget: at most (attempts-1) extra tries per work item (queries
  // plus duty cycles) — a retry storm breaks this long before it breaks
  // anything else.
  int64_t retry_budget =
      static_cast<int64_t>(std::max(1, base.max_query_attempts) - 1) *
      (result.queries_expected + cycles);
  result.retries_bounded = result.failures.total_retries <= retry_budget;

  // Crash recovery: rebuild from checkpoint + WAL and demand byte
  // identity with the live database (the committed prefix of every cycle,
  // crashed ones included), then a full constraint audit on the recovered
  // state.
  Database recovered;
  Result<RecoveryReport> rec =
      Recover(&recovered, base.checkpoint_dir, base.wal_path);
  if (!rec.ok()) {
    result.failures.failures.push_back(
        QueryFailure{0, -1, 1, "recovery", rec.status().message()});
    result.recovery_ran = true;  // attempted and failed: the drill fails
  } else {
    result.recovery_ran = true;
    result.recovery = *rec;
    result.recovery_verified =
        HashDatabaseContent(recovered) == HashDatabaseContent(db);
    Result<AuditReport> audit = ValidateConstraints(&recovered, TpcdsSchema());
    result.audit_clean = audit.ok() && audit->TotalViolations() == 0;
    if (!result.audit_clean) {
      result.failures.failures.push_back(QueryFailure{
          0, -1, 1, "audit",
          audit.ok() ? audit->ToString() : audit.status().message()});
    }
  }
  return result;
}

Result<std::vector<DrillResult>> RunDrillMatrix(
    const BenchmarkConfig& base, const std::vector<WorkloadProfile>& profiles,
    const std::vector<ChaosSchedule>& schedules,
    const std::string& scratch_dir) {
  std::vector<DrillResult> results;
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = 0; j < schedules.size(); ++j) {
      std::string dir = scratch_dir + "/drill_" + std::to_string(i) + "_" +
                        std::to_string(j);
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        return Status::IoError("cannot create drill scratch dir " + dir +
                               ": " + ec.message());
      }
      DrillConfig config;
      config.base = base;
      config.base.profile = profiles[i];
      config.base.checkpoint_dir = dir + "/ckpt";
      config.base.wal_path = dir + "/wal.log";
      config.schedule = schedules[j];
      TPCDS_ASSIGN_OR_RETURN(DrillResult drill, RunChaosDrill(config));
      results.push_back(std::move(drill));
    }
  }
  return results;
}

std::string DrillResult::ToString() const {
  std::ostringstream out;
  out << "drill profile=" << profile << " schedule=["
      << (schedule.empty() ? "none" : schedule) << "]\n";
  out << StringPrintf(
      "  streams %d, %d/%d queries completed, %.1f q/s, "
      "p50 %.1f ms p95 %.1f ms p99 %.1f ms\n",
      streams, static_cast<int>(executions.size()), queries_expected,
      queries_per_sec, p50_ms, p95_ms, p99_ms);
  out << StringPrintf(
      "  refresh cycles %d (%d crashed), faults fired %lld, retries %lld\n",
      refresh_cycles_attempted, refresh_cycles_failed,
      static_cast<long long>(faults_fired),
      static_cast<long long>(failures.total_retries));
  if (!schedule_report.empty()) {
    std::istringstream lines(schedule_report);
    std::string line;
    while (std::getline(lines, line)) {
      out << "    " << line << "\n";
    }
  }
  auto flag = [](bool ok) { return ok ? "ok" : "FAIL"; };
  out << StringPrintf(
      "  invariants: counters %s, pool %s, no-lost-queries %s, "
      "retries-bounded %s",
      flag(counters_balanced), flag(pool_drained), flag(no_lost_queries),
      flag(retries_bounded));
  if (recovery_ran) {
    out << StringPrintf(", recovery %s, audit %s", flag(recovery_verified),
                        flag(audit_clean));
  }
  out << StringPrintf(" -> %s\n", Passed() ? "PASSED" : "FAILED");
  return out.str();
}

}  // namespace tpcds
