#include "dsgen/generator.h"

#include <algorithm>

#include "dsgen/generators_internal.h"

namespace tpcds {

Status TableGenerator::Generate(RowSink* sink) {
  auto [first, end] = ChunkRange();
  return GenerateUnits(first, end - first, sink);
}

std::pair<int64_t, int64_t> TableGenerator::ChunkRange() const {
  int64_t n = NumUnits();
  int64_t chunks = std::max(1, options_.num_chunks);
  int64_t index = std::clamp<int64_t>(options_.chunk, 1, chunks) - 1;
  int64_t per = n / chunks;
  int64_t remainder = n % chunks;
  int64_t first = index * per + std::min(index, remainder);
  int64_t count = per + (index < remainder ? 1 : 0);
  return {first, first + count};
}

const std::vector<std::string>& GeneratorTableNames() {
  static const std::vector<std::string>& names = *new std::vector<
      std::string>{
      // Load order: static and shared dimensions first, then channel
      // dimensions, then the fact tables.
      "date_dim", "time_dim", "income_band", "ship_mode", "reason",
      "customer_demographics", "household_demographics", "customer_address",
      "customer", "item", "store", "warehouse", "promotion", "call_center",
      "catalog_page", "web_page", "web_site", "inventory", "store_sales",
      "store_returns", "catalog_sales", "catalog_returns", "web_sales",
      "web_returns"};
  return names;
}

Result<std::unique_ptr<TableGenerator>> MakeGenerator(
    const std::string& table, const GeneratorOptions& options) {
  namespace ig = internal_dsgen;
  if (table == "date_dim") return ig::MakeDateDim(options);
  if (table == "time_dim") return ig::MakeTimeDim(options);
  if (table == "income_band") return ig::MakeIncomeBand(options);
  if (table == "ship_mode") return ig::MakeShipMode(options);
  if (table == "reason") return ig::MakeReason(options);
  if (table == "customer_demographics") {
    return ig::MakeCustomerDemographics(options);
  }
  if (table == "household_demographics") {
    return ig::MakeHouseholdDemographics(options);
  }
  if (table == "customer_address") return ig::MakeCustomerAddress(options);
  if (table == "customer") return ig::MakeCustomer(options);
  if (table == "item") return ig::MakeItem(options);
  if (table == "store") return ig::MakeStore(options);
  if (table == "warehouse") return ig::MakeWarehouse(options);
  if (table == "promotion") return ig::MakePromotion(options);
  if (table == "call_center") return ig::MakeCallCenter(options);
  if (table == "catalog_page") return ig::MakeCatalogPage(options);
  if (table == "web_page") return ig::MakeWebPage(options);
  if (table == "web_site") return ig::MakeWebSite(options);
  if (table == "inventory") return ig::MakeInventory(options);
  if (table == "store_sales") {
    return ig::MakeSalesChannel(options, "store", true, false);
  }
  if (table == "store_returns") {
    return ig::MakeSalesChannel(options, "store", false, true);
  }
  if (table == "catalog_sales") {
    return ig::MakeSalesChannel(options, "catalog", true, false);
  }
  if (table == "catalog_returns") {
    return ig::MakeSalesChannel(options, "catalog", false, true);
  }
  if (table == "web_sales") {
    return ig::MakeSalesChannel(options, "web", true, false);
  }
  if (table == "web_returns") {
    return ig::MakeSalesChannel(options, "web", false, true);
  }
  return Status::NotFound("no generator for table '" + table + "'");
}

Status GenerateSalesChannel(const std::string& sales_table,
                            const GeneratorOptions& options,
                            RowSink* sales_sink, RowSink* returns_sink) {
  std::string channel;
  if (sales_table == "store_sales") {
    channel = "store";
  } else if (sales_table == "catalog_sales") {
    channel = "catalog";
  } else if (sales_table == "web_sales") {
    channel = "web";
  } else {
    return Status::InvalidArgument("not a sales table: " + sales_table);
  }
  int64_t units = internal_dsgen::ChannelNumUnits(options, channel);
  // Apply this run's chunking to the ticket range.
  GeneratorOptions opts = options;
  int64_t chunks = std::max(1, opts.num_chunks);
  int64_t index = std::clamp<int64_t>(opts.chunk, 1, chunks) - 1;
  int64_t per = units / chunks;
  int64_t remainder = units % chunks;
  int64_t first = index * per + std::min(index, remainder);
  int64_t count = per + (index < remainder ? 1 : 0);
  return internal_dsgen::GenerateChannelBoth(options, channel, first, count,
                                             sales_sink, returns_sink);
}

}  // namespace tpcds
