#ifndef TPCDS_DSGEN_GENERATOR_H_
#define TPCDS_DSGEN_GENERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsgen/options.h"
#include "util/flatfile.h"
#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// Stable per-table ids used to derive independent RNG streams. Appending
/// is safe; reordering would change generated data.
enum TableId : int {
  kTidDateDim = 1,
  kTidTimeDim,
  kTidIncomeBand,
  kTidShipMode,
  kTidReason,
  kTidCustomerDemographics,
  kTidHouseholdDemographics,
  kTidCustomerAddress,
  kTidCustomer,
  kTidItem,
  kTidStore,
  kTidWarehouse,
  kTidPromotion,
  kTidCallCenter,
  kTidCatalogPage,
  kTidWebPage,
  kTidWebSite,
  kTidStoreSales,
  kTidCatalogSales,
  kTidWebSales,
  kTidInventory,
};

/// Base class for per-table data generators.
///
/// Generation is organised in *units*: one unit is one output row for most
/// tables, but one order/ticket (a group of line items) for the sales
/// channels. Units are independently seeded, so any contiguous unit range
/// can be generated in isolation — the foundation of deterministic
/// parallelism (paper §3; see also [10]'s parallel dsdgen design).
class TableGenerator {
 public:
  TableGenerator(const GeneratorOptions& options, std::string table_name)
      : options_(options), table_name_(std::move(table_name)) {}
  virtual ~TableGenerator() = default;

  TableGenerator(const TableGenerator&) = delete;
  TableGenerator& operator=(const TableGenerator&) = delete;

  const std::string& table_name() const { return table_name_; }
  const GeneratorOptions& options() const { return options_; }
  double sf() const { return options_.scale_factor; }

  /// Total generation units for the whole table at this scale factor.
  virtual int64_t NumUnits() const = 0;

  /// Generates units [first, first+count) into `sink`.
  virtual Status GenerateUnits(int64_t first, int64_t count,
                               RowSink* sink) = 0;

  /// Generates this run's chunk (all units when num_chunks == 1).
  Status Generate(RowSink* sink);

  /// Unit range [first, end) of chunk `chunk` out of `num_chunks`.
  std::pair<int64_t, int64_t> ChunkRange() const;

 private:
  GeneratorOptions options_;
  std::string table_name_;
};

/// Names of all 24 generatable tables, in load order (dimensions before
/// the fact tables that reference them).
const std::vector<std::string>& GeneratorTableNames();

/// Creates the generator for `table`. Returns NotFound for unknown names.
Result<std::unique_ptr<TableGenerator>> MakeGenerator(
    const std::string& table, const GeneratorOptions& options);

/// Sales channels generate returns alongside sales (a return re-derives
/// its originating line item). This entry point produces both tables in
/// one pass; `MakeGenerator("store_returns", ...)` internally re-runs the
/// sales generation and discards the sales rows.
Status GenerateSalesChannel(const std::string& sales_table,
                            const GeneratorOptions& options,
                            RowSink* sales_sink, RowSink* returns_sink);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_GENERATOR_H_
