#ifndef TPCDS_DSGEN_GENERATORS_INTERNAL_H_
#define TPCDS_DSGEN_GENERATORS_INTERNAL_H_

#include <memory>

#include "dsgen/generator.h"
#include "dsgen/sales_overrides.h"

namespace tpcds {
namespace internal_dsgen {

// Factories for the per-table generators; implementation detail of
// MakeGenerator. Grouped by source file.

// static_dims.cc
std::unique_ptr<TableGenerator> MakeDateDim(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeTimeDim(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeIncomeBand(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeShipMode(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeReason(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeCustomerDemographics(
    const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeHouseholdDemographics(
    const GeneratorOptions&);

// customer_dims.cc
std::unique_ptr<TableGenerator> MakeCustomerAddress(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeCustomer(const GeneratorOptions&);

// item.cc
std::unique_ptr<TableGenerator> MakeItem(const GeneratorOptions&);

// business_dims.cc
std::unique_ptr<TableGenerator> MakeStore(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeWarehouse(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakePromotion(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeCallCenter(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeCatalogPage(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeWebPage(const GeneratorOptions&);
std::unique_ptr<TableGenerator> MakeWebSite(const GeneratorOptions&);

// inventory.cc
std::unique_ptr<TableGenerator> MakeInventory(const GeneratorOptions&);

// sales.cc: `emit_sales`/`emit_returns` select which half of the channel
// the generator forwards to its sink.
std::unique_ptr<TableGenerator> MakeSalesChannel(const GeneratorOptions&,
                                                 const std::string& channel,
                                                 bool emit_sales,
                                                 bool emit_returns);

// sales.cc: dual-sink entry point — generates tickets [first, first+count)
// of `channel` ("store"/"catalog"/"web"), writing sales and returns rows
// in one pass.
Status GenerateChannelBoth(const GeneratorOptions& options,
                           const std::string& channel, int64_t first,
                           int64_t count, RowSink* sales_sink,
                           RowSink* returns_sink);

// sales.cc: total ticket (order) units of a channel at this scale factor.
int64_t ChannelNumUnits(const GeneratorOptions& options,
                        const std::string& channel);

// sales.cc: like GenerateChannelBoth but with the refresh pipeline's
// ticket-number and date-window overrides applied.
Status GenerateChannelWithOverrides(const GeneratorOptions& options,
                                    const std::string& channel,
                                    int64_t first, int64_t count,
                                    const SalesOverrides& overrides,
                                    RowSink* sales_sink,
                                    RowSink* returns_sink);

}  // namespace internal_dsgen
}  // namespace tpcds

#endif  // TPCDS_DSGEN_GENERATORS_INTERNAL_H_
