#ifndef TPCDS_DSGEN_RENDER_H_
#define TPCDS_DSGEN_RENDER_H_

#include <optional>
#include <string>
#include <vector>

#include "util/date.h"
#include "util/decimal.h"

namespace tpcds {

/// Accumulates one flat-file row. NULL is rendered as the empty field
/// (dsdgen convention); surrogate keys <= 0 mean NULL.
class RowBuilder {
 public:
  void Reset(size_t expected_fields) {
    fields_.clear();
    fields_.reserve(expected_fields);
  }

  void AddInt(int64_t v) { fields_.push_back(std::to_string(v)); }
  void AddKey(int64_t sk) {
    if (sk <= 0) {
      AddNull();
    } else {
      AddInt(sk);
    }
  }
  void AddString(std::string v) { fields_.push_back(std::move(v)); }
  void AddDecimal(Decimal v) { fields_.push_back(v.ToString()); }
  void AddDate(Date v) { fields_.push_back(v.ToString()); }
  void AddDate(const std::optional<Date>& v) {
    if (v.has_value()) {
      AddDate(*v);
    } else {
      AddNull();
    }
  }
  void AddFlag(bool v) { fields_.emplace_back(v ? "Y" : "N"); }
  void AddNull() { fields_.emplace_back(); }

  const std::vector<std::string>& fields() const { return fields_; }

 private:
  std::vector<std::string> fields_;
};

}  // namespace tpcds

#endif  // TPCDS_DSGEN_RENDER_H_
