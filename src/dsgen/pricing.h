#ifndef TPCDS_DSGEN_PRICING_H_
#define TPCDS_DSGEN_PRICING_H_

#include "util/decimal.h"
#include "util/random.h"

namespace tpcds {

/// The pricing chain of one sold line item. Derived quantities follow the
/// TPC-DS column algebra: ext_* = per-unit * quantity, net_paid =
/// ext_sales_price - coupon_amt, net_profit = net_paid -
/// ext_wholesale_cost, and the inc_ship/inc_tax variants stack shipping
/// and tax on top.
struct SalesPricing {
  int quantity = 0;
  Decimal wholesale_cost;
  Decimal list_price;
  Decimal sales_price;
  Decimal ext_discount_amt;
  Decimal ext_sales_price;
  Decimal ext_wholesale_cost;
  Decimal ext_list_price;
  Decimal ext_tax;
  Decimal coupon_amt;
  Decimal ext_ship_cost;
  Decimal net_paid;
  Decimal net_paid_inc_tax;
  Decimal net_paid_inc_ship;
  Decimal net_paid_inc_ship_tax;
  Decimal net_profit;
};

/// RNG draws MakeSalesPricing consumes (fixed).
inline constexpr int kSalesPricingDraws = 7;

/// Synthesises a line-item pricing chain: wholesale cost uniform
/// $1.00..$100.00, markup 1.0x..2.0x, discount 0..100%, quantity 1..100,
/// tax 0..9%, coupons on ~15% of items, shipping 0..50% of list.
SalesPricing MakeSalesPricing(RngStream* rng);

/// The monetary consequences of returning part of a sold line item.
struct ReturnPricing {
  int return_quantity = 0;
  Decimal return_amt;       // sales price of the returned units
  Decimal return_tax;
  Decimal return_amt_inc_tax;
  Decimal fee;
  Decimal return_ship_cost;
  Decimal refunded_cash;
  Decimal reversed_charge;
  Decimal store_credit;     // "account credit" for the web channel
  Decimal net_loss;
};

/// RNG draws MakeReturnPricing consumes (fixed).
inline constexpr int kReturnPricingDraws = 4;

/// Synthesises a return against `sale`: 1..quantity units come back; the
/// refund splits into cash / reversed charge / store credit.
ReturnPricing MakeReturnPricing(const SalesPricing& sale, RngStream* rng);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_PRICING_H_
