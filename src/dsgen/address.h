#ifndef TPCDS_DSGEN_ADDRESS_H_
#define TPCDS_DSGEN_ADDRESS_H_

#include <string>

#include "util/decimal.h"
#include "util/random.h"

namespace tpcds {

/// A synthesised US street address, shared by customer_address, store,
/// warehouse, call_center and web_site (the schema's common address block).
struct Address {
  std::string street_number;
  std::string street_name;
  std::string street_type;
  std::string suite_number;
  std::string city;
  std::string county;
  std::string state;
  std::string zip;
  std::string country;
  Decimal gmt_offset;
};

/// Maximum RNG draws MakeAddress consumes; size column-stream budgets
/// with this.
inline constexpr int kAddressDraws = 10;

/// Synthesises an address. `county_domain` caps the county domain — the
/// paper's *domain scaling* (§3.1): small tables such as store draw
/// counties from a scaled-down domain. Pass 0 for the full embedded domain.
Address MakeAddress(RngStream* rng, int64_t county_domain);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_ADDRESS_H_
